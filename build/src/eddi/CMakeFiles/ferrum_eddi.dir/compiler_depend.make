# Empty compiler generated dependencies file for ferrum_eddi.
# This may be replaced when dependencies are built.
