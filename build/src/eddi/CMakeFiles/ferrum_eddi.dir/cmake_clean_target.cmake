file(REMOVE_RECURSE
  "libferrum_eddi.a"
)
