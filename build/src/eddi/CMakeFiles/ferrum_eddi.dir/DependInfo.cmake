
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eddi/asm_protect.cpp" "src/eddi/CMakeFiles/ferrum_eddi.dir/asm_protect.cpp.o" "gcc" "src/eddi/CMakeFiles/ferrum_eddi.dir/asm_protect.cpp.o.d"
  "/root/repo/src/eddi/ferrum.cpp" "src/eddi/CMakeFiles/ferrum_eddi.dir/ferrum.cpp.o" "gcc" "src/eddi/CMakeFiles/ferrum_eddi.dir/ferrum.cpp.o.d"
  "/root/repo/src/eddi/ir_eddi.cpp" "src/eddi/CMakeFiles/ferrum_eddi.dir/ir_eddi.cpp.o" "gcc" "src/eddi/CMakeFiles/ferrum_eddi.dir/ir_eddi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ferrum_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/masm/CMakeFiles/ferrum_masm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ferrum_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
