file(REMOVE_RECURSE
  "CMakeFiles/ferrum_eddi.dir/asm_protect.cpp.o"
  "CMakeFiles/ferrum_eddi.dir/asm_protect.cpp.o.d"
  "CMakeFiles/ferrum_eddi.dir/ferrum.cpp.o"
  "CMakeFiles/ferrum_eddi.dir/ferrum.cpp.o.d"
  "CMakeFiles/ferrum_eddi.dir/ir_eddi.cpp.o"
  "CMakeFiles/ferrum_eddi.dir/ir_eddi.cpp.o.d"
  "libferrum_eddi.a"
  "libferrum_eddi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ferrum_eddi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
