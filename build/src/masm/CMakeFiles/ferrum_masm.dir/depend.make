# Empty dependencies file for ferrum_masm.
# This may be replaced when dependencies are built.
