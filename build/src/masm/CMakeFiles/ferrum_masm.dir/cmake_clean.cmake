file(REMOVE_RECURSE
  "CMakeFiles/ferrum_masm.dir/cfg.cpp.o"
  "CMakeFiles/ferrum_masm.dir/cfg.cpp.o.d"
  "CMakeFiles/ferrum_masm.dir/masm.cpp.o"
  "CMakeFiles/ferrum_masm.dir/masm.cpp.o.d"
  "CMakeFiles/ferrum_masm.dir/parser.cpp.o"
  "CMakeFiles/ferrum_masm.dir/parser.cpp.o.d"
  "CMakeFiles/ferrum_masm.dir/verifier.cpp.o"
  "CMakeFiles/ferrum_masm.dir/verifier.cpp.o.d"
  "libferrum_masm.a"
  "libferrum_masm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ferrum_masm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
