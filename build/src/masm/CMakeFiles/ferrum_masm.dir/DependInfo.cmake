
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/masm/cfg.cpp" "src/masm/CMakeFiles/ferrum_masm.dir/cfg.cpp.o" "gcc" "src/masm/CMakeFiles/ferrum_masm.dir/cfg.cpp.o.d"
  "/root/repo/src/masm/masm.cpp" "src/masm/CMakeFiles/ferrum_masm.dir/masm.cpp.o" "gcc" "src/masm/CMakeFiles/ferrum_masm.dir/masm.cpp.o.d"
  "/root/repo/src/masm/parser.cpp" "src/masm/CMakeFiles/ferrum_masm.dir/parser.cpp.o" "gcc" "src/masm/CMakeFiles/ferrum_masm.dir/parser.cpp.o.d"
  "/root/repo/src/masm/verifier.cpp" "src/masm/CMakeFiles/ferrum_masm.dir/verifier.cpp.o" "gcc" "src/masm/CMakeFiles/ferrum_masm.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ferrum_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
