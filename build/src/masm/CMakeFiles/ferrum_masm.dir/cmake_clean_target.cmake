file(REMOVE_RECURSE
  "libferrum_masm.a"
)
