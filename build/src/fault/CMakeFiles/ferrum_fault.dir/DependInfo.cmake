
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/audit.cpp" "src/fault/CMakeFiles/ferrum_fault.dir/audit.cpp.o" "gcc" "src/fault/CMakeFiles/ferrum_fault.dir/audit.cpp.o.d"
  "/root/repo/src/fault/campaign.cpp" "src/fault/CMakeFiles/ferrum_fault.dir/campaign.cpp.o" "gcc" "src/fault/CMakeFiles/ferrum_fault.dir/campaign.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/ferrum_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ferrum_support.dir/DependInfo.cmake"
  "/root/repo/build/src/masm/CMakeFiles/ferrum_masm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
