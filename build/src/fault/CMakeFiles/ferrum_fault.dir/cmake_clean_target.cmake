file(REMOVE_RECURSE
  "libferrum_fault.a"
)
