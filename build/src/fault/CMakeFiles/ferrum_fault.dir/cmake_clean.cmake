file(REMOVE_RECURSE
  "CMakeFiles/ferrum_fault.dir/audit.cpp.o"
  "CMakeFiles/ferrum_fault.dir/audit.cpp.o.d"
  "CMakeFiles/ferrum_fault.dir/campaign.cpp.o"
  "CMakeFiles/ferrum_fault.dir/campaign.cpp.o.d"
  "libferrum_fault.a"
  "libferrum_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ferrum_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
