# Empty compiler generated dependencies file for ferrum_fault.
# This may be replaced when dependencies are built.
