file(REMOVE_RECURSE
  "libferrum_ir.a"
)
