file(REMOVE_RECURSE
  "CMakeFiles/ferrum_ir.dir/builder.cpp.o"
  "CMakeFiles/ferrum_ir.dir/builder.cpp.o.d"
  "CMakeFiles/ferrum_ir.dir/interp.cpp.o"
  "CMakeFiles/ferrum_ir.dir/interp.cpp.o.d"
  "CMakeFiles/ferrum_ir.dir/ir.cpp.o"
  "CMakeFiles/ferrum_ir.dir/ir.cpp.o.d"
  "CMakeFiles/ferrum_ir.dir/parser.cpp.o"
  "CMakeFiles/ferrum_ir.dir/parser.cpp.o.d"
  "CMakeFiles/ferrum_ir.dir/printer.cpp.o"
  "CMakeFiles/ferrum_ir.dir/printer.cpp.o.d"
  "CMakeFiles/ferrum_ir.dir/verifier.cpp.o"
  "CMakeFiles/ferrum_ir.dir/verifier.cpp.o.d"
  "libferrum_ir.a"
  "libferrum_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ferrum_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
