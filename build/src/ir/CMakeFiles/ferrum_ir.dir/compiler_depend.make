# Empty compiler generated dependencies file for ferrum_ir.
# This may be replaced when dependencies are built.
