file(REMOVE_RECURSE
  "CMakeFiles/ferrum_frontend.dir/codegen.cpp.o"
  "CMakeFiles/ferrum_frontend.dir/codegen.cpp.o.d"
  "CMakeFiles/ferrum_frontend.dir/lexer.cpp.o"
  "CMakeFiles/ferrum_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/ferrum_frontend.dir/parser.cpp.o"
  "CMakeFiles/ferrum_frontend.dir/parser.cpp.o.d"
  "libferrum_frontend.a"
  "libferrum_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ferrum_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
