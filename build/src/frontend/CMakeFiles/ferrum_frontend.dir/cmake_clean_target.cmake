file(REMOVE_RECURSE
  "libferrum_frontend.a"
)
