# Empty dependencies file for ferrum_frontend.
# This may be replaced when dependencies are built.
