file(REMOVE_RECURSE
  "CMakeFiles/ferrum_backend.dir/backend.cpp.o"
  "CMakeFiles/ferrum_backend.dir/backend.cpp.o.d"
  "libferrum_backend.a"
  "libferrum_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ferrum_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
