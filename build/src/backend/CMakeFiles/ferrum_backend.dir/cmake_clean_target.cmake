file(REMOVE_RECURSE
  "libferrum_backend.a"
)
