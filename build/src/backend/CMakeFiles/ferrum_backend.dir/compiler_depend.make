# Empty compiler generated dependencies file for ferrum_backend.
# This may be replaced when dependencies are built.
