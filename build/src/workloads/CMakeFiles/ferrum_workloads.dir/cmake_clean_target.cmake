file(REMOVE_RECURSE
  "libferrum_workloads.a"
)
