# Empty compiler generated dependencies file for ferrum_workloads.
# This may be replaced when dependencies are built.
