file(REMOVE_RECURSE
  "CMakeFiles/ferrum_workloads.dir/workloads.cpp.o"
  "CMakeFiles/ferrum_workloads.dir/workloads.cpp.o.d"
  "libferrum_workloads.a"
  "libferrum_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ferrum_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
