file(REMOVE_RECURSE
  "CMakeFiles/ferrum_support.dir/rng.cpp.o"
  "CMakeFiles/ferrum_support.dir/rng.cpp.o.d"
  "CMakeFiles/ferrum_support.dir/source_location.cpp.o"
  "CMakeFiles/ferrum_support.dir/source_location.cpp.o.d"
  "CMakeFiles/ferrum_support.dir/str.cpp.o"
  "CMakeFiles/ferrum_support.dir/str.cpp.o.d"
  "libferrum_support.a"
  "libferrum_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ferrum_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
