# Empty compiler generated dependencies file for ferrum_support.
# This may be replaced when dependencies are built.
