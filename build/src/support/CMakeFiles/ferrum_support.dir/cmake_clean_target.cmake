file(REMOVE_RECURSE
  "libferrum_support.a"
)
