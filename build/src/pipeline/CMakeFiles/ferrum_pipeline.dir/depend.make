# Empty dependencies file for ferrum_pipeline.
# This may be replaced when dependencies are built.
