file(REMOVE_RECURSE
  "CMakeFiles/ferrum_pipeline.dir/pipeline.cpp.o"
  "CMakeFiles/ferrum_pipeline.dir/pipeline.cpp.o.d"
  "libferrum_pipeline.a"
  "libferrum_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ferrum_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
