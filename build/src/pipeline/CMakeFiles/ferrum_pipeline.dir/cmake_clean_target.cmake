file(REMOVE_RECURSE
  "libferrum_pipeline.a"
)
