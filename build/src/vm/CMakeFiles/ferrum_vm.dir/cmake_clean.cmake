file(REMOVE_RECURSE
  "CMakeFiles/ferrum_vm.dir/timing.cpp.o"
  "CMakeFiles/ferrum_vm.dir/timing.cpp.o.d"
  "CMakeFiles/ferrum_vm.dir/vm.cpp.o"
  "CMakeFiles/ferrum_vm.dir/vm.cpp.o.d"
  "libferrum_vm.a"
  "libferrum_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ferrum_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
