# Empty dependencies file for ferrum_vm.
# This may be replaced when dependencies are built.
