file(REMOVE_RECURSE
  "libferrum_vm.a"
)
