# Empty compiler generated dependencies file for test_masm_verifier.
# This may be replaced when dependencies are built.
