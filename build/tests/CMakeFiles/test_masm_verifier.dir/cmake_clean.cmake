file(REMOVE_RECURSE
  "CMakeFiles/test_masm_verifier.dir/test_masm_verifier.cpp.o"
  "CMakeFiles/test_masm_verifier.dir/test_masm_verifier.cpp.o.d"
  "test_masm_verifier"
  "test_masm_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_masm_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
