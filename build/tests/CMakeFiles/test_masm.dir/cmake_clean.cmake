file(REMOVE_RECURSE
  "CMakeFiles/test_masm.dir/test_masm.cpp.o"
  "CMakeFiles/test_masm.dir/test_masm.cpp.o.d"
  "test_masm"
  "test_masm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_masm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
