# Empty dependencies file for test_masm.
# This may be replaced when dependencies are built.
