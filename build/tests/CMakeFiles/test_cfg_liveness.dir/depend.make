# Empty dependencies file for test_cfg_liveness.
# This may be replaced when dependencies are built.
