file(REMOVE_RECURSE
  "CMakeFiles/test_cfg_liveness.dir/test_cfg_liveness.cpp.o"
  "CMakeFiles/test_cfg_liveness.dir/test_cfg_liveness.cpp.o.d"
  "test_cfg_liveness"
  "test_cfg_liveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfg_liveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
