
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_goldens.cpp" "tests/CMakeFiles/test_goldens.dir/test_goldens.cpp.o" "gcc" "tests/CMakeFiles/test_goldens.dir/test_goldens.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/ferrum_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/ferrum_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ferrum_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ferrum_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/ferrum_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/eddi/CMakeFiles/ferrum_eddi.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ferrum_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ferrum_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/masm/CMakeFiles/ferrum_masm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ferrum_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
