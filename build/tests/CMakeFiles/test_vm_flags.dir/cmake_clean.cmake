file(REMOVE_RECURSE
  "CMakeFiles/test_vm_flags.dir/test_vm_flags.cpp.o"
  "CMakeFiles/test_vm_flags.dir/test_vm_flags.cpp.o.d"
  "test_vm_flags"
  "test_vm_flags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_flags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
