# Empty dependencies file for test_vm_flags.
# This may be replaced when dependencies are built.
