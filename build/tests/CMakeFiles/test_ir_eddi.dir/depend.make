# Empty dependencies file for test_ir_eddi.
# This may be replaced when dependencies are built.
