file(REMOVE_RECURSE
  "CMakeFiles/test_ir_eddi.dir/test_ir_eddi.cpp.o"
  "CMakeFiles/test_ir_eddi.dir/test_ir_eddi.cpp.o.d"
  "test_ir_eddi"
  "test_ir_eddi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_eddi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
