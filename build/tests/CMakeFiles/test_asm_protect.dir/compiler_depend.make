# Empty compiler generated dependencies file for test_asm_protect.
# This may be replaced when dependencies are built.
