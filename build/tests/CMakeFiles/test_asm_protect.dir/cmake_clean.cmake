file(REMOVE_RECURSE
  "CMakeFiles/test_asm_protect.dir/test_asm_protect.cpp.o"
  "CMakeFiles/test_asm_protect.dir/test_asm_protect.cpp.o.d"
  "test_asm_protect"
  "test_asm_protect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asm_protect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
