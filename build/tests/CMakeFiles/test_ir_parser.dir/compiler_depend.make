# Empty compiler generated dependencies file for test_ir_parser.
# This may be replaced when dependencies are built.
