# Empty dependencies file for ferrumc.
# This may be replaced when dependencies are built.
