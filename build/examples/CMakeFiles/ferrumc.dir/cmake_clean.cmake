file(REMOVE_RECURSE
  "CMakeFiles/ferrumc.dir/ferrumc.cpp.o"
  "CMakeFiles/ferrumc.dir/ferrumc.cpp.o.d"
  "ferrumc"
  "ferrumc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ferrumc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
