# Empty dependencies file for protect_and_inject.
# This may be replaced when dependencies are built.
