file(REMOVE_RECURSE
  "CMakeFiles/protect_and_inject.dir/protect_and_inject.cpp.o"
  "CMakeFiles/protect_and_inject.dir/protect_and_inject.cpp.o.d"
  "protect_and_inject"
  "protect_and_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protect_and_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
