file(REMOVE_RECURSE
  "CMakeFiles/inspect_transform.dir/inspect_transform.cpp.o"
  "CMakeFiles/inspect_transform.dir/inspect_transform.cpp.o.d"
  "inspect_transform"
  "inspect_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
