# Empty dependencies file for inspect_transform.
# This may be replaced when dependencies are built.
