file(REMOVE_RECURSE
  "CMakeFiles/analysis_rootcause.dir/analysis_rootcause.cpp.o"
  "CMakeFiles/analysis_rootcause.dir/analysis_rootcause.cpp.o.d"
  "analysis_rootcause"
  "analysis_rootcause.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_rootcause.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
