# Empty dependencies file for analysis_rootcause.
# This may be replaced when dependencies are built.
