file(REMOVE_RECURSE
  "CMakeFiles/ablation_spare.dir/ablation_spare.cpp.o"
  "CMakeFiles/ablation_spare.dir/ablation_spare.cpp.o.d"
  "ablation_spare"
  "ablation_spare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
