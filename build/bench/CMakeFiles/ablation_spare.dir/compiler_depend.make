# Empty compiler generated dependencies file for ablation_spare.
# This may be replaced when dependencies are built.
