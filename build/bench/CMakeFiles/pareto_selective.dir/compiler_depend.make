# Empty compiler generated dependencies file for pareto_selective.
# This may be replaced when dependencies are built.
