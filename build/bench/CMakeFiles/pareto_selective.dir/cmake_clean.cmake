file(REMOVE_RECURSE
  "CMakeFiles/pareto_selective.dir/pareto_selective.cpp.o"
  "CMakeFiles/pareto_selective.dir/pareto_selective.cpp.o.d"
  "pareto_selective"
  "pareto_selective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pareto_selective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
