file(REMOVE_RECURSE
  "CMakeFiles/ablation_multibit.dir/ablation_multibit.cpp.o"
  "CMakeFiles/ablation_multibit.dir/ablation_multibit.cpp.o.d"
  "ablation_multibit"
  "ablation_multibit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multibit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
