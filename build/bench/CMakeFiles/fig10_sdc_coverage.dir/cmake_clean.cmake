file(REMOVE_RECURSE
  "CMakeFiles/fig10_sdc_coverage.dir/fig10_sdc_coverage.cpp.o"
  "CMakeFiles/fig10_sdc_coverage.dir/fig10_sdc_coverage.cpp.o.d"
  "fig10_sdc_coverage"
  "fig10_sdc_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sdc_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
