# Empty dependencies file for fig10_sdc_coverage.
# This may be replaced when dependencies are built.
