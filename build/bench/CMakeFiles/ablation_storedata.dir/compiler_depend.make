# Empty compiler generated dependencies file for ablation_storedata.
# This may be replaced when dependencies are built.
