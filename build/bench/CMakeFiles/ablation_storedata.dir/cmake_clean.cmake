file(REMOVE_RECURSE
  "CMakeFiles/ablation_storedata.dir/ablation_storedata.cpp.o"
  "CMakeFiles/ablation_storedata.dir/ablation_storedata.cpp.o.d"
  "ablation_storedata"
  "ablation_storedata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_storedata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
