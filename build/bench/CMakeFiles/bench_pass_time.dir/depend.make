# Empty dependencies file for bench_pass_time.
# This may be replaced when dependencies are built.
