// Quickstart: compile a MiniC program, protect it with FERRUM, run it,
// then inject one fault and watch the detector catch it.
//
//   $ ./quickstart
#include <cstdio>

#include "fault/campaign.h"
#include "pipeline/pipeline.h"
#include "support/rng.h"
#include "vm/vm.h"

using namespace ferrum;

int main() {
  const char* source = R"(
    int main() {
      long sum = 0L;
      for (int i = 1; i <= 100; i++) sum += (long)(i * i);
      print_int(sum);   // 338350
      return 0;
    }
  )";

  // 1. Build with FERRUM protection (MiniC -> MiniIR -> MiniASM -> pass).
  auto build = pipeline::build(source, pipeline::Technique::kFerrum);
  std::printf("protected program: %zu instructions, %llu SIMD sites, "
              "%llu general sites, %llu compare clusters\n",
              build.program.inst_count(),
              static_cast<unsigned long long>(build.asm_stats.simd_sites),
              static_cast<unsigned long long>(build.asm_stats.general_sites),
              static_cast<unsigned long long>(
                  build.asm_stats.compare_clusters));

  // 2. Fault-free run.
  const vm::VmResult golden = vm::run(build.program);
  std::printf("fault-free run: status=%s output=%lld (expected 338350)\n",
              vm::exit_status_name(golden.status),
              static_cast<long long>(golden.output.at(0)));

  // 3. Inject single bit flips at random dynamic sites.
  Rng rng(2024);
  int detected = 0;
  int benign = 0;
  int crashed = 0;
  int sdc = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    vm::FaultSpec fault;
    fault.site = rng.next_below(golden.fi_sites);
    fault.bit = static_cast<int>(rng.next_below(64));
    vm::VmOptions options;
    options.max_steps = golden.steps * 16 + 10'000;
    const vm::VmResult run = vm::run(build.program, options, &fault);
    if (run.status == vm::ExitStatus::kDetected) {
      ++detected;
    } else if (run.ok() && run.output == golden.output) {
      ++benign;
    } else if (run.ok()) {
      ++sdc;
    } else {
      ++crashed;
    }
  }
  std::printf("%d injected faults: %d detected, %d benign, %d crashed, "
              "%d silent corruptions\n",
              trials, detected, benign, crashed, sdc);
  std::printf(sdc == 0 ? "FERRUM caught every corrupting fault.\n"
                       : "unexpected SDC escape!\n");
  return sdc == 0 ? 0 : 1;
}
