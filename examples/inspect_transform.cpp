// Shows what each protection pass actually does to the code, echoing the
// paper's Figs 2, 4, 5 and 6: prints the IR and assembly of a small
// function before and after protection.
//
//   $ ./inspect_transform            # built-in `add`-style example
//   $ ./inspect_transform ferrum     # only the FERRUM assembly diff
#include <cstdio>
#include <string>

#include "backend/backend.h"
#include "eddi/asm_protect.h"
#include "eddi/ir_eddi.h"
#include "frontend/codegen.h"
#include "ir/printer.h"
#include "masm/masm.h"
#include "support/source_location.h"

using namespace ferrum;

namespace {

constexpr const char* kSource = R"(
int add(int a, int b) {
  return a + b;
}
int main() {
  int values[4];
  for (int i = 0; i < 4; i++) values[i] = add(i, i * 2);
  long total = 0L;
  for (int i = 0; i < 4; i++) total += values[i];
  print_int(total);
  return 0;
}
)";

std::unique_ptr<ir::Module> compile() {
  DiagEngine diags;
  auto module = minic::compile(kSource, diags);
  if (module == nullptr) {
    std::printf("frontend error:\n%s", diags.render().c_str());
  }
  return module;
}

void banner(const char* title) {
  std::printf("\n============ %s ============\n", title);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "all";

  if (mode == "all") {
    auto module = compile();
    if (!module) return 1;
    banner("MiniC source");
    std::printf("%s", kSource);
    banner("MiniIR (paper Fig 2 analogue: note the a.addr allocas)");
    std::printf("%s", ir::print(*module->find_function("add")).c_str());

    banner("MiniIR after IR-LEVEL-EDDI (duplicated loads/adds + checker)");
    eddi::apply_ir_eddi(*module, eddi::IrEddiMode::kClassic);
    std::printf("%s", ir::print(*module->find_function("add")).c_str());
  }

  {
    auto module = compile();
    if (!module) return 1;
    auto program = backend::lower(*module);
    banner("Assembly before protection");
    std::printf("%s", masm::print(*program.find_function("add")).c_str());

    eddi::AsmProtectOptions options;  // full FERRUM
    eddi::protect_asm(program, options);
    banner("Assembly after FERRUM (Figs 4/5/6: duplicates, SIMD captures, "
           "sete pairs, edge assertions)");
    std::printf("%s", masm::print(*program.find_function("add")).c_str());
    std::printf("%s", masm::print(*program.find_function("main")).c_str());
  }
  return 0;
}
