// ferrumc — command-line driver for the whole pipeline. Compile a MiniC
// file, optionally protect it, then run it, dump its IR/assembly, audit
// its coverage exhaustively, or campaign against it.
//
//   ferrumc run prog.c                     # compile + execute
//   ferrumc run prog.c --tech=ferrum       # protected execution
//   ferrumc asm prog.c --tech=hybrid       # dump protected assembly
//   ferrumc ir prog.c --tech=ir-eddi       # dump protected IR
//   ferrumc audit prog.c                   # exhaustive FERRUM audit
//   ferrumc audit prog.c --prune           # class-extrapolated audit
//   ferrumc campaign prog.c --tech=ferrum --trials=1000
//   ferrumc campaign prog.c --prune        # pilot-extrapolated campaign
//   ferrumc sites prog.c --tech=ferrum     # fault-site liveness/classes
//   ferrumc run prog.c --tech=ferrum --timing --stats=out.json
//   ferrumc lint prog.c --tech=ferrum      # static protection verifier
//   ferrumc lint prog.c --tech=ferrum --summary   # per-function table
//   ferrumc lint prog.s --lint=json        # lint assembly, JSON report
//   ferrumc plan prog.c                    # flow predictions + top-k plan
//   ferrumc plan prog.c --budget=0.25 --strategy=analysis
//   ferrumc serve                          # run the campaign daemon
//   ferrumc submit prog.c --tech=ferrum    # campaign via the daemon
//   ferrumc submit bfs --trials=2000       # a named Table II workload
//   ferrumc submit --shutdown              # stop the daemon
//
// `serve` runs the campaign service in-process (identical to the
// standalone ferrumd binary); `submit` sends one campaign cell to a
// running daemon and prints the same summary line as `campaign`, plus
// whether the content-addressed store answered it without executing.
// Service knobs come from FERRUM_SVC_SOCKET / FERRUM_SVC_CACHE /
// FERRUM_SVC_WORKERS (strict support/env parsing), overridable with
// --socket / --cache-dir / --workers.
//
// `lint` (equivalently: any command with --lint) runs ferrum-check over
// the built assembly and exits non-zero when a protection invariant is
// violated. A `.s` input is parsed as MiniASM directly, so mutated or
// handwritten protection idioms can be linted without the pipeline.
// `--lint=json` also embeds the ferrum-prune site table (per-site
// dead-bit mask + equivalence class) next to the check report.
//
// `sites` dumps the ferrum-prune analysis itself as JSON; `--prune` on
// audit/campaign collapses the injection space with it (statically-dead
// flips are benign without running, live flips are answered by one pilot
// per equivalence class; see src/check/prune.h).
//
// `plan` runs the ferrum-flow error-propagation analysis over the
// *unprotected* program (the exact assembly the FERRUM protect pass
// would see), prints the four-way outcome-prediction profile and plans
// an analysis-guided selective-protection site set for the given
// --budget (see src/check/flow.h and src/pipeline/selective.h).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "check/check.h"
#include "check/flow.h"
#include "check/prune.h"
#include "check/sections.h"
#include "fault/audit.h"
#include "fault/campaign.h"
#include "fault/cell.h"
#include "fault/compose.h"
#include "ir/printer.h"
#include "service/cache.h"
#include "service/client.h"
#include "service/service.h"
#include "masm/masm.h"
#include "masm/parser.h"
#include "masm/verifier.h"
#include "pipeline/pipeline.h"
#include "support/env.h"
#include "telemetry/export.h"
#include "vm/vm.h"

using namespace ferrum;
using pipeline::Technique;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <run|asm|ir|audit|campaign|lint|sites|plan> "
               "<file.c|file.s>\n"
               "       [--tech=none|ir-eddi|hybrid|ferrum]\n"
               "       [--trials=N] [--jobs=N] [--ckpt-stride=N] [--timing]\n"
               "       [--dispatch=switch|threaded] [--batch=N]\n"
               "       [--max-half-width=X]\n"
               "       [--lint[=json]] [--summary] [--prune] "
               "[--stats=<file.json>]\n"
               "       [--budget=X] [--strategy=analysis|random]\n"
               "       [--compose] [--incremental] [--cache-dir=DIR]\n"
               "       %s serve [--socket=PATH] [--cache-dir=DIR] "
               "[--workers=N]\n"
               "       %s submit <file.c|workload> [--socket=PATH] "
               "[--seed=N] [--burst=N]\n"
               "       [--store-data] [campaign flags]  |  submit "
               "--shutdown\n"
               "(serve runs the campaign daemon on a unix socket; submit "
               "sends one campaign cell to it and streams the result — "
               "repeated submissions are answered byte-identically from "
               "the content-addressed store without executing; service "
               "knobs default to FERRUM_SVC_SOCKET / FERRUM_SVC_CACHE / "
               "FERRUM_SVC_WORKERS)\n"
               "(sites dumps the ferrum-prune fault-site liveness/"
               "equivalence analysis as JSON; --prune makes audit/campaign "
               "inject one pilot per equivalence class and skip "
               "statically-dead flips, extrapolating the full result)\n"
               "(lint runs the ferrum-check static protection verifier. "
               "Exit contract: 0 = every protection invariant holds, "
               "1 = at least one violation (listed on stderr) or a build "
               "failure, 2 = usage/IO error. --lint=json dumps the full "
               "report with the prune/section/flow tables; --summary adds "
               "a per-function table of site counts per class "
               "(protected/benign/unprotected);\n"
               " a .s input is linted directly, without the pipeline)\n"
               "(plan runs the ferrum-flow outcome-prediction analysis on "
               "the pre-protection assembly and plans selective "
               "protection: --budget=X protects the top fraction X of "
               "protectable sites, ranked by predicted SDC risk with "
               "--strategy=analysis (default) or a seeded shuffle with "
               "--strategy=random; predictions land in --lint=json and "
               "sites output as the 'flow' table)\n"
               "(campaign --compose runs the sectioned campaign: the "
               "program is decomposed into sync-point-delimited sections, "
               "each campaigned in isolation, and the per-section summaries "
               "are composed into the whole-program counts; --incremental "
               "additionally caches per-section summaries under "
               "--cache-dir (default FERRUM_SVC_CACHE), so re-running "
               "after an edit re-injects only the changed sections)\n"
               "(--jobs defaults to FERRUM_JOBS, then hardware "
               "concurrency; results are identical for any value;\n"
               " --ckpt-stride defaults to FERRUM_CKPT_STRIDE, then 64 — "
               "golden-run checkpoint spacing for campaign/audit "
               "fast-forwarding; 0 disables checkpointing; results are "
               "bit-identical for every stride;\n"
               " --dispatch picks the interpreter inner loop (defaults "
               "to FERRUM_DISPATCH, then threaded when the build has it); "
               "--batch defaults to FERRUM_BATCH, then 8 — lockstep lanes "
               "per campaign/audit engine call, 1 = scalar; both knobs "
               "never change results, only wall-clock;\n"
               " --max-half-width (default FERRUM_CI_TARGET, then 0 = "
               "off) stops a campaign at the first power-of-two trial "
               "boundary where every outcome-rate 95%% Wilson half-width "
               "is <= the target — deterministic (the stopped count is a "
               "pure function of the cell, never of jobs/batch/dispatch) "
               "and cache-key material; incompatible with --prune;\n"
               " --stats writes run/campaign/audit telemetry as JSON — "
               "the 'metrics' section is deterministic, 'wallclock' is "
               "not)\n",
               argv0, argv0, argv0);
  return 2;
}

/// Writes the --stats artifact: {"metrics": ..., "wallclock": ...}.
bool write_stats(const std::string& path, const telemetry::Json& metrics,
                 const telemetry::Json& wallclock) {
  telemetry::Json root = telemetry::Json::object();
  root["schema_version"] = 1;
  root["metrics"] = metrics;
  root["wallclock"] = wallclock;
  const std::string text = root.dump();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), file) == text.size();
  std::fclose(file);
  return ok;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Technique parse_technique(const std::string& name) {
  if (name == "none") return Technique::kNone;
  if (name == "ir-eddi") return Technique::kIrEddi;
  if (name == "hybrid") return Technique::kHybrid;
  if (name == "ferrum") return Technique::kFerrum;
  std::fprintf(stderr, "unknown technique '%s'\n", name.c_str());
  std::exit(2);
}

/// `ferrumc serve`: the campaign daemon, in-process. Same loop as the
/// standalone ferrumd binary; flags override the FERRUM_SVC_* env knobs.
int serve_main(int argc, char** argv) {
  std::string socket_path = env_svc_socket();
  service::ServiceOptions options;
  options.cache_dir = env_svc_cache_dir();
  options.workers = env_svc_workers();
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
      if (socket_path.empty()) {
        std::fprintf(stderr, "bad --socket value (empty path)\n");
        return 2;
      }
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      options.cache_dir = arg.substr(12);
    } else if (arg.rfind("--workers=", 0) == 0) {
      if (!parse_int(arg.c_str() + 10, options.workers) ||
          options.workers < 1) {
        std::fprintf(stderr, "bad --workers value '%s'\n", arg.c_str() + 10);
        return 2;
      }
    } else {
      return usage(argv[0]);
    }
  }
  std::string error;
  Listener listener = Listener::bind_unix(socket_path, &error);
  if (!listener.valid()) {
    std::fprintf(stderr, "cannot listen on %s: %s\n", socket_path.c_str(),
                 error.c_str());
    return 1;
  }
  std::fprintf(stderr, "serving on %s (workers=%d, cache=%s)\n",
               socket_path.c_str(), options.workers,
               options.cache_dir.empty() ? "<memory>"
                                         : options.cache_dir.c_str());
  service::Daemon daemon(std::move(options));
  daemon.serve(listener);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  if (command == "serve") return serve_main(argc, argv);
  if (argc < 3) return usage(argv[0]);
  const std::string path = argv[2];
  // `plan` analyses the unprotected program (what the protect pass would
  // see), so its default stays kNone.
  Technique technique =
      command == "audit" || command == "lint" || command == "sites"
          ? Technique::kFerrum
          : Technique::kNone;
  int trials = env_trials();
  int jobs = env_jobs();
  int ckpt_stride = env_ckpt_stride();
  int batch = env_batch();
  double max_half_width = env_ci_target();
  vm::DispatchMode dispatch = vm::DispatchMode::kAuto;
  std::string dispatch_name = "auto";
  bool timing = false;
  bool lint = command == "lint";
  bool lint_json = false;
  bool lint_summary = false;
  double budget = 1.0;
  pipeline::SelectiveOptions::Strategy strategy =
      pipeline::SelectiveOptions::Strategy::kAnalysis;
  bool prune = false;
  bool compose = false;
  bool incremental = false;
  std::string cache_dir = env_svc_cache_dir();
  std::string stats_path;
  // submit-only knobs; -1 means "leave the cell's documented default".
  std::string socket_path = env_svc_socket();
  int seed = -1;
  int burst = -1;
  bool store_data = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--tech=", 0) == 0) {
      technique = parse_technique(arg.substr(7));
    } else if (arg == "--lint") {
      lint = true;
    } else if (arg == "--lint=json") {
      lint = true;
      lint_json = true;
    } else if (arg == "--summary") {
      lint = true;
      lint_summary = true;
    } else if (arg.rfind("--budget=", 0) == 0) {
      if (!parse_double(arg.c_str() + 9, budget) || budget < 0.0 ||
          budget > 1.0) {
        std::fprintf(stderr, "bad --budget value '%s' (range [0, 1])\n",
                     arg.c_str() + 9);
        return 2;
      }
    } else if (arg == "--strategy=analysis") {
      strategy = pipeline::SelectiveOptions::Strategy::kAnalysis;
    } else if (arg == "--strategy=random") {
      strategy = pipeline::SelectiveOptions::Strategy::kRandom;
    } else if (arg.rfind("--strategy=", 0) == 0) {
      std::fprintf(stderr, "bad --strategy value '%s'\n", arg.c_str() + 11);
      return 2;
    } else if (arg.rfind("--stats=", 0) == 0) {
      stats_path = arg.substr(8);
      if (stats_path.empty()) {
        std::fprintf(stderr, "bad --stats value (empty path)\n");
        return 2;
      }
    } else if (arg.rfind("--trials=", 0) == 0) {
      if (!parse_int(arg.c_str() + 9, trials) || trials < 1) {
        std::fprintf(stderr, "bad --trials value '%s'\n", arg.c_str() + 9);
        return 2;
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!parse_int(arg.c_str() + 7, jobs) || jobs < 1) {
        std::fprintf(stderr, "bad --jobs value '%s'\n", arg.c_str() + 7);
        return 2;
      }
    } else if (arg.rfind("--ckpt-stride=", 0) == 0) {
      if (!parse_int(arg.c_str() + 14, ckpt_stride) || ckpt_stride < 0) {
        std::fprintf(stderr, "bad --ckpt-stride value '%s'\n",
                     arg.c_str() + 14);
        return 2;
      }
    } else if (arg.rfind("--batch=", 0) == 0) {
      if (!parse_int(arg.c_str() + 8, batch) || batch < 1) {
        std::fprintf(stderr, "bad --batch value '%s'\n", arg.c_str() + 8);
        return 2;
      }
    } else if (arg.rfind("--max-half-width=", 0) == 0) {
      if (!parse_double(arg.c_str() + 17, max_half_width) ||
          max_half_width < 0.0 || max_half_width >= 0.5) {
        std::fprintf(stderr,
                     "bad --max-half-width value '%s' (range [0, 0.5))\n",
                     arg.c_str() + 17);
        return 2;
      }
    } else if (arg == "--dispatch=switch") {
      dispatch = vm::DispatchMode::kSwitch;
      dispatch_name = "switch";
    } else if (arg == "--dispatch=threaded") {
      if (!vm::threaded_dispatch_available()) {
        std::fprintf(stderr,
                     "this build has no threaded dispatch "
                     "(FERRUM_DISPATCH=switch at configure time)\n");
        return 2;
      }
      dispatch = vm::DispatchMode::kThreaded;
      dispatch_name = "threaded";
    } else if (arg.rfind("--dispatch=", 0) == 0) {
      std::fprintf(stderr, "bad --dispatch value '%s'\n", arg.c_str() + 11);
      return 2;
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--prune") {
      prune = true;
    } else if (arg == "--compose") {
      compose = true;
    } else if (arg == "--incremental") {
      compose = true;
      incremental = true;
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      cache_dir = arg.substr(12);
    } else if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
      if (socket_path.empty()) {
        std::fprintf(stderr, "bad --socket value (empty path)\n");
        return 2;
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!parse_int(arg.c_str() + 7, seed) || seed < 0) {
        std::fprintf(stderr, "bad --seed value '%s'\n", arg.c_str() + 7);
        return 2;
      }
    } else if (arg.rfind("--burst=", 0) == 0) {
      if (!parse_int(arg.c_str() + 8, burst) || burst < 1) {
        std::fprintf(stderr, "bad --burst value '%s'\n", arg.c_str() + 8);
        return 2;
      }
    } else if (arg == "--store-data") {
      store_data = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (command == "submit") {
    std::string error;
    if (path == "--shutdown") {
      service::Client client = service::Client::connect(socket_path, error);
      if (!client.valid() || !client.shutdown_server(error)) {
        std::fprintf(stderr, "cannot shut down daemon at %s: %s\n",
                     socket_path.c_str(), error.c_str());
        return 1;
      }
      return 0;
    }
    fault::CampaignCell cell;
    // A `.c` path is compiled daemon-side from its source text; anything
    // else names a built-in Table II workload.
    if (path.size() > 2 && path.compare(path.size() - 2, 2, ".c") == 0) {
      cell.program = read_file(path);
    } else {
      cell.workload = path;
    }
    cell.technique = pipeline::technique_name(technique);
    cell.trials = trials;
    if (seed >= 0) cell.seed = static_cast<std::uint32_t>(seed);
    if (burst >= 1) cell.burst = burst;
    cell.store_data = store_data;
    cell.prune = prune;
    cell.max_half_width = max_half_width;
    // Engine knobs ride along but are excluded from the cache key — the
    // daemon returns the same stored bytes for every value of these.
    cell.jobs = jobs;
    cell.ckpt_stride = ckpt_stride;
    cell.batch = batch;
    cell.dispatch = dispatch_name;
    service::Client client = service::Client::connect(socket_path, error);
    if (!client.valid()) {
      std::fprintf(stderr, "cannot reach daemon at %s: %s\n",
                   socket_path.c_str(), error.c_str());
      return 1;
    }
    const std::optional<std::uint64_t> job = client.submit({cell}, error);
    if (!job.has_value()) {
      std::fprintf(stderr, "submit rejected: %s\n", error.c_str());
      return 1;
    }
    // Live progress: watch the status stream on a second connection and
    // print the running outcome-interval half-widths while the cell
    // executes. Wall-clock-quarantined by construction — stderr only,
    // and only what the scheduler happened to have finished when each
    // snapshot was taken; the result bytes printed below are the
    // deterministic ones. A cache hit completes before the first poll,
    // so warm submissions print nothing here.
    std::thread watcher([&socket_path, job] {
      std::string watch_error;
      service::Client watch =
          service::Client::connect(socket_path, watch_error);
      while (watch.valid()) {
        const std::optional<telemetry::Json> snap =
            watch.status(*job, watch_error);
        if (!snap.has_value()) break;
        const telemetry::Json* done = snap->find("done");
        if (done == nullptr || done->as_bool()) break;
        if (const telemetry::Json* widths = snap->find("half_widths")) {
          const auto width = [&](const char* name) {
            const telemetry::Json* value = widths->find(name);
            return value != nullptr ? value->as_double() : 0.5;
          };
          std::fprintf(stderr,
                       "[live] half-widths: benign=%.4f sdc=%.4f "
                       "detected=%.4f crash=%.4f\n",
                       width("benign"), width("sdc"), width("detected"),
                       width("crash"));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      }
    });
    int exit_code = 1;
    const bool streamed = client.results(
        *job,
        [&](const service::CellResult& result) {
          if (!result.error.empty()) {
            std::fprintf(stderr, "cell failed: %s\n", result.error.c_str());
            return;
          }
          const telemetry::Json* outcomes = result.result.find("outcomes");
          const telemetry::Json* trials_json = result.result.find("trials");
          const telemetry::Json* sdc_rate = result.result.find("sdc_rate");
          if (outcomes != nullptr && trials_json != nullptr &&
              sdc_rate != nullptr) {
            auto count = [&](const char* name) -> long long {
              const telemetry::Json* value = outcomes->find(name);
              return value != nullptr
                         ? static_cast<long long>(value->as_int())
                         : 0;
            };
            std::printf("trials=%lld benign=%lld sdc=%lld detected=%lld "
                        "crash=%lld sdc_rate=%.4f\n",
                        static_cast<long long>(trials_json->as_int()),
                        count("benign"), count("sdc"), count("detected"),
                        count("crash"), sdc_rate->as_double());
          }
          if (const telemetry::Json* adaptive =
                  result.result.find("adaptive")) {
            const auto field = [&](const char* name) -> long long {
              const telemetry::Json* value = adaptive->find(name);
              return value != nullptr
                         ? static_cast<long long>(value->as_int())
                         : 0;
            };
            const telemetry::Json* reduction = adaptive->find("reduction");
            std::printf("adaptive: executed=%lld/%lld reduction=%.1fx\n",
                        field("executed_trials"), field("planned_trials"),
                        reduction != nullptr ? reduction->as_double() : 0.0);
          }
          std::printf("cache=%s key=%s\n", result.cached ? "hit" : "miss",
                      result.key.c_str());
          if (!stats_path.empty()) {
            telemetry::Json metrics = telemetry::Json::object();
            metrics["command"] = "submit";
            metrics["technique"] = pipeline::technique_name(technique);
            metrics["key"] = result.key;
            metrics["campaign"] = result.result;
            telemetry::Json wallclock = telemetry::Json::object();
            // Whether the store answered is a property of daemon history,
            // not of the cell — wallclock data by the repo convention.
            wallclock["cached"] = result.cached;
            wallclock["campaign"] = result.wallclock;
            if (!write_stats(stats_path, metrics, wallclock)) return;
          }
          exit_code = 0;
        },
        error);
    watcher.join();
    if (!streamed) {
      std::fprintf(stderr, "result stream failed: %s\n", error.c_str());
      return 1;
    }
    return exit_code;
  }

  const std::string source = read_file(path);
  const bool asm_input =
      path.size() > 2 && path.compare(path.size() - 2, 2, ".s") == 0;
  if (asm_input && !lint) {
    std::fprintf(stderr, "a .s input is only supported by lint\n");
    return 2;
  }
  pipeline::Build build;
  if (asm_input) {
    DiagEngine diags;
    build.program = masm::parse_program(source, diags);
    if (diags.has_errors()) {
      std::fprintf(stderr, "%s", diags.render().c_str());
      return 1;
    }
    for (const std::string& problem :
         masm::verify_program(build.program, /*require_main=*/false)) {
      std::fprintf(stderr, "asm-verify: %s\n", problem.c_str());
    }
  } else {
    try {
      build = pipeline::build(source, technique);
    } catch (const std::exception& error) {
      // For a protected build this includes protect-check violations —
      // the pipeline refuses to hand over a program that fails its own
      // static lint, so the non-zero exit covers --lint as well.
      std::fprintf(stderr, "%s\n", error.what());
      return 1;
    }
  }

  if (lint) {
    check::CheckOptions check_options;
    const check::CheckReport report =
        check::check_program(build.program, check_options);
    for (const check::Violation& violation : report.violations) {
      std::fprintf(stderr, "%s\n", check::to_string(violation).c_str());
    }
    if (lint_json) {
      // The JSON view carries the prune analysis next to the check
      // report, so one artifact holds the full static fault-site table:
      // protection status (check) + dead-bit mask and equivalence class
      // (prune) per site.
      telemetry::Json out = check::to_json(report);
      out["prune"] = check::prune::to_json(
          check::prune::prune_program(build.program), build.program);
      // The section decomposition rides along: every static fault site
      // is tagged with its section id, and each section carries its
      // dataflow interface (live-in/live-out, sync boundary kind).
      out["sections"] =
          check::sections::to_json(check::sections::build_sections(
                                       build.program),
                                   build.program);
      // ... and the flow predictions: per site the reachable-sink mask
      // and the predicted dynamic outcome (masked/detected/crash-prone/
      // sdc-vulnerable), plus the profile counters.
      out["flow"] = check::flow::to_json(
          check::flow::flow_program(build.program), build.program);
      std::fputs(out.dump().c_str(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::printf("violations=%zu protected=%llu benign=%llu "
                  "unprotected=%llu\n",
                  report.violations.size(),
                  static_cast<unsigned long long>(report.protected_sites),
                  static_cast<unsigned long long>(report.benign_sites),
                  static_cast<unsigned long long>(report.unprotected_sites));
    }
    if (lint_summary) {
      // Per-function class counts. Sites arrive in program order, so one
      // function's records are contiguous and a new name opens a row.
      std::vector<std::pair<std::string, std::array<std::uint64_t, 3>>> rows;
      for (const check::SiteRecord& site : report.sites) {
        if (rows.empty() || rows.back().first != site.function) {
          rows.push_back({site.function, {0, 0, 0}});
        }
        switch (site.status) {
          case check::SiteStatus::kProtected: ++rows.back().second[0]; break;
          case check::SiteStatus::kBenign: ++rows.back().second[1]; break;
          case check::SiteStatus::kUnprotected:
            ++rows.back().second[2];
            break;
        }
      }
      std::printf("%-24s %10s %10s %12s\n", "function", "protected",
                  "benign", "unprotected");
      for (const auto& [function, counts] : rows) {
        std::printf("%-24s %10llu %10llu %12llu\n", function.c_str(),
                    static_cast<unsigned long long>(counts[0]),
                    static_cast<unsigned long long>(counts[1]),
                    static_cast<unsigned long long>(counts[2]));
      }
    }
    if (!stats_path.empty()) {
      telemetry::Json metrics = telemetry::Json::object();
      metrics["command"] = "lint";
      metrics["technique"] =
          asm_input ? "asm-input" : pipeline::technique_name(technique);
      metrics["lint"] = check::to_json(report);
      telemetry::Json lint_pass_seconds = telemetry::Json::array();
      for (const auto& [pass, seconds] : build.pass_seconds) {
        telemetry::Json entry = telemetry::Json::object();
        entry[pass] = seconds;
        lint_pass_seconds.push_back(entry);
      }
      telemetry::Json wallclock = telemetry::Json::object();
      wallclock["pass_seconds"] = lint_pass_seconds;
      if (!write_stats(stats_path, metrics, wallclock)) return 1;
    }
    return report.clean() ? 0 : 1;
  }

  if (command == "ir") {
    std::fputs(ir::print(*build.module).c_str(), stdout);
    return 0;
  }
  if (command == "asm") {
    std::fputs(masm::print(build.program).c_str(), stdout);
    return 0;
  }
  // Pipeline pass timing is wall-clock, hence wallclock-section data.
  telemetry::Json pass_seconds = telemetry::Json::array();
  for (const auto& [pass, seconds] : build.pass_seconds) {
    telemetry::Json entry = telemetry::Json::object();
    entry[pass] = seconds;
    pass_seconds.push_back(entry);
  }

  if (command == "sites") {
    const check::prune::PruneReport report =
        check::prune::prune_program(build.program);
    telemetry::Json out = check::prune::to_json(report, build.program);
    // Section decomposition next to the liveness/equivalence table: per
    // static site the owning section id, per section its interface
    // (live-in/live-out sets, sync boundary kind, memory footprint).
    out["sections"] = check::sections::to_json(
        check::sections::build_sections(build.program), build.program);
    // Flow predictions next to both: the per-site reachable-sink mask
    // and predicted dynamic outcome.
    out["flow"] = check::flow::to_json(
        check::flow::flow_program(build.program), build.program);
    std::fputs(out.dump().c_str(), stdout);
    std::fputc('\n', stdout);
    if (!stats_path.empty()) {
      telemetry::Json metrics = telemetry::Json::object();
      metrics["command"] = "sites";
      metrics["technique"] = pipeline::technique_name(technique);
      metrics["prune"] = out;
      telemetry::Json wallclock = telemetry::Json::object();
      wallclock["pass_seconds"] = pass_seconds;
      if (!write_stats(stats_path, metrics, wallclock)) return 1;
    }
    return 0;
  }
  if (command == "plan") {
    pipeline::SelectiveOptions selective;
    selective.strategy = strategy;
    selective.budget = budget;
    if (seed >= 0) selective.seed = static_cast<std::uint64_t>(seed);
    eddi::AsmProtectOptions protect_options;
    protect_options.protect_store_data = store_data;
    const pipeline::SelectivePlan plan =
        pipeline::plan_selective(build.program, selective, protect_options);
    const check::flow::FlowProfile& profile = plan.flow.profile;
    std::printf("sites=%llu masked=%llu detected=%llu crash_prone=%llu "
                "sdc_vulnerable=%llu\n",
                static_cast<unsigned long long>(profile.total()),
                static_cast<unsigned long long>(
                    profile.of(check::flow::Prediction::kMasked)),
                static_cast<unsigned long long>(
                    profile.of(check::flow::Prediction::kDetected)),
                static_cast<unsigned long long>(
                    profile.of(check::flow::Prediction::kCrashProne)),
                static_cast<unsigned long long>(
                    profile.of(check::flow::Prediction::kSdcVulnerable)));
    std::printf("plan: strategy=%s budget=%.2f universe=%zu selected=%zu\n",
                pipeline::selective_strategy_name(selective.strategy),
                selective.budget, plan.universe.size(),
                plan.selected.size());
    if (!stats_path.empty()) {
      telemetry::Json metrics = telemetry::Json::object();
      metrics["command"] = "plan";
      metrics["strategy"] =
          pipeline::selective_strategy_name(selective.strategy);
      metrics["budget"] = selective.budget;
      metrics["universe"] = static_cast<std::uint64_t>(plan.universe.size());
      telemetry::Json selected = telemetry::Json::array();
      for (const int ordinal : plan.selected) {
        selected.push_back(static_cast<std::int64_t>(ordinal));
      }
      metrics["selected"] = std::move(selected);
      metrics["flow"] = check::flow::to_json(plan.flow, build.program);
      telemetry::Json wallclock = telemetry::Json::object();
      wallclock["pass_seconds"] = pass_seconds;
      if (!write_stats(stats_path, metrics, wallclock)) return 1;
    }
    return 0;
  }
  if (command == "run") {
    vm::VmOptions options;
    options.timing = timing;
    options.profile = !stats_path.empty();
    options.dispatch = dispatch;
    const vm::VmResult result = vm::run(build.program, options);
    for (std::uint64_t value : result.output) {
      std::printf("%lld\n", static_cast<long long>(value));
    }
    std::fprintf(stderr, "[%s: %llu insts%s%s]\n",
                 vm::exit_status_name(result.status),
                 static_cast<unsigned long long>(result.steps),
                 timing ? ", cycles=" : "",
                 timing ? std::to_string(result.cycles).c_str() : "");
    if (!stats_path.empty()) {
      telemetry::Json metrics = telemetry::Json::object();
      metrics["command"] = "run";
      metrics["technique"] = pipeline::technique_name(technique);
      metrics["status"] = vm::exit_status_name(result.status);
      metrics["steps"] = result.steps;
      metrics["fi_sites"] = result.fi_sites;
      metrics["profile"] = telemetry::to_json(*result.profile);
      if (result.timing_stats.has_value()) {
        metrics["cycles"] = result.cycles;
        metrics["timing"] = telemetry::to_json(*result.timing_stats);
      }
      telemetry::Json wallclock = telemetry::Json::object();
      wallclock["pass_seconds"] = pass_seconds;
      if (!write_stats(stats_path, metrics, wallclock)) return 1;
    }
    return result.ok() ? static_cast<int>(result.return_value & 0xff) : 1;
  }
  if (command == "audit") {
    fault::AuditOptions audit_options;
    audit_options.jobs = jobs;
    audit_options.ckpt_stride = ckpt_stride;
    audit_options.batch = batch;
    audit_options.vm.dispatch = dispatch;
    check::prune::PruneReport prune_report;
    if (prune) {
      check::prune::PruneOptions prune_options;
      prune_options.store_data_sites = audit_options.vm.fault_store_data;
      prune_report = check::prune::prune_program(build.program, prune_options);
      audit_options.prune = &prune_report;
    }
    const fault::AuditReport report =
        fault::audit_program(build.program, audit_options);
    std::printf("sites=%llu injections=%llu detected=%llu benign=%llu "
                "crashed=%llu escapes=%zu\n",
                static_cast<unsigned long long>(report.sites),
                static_cast<unsigned long long>(report.injections),
                static_cast<unsigned long long>(report.detected),
                static_cast<unsigned long long>(report.benign),
                static_cast<unsigned long long>(report.crashed),
                report.escapes.size());
    if (report.prune.enabled) {
      std::printf("prune: classes=%llu pilots=%llu dead=%llu "
                  "extrapolated=%llu reduction=%.1fx\n",
                  static_cast<unsigned long long>(report.prune.classes),
                  static_cast<unsigned long long>(
                      report.prune.pilot_injections),
                  static_cast<unsigned long long>(report.prune.dead_probes),
                  static_cast<unsigned long long>(
                      report.prune.extrapolated_probes),
                  report.prune.reduction);
    }
    for (const auto& escape : report.escapes) {
      std::printf("ESCAPE site=%llu bit=%d kind=%s op=%s fn=%s b%d#%d\n",
                  static_cast<unsigned long long>(escape.site), escape.bit,
                  vm::fault_kind_name(escape.kind),
                  masm::op_mnemonic(escape.op), escape.function.c_str(),
                  escape.block, escape.inst);
    }
    if (!stats_path.empty()) {
      telemetry::Json metrics = telemetry::Json::object();
      metrics["command"] = "audit";
      metrics["technique"] = pipeline::technique_name(technique);
      metrics["audit"] = telemetry::to_json(report);
      telemetry::Json wallclock = telemetry::Json::object();
      wallclock["pass_seconds"] = pass_seconds;
      wallclock["audit"] = telemetry::wallclock_json(report);
      if (!write_stats(stats_path, metrics, wallclock)) return 1;
    }
    return report.fully_covered() ? 0 : 1;
  }
  if (command == "campaign" && compose) {
    // Sectioned campaign: decompose, campaign each section from its
    // checkpointed entry state, compose the summaries. --incremental
    // routes per-section summaries through the content-addressed store,
    // so only sections whose code or entry states changed re-inject.
    check::sections::SectionOptions section_options;
    fault::ComposeOptions options;
    options.trials = static_cast<std::uint64_t>(trials);
    options.jobs = jobs;
    options.ckpt_stride = ckpt_stride;
    options.batch = batch;
    options.vm.dispatch = dispatch;
    options.vm.fault_store_data = store_data;
    options.max_half_width = max_half_width;
    section_options.store_data_sites = store_data;
    if (seed >= 0) options.seed = static_cast<std::uint64_t>(seed);
    if (burst >= 1) options.burst = burst;
    std::unique_ptr<service::ResultCache> cache;
    if (incremental) {
      if (cache_dir.empty()) {
        std::fprintf(stderr,
                     "--incremental needs a summary cache: pass "
                     "--cache-dir=DIR or set FERRUM_SVC_CACHE\n");
        return 2;
      }
      cache = std::make_unique<service::ResultCache>(cache_dir);
      options.lookup = [&cache](const std::string& key) {
        return cache->lookup(key);
      };
      options.store = [&cache](const std::string& key,
                               const std::string& bytes) {
        // Replace mode: a summary whose validation certificate went
        // stale (edited program, same section key) must be superseded
        // by the freshly re-campaigned one.
        cache->store(key, bytes, /*replace=*/true);
      };
    }
    const check::sections::SectionMap map =
        check::sections::build_sections(build.program, section_options);
    fault::ComposeReport report;
    try {
      report = fault::compose_campaign(build.program, map, options);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s\n", error.what());
      return 1;
    }
    std::printf("sections=%zu sites=%llu trials=%llu benign=%llu sdc=%llu "
                "detected=%llu crash=%llu sdc_rate=%.4f\n",
                report.sections.size(),
                static_cast<unsigned long long>(report.sites),
                static_cast<unsigned long long>(report.injections),
                static_cast<unsigned long long>(report.benign),
                static_cast<unsigned long long>(report.sdc),
                static_cast<unsigned long long>(report.detected),
                static_cast<unsigned long long>(report.crashed),
                report.injections > 0
                    ? static_cast<double>(report.sdc) /
                          static_cast<double>(report.injections)
                    : 0.0);
    if (report.adaptive.enabled) {
      std::printf("adaptive: target=%.4f executed=%d/%d reduction=%.1fx\n",
                  report.adaptive.target_half_width,
                  report.adaptive.executed_trials,
                  report.adaptive.planned_trials,
                  report.adaptive.reduction());
    }
    if (incremental) {
      std::printf("incremental: warm=%llu cold=%llu trials_executed=%llu\n",
                  static_cast<unsigned long long>(report.warm_sections),
                  static_cast<unsigned long long>(report.cold_sections),
                  static_cast<unsigned long long>(report.trials_executed));
    }
    if (!stats_path.empty()) {
      telemetry::Json metrics = telemetry::Json::object();
      metrics["command"] = "campaign";
      metrics["technique"] = pipeline::technique_name(technique);
      metrics["compose"] = telemetry::to_json(report);
      telemetry::Json wallclock = telemetry::Json::object();
      wallclock["pass_seconds"] = pass_seconds;
      wallclock["compose"] = telemetry::wallclock_json(report);
      if (!write_stats(stats_path, metrics, wallclock)) return 1;
    }
    return 0;
  }
  if (command == "campaign") {
    fault::CampaignOptions options;
    options.trials = trials;
    options.jobs = jobs;
    options.ckpt_stride = ckpt_stride;
    options.batch = batch;
    options.vm.dispatch = dispatch;
    options.max_half_width = max_half_width;
    if (prune && max_half_width > 0.0) {
      std::fprintf(stderr,
                   "--max-half-width cannot be combined with --prune "
                   "(the pilot plan answers trials out of canonical "
                   "order)\n");
      return 2;
    }
    check::prune::PruneReport prune_report;
    if (prune) {
      check::prune::PruneOptions prune_options;
      prune_options.store_data_sites = options.vm.fault_store_data;
      prune_report = check::prune::prune_program(build.program, prune_options);
      options.prune = &prune_report;
    }
    const auto result = fault::run_campaign(build.program, options);
    std::printf("trials=%d benign=%d sdc=%d detected=%d crash=%d "
                "sdc_rate=%.4f\n",
                result.trials(), result.count(fault::Outcome::kBenign),
                result.count(fault::Outcome::kSdc),
                result.count(fault::Outcome::kDetected),
                result.count(fault::Outcome::kCrash), result.sdc_rate());
    if (result.adaptive.enabled) {
      std::printf("adaptive: target=%.4f executed=%d/%d reduction=%.1fx\n",
                  result.adaptive.target_half_width,
                  result.adaptive.executed_trials,
                  result.adaptive.planned_trials,
                  result.adaptive.reduction());
    }
    if (result.prune.enabled) {
      std::printf("prune: pilots=%llu dead=%llu replayed=%llu "
                  "reduction=%.1fx\n",
                  static_cast<unsigned long long>(result.prune.pilot_runs),
                  static_cast<unsigned long long>(result.prune.dead_trials),
                  static_cast<unsigned long long>(
                      result.prune.replayed_trials),
                  result.prune.reduction);
    }
    if (!stats_path.empty()) {
      telemetry::Json metrics = telemetry::Json::object();
      metrics["command"] = "campaign";
      metrics["technique"] = pipeline::technique_name(technique);
      metrics["campaign"] = telemetry::to_json(result);
      telemetry::Json wallclock = telemetry::Json::object();
      wallclock["pass_seconds"] = pass_seconds;
      wallclock["campaign"] = telemetry::wallclock_json(result);
      if (!write_stats(stats_path, metrics, wallclock)) return 1;
    }
    return 0;
  }
  return usage(argv[0]);
}
