// One-stop resilience report for a single workload: coverage + overhead
// for all three protection techniques (a per-benchmark slice of the
// paper's Figs 10 and 11).
//
//   $ ./resilience_report needle 500
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fault/campaign.h"
#include "pipeline/pipeline.h"
#include "support/env.h"
#include "support/parallel.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "needle";
  const int trials = argc > 2 ? std::atoi(argv[2]) : 500;
  const auto& workload = workloads::by_name(name);

  std::printf("Resilience report — %s (%s), %d faults per campaign\n\n",
              workload.name.c_str(), workload.domain.c_str(), trials);

  fault::CampaignOptions campaign;
  campaign.trials = trials;
  campaign.jobs = env_int("FERRUM_JOBS", ThreadPool::hardware_workers());
  vm::VmOptions timed;
  timed.timing = true;

  auto raw_build = pipeline::build(workload.source, Technique::kNone);
  const auto raw_campaign = fault::run_campaign(raw_build.program, campaign);
  const auto raw_timed = vm::run(raw_build.program, timed);
  std::printf("%-12s %10s %10s %10s %10s %10s\n", "technique", "SDC rate",
              "coverage", "cycles", "overhead", "insts");
  std::printf("%-12s %9.1f%% %10s %10llu %10s %10zu\n", "raw",
              raw_campaign.sdc_rate() * 100.0, "-",
              static_cast<unsigned long long>(raw_timed.cycles), "-",
              raw_build.program.inst_count());

  const Technique techniques[] = {Technique::kIrEddi, Technique::kHybrid,
                                  Technique::kFerrum};
  const char* labels[] = {"ir-eddi", "hybrid", "ferrum"};
  for (int t = 0; t < 3; ++t) {
    auto build = pipeline::build(workload.source, techniques[t]);
    const auto result = fault::run_campaign(build.program, campaign);
    const auto timed_run = vm::run(build.program, timed);
    const double coverage =
        fault::sdc_coverage(raw_campaign.sdc_rate(), result.sdc_rate());
    const double overhead =
        100.0 * (static_cast<double>(timed_run.cycles) - raw_timed.cycles) /
        static_cast<double>(raw_timed.cycles);
    std::printf("%-12s %9.1f%% %9.1f%% %10llu %9.1f%% %10zu\n", labels[t],
                result.sdc_rate() * 100.0, coverage * 100.0,
                static_cast<unsigned long long>(timed_run.cycles), overhead,
                build.program.inst_count());
  }
  return 0;
}
