// CLI driver: pick a workload and a technique, run a fault-injection
// campaign, print the outcome distribution.
//
//   $ ./protect_and_inject bfs ferrum 500
//   $ ./protect_and_inject kmeans ir-eddi
//   $ ./protect_and_inject list
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fault/campaign.h"
#include "pipeline/pipeline.h"
#include "support/env.h"
#include "support/parallel.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

namespace {

Technique technique_from(const std::string& name) {
  if (name == "none" || name == "raw") return Technique::kNone;
  if (name == "ir-eddi" || name == "ir") return Technique::kIrEddi;
  if (name == "hybrid") return Technique::kHybrid;
  if (name == "ferrum") return Technique::kFerrum;
  std::fprintf(stderr, "unknown technique '%s' "
               "(use none | ir-eddi | hybrid | ferrum)\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "list") {
    for (const auto& w : workloads::all()) {
      std::printf("%-15s %s\n", w.name.c_str(), w.domain.c_str());
    }
    return 0;
  }
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <workload|list> <technique> [trials]\n",
                 argv[0]);
    return 2;
  }
  const std::string workload_name = argv[1];
  const Technique technique = technique_from(argv[2]);
  const int trials = argc > 3 ? std::atoi(argv[3]) : 1000;

  const auto& workload = workloads::by_name(workload_name);
  std::printf("workload:  %s (%s)\n", workload.name.c_str(),
              workload.domain.c_str());
  std::printf("technique: %s\n", pipeline::technique_name(technique));

  auto build = pipeline::build(workload.source, technique);
  std::printf("program:   %zu static instructions\n",
              build.program.inst_count());

  fault::CampaignOptions options;
  options.trials = trials;
  options.jobs = env_int("FERRUM_JOBS", ThreadPool::hardware_workers());
  const auto result = fault::run_campaign(build.program, options);
  std::printf("dynamic:   %llu instructions, %llu fault sites\n",
              static_cast<unsigned long long>(result.golden_steps),
              static_cast<unsigned long long>(result.total_sites));
  std::printf("\n%d sampled single-bit faults:\n", result.trials());
  std::printf("  benign    %5d (%.1f%%)\n",
              result.count(fault::Outcome::kBenign),
              100.0 * result.count(fault::Outcome::kBenign) / trials);
  std::printf("  sdc       %5d (%.1f%%)\n",
              result.count(fault::Outcome::kSdc),
              100.0 * result.count(fault::Outcome::kSdc) / trials);
  std::printf("  detected  %5d (%.1f%%)\n",
              result.count(fault::Outcome::kDetected),
              100.0 * result.count(fault::Outcome::kDetected) / trials);
  std::printf("  crash     %5d (%.1f%%)\n",
              result.count(fault::Outcome::kCrash),
              100.0 * result.count(fault::Outcome::kCrash) / trials);
  if (!result.sdc_breakdown.empty()) {
    std::printf("\nSDC root causes (fault class / instruction origin):\n");
    for (const auto& [key, count] : result.sdc_breakdown) {
      std::printf("  %-32s %d\n", key.c_str(), count);
    }
  }
  return 0;
}
