// ferrumd — the campaign service daemon. Binds a unix-domain socket,
// executes submitted campaign cells on a work-stealing worker pool, and
// serves every repeated or overlapping cell from the content-addressed
// result store (see src/service and the DESIGN.md service section).
//
//   ferrumd                                  # FERRUM_SVC_* defaults
//   ferrumd --socket=ferrumd.sock --workers=4 --cache-dir=.ferrum-cache
//
// Knobs (flag > environment > default, all parsed strictly):
//   --socket=PATH     FERRUM_SVC_SOCKET   unix socket path (ferrumd.sock)
//   --cache-dir=DIR   FERRUM_SVC_CACHE    result store dir ("" = memory)
//   --workers=N       FERRUM_SVC_WORKERS  cells in flight (2)
//
// The daemon runs until a client sends the shutdown message
// (`ferrumc submit --shutdown` or service::Client::shutdown_server).
#include <cstdio>
#include <cstring>
#include <string>

#include "service/service.h"
#include "support/env.h"
#include "support/transport.h"

using namespace ferrum;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket=PATH] [--cache-dir=DIR] [--workers=N]\n"
               "(defaults come from FERRUM_SVC_SOCKET / FERRUM_SVC_CACHE / "
               "FERRUM_SVC_WORKERS)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = env_svc_socket();
  service::ServiceOptions options;
  options.cache_dir = env_svc_cache_dir();
  options.workers = env_svc_workers();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
      if (socket_path.empty()) {
        std::fprintf(stderr, "bad --socket value (empty path)\n");
        return 2;
      }
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      options.cache_dir = arg.substr(12);
    } else if (arg.rfind("--workers=", 0) == 0) {
      if (!parse_int(arg.c_str() + 10, options.workers) ||
          options.workers < 1) {
        std::fprintf(stderr, "bad --workers value '%s'\n", arg.c_str() + 10);
        return 2;
      }
    } else {
      return usage(argv[0]);
    }
  }

  std::string error;
  Listener listener = Listener::bind_unix(socket_path, &error);
  if (!listener.valid()) {
    std::fprintf(stderr, "ferrumd: cannot listen on %s: %s\n",
                 socket_path.c_str(), error.c_str());
    return 1;
  }
  std::fprintf(stderr, "ferrumd: listening on %s (workers=%d, cache=%s)\n",
               socket_path.c_str(), options.workers,
               options.cache_dir.empty() ? "<memory>"
                                         : options.cache_dir.c_str());
  service::Daemon daemon(std::move(options));
  daemon.serve(listener);
  std::fprintf(stderr, "ferrumd: shut down\n");
  return 0;
}
