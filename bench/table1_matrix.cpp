// Reproduces Table I: which assembly-level fault classes each technique
// protects. Instead of quoting design intent, this measures it: an
// extended-model fault-injection campaign (store-data sites included)
// buckets every sampled fault by the class it landed in and reports the
// SDCs that escaped per class. "covered" = no escapes observed.
//
// Class mapping to the paper's columns:
//   basic       gpr/xmm-write faults on instructions lowered from IR
//   mapping     gpr/xmm-write faults on backend-glue instructions
//               (spills, moves, setcc materialisation, addressing)
//   comparison  flags-write faults (cmp / test / ucomisd)
//   branch      branch-decision faults (jcc resolution)
//   store       store-data faults (extended model; the paper's register-
//               destination model has no such sites)
//   call        faults in the call's return-address store (crash-only by
//               construction in the VM, hence covered everywhere)
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "fault/campaign.h"
#include "masm/masm.h"
#include "pipeline/pipeline.h"
#include "support/rng.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

namespace {

struct ClassStats {
  int total = 0;
  int sdc = 0;
};

std::string classify(const vm::FaultLanding& landing) {
  switch (landing.kind) {
    case vm::FaultKind::kBranchDecision:
      return "branch";
    case vm::FaultKind::kFlagsWrite:
      return "comparison";
    case vm::FaultKind::kStoreData:
      return landing.op == masm::Op::kCall ? "call" : "store";
    case vm::FaultKind::kGprWrite:
    case vm::FaultKind::kXmmWrite:
      if (landing.origin == masm::InstOrigin::kBackendGlue) return "mapping";
      if (landing.origin == masm::InstOrigin::kProtection) return "(prot)";
      return "basic";
  }
  return "?";
}

}  // namespace

int main() {
  const int trials = benchutil::env_int("FERRUM_TRIALS", 600);
  std::printf("Table I — measured protection capability per fault class\n");
  std::printf("(extended fault model incl. store-data; %d samples per "
              "benchmark per technique)\n\n", trials);

  const Technique techniques[] = {Technique::kIrEddi, Technique::kHybrid,
                                  Technique::kFerrum};
  const char* names[] = {"IR-LEVEL-EDDI", "HYBRID-ASM-EDDI", "FERRUM"};
  const char* columns[] = {"basic",  "store", "branch",
                           "call",   "mapping", "comparison"};

  for (int t = 0; t < 3; ++t) {
    std::map<std::string, ClassStats> buckets;
    for (const auto& w : workloads::all()) {
      pipeline::BuildOptions build_options;
      // FERRUM/HYBRID verify stores under the extended model.
      build_options.ferrum.protect_store_data = true;
      auto build = pipeline::build(w.source, techniques[t], build_options);
      // Hybrid's assembly stage runs inside pipeline::build without store
      // checks; re-protect is not possible, so the store column for
      // HYBRID reflects its paper configuration (AS_1 without load-back).
      vm::VmOptions vm_options;
      vm_options.fault_store_data = true;
      const vm::VmResult golden = vm::run(build.program, vm_options);
      if (!golden.ok()) {
        std::printf("golden run failed for %s\n", w.name.c_str());
        return 1;
      }
      vm::VmOptions faulty = vm_options;
      faulty.max_steps = golden.steps * 16 + 100'000;
      Rng rng(0x7ab1e1 + t);
      for (int i = 0; i < trials; ++i) {
        vm::FaultSpec fault;
        fault.site = rng.next_below(golden.fi_sites);
        fault.bit = static_cast<int>(rng.next_below(64));
        const vm::VmResult run = vm::run(build.program, faulty, &fault);
        if (!run.fault_landing.has_value()) continue;
        ClassStats& stats = buckets[classify(*run.fault_landing)];
        ++stats.total;
        stats.sdc += run.ok() && run.output != golden.output;
      }
    }
    std::printf("%-16s", names[t]);
    for (const char* column : columns) {
      const ClassStats& stats = buckets[column];
      std::string cell;
      if (stats.total == 0) {
        cell = "n/a";
      } else if (stats.sdc == 0) {
        cell = "covered";
      } else {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%d/%d SDC", stats.sdc,
                      stats.total);
        cell = buffer;
      }
      std::printf(" %-12s", cell.c_str());
    }
    std::printf("\n");
  }
  std::printf("%-16s", "(columns)");
  for (const char* column : columns) std::printf(" %-12s", column);
  std::printf("\n\npaper Table I: IR-LEVEL-EDDI covers only 'basic' (at "
              "IR); HYBRID covers branch/comparison at IR and the rest at "
              "AS_1; FERRUM covers every class at AS_2.\n");
  return 0;
}
