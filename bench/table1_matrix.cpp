// Reproduces Table I: which assembly-level fault classes each technique
// protects. Instead of quoting design intent, this measures it: an
// extended-model fault-injection campaign (store-data sites included)
// buckets every sampled fault by the class it landed in and reports the
// SDCs that escaped per class. "covered" = no escapes observed.
//
// Class mapping to the paper's columns:
//   basic       gpr/xmm-write faults on instructions lowered from IR
//   mapping     gpr/xmm-write faults on backend-glue instructions
//               (spills, moves, setcc materialisation, addressing)
//   comparison  flags-write faults (cmp / test / ucomisd)
//   branch      branch-decision faults (jcc resolution)
//   store       store-data faults (extended model; the paper's register-
//               destination model has no such sites)
//   call        faults in the call's return-address store (crash-only by
//               construction in the VM, hence covered everywhere)
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "telemetry/json.h"
#include "fault/campaign.h"
#include "fault/step_budget.h"
#include "masm/masm.h"
#include "pipeline/pipeline.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "vm/engine.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

namespace {

struct ClassStats {
  int total = 0;
  int sdc = 0;
};

std::string classify(const vm::FaultLanding& landing) {
  switch (landing.kind) {
    case vm::FaultKind::kBranchDecision:
      return "branch";
    case vm::FaultKind::kFlagsWrite:
      return "comparison";
    case vm::FaultKind::kStoreData:
      return landing.op == masm::Op::kCall ? "call" : "store";
    case vm::FaultKind::kGprWrite:
    case vm::FaultKind::kXmmWrite:
      if (landing.origin == masm::InstOrigin::kBackendGlue) return "mapping";
      if (landing.origin == masm::InstOrigin::kProtection) return "(prot)";
      return "basic";
  }
  return "?";
}

}  // namespace

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  const int trials = benchutil::env_trials(600);
  const int jobs = benchutil::env_jobs();
  const int ckpt_stride = benchutil::env_ckpt_stride();
  benchutil::BenchReport report("table1_matrix");
  report.metrics()["trials"] = trials;
  std::printf("Table I — measured protection capability per fault class\n");
  std::printf("(extended fault model incl. store-data; %d samples per "
              "benchmark per technique, %d worker(s))\n\n", trials, jobs);
  ThreadPool pool(jobs);

  const Technique techniques[] = {Technique::kIrEddi, Technique::kHybrid,
                                  Technique::kFerrum};
  const char* names[] = {"IR-LEVEL-EDDI", "HYBRID-ASM-EDDI", "FERRUM"};
  const char* columns[] = {"basic",  "store", "branch",
                           "call",   "mapping", "comparison"};

  for (int t = 0; t < 3; ++t) {
    std::map<std::string, ClassStats> buckets;
    for (const auto& w : workloads::all()) {
      pipeline::BuildOptions build_options;
      // FERRUM/HYBRID verify stores under the extended model.
      build_options.ferrum.protect_store_data = true;
      auto build = pipeline::build(w.source, techniques[t], build_options);
      // Hybrid's assembly stage runs inside pipeline::build without store
      // checks; re-protect is not possible, so the store column for
      // HYBRID reflects its paper configuration (AS_1 without load-back).
      vm::VmOptions vm_options;
      vm_options.fault_store_data = true;
      // Decode once, checkpoint the golden run, and fast-forward every
      // trial — the same engine discipline as fault::run_campaign.
      const vm::PredecodedProgram decoded(build.program);
      vm::CheckpointSet ckpts;
      vm::Engine golden_engine(decoded, vm_options);
      const vm::VmResult golden =
          ckpt_stride > 0
              ? golden_engine.run_capturing(
                    vm_options, static_cast<std::uint64_t>(ckpt_stride),
                    ckpts)
              : golden_engine.run(vm_options, nullptr, 0);
      if (!golden.ok()) {
        std::printf("golden run failed for %s\n", w.name.c_str());
        return 1;
      }
      vm::VmOptions faulty = vm_options;
      faulty.max_steps = fault::faulty_step_budget(golden.steps);
      // Same discipline as fault::run_campaign: pre-draw the fault set
      // serially, fan the runs out, reduce the slots in trial order, so
      // the table is identical for every FERRUM_JOBS value.
      Rng rng(0x7ab1e1 + t);
      std::vector<vm::FaultSpec> specs(static_cast<std::size_t>(trials));
      for (vm::FaultSpec& fault : specs) {
        fault.site = rng.next_below(golden.fi_sites);
        fault.bit = static_cast<int>(rng.next_below(64));
      }
      struct TrialSlot {
        std::optional<vm::FaultLanding> landing;
        bool sdc = false;
      };
      std::vector<TrialSlot> slots(specs.size());
      std::vector<std::unique_ptr<vm::Engine>> engines(
          static_cast<std::size_t>(pool.workers()));
      pool.parallel_for_indexed(specs.size(), [&](int worker,
                                                  std::size_t begin,
                                                  std::size_t end) {
        auto& engine = engines[static_cast<std::size_t>(worker)];
        if (engine == nullptr) {
          engine = std::make_unique<vm::Engine>(decoded, faulty);
        }
        for (std::size_t i = begin; i < end; ++i) {
          const vm::VmResult run =
              ckpt_stride > 0 ? engine->run_from(ckpts, faulty, &specs[i], 1)
                              : engine->run(faulty, &specs[i], 1);
          slots[i].landing = run.fault_landing;
          slots[i].sdc = run.ok() && run.output != golden.output;
        }
      });
      for (const TrialSlot& slot : slots) {
        if (!slot.landing.has_value()) continue;
        ClassStats& stats = buckets[classify(*slot.landing)];
        ++stats.total;
        stats.sdc += slot.sdc;
      }
    }
    telemetry::Json row = telemetry::Json::object();
    for (const auto& [klass, stats] : buckets) {
      telemetry::Json cell = telemetry::Json::object();
      cell["total"] = stats.total;
      cell["sdc"] = stats.sdc;
      row[klass] = cell;
    }
    report.metrics()["techniques"]
        [pipeline::technique_name(techniques[t])] = row;

    std::printf("%-16s", names[t]);
    for (const char* column : columns) {
      const ClassStats& stats = buckets[column];
      std::string cell;
      if (stats.total == 0) {
        cell = "n/a";
      } else if (stats.sdc == 0) {
        cell = "covered";
      } else {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%d/%d SDC", stats.sdc,
                      stats.total);
        cell = buffer;
      }
      std::printf(" %-12s", cell.c_str());
    }
    std::printf("\n");
  }
  std::printf("%-16s", "(columns)");
  for (const char* column : columns) std::printf(" %-12s", column);
  std::printf("\n\npaper Table I: IR-LEVEL-EDDI covers only 'basic' (at "
              "IR); HYBRID covers branch/comparison at IR and the rest at "
              "AS_1; FERRUM covers every class at AS_2.\n");
  report.wallclock()["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.write();
  return 0;
}
