// prune_smoke — CI harness for the ferrum-prune injection-space pruning.
// Small enough for every ctest run (compact kernels, tiny campaigns), it
// checks the properties the big analysis_prune_accuracy bench measures at
// workload scale:
//
//   1. soundness  — every statically-dead (site, probe-bit) injection is
//      bit-identical to the golden run, and the pruned audit never
//      reports an escape the exhaustive audit does not;
//   2. determinism — pruned campaign and audit metrics are byte-identical
//      across FERRUM-style jobs values {1, 2, 8};
//   3. accounting — the pruned audit's exhaustive frame matches the
//      exhaustive audit (sites, injections), the prune counters add up,
//      and the reduction clears 3x on the unprotected kernel;
//   4. artifact   — BENCH_prune_smoke.json parses back with the required
//      schema keys and a prune section per cell.
//
// Registered as the `prune_smoke` ctest (also in the TSan preset suite).
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "check/prune.h"
#include "fault/audit.h"
#include "fault/campaign.h"
#include "fault/step_budget.h"
#include "pipeline/pipeline.h"
#include "support/parallel.h"
#include "telemetry/export.h"
#include "vm/engine.h"
#include "vm/vm.h"

using namespace ferrum;
using pipeline::Technique;

namespace {

int failures = 0;

void fail(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  ++failures;
}

const char* kKernels[][2] = {
    {"mixsum", R"MINIC(
      int seed = 7;
      int main() {
        int acc = 0;
        for (int r = 0; r < 2; r++) {
          for (int i = 0; i < 10; i++) {
            seed = (seed * 1103515245 + 12345) % 65536;
            if (seed < 0) seed = -seed;
            if (seed % 3 == 0) acc = acc + seed;
            else acc = acc - seed / 2;
          }
          print_int(acc);
        }
        return 0;
      })MINIC"},
    {"gcdchain", R"MINIC(
      int gcd(int a, int b) {
        while (b != 0) {
          int t = a % b;
          a = b;
          b = t;
        }
        return a;
      }
      int main() {
        int acc = 0;
        for (int r = 0; r < 2; r++) {
          for (int i = 1; i < 7; i++) {
            acc = acc + gcd(90 + i * 7, 36 + i);
          }
        }
        print_int(acc);
        return 0;
      })MINIC"},
    {"newton", R"MINIC(
      int main() {
        double x = 7.0;
        for (int r = 0; r < 2; r++) {
          double guess = x / 2.0;
          for (int i = 0; i < 4; i++) {
            guess = (guess + x / guess) / 2.0;
          }
          print_f64(guess);
          x = x + 3.0;
        }
        return 0;
      })MINIC"},
};

/// Statically-dead probes must leave the run bit-identical to golden.
void check_dead_soundness(const std::string& name,
                          const masm::AsmProgram& program,
                          const check::prune::PruneReport& prune) {
  const vm::PredecodedProgram decoded(program);
  vm::VmOptions vm_options;
  vm::CheckpointSet ckpts;
  vm::Engine engine(decoded, vm_options);
  std::vector<std::int32_t> site_pcs;
  engine.set_site_pc_sink(&site_pcs);
  const vm::VmResult golden = engine.run_capturing(vm_options, 64, ckpts);
  engine.set_site_pc_sink(nullptr);
  if (!golden.ok()) {
    fail(name + ": golden run failed");
    return;
  }
  const auto& code = decoded.code();
  vm::VmOptions faulty = vm_options;
  faulty.max_steps = fault::faulty_step_budget(golden.steps);
  std::uint64_t checked = 0;
  for (std::uint64_t id = 0; id < golden.fi_sites; ++id) {
    const vm::DecodedInst& d =
        code[static_cast<std::size_t>(site_pcs[static_cast<std::size_t>(id)])];
    const int s = prune.site_index(d.fidx, d.bidx, d.iidx);
    if (s < 0) continue;
    const check::prune::PruneSite& site =
        prune.sites[static_cast<std::size_t>(s)];
    // Every dead bit of the site's bit space, not just the audit's probe
    // spread — this is the full dynamic liveness cross-check in miniature.
    for (int bit = 0; bit < site.bit_space; ++bit) {
      if (!site.bit_dead(bit)) continue;
      vm::FaultSpec spec;
      spec.site = id;
      spec.bit = bit;
      const vm::VmResult run = engine.run_from(ckpts, faulty, &spec, 1);
      ++checked;
      if (run.status != golden.status || run.output != golden.output ||
          run.return_value != golden.return_value ||
          run.steps != golden.steps || run.fi_sites != golden.fi_sites) {
        fail(name + ": dead bit diverged (site=" + std::to_string(id) +
             " bit=" + std::to_string(bit) + ")");
        return;
      }
    }
  }
  if (checked == 0) {
    fail(name + ": no statically-dead bits found — soundness check vacuous");
  }
}

std::string metrics_fingerprint(const telemetry::Json& audit_json,
                                const telemetry::Json& campaign_json) {
  return audit_json.dump() + "\n" + campaign_json.dump();
}

}  // namespace

int main() {
  benchutil::BenchReport report("prune_smoke");
  const Technique techniques[] = {Technique::kNone, Technique::kFerrum};
  double none_reduction = 0.0;

  for (const auto& kernel : kKernels) {
    const std::string name = kernel[0];
    for (Technique technique : techniques) {
      const std::string cell_name =
          name + "/" + pipeline::technique_name(technique);
      const auto build = pipeline::build(kernel[1], technique);
      const check::prune::PruneReport prune =
          check::prune::prune_program(build.program);

      // Prune counters must add up.
      std::uint64_t dead_bits = 0, total_bits = 0;
      for (const check::prune::PruneSite& site : prune.sites) {
        dead_bits += static_cast<std::uint64_t>(site.dead_bits());
        total_bits += static_cast<std::uint64_t>(site.bit_space);
      }
      if (dead_bits != prune.dead_bits || total_bits != prune.total_bits) {
        fail(cell_name + ": prune report counters disagree with site table");
      }

      check_dead_soundness(cell_name, build.program, prune);

      // Exhaustive vs pruned audit: identical frame, escape containment.
      fault::AuditOptions audit_options;
      audit_options.probe_bits = {0, 17, 63};
      audit_options.jobs = 2;
      const auto exhaustive =
          fault::audit_program(build.program, audit_options);
      audit_options.prune = &prune;
      const auto pruned = fault::audit_program(build.program, audit_options);
      if (pruned.sites != exhaustive.sites ||
          pruned.injections != exhaustive.injections) {
        fail(cell_name + ": pruned audit frame differs from exhaustive");
      }
      if (!pruned.prune.enabled || pruned.prune.pilot_injections == 0) {
        fail(cell_name + ": pruned audit ran no pilots");
      }
      if (pruned.prune.pilot_injections + pruned.prune.dead_probes +
              pruned.prune.extrapolated_probes !=
          pruned.injections) {
        fail(cell_name + ": prune probe accounting does not sum to the frame");
      }
      std::set<std::pair<std::uint64_t, int>> exhaustive_escapes;
      for (const fault::AuditEscape& escape : exhaustive.escapes) {
        exhaustive_escapes.insert({escape.site, escape.bit});
      }
      std::uint64_t invented = 0;
      for (const fault::AuditEscape& escape : pruned.escapes) {
        // Extrapolated escapes may over- or under-shoot within a class,
        // but a pilot's own (site, bit) must agree with the exhaustive
        // audit exactly.
        for (const fault::AuditPilot& pilot : pruned.prune.pilots) {
          if (pilot.site == escape.site && pilot.bit == escape.bit &&
              exhaustive_escapes.count({escape.site, escape.bit}) == 0) {
            ++invented;
          }
        }
      }
      if (invented != 0) {
        fail(cell_name + ": pilot escapes absent from the exhaustive audit");
      }
      if (technique == Technique::kNone && name == "mixsum") {
        none_reduction = pruned.prune.reduction;
      }

      // Jobs-invariance: pruned audit + campaign metrics byte-identical
      // across {1, 2, 8} workers.
      fault::CampaignOptions campaign_options;
      campaign_options.trials = 200;
      campaign_options.prune = &prune;
      std::string fingerprint;
      for (int jobs : {1, 2, 8}) {
        fault::AuditOptions jobs_audit = audit_options;
        jobs_audit.jobs = jobs;
        campaign_options.jobs = jobs;
        const auto audit_run =
            fault::audit_program(build.program, jobs_audit);
        const auto campaign_run =
            fault::run_campaign(build.program, campaign_options);
        const std::string fp = metrics_fingerprint(
            telemetry::to_json(audit_run), telemetry::to_json(campaign_run));
        if (fingerprint.empty()) {
          fingerprint = fp;
        } else if (fp != fingerprint) {
          fail(cell_name + ": pruned metrics differ at jobs=" +
               std::to_string(jobs));
        }
        if (jobs == 1) {
          if (!campaign_run.prune.enabled) {
            fail(cell_name + ": campaign prune stats missing");
          }
          if (campaign_run.trials() != campaign_options.trials) {
            fail(cell_name + ": pruned campaign lost trials");
          }
          telemetry::Json cell = telemetry::Json::object();
          cell["audit"] = telemetry::to_json(pruned);
          cell["campaign"] = telemetry::to_json(campaign_run);
          cell["sites"] = check::prune::to_json(prune, build.program);
          report.metrics()[name]
                          [pipeline::technique_name(technique)] = cell;
        }
      }
    }
  }

  if (none_reduction < 3.0) {
    fail("unprotected mixsum reduction " + std::to_string(none_reduction) +
         "x below the 3x floor");
  }
  report.metrics()["reduction_none_mixsum"] = none_reduction;
  report.metrics()["equivalence_ok"] = failures == 0;

  // Artifact round-trip: required schema keys and a prune section.
  const std::string path = report.write();
  if (path.empty()) {
    fail("artifact write failed");
  } else {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const auto json = telemetry::Json::parse(buffer.str());
    if (!json.has_value()) {
      fail("artifact does not parse back as JSON");
    } else {
      for (const char* key :
           {"bench", "schema_version", "metrics", "wallclock"}) {
        if (json->find(key) == nullptr) {
          fail("artifact lacks required key '" + std::string(key) + "'");
        }
      }
      const telemetry::Json* metrics = json->find("metrics");
      const telemetry::Json* mixsum =
          metrics == nullptr ? nullptr : metrics->find("mixsum");
      const telemetry::Json* cell =
          mixsum == nullptr ? nullptr : mixsum->find("none");
      const telemetry::Json* audit =
          cell == nullptr ? nullptr : cell->find("audit");
      if (audit == nullptr || audit->find("prune") == nullptr) {
        fail("artifact audit cell lacks a prune section");
      }
    }
  }

  if (failures == 0) std::printf("prune_smoke: all checks passed\n");
  return failures == 0 ? 0 : 1;
}
