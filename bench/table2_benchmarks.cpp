// Reproduces Table II: the benchmark inventory (suite, domain), extended
// with the concrete static/dynamic characteristics of our MiniC versions
// and the static-instruction counts the paper's Sec IV-B3 relates pass
// time to.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "pipeline/pipeline.h"
#include "support/str.h"
#include "telemetry/export.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  benchutil::BenchReport report("table2_benchmarks");
  std::printf("Table II — benchmark inventory\n\n");
  std::printf("%-15s %-14s %-20s %10s %12s %12s\n", "benchmark", "suite",
              "domain", "static", "dynamic", "fi sites");
  benchutil::print_rule(90);
  for (const auto& w : workloads::all()) {
    auto build = pipeline::build(w.source, Technique::kNone);
    vm::VmOptions options;
    options.profile = true;
    const vm::VmResult result = vm::run(build.program, options);
    if (!result.ok()) {
      std::printf("%-15s FAILED (%s)\n", w.name.c_str(),
                  vm::exit_status_name(result.status));
      return 1;
    }
    std::printf("%-15s %-14s %-20s %10s %12s %12s\n", w.name.c_str(),
                w.suite.c_str(), w.domain.c_str(),
                with_commas(build.program.inst_count()).c_str(),
                with_commas(result.steps).c_str(),
                with_commas(result.fi_sites).c_str());
    telemetry::Json row = telemetry::Json::object();
    row["suite"] = w.suite;
    row["domain"] = w.domain;
    row["static_instructions"] = build.program.inst_count();
    row["dynamic_instructions"] = result.steps;
    row["fi_sites"] = result.fi_sites;
    row["profile"] = telemetry::to_json(*result.profile);
    report.metrics()["workloads"][w.name] = row;
  }
  benchutil::print_rule(90);
  std::printf("\npaper Table II lists the same eight Rodinia benchmarks "
              "and domains; sizes here are the MiniC reimplementations "
              "(see DESIGN.md).\n");
  report.wallclock()["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.write();
  return 0;
}
