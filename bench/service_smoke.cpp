// service_smoke — CI harness for the campaign service. Boots the daemon
// and the blocking client in one process over a real unix-domain socket
// (tiny knobs, TSan-preset friendly) and checks the full contract:
//
//   * multi-cell jobs stream back complete, in cell order, with outcome
//     counts that sum to the trials;
//   * per-key result bytes are identical across worker counts {1, 2, 4}
//     and across submission orders — scheduling shapes wall-clock only;
//   * a warm resubmission (with different engine knobs) is answered from
//     the content-addressed store with zero new engine trials;
//   * after a daemon shutdown, a fresh daemon on the same cache
//     directory answers the identical submission from the disk tier —
//     zero trials, byte-identical result bytes (restart phase);
//   * malformed requests get error replies and the connection survives;
//   * the BENCH_service_smoke.json artifact follows the bench schema
//     (bench / schema_version / metrics / wallclock).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_util.h"
#include "fault/cell.h"
#include "service/client.h"
#include "service/service.h"
#include "support/hash.h"
#include "support/transport.h"
#include "telemetry/json.h"

using namespace ferrum;

namespace {

int failures = 0;

void fail(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  ++failures;
}

std::vector<fault::CampaignCell> smoke_cells() {
  std::vector<fault::CampaignCell> cells;
  fault::CampaignCell bfs;
  bfs.workload = "bfs";
  bfs.technique = "none";
  bfs.trials = 8;
  cells.push_back(bfs);

  fault::CampaignCell hardened = bfs;
  hardened.technique = "ferrum";
  cells.push_back(hardened);

  fault::CampaignCell inline_cell;
  inline_cell.program =
      "int main() {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < 8; i++) s += i * i;\n"
      "  print_int(s);\n"
      "  return 0;\n"
      "}\n";
  inline_cell.technique = "ferrum";
  inline_cell.trials = 10;
  cells.push_back(inline_cell);

  fault::CampaignCell pruned = inline_cell;
  pruned.prune = true;
  cells.push_back(pruned);
  return cells;
}

/// One daemon instance serving one socket; results keyed by cache key.
/// A non-empty cache_dir persists the content-addressed store across
/// daemon lifetimes; trials_executed (when non-null) receives the
/// engine-trial count this instance actually ran.
std::map<std::string, std::string> run_config(
    int workers, const std::vector<fault::CampaignCell>& cells,
    double& seconds, const std::string& cache_dir = "",
    std::uint64_t* trials_executed = nullptr) {
  static int instance = 0;
  const std::string socket_path = "service_smoke-" +
                                  std::to_string(::getpid()) + "-w" +
                                  std::to_string(workers) + "-i" +
                                  std::to_string(instance++) + ".sock";
  std::string error;
  Listener listener = Listener::bind_unix(socket_path, &error);
  std::map<std::string, std::string> by_key;
  if (!listener.valid()) {
    fail("cannot listen on " + socket_path + ": " + error);
    return by_key;
  }
  service::Daemon daemon({workers, cache_dir});
  std::thread server([&] { daemon.serve(listener); });

  const auto start = std::chrono::steady_clock::now();
  {
    service::Client client = service::Client::connect(socket_path, error);
    if (!client.valid()) {
      fail("connect to " + socket_path + ": " + error);
    } else {
      const auto job = client.submit(cells, error);
      if (!job.has_value()) {
        fail("submit: " + error);
      } else {
        std::size_t index = 0;
        const bool streamed = client.results(
            *job,
            [&](const service::CellResult& result) {
              if (result.cell != index) {
                fail("results out of order: got cell " +
                     std::to_string(result.cell) + ", want " +
                     std::to_string(index));
              }
              ++index;
              if (!result.error.empty()) {
                fail("cell failed: " + result.error);
                return;
              }
              if (result.key.size() != 64 || result.result_bytes.empty()) {
                fail("cell result missing key or bytes");
                return;
              }
              by_key[result.key] = result.result_bytes;
            },
            error);
        if (!streamed) fail("results stream: " + error);
        if (index != cells.size()) {
          fail("streamed " + std::to_string(index) + " cells, want " +
               std::to_string(cells.size()));
        }
        const auto status = client.status(*job, error);
        if (!status.has_value()) {
          fail("status: " + error);
        } else if (const telemetry::Json* completed =
                       status->find("completed");
                   completed == nullptr ||
                   completed->as_uint() != cells.size()) {
          fail("status does not report the job complete");
        }
      }
      client.shutdown_server(error);
    }
  }
  server.join();
  if (trials_executed != nullptr) {
    *trials_executed =
        daemon.metrics().counter("service/trials_executed").value();
  }
  seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
  return by_key;
}

}  // namespace

int main() {
  const std::vector<fault::CampaignCell> cells = smoke_cells();

  // Worker counts x submission orders; every config must produce the
  // same key -> bytes mapping.
  const int worker_counts[] = {1, 2, 4};
  std::map<std::string, std::string> reference;
  telemetry::Json config_seconds = telemetry::Json::object();
  for (std::size_t config = 0; config < 3; ++config) {
    const int workers = worker_counts[config];
    std::vector<fault::CampaignCell> order = cells;
    std::rotate(order.begin(), order.begin() + config, order.end());
    double seconds = 0.0;
    const auto by_key = run_config(workers, order, seconds);
    config_seconds["workers_" + std::to_string(workers)] = seconds;
    if (by_key.size() != cells.size()) {
      fail("config workers=" + std::to_string(workers) + " produced " +
           std::to_string(by_key.size()) + " distinct keys, want " +
           std::to_string(cells.size()));
    }
    if (reference.empty()) {
      reference = by_key;
    } else if (by_key != reference) {
      fail("results diverge at workers=" + std::to_string(workers) +
           " (per-key bytes must be scheduling-invariant)");
    }
  }

  // Warm store + error paths against one long-lived daemon.
  std::uint64_t warm_trials = 1;  // pessimistic until measured
  {
    const std::string socket_path =
        "service_smoke-" + std::to_string(::getpid()) + "-warm.sock";
    std::string error;
    Listener listener = Listener::bind_unix(socket_path, &error);
    if (!listener.valid()) {
      fail("cannot listen on " + socket_path + ": " + error);
    } else {
      service::Daemon daemon({2, ""});
      std::thread server([&] { daemon.serve(listener); });
      {
        service::Client client =
            service::Client::connect(socket_path, error);
        if (!client.valid()) {
          fail("connect: " + error);
        } else {
          const auto cold_job = client.submit(cells, error);
          if (!cold_job.has_value()) fail("cold submit: " + error);
          std::map<std::string, std::string> cold;
          client.results(
              *cold_job,
              [&](const service::CellResult& r) {
                if (r.error.empty()) cold[r.key] = r.result_bytes;
              },
              error);

          // Error paths: an invalid cell and an unknown job id must be
          // rejected without killing the connection.
          fault::CampaignCell invalid;  // neither program nor workload
          if (client.submit({invalid}, error).has_value()) {
            fail("invalid cell was accepted");
          }
          if (client.results(
                  998877, [](const service::CellResult&) {}, error)) {
            fail("unknown job id streamed results");
          }

          const std::uint64_t executed_before =
              daemon.metrics().counter("service/trials_executed").value();
          std::vector<fault::CampaignCell> retuned = cells;
          for (fault::CampaignCell& cell : retuned) {
            cell.jobs = 4;
            cell.batch = 1;
            cell.ckpt_stride = 8;
            cell.dispatch = "switch";
          }
          const auto warm_job = client.submit(retuned, error);
          if (!warm_job.has_value()) {
            fail("warm submit: " + error);
          } else {
            client.results(
                *warm_job,
                [&](const service::CellResult& r) {
                  if (!r.cached) {
                    fail("warm cell missed the store");
                  } else if (cold[r.key] != r.result_bytes) {
                    fail("warm bytes differ from cold for " + r.key);
                  }
                },
                error);
          }
          warm_trials =
              daemon.metrics().counter("service/trials_executed").value() -
              executed_before;
          if (warm_trials != 0) {
            fail("warm pass executed " + std::to_string(warm_trials) +
                 " engine trials, want 0");
          }
          client.shutdown_server(error);
        }
      }
      server.join();
    }
  }

  // Restart phase: the disk tier must survive a daemon death. A first
  // daemon campaigns cold into FERRUM_SVC_CACHE, is shut down and
  // destroyed, and a brand-new daemon on the same directory must answer
  // the identical submission warm — zero engine trials, byte-identical
  // result bytes per key.
  std::uint64_t restart_warm_trials = 1;  // pessimistic until measured
  {
    const std::string cache_dir =
        "service_smoke-cache-" + std::to_string(::getpid());
    std::filesystem::remove_all(cache_dir);
    double cold_seconds = 0.0;
    double warm_seconds = 0.0;
    std::uint64_t cold_trials = 0;
    const auto cold =
        run_config(2, cells, cold_seconds, cache_dir, &cold_trials);
    const auto warm =
        run_config(2, cells, warm_seconds, cache_dir, &restart_warm_trials);
    if (cold_trials == 0) {
      fail("restart cold pass executed no trials (vacuous)");
    }
    if (restart_warm_trials != 0) {
      fail("restarted daemon executed " +
           std::to_string(restart_warm_trials) +
           " engine trials, want 0 (disk store should answer everything)");
    }
    if (warm != cold) {
      fail("restarted daemon's results differ from the pre-restart bytes");
    }
    config_seconds["restart_cold"] = cold_seconds;
    config_seconds["restart_warm"] = warm_seconds;
    std::filesystem::remove_all(cache_dir);
  }

  // Artifact, following the bench schema conventions.
  benchutil::BenchReport report("service_smoke");
  telemetry::Json& metrics = report.metrics();
  metrics["cells"] = static_cast<std::uint64_t>(cells.size());
  metrics["determinism_ok"] = failures == 0;
  metrics["warm_trials_executed"] = warm_trials;
  metrics["restart_warm_trials_executed"] = restart_warm_trials;
  telemetry::Json keys = telemetry::Json::object();
  for (const auto& [key, bytes] : reference) {
    keys[key] = sha256_hex(bytes);
  }
  metrics["result_sha256_by_key"] = keys;
  report.wallclock()["config_seconds"] = config_seconds;
  const std::string path = report.write();
  if (path.empty()) fail("artifact write failed");

  // Validate what we just wrote the way bench_smoke would.
  if (!path.empty()) {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    std::string text;
    if (file != nullptr) {
      char buffer[4096];
      std::size_t got;
      while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
        text.append(buffer, got);
      }
      std::fclose(file);
    }
    const auto artifact = telemetry::Json::parse(text);
    if (!artifact.has_value()) {
      fail("artifact does not parse");
    } else {
      for (const char* key :
           {"bench", "schema_version", "metrics", "wallclock"}) {
        if (artifact->find(key) == nullptr) {
          fail(std::string("artifact lacks '") + key + "'");
        }
      }
    }
  }

  if (failures == 0) std::printf("service_smoke: all checks passed\n");
  return failures == 0 ? 0 : 1;
}
