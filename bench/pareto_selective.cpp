// Beyond the paper: the coverage/overhead trade-off of *selective*
// FERRUM. Protecting a fraction of the protectable sites sweeps out a
// Pareto curve between the unprotected program and full FERRUM — the
// knob techniques like SDCTune (paper Sec V) tune with vulnerability
// models. This bench compares three ways of spending the same budget:
//
//   uniform   error-diffusion over the site ordinals (the pre-flow
//             coverage_ratio knob) — site positions, no analysis
//   random    seeded uniform draw over the protectable-site universe
//             (SelectiveOptions::kRandom)
//   analysis  ferrum-flow ranking: protect the sites predicted
//             sdc-vulnerable first, then crash-prone, then the rest
//             (SelectiveOptions::kAnalysis)
//
// The claim under test: at every sub-1.0 budget, spending the budget on
// the predicted-vulnerable sites buys at least as much measured SDC
// coverage as spending it at random. Asserted on the per-budget mean
// across the Table II workloads (non-zero exit on violation) — armed
// only at a statistically meaningful campaign size, since at smoke
// trial counts the coverage estimate is too noisy to order strategies.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "fault/campaign.h"
#include "pipeline/pipeline.h"
#include "telemetry/json.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::SelectiveOptions;
using pipeline::Technique;

namespace {

constexpr int kBudgetCount = 4;
constexpr double kBudgets[kBudgetCount] = {0.25, 0.5, 0.75, 1.0};
constexpr int kStrategyCount = 3;
const char* const kStrategies[kStrategyCount] = {"uniform", "random",
                                                 "analysis"};
/// Minimum campaign size for the dominance assertion: below this the
/// Wilson half-width of an SDC rate swamps the strategy gap.
constexpr int kDominanceTrialsFloor = 400;

}  // namespace

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  const int trials = benchutil::env_trials(400);
  const int jobs = benchutil::env_jobs();
  const int ckpt_stride = benchutil::env_ckpt_stride();
  benchutil::BenchReport report("pareto_selective");
  report.metrics()["trials"] = trials;
  std::printf("Extension — selective FERRUM: analysis-guided vs uniform vs "
              "random budgets (%d faults per cell, %d worker(s))\n\n",
              trials, jobs);
  std::printf("%-15s %6s | %9s %9s %9s | %9s\n", "benchmark", "budget",
              "uniform", "random", "analysis", "overhead*");
  benchutil::print_rule(70);

  double coverage_sum[kStrategyCount][kBudgetCount] = {};
  double overhead_sum[kStrategyCount][kBudgetCount] = {};
  int rows = 0;

  for (const auto& w : workloads::all()) {
    fault::CampaignOptions campaign;
    campaign.trials = trials;
    campaign.jobs = jobs;
    campaign.ckpt_stride = ckpt_stride;
    vm::VmOptions timed;
    timed.timing = true;

    auto raw_build = pipeline::build(w.source, Technique::kNone);
    const auto raw = fault::run_campaign(raw_build.program, campaign);
    const auto raw_timed = vm::run(raw_build.program, timed);

    for (int b = 0; b < kBudgetCount; ++b) {
      double coverage_row[kStrategyCount] = {};
      double overhead_row[kStrategyCount] = {};
      for (int s = 0; s < kStrategyCount; ++s) {
        pipeline::BuildOptions options;
        if (s == 0) {
          options.ferrum.coverage_ratio = kBudgets[b];
        } else {
          options.selective.strategy =
              s == 1 ? SelectiveOptions::Strategy::kRandom
                     : SelectiveOptions::Strategy::kAnalysis;
          options.selective.budget = kBudgets[b];
        }
        auto build = pipeline::build(w.source, Technique::kFerrum, options);
        const auto result = fault::run_campaign(build.program, campaign);
        const auto timed_run = vm::run(build.program, timed);
        coverage_row[s] = fault::sdc_coverage(raw.sdc_rate(),
                                              result.sdc_rate());
        overhead_row[s] = 100.0 *
                          (static_cast<double>(timed_run.cycles) -
                           raw_timed.cycles) /
                          static_cast<double>(raw_timed.cycles);
        coverage_sum[s][b] += coverage_row[s];
        overhead_sum[s][b] += overhead_row[s];

        char budget_key[16];
        std::snprintf(budget_key, sizeof(budget_key), "budget-%.2f",
                      kBudgets[b]);
        telemetry::Json point = telemetry::Json::object();
        point["coverage"] = coverage_row[s];
        point["overhead_percent"] = overhead_row[s];
        point["cycles"] = timed_run.cycles;
        if (s != 0) {
          point["universe"] = build.selective_plan.universe.size();
          point["selected"] = build.selective_plan.selected.size();
        }
        report.metrics()["workloads"][w.name][budget_key][kStrategies[s]] =
            point;
      }
      std::printf("%-15s %5.0f%% | %8.1f%% %8.1f%% %8.1f%% | %8.1f%%\n",
                  w.name.c_str(), kBudgets[b] * 100.0,
                  coverage_row[0] * 100.0, coverage_row[1] * 100.0,
                  coverage_row[2] * 100.0, overhead_row[2]);
    }
    ++rows;
  }
  benchutil::print_rule(70);
  for (int b = 0; b < kBudgetCount; ++b) {
    std::printf("%-15s %5.0f%% | %8.1f%% %8.1f%% %8.1f%% | %8.1f%%\n",
                "AVERAGE", kBudgets[b] * 100.0,
                coverage_sum[0][b] / rows * 100.0,
                coverage_sum[1][b] / rows * 100.0,
                coverage_sum[2][b] / rows * 100.0,
                overhead_sum[2][b] / rows);
    char budget_key[16];
    std::snprintf(budget_key, sizeof(budget_key), "budget-%.2f",
                  kBudgets[b]);
    for (int s = 0; s < kStrategyCount; ++s) {
      telemetry::Json point = telemetry::Json::object();
      point["coverage"] = coverage_sum[s][b] / rows;
      point["overhead_percent"] = overhead_sum[s][b] / rows;
      report.metrics()["average"][budget_key][kStrategies[s]] = point;
    }
  }
  std::printf("\n* overhead column is the analysis strategy. Expected "
              "shape: coverage rises with the budget; at every sub-1.0 "
              "budget the analysis ranking matches or beats the random "
              "draw; budget 1.0 is full FERRUM for all three.\n");

  // Dominance check: mean analysis coverage >= mean random coverage at
  // every budget (a hair of slack for rate quantization at the trial
  // count). Only armed at >= kDominanceTrialsFloor trials — the smoke
  // run still exercises every cell, it just does not assert an ordering
  // the noise floor cannot support.
  bool dominated = true;
  const bool armed = trials >= kDominanceTrialsFloor;
  const double slack = 0.5 / trials;
  for (int b = 0; b < kBudgetCount; ++b) {
    const double analysis = coverage_sum[2][b] / rows;
    const double random = coverage_sum[1][b] / rows;
    if (armed && analysis + slack < random) {
      std::fprintf(stderr,
                   "DOMINANCE MISS at budget %.2f: analysis %.4f < random "
                   "%.4f\n",
                   kBudgets[b], analysis, random);
      dominated = false;
    }
  }
  report.metrics()["dominance_armed"] = armed;
  report.metrics()["analysis_dominates_random"] = dominated;
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.wallclock()["wall_seconds"] = wall_seconds;
  // Throughput for the baselines tripwire (scripts/bench_diff.py): one
  // raw campaign plus strategies × budgets per workload, `trials` faults
  // each.
  const double total_trials =
      static_cast<double>(rows) *
      (1.0 + kStrategyCount * kBudgetCount) * trials;
  report.wallclock()["trials_per_second"] =
      wall_seconds > 0.0 ? total_trials / wall_seconds : 0.0;
  report.write();
  if (!dominated) {
    std::fprintf(stderr, "\nFAIL: analysis-guided selection lost to the "
                         "random baseline\n");
    return 1;
  }
  return 0;
}
