// Beyond the paper: the coverage/overhead trade-off of *selective*
// FERRUM. Protecting a deterministic fraction of the protectable sites
// (error-diffusion selection) sweeps out a Pareto curve between the
// unprotected program and full FERRUM — the knob techniques like SDCTune
// (paper Sec V) tune with vulnerability models.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "fault/campaign.h"
#include "pipeline/pipeline.h"
#include "telemetry/json.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  const int trials = benchutil::env_trials(400);
  const int jobs = benchutil::env_jobs();
  const int ckpt_stride = benchutil::env_ckpt_stride();
  benchutil::BenchReport report("pareto_selective");
  report.metrics()["trials"] = trials;
  std::printf("Extension — selective FERRUM: coverage vs overhead "
              "(%d faults per cell, %d worker(s))\n\n", trials, jobs);
  std::printf("%-15s %6s | %10s %10s\n", "benchmark", "ratio", "coverage",
              "overhead");
  benchutil::print_rule(50);

  const double ratios[] = {0.25, 0.5, 0.75, 1.0};
  double coverage_sum[4] = {0, 0, 0, 0};
  double overhead_sum[4] = {0, 0, 0, 0};
  int rows = 0;

  for (const auto& w : workloads::all()) {
    fault::CampaignOptions campaign;
    campaign.trials = trials;
    campaign.jobs = jobs;
    campaign.ckpt_stride = ckpt_stride;
    vm::VmOptions timed;
    timed.timing = true;

    auto raw_build = pipeline::build(w.source, Technique::kNone);
    const auto raw = fault::run_campaign(raw_build.program, campaign);
    const auto raw_timed = vm::run(raw_build.program, timed);

    for (int r = 0; r < 4; ++r) {
      pipeline::BuildOptions options;
      options.ferrum.coverage_ratio = ratios[r];
      auto build = pipeline::build(w.source, Technique::kFerrum, options);
      const auto result = fault::run_campaign(build.program, campaign);
      const auto timed_run = vm::run(build.program, timed);
      const double coverage =
          fault::sdc_coverage(raw.sdc_rate(), result.sdc_rate());
      const double overhead =
          100.0 * (static_cast<double>(timed_run.cycles) - raw_timed.cycles) /
          static_cast<double>(raw_timed.cycles);
      coverage_sum[r] += coverage;
      overhead_sum[r] += overhead;
      std::printf("%-15s %5.0f%% | %9.1f%% %9.1f%%\n", w.name.c_str(),
                  ratios[r] * 100.0, coverage * 100.0, overhead);
      char ratio_key[16];
      std::snprintf(ratio_key, sizeof(ratio_key), "ratio-%.2f", ratios[r]);
      telemetry::Json point = telemetry::Json::object();
      point["coverage"] = coverage;
      point["overhead_percent"] = overhead;
      point["cycles"] = timed_run.cycles;
      report.metrics()["workloads"][w.name][ratio_key] = point;
    }
    ++rows;
  }
  benchutil::print_rule(50);
  for (int r = 0; r < 4; ++r) {
    std::printf("%-15s %5.0f%% | %9.1f%% %9.1f%%\n", "AVERAGE",
                ratios[r] * 100.0, coverage_sum[r] / rows * 100.0,
                overhead_sum[r] / rows);
  }
  std::printf("\nExpected shape: coverage and overhead both rise with the "
              "ratio; only ratio 1.0 reaches the paper's 100%% coverage.\n");
  for (int r = 0; r < 4; ++r) {
    char ratio_key[16];
    std::snprintf(ratio_key, sizeof(ratio_key), "ratio-%.2f", ratios[r]);
    telemetry::Json point = telemetry::Json::object();
    point["coverage"] = coverage_sum[r] / rows;
    point["overhead_percent"] = overhead_sum[r] / rows;
    report.metrics()["average"][ratio_key] = point;
  }
  report.wallclock()["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.write();
  return 0;
}
