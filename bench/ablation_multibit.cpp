// Beyond the paper: the multi-bit fault regime it names as future work
// (Sec II-A). Three models per benchmark, FERRUM-protected:
//   single    one bit in one destination        (the paper's model)
//   burst-2   two adjacent bits in one word     (multi-bit upset)
//   double    two independent single-bit faults in one run
// Duplicate-and-compare detection reasons about one corruption at a time;
// independent double faults can in principle strike both copies of a
// duplicated value and slip through — this measures how often that
// actually happens.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "fault/campaign.h"
#include "pipeline/pipeline.h"
#include "telemetry/export.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  const int trials = benchutil::env_trials(400);
  const int jobs = benchutil::env_jobs();
  const int ckpt_stride = benchutil::env_ckpt_stride();
  benchutil::BenchReport report("ablation_multibit");
  report.metrics()["trials"] = trials;
  std::printf("Extension — multi-bit / multi-fault regimes under FERRUM "
              "(%d runs per cell, %d worker(s))\n\n", trials, jobs);
  std::printf("%-15s | %18s %18s %18s\n", "benchmark", "single (paper)",
              "burst-2", "double fault");
  benchutil::print_rule(76);

  struct Mode {
    int faults;
    int burst;
  };
  const Mode modes[] = {{1, 1}, {1, 2}, {2, 1}};
  int total_sdc[3] = {0, 0, 0};

  for (const auto& w : workloads::all()) {
    auto build = pipeline::build(w.source, Technique::kFerrum);
    std::printf("%-15s |", w.name.c_str());
    for (int m = 0; m < 3; ++m) {
      fault::CampaignOptions options;
      options.trials = trials;
      options.jobs = jobs;
      options.ckpt_stride = ckpt_stride;
      options.faults_per_run = modes[m].faults;
      options.burst = modes[m].burst;
      const auto result = fault::run_campaign(build.program, options);
      total_sdc[m] += result.count(fault::Outcome::kSdc);
      std::printf("   %4d SDC %5.1f%%",
                  result.count(fault::Outcome::kSdc),
                  result.sdc_rate() * 100.0);
      const char* mode_names[] = {"single", "burst-2", "double"};
      report.metrics()["workloads"][w.name][mode_names[m]] =
          telemetry::to_json(result);
    }
    std::printf("\n");
  }
  benchutil::print_rule(76);
  std::printf("%-15s |   %4d total      %4d total      %4d total\n", "SUM",
              total_sdc[0], total_sdc[1], total_sdc[2]);
  std::printf("\nExpected shape: zero escapes in the single-bit and "
              "burst models (a burst still corrupts only one of the two "
              "copies); the independent double-fault model may show rare "
              "escapes — the regime the paper defers to future work.\n");
  const char* mode_names[] = {"single", "burst-2", "double"};
  for (int m = 0; m < 3; ++m) {
    report.metrics()["total_sdc"][mode_names[m]] = total_sdc[m];
  }
  report.wallclock()["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.write();
  return 0;
}
