// Campaign-service throughput: cold (every cell executes) vs warm (every
// cell answered by the content-addressed store). The warm pass resubmits
// the same cell set with different *engine* knobs — jobs/batch/stride are
// not key material, so the store must still answer — and the artifact
// asserts the service contract in-place: warm bytes byte-identical to
// cold, and zero engine trials executed while warm.
//
// Knobs: FERRUM_TRIALS (per cell), FERRUM_SVC_WORKERS (service workers).
// Artifact: BENCH_bench_service.json (schema in DESIGN.md).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/cell.h"
#include "service/service.h"
#include "support/env.h"
#include "support/hash.h"
#include "telemetry/json.h"

using namespace ferrum;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct PassResult {
  double seconds = 0.0;
  std::uint64_t trials_executed = 0;
  std::vector<const service::CellOutcome*> outcomes;
};

PassResult run_pass(service::Daemon& daemon,
                    std::vector<fault::CampaignCell> cells) {
  const std::uint64_t executed_before =
      daemon.metrics().counter("service/trials_executed").value();
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t job = daemon.submit(std::move(cells));
  PassResult pass;
  for (std::size_t i = 0; i < daemon.job_cells(job); ++i) {
    const service::CellOutcome* outcome = daemon.wait_cell(job, i);
    if (outcome == nullptr || !outcome->error.empty()) {
      std::fprintf(stderr, "cell %zu failed: %s\n", i,
                   outcome == nullptr ? "missing" : outcome->error.c_str());
      std::exit(1);
    }
    pass.outcomes.push_back(outcome);
  }
  pass.seconds = seconds_since(start);
  pass.trials_executed =
      daemon.metrics().counter("service/trials_executed").value() -
      executed_before;
  return pass;
}

}  // namespace

int main() {
  const int trials = benchutil::env_trials(400);
  service::ServiceOptions options;
  options.workers = env_svc_workers(/*fallback=*/4);
  service::Daemon daemon(options);

  const char* kWorkloads[] = {"bfs", "kmeans", "pathfinder"};
  const char* kTechniques[] = {"none", "ferrum"};
  std::vector<fault::CampaignCell> cells;
  for (const char* workload : kWorkloads) {
    for (const char* technique : kTechniques) {
      fault::CampaignCell cell;
      cell.workload = workload;
      cell.technique = technique;
      cell.trials = trials;
      cell.jobs = 1;  // per-cell engine stays scalar; the pool is the service
      cells.push_back(cell);
      // A reseeded sibling: a different cache key (seed is key material)
      // over the SAME program, so its golden run + checkpoints must come
      // from the shared program state, not a second golden walk.
      cell.seed = cell.seed + 1;
      cells.push_back(cell);
    }
  }
  const std::uint64_t kDistinctPrograms = 6;  // 3 workloads x 2 techniques

  const std::uint64_t built_before =
      daemon.metrics().counter("service/golden/built").value();
  const std::uint64_t reused_before =
      daemon.metrics().counter("service/golden/reused").value();
  const PassResult cold = run_pass(daemon, cells);
  const std::uint64_t golden_built =
      daemon.metrics().counter("service/golden/built").value() - built_before;
  const std::uint64_t golden_reused =
      daemon.metrics().counter("service/golden/reused").value() -
      reused_before;

  // Warm resubmission under different engine knobs: the key excludes
  // them, so every cell must come back from the store.
  std::vector<fault::CampaignCell> retuned = cells;
  for (fault::CampaignCell& cell : retuned) {
    cell.jobs = 2;
    cell.batch = 1;
    cell.ckpt_stride = 16;
  }
  const PassResult warm = run_pass(daemon, retuned);

  bool byte_identical = true;
  std::uint64_t cache_hits = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (warm.outcomes[i]->result_json != cold.outcomes[i]->result_json ||
        warm.outcomes[i]->key != cold.outcomes[i]->key) {
      byte_identical = false;
    }
    if (warm.outcomes[i]->cached) ++cache_hits;
  }

  std::printf("campaign service: %zu cells x %d trials, %d workers\n",
              cells.size(), trials, options.workers);
  benchutil::print_rule(64);
  std::printf("%-28s %12s %16s\n", "pass", "seconds", "trials executed");
  std::printf("%-28s %12.3f %16llu\n", "cold (execute all)", cold.seconds,
              static_cast<unsigned long long>(cold.trials_executed));
  std::printf("%-28s %12.3f %16llu\n", "warm (store answers)", warm.seconds,
              static_cast<unsigned long long>(warm.trials_executed));
  benchutil::print_rule(64);
  const double speedup =
      warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;
  std::printf("warm speedup: %.1fx, cache hits: %llu/%zu, bytes %s\n",
              speedup, static_cast<unsigned long long>(cache_hits),
              cells.size(), byte_identical ? "identical" : "DIVERGED");
  // Cross-cell golden sharing: each distinct program walks its golden
  // run exactly once; every reseeded sibling reuses it.
  const bool golden_shared =
      golden_built == kDistinctPrograms &&
      golden_reused == cells.size() - kDistinctPrograms;
  std::printf("golden runs: built %llu, reused %llu (%s)\n",
              static_cast<unsigned long long>(golden_built),
              static_cast<unsigned long long>(golden_reused),
              golden_shared ? "shared" : "NOT SHARED");

  benchutil::BenchReport report("bench_service");
  telemetry::Json& metrics = report.metrics();
  metrics["cells"] = static_cast<std::uint64_t>(cells.size());
  metrics["trials_per_cell"] = trials;
  // The contract, asserted in-artifact: a warm pass returns the cold
  // bytes verbatim and runs zero engine trials.
  metrics["warm_matches_cold"] = byte_identical;
  metrics["warm_trials_executed"] = warm.trials_executed;
  metrics["cold_trials_executed"] = cold.trials_executed;
  metrics["golden_built"] = golden_built;
  metrics["golden_reused"] = golden_reused;
  metrics["golden_shared"] = golden_shared;
  telemetry::Json per_cell = telemetry::Json::array();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    telemetry::Json entry = telemetry::Json::object();
    entry["workload"] = cells[i].workload;
    entry["technique"] = cells[i].technique;
    entry["key"] = cold.outcomes[i]->key;
    entry["result_sha256"] = sha256_hex(cold.outcomes[i]->result_json);
    per_cell.push_back(entry);
  }
  metrics["cells_detail"] = per_cell;
  telemetry::Json& wallclock = report.wallclock();
  wallclock["cold_seconds"] = cold.seconds;
  wallclock["warm_seconds"] = warm.seconds;
  wallclock["warm_speedup"] = speedup;
  wallclock["workers"] = options.workers;
  wallclock["cache_hits"] = cache_hits;
  report.write();

  if (!byte_identical || warm.trials_executed != 0) {
    std::fprintf(stderr,
                 "service contract violated: warm pass %s, %llu trials\n",
                 byte_identical ? "matched" : "diverged",
                 static_cast<unsigned long long>(warm.trials_executed));
    return 1;
  }
  if (!golden_shared) {
    std::fprintf(stderr,
                 "golden sharing violated: built %llu (want %llu), reused "
                 "%llu (want %llu)\n",
                 static_cast<unsigned long long>(golden_built),
                 static_cast<unsigned long long>(kDistinctPrograms),
                 static_cast<unsigned long long>(golden_reused),
                 static_cast<unsigned long long>(cells.size() -
                                                 kDistinctPrograms));
    return 1;
  }
  return 0;
}
