// Shared helpers for the experiment binaries: environment-variable knobs
// and small table-printing utilities.
#pragma once

#include <cstdio>

#include "support/env.h"
#include "support/parallel.h"

namespace ferrum::benchutil {

/// Reads an integer knob from the environment (e.g. FERRUM_TRIALS=2000).
/// Strict parsing with a stderr warning + fallback on garbage or
/// non-positive values (see support/env.h).
inline int env_int(const char* name, int fallback, int min_value = 1) {
  return ferrum::env_int(name, fallback, min_value);
}

/// Worker threads for campaign/audit execution: FERRUM_JOBS, defaulting
/// to hardware concurrency. Results are deterministic for any value —
/// the knob only changes wall-clock time.
inline int env_jobs() {
  return env_int("FERRUM_JOBS", ThreadPool::hardware_workers());
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace ferrum::benchutil
