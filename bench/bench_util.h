// Shared helpers for the experiment binaries: environment-variable knobs,
// small table-printing utilities, and the BENCH_<name>.json telemetry
// artifact every bench binary emits.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "support/env.h"
#include "telemetry/json.h"

namespace ferrum::benchutil {

/// Reads an integer knob from the environment (e.g. FERRUM_TRIALS=2000).
/// Strict parsing with a stderr warning + fallback on garbage or
/// non-positive values (see support/env.h).
inline int env_int(const char* name, int fallback, int min_value = 1) {
  return ferrum::env_int(name, fallback, min_value);
}

/// FERRUM_TRIALS (see support/env.h — the knob definition lives there).
inline int env_trials(int fallback = 1000) {
  return ferrum::env_trials(fallback);
}

/// FERRUM_SCALE (see support/env.h).
inline int env_scale(int fallback = 2) { return ferrum::env_scale(fallback); }

/// FERRUM_JOBS (see support/env.h). Results are deterministic for any
/// value — the knob only changes wall-clock time.
inline int env_jobs() { return ferrum::env_jobs(); }

/// FERRUM_CKPT_STRIDE (see support/env.h). 0 = cold trials; any value
/// yields bit-identical results.
inline int env_ckpt_stride(int fallback = 64) {
  return ferrum::env_ckpt_stride(fallback);
}

/// FERRUM_BATCH (see support/env.h). 1 = scalar trials; any width yields
/// bit-identical results.
inline int env_batch(int fallback = 8) { return ferrum::env_batch(fallback); }

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

/// The telemetry artifact every bench binary writes next to its stdout
/// table. Layout (schema in DESIGN.md):
///
///   {
///     "bench": "<name>",
///     "schema_version": 1,
///     "metrics":   { ...deterministic results... },
///     "wallclock": { ...timers / per-worker counts... }
///   }
///
/// `metrics` must be a pure function of program + seed — byte-identical
/// for repeated runs and any FERRUM_JOBS. Anything scheduling-dependent
/// goes under `wallclock`, which comparisons exclude.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {
    root_ = telemetry::Json::object();
    root_["bench"] = name_;
    root_["schema_version"] = 1;
    root_["metrics"] = telemetry::Json::object();
    root_["wallclock"] = telemetry::Json::object();
  }

  /// Deterministic section. `metrics()["coverage/fft"] = ...` style.
  telemetry::Json& metrics() { return root_["metrics"]; }
  /// Scheduling-dependent section (timers, per-worker counts).
  telemetry::Json& wallclock() { return root_["wallclock"]; }

  /// Serialises to `$FERRUM_BENCH_DIR/BENCH_<name>.json` (cwd when the
  /// variable is unset). Returns the path written, empty on I/O failure
  /// (reported on stderr; benches keep their stdout tables regardless).
  std::string write() const {
    std::string path = "BENCH_" + name_ + ".json";
    if (const char* dir = std::getenv("FERRUM_BENCH_DIR");
        dir != nullptr && *dir != '\0') {
      path = std::string(dir) + "/" + path;
    }
    const std::string text = root_.dump();
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return std::string();
    }
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), file) == text.size();
    std::fclose(file);
    if (!ok) {
      std::fprintf(stderr, "warning: short write to %s\n", path.c_str());
      return std::string();
    }
    return path;
  }

 private:
  std::string name_;
  telemetry::Json root_;
};

}  // namespace ferrum::benchutil
