// Shared helpers for the experiment binaries: environment-variable knobs
// and small table-printing utilities.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ferrum::benchutil {

/// Reads an integer knob from the environment (e.g. FERRUM_TRIALS=2000).
inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace ferrum::benchutil
