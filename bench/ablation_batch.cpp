// Ablation: how much of FERRUM's advantage comes from SIMD check
// batching. Sweeps the flush threshold (1 / 2 / 4 sites per check, where
// 4 is the paper's YMM-combining Fig 6 configuration) and compares
// against FERRUM with SIMD disabled entirely (immediate xor+jne checks,
// i.e. Fig 4 for every site) — isolating the "deferred + batched checking"
// design choice the paper credits for the speedup.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "pipeline/pipeline.h"
#include "telemetry/json.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

namespace {

std::uint64_t cycles_of(const std::string& source,
                        const pipeline::BuildOptions& options) {
  auto build = pipeline::build(source, Technique::kFerrum, options);
  vm::VmOptions vm_options;
  vm_options.timing = true;
  const auto result = vm::run(build.program, vm_options);
  return result.ok() ? result.cycles : 0;
}

}  // namespace

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  const int scale = benchutil::env_scale();
  benchutil::BenchReport report("ablation_batch");
  report.metrics()["scale"] = scale;
  std::printf("Ablation — SIMD check batching (FERRUM variants, "
              "overhead vs raw, scale x%d)\n\n", scale);
  std::printf("%-15s %10s | %10s %10s %10s %10s\n", "benchmark", "raw cyc",
              "no-simd", "batch=1", "batch=2", "batch=4");
  benchutil::print_rule(78);

  double sums[4] = {0, 0, 0, 0};
  int rows = 0;
  for (const auto& base : workloads::all()) {
    const auto w = workloads::scaled(base.name, scale);
    auto raw_build = pipeline::build(w.source, Technique::kNone);
    vm::VmOptions vm_options;
    vm_options.timing = true;
    const auto raw = vm::run(raw_build.program, vm_options);
    if (!raw.ok()) return 1;

    double overheads[4];
    int column = 0;
    {
      pipeline::BuildOptions options;
      options.ferrum.use_simd = false;
      overheads[column++] =
          100.0 * (static_cast<double>(cycles_of(w.source, options)) -
                   raw.cycles) / raw.cycles;
    }
    for (int batch : {1, 2, 4}) {
      pipeline::BuildOptions options;
      options.ferrum.simd_batch = batch;
      overheads[column++] =
          100.0 * (static_cast<double>(cycles_of(w.source, options)) -
                   raw.cycles) / raw.cycles;
    }
    std::printf("%-15s %10llu |", w.name.c_str(),
                static_cast<unsigned long long>(raw.cycles));
    const char* variants[] = {"no-simd", "batch-1", "batch-2", "batch-4"};
    telemetry::Json row = telemetry::Json::object();
    row["raw_cycles"] = raw.cycles;
    for (int i = 0; i < 4; ++i) {
      std::printf(" %9.1f%%", overheads[i]);
      sums[i] += overheads[i];
      row["overhead_percent"][variants[i]] = overheads[i];
    }
    report.metrics()["workloads"][w.name] = row;
    std::printf("\n");
    ++rows;
  }
  benchutil::print_rule(78);
  std::printf("%-15s %10s |", "AVERAGE", "");
  for (double sum : sums) std::printf(" %9.1f%%", sum / rows);
  std::printf("\n\nExpected shape: batch=4 (the paper's Fig 6 YMM "
              "configuration) is cheapest and overhead falls with batch "
              "width. batch=1 typically costs MORE than plain immediate "
              "checks: the win comes from check amortisation (deferral + "
              "batching), not from merely routing data through SIMD "
              "registers.\n");
  const char* variants[] = {"no-simd", "batch-1", "batch-2", "batch-4"};
  for (int i = 0; i < 4; ++i) {
    report.metrics()["average_overhead_percent"][variants[i]] =
        sums[i] / rows;
  }
  report.wallclock()["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.write();
  return 0;
}
