// Cross-validation of ferrum-flow against the exhaustive dynamic audit:
// the flow analysis predicts a four-way outcome for every static fault
// site (masked / detected / crash-prone / sdc-vulnerable), and its
// one-directional soundness contract (DESIGN.md "flow") says the two
// predicted-safe buckets must never produce a dynamic SDC. Concretely:
//
//   containment = escapes landing on predicted sdc-vulnerable or
//                 crash-prone sites / total escapes   (1.0 when none)
//
// asserted at exactly 1.000 over 8 kernels x 4 techniques — the process
// exits non-zero on any miss, so the ctest/CI wiring turns a flow
// soundness bug into a red run. Crash-prone stays inside the containment
// union because a corrupted branch decision or address can silently
// alter output as well as crash.
//
// The converse direction is *reported*, not asserted: precision is the
// fraction of predicted-sdc-vulnerable sites the audit actually
// corrupted at least once, over the predicted-vulnerable sites it
// exercised at all (AuditOptions::site_outcomes supplies the per-site
// outcome tallies). Precision < 1 is expected — memory is untracked, so
// every store is treated as a potential output path — but reporting it
// keeps the prediction falsifiable instead of vacuous.
//
// Like analysis_static_coverage, the audit is exhaustive (sites x probe
// bits), so the workloads are compact kernels: integer ALU, division,
// doubles, arrays, branches and calls are all represented.
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "check/flow.h"
#include "fault/audit.h"
#include "pipeline/pipeline.h"
#include "telemetry/export.h"
#include "vm/vm.h"

using namespace ferrum;
using check::flow::Prediction;
using pipeline::Technique;

namespace {

struct Kernel {
  const char* name;
  std::string source;
};

std::string with_reps(const char* text, int reps) {
  std::string source(text);
  const std::string token = "%REPS%";
  const std::size_t pos = source.find(token);
  if (pos != std::string::npos) {
    source.replace(pos, token.size(), std::to_string(reps));
  }
  return source;
}

std::vector<Kernel> kernels(int scale) {
  return {
      {"mixsum", with_reps(R"MINIC(
        int seed = 7;
        int main() {
          int acc = 0;
          for (int r = 0; r < %REPS%; r++) {
            for (int i = 0; i < 10; i++) {
              seed = (seed * 1103515245 + 12345) % 65536;
              if (seed < 0) seed = -seed;
              if (seed % 3 == 0) acc = acc + seed;
              else acc = acc - seed / 2;
            }
            print_int(acc);
          }
          return 0;
        })MINIC", scale)},
      {"gcdchain", with_reps(R"MINIC(
        int gcd(int a, int b) {
          while (b != 0) {
            int t = a % b;
            a = b;
            b = t;
          }
          return a;
        }
        int main() {
          int acc = 0;
          for (int r = 0; r < %REPS%; r++) {
            for (int i = 1; i < 7; i++) {
              acc = acc + gcd(90 + i * 7, 36 + i);
            }
          }
          print_int(acc);
          return 0;
        })MINIC", scale)},
      {"newton", with_reps(R"MINIC(
        int main() {
          double x = 7.0;
          for (int r = 0; r < %REPS%; r++) {
            double guess = x / 2.0;
            for (int i = 0; i < 4; i++) {
              guess = (guess + x / guess) / 2.0;
            }
            print_f64(guess);
            x = x + 3.0;
          }
          return 0;
        })MINIC", scale)},
      {"argmax", with_reps(R"MINIC(
        int data[8];
        int main() {
          int seed = 3;
          for (int r = 0; r < %REPS%; r++) {
            for (int i = 0; i < 8; i++) {
              seed = (seed * 75 + 74) % 65537;
              data[i] = seed % 100;
            }
            int best = 0;
            for (int i = 1; i < 8; i++) {
              if (data[i] > data[best]) best = i;
            }
            print_int(best);
            print_int(data[best]);
          }
          return 0;
        })MINIC", scale)},
      {"dotprod", with_reps(R"MINIC(
        double a[6];
        double b[6];
        int main() {
          for (int r = 0; r < %REPS%; r++) {
            for (int i = 0; i < 6; i++) {
              a[i] = (double)(i + r + 1) / 3.0;
              b[i] = (double)(i * 2 + 1) / 5.0;
            }
            double dot = 0.0;
            for (int i = 0; i < 6; i++) {
              dot = dot + a[i] * b[i];
            }
            print_f64(dot);
          }
          return 0;
        })MINIC", scale)},
      {"histogram", with_reps(R"MINIC(
        int bins[5];
        int main() {
          int seed = 11;
          for (int i = 0; i < 5; i++) bins[i] = 0;
          for (int r = 0; r < %REPS%; r++) {
            for (int i = 0; i < 12; i++) {
              seed = (seed * 137 + 29) % 10007;
              bins[seed % 5] = bins[seed % 5] + 1;
            }
          }
          for (int i = 0; i < 5; i++) print_int(bins[i]);
          return 0;
        })MINIC", scale)},
      {"collatz", with_reps(R"MINIC(
        int steps(int n) {
          int count = 0;
          while (n != 1) {
            if (n % 2 == 0) n = n / 2;
            else n = 3 * n + 1;
            count = count + 1;
          }
          return count;
        }
        int main() {
          int longest = 0;
          for (int r = 0; r < %REPS%; r++) {
            for (int n = 2; n < 12; n++) {
              int c = steps(n + r);
              if (c > longest) longest = c;
            }
          }
          print_int(longest);
          return longest;
        })MINIC", scale)},
      {"matvec", with_reps(R"MINIC(
        int m[12];
        int v[4];
        int out[3];
        int main() {
          int seed = 5;
          for (int r = 0; r < %REPS%; r++) {
            for (int i = 0; i < 12; i++) {
              seed = (seed * 61 + 17) % 1009;
              m[i] = seed % 9 - 4;
            }
            for (int i = 0; i < 4; i++) v[i] = i + r;
            for (int i = 0; i < 3; i++) {
              int acc = 0;
              for (int j = 0; j < 4; j++) {
                acc = acc + m[i * 4 + j] * v[j];
              }
              out[i] = acc;
            }
            for (int i = 0; i < 3; i++) print_int(out[i]);
          }
          return 0;
        })MINIC", scale)},
  };
}

using SiteKey = std::tuple<std::string, int, int, std::string>;

const char* short_prediction(Prediction p) {
  switch (p) {
    case Prediction::kMasked: return "mask";
    case Prediction::kDetected: return "det";
    case Prediction::kCrashProne: return "crash";
    case Prediction::kSdcVulnerable: return "vuln";
  }
  return "?";
}

}  // namespace

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  const int scale = benchutil::env_scale();
  const int jobs = benchutil::env_jobs();
  const int ckpt_stride = benchutil::env_ckpt_stride();
  benchutil::BenchReport report("analysis_flow_accuracy");
  report.metrics()["scale"] = scale;

  std::printf("Flow-prediction cross-validation — exhaustive audit vs "
              "ferrum-flow (scale %d, %d worker(s))\n\n", scale, jobs);
  std::printf("%-10s %-10s | %5s %5s %5s %5s | %7s %7s | %11s %9s\n",
              "kernel", "technique", "mask", "det", "crash", "vuln",
              "inject", "escape", "containment", "precision");
  benchutil::print_rule(98);

  const Technique techniques[] = {Technique::kNone, Technique::kIrEddi,
                                  Technique::kHybrid, Technique::kFerrum};
  std::uint64_t total_injections = 0;
  std::uint64_t total_escapes = 0;
  std::uint64_t total_contained = 0;
  std::uint64_t total_vuln_hit = 0;
  std::uint64_t total_vuln_exercised = 0;
  std::uint64_t total_safe_sdc_sites = 0;
  for (const Kernel& kernel : kernels(scale)) {
    telemetry::Json kernel_json = telemetry::Json::object();
    for (Technique technique : techniques) {
      const auto build = pipeline::build(kernel.source, technique);
      const check::flow::FlowReport flow =
          check::flow::flow_program(build.program);

      fault::AuditOptions audit_options;
      // Same quadratic-cost gating as analysis_static_coverage: the
      // smoke scale probes one mid-word bit, larger scales spread.
      audit_options.probe_bits =
          scale <= 1 ? std::vector<int>{17} : std::vector<int>{0, 17, 63};
      audit_options.jobs = jobs;
      audit_options.ckpt_stride = ckpt_stride;
      audit_options.site_outcomes = true;
      const auto audit = fault::audit_program(build.program, audit_options);

      // Index the predictions by the coordinates the audit reports
      // (function name, block, inst, kind string — identical strings by
      // construction, all three tables share fault_site_kind_name).
      std::map<SiteKey, Prediction> predicted;
      for (const check::flow::FlowSite& site : flow.sites) {
        predicted.emplace(
            SiteKey{build.program.functions[
                        static_cast<std::size_t>(site.function)].name,
                    site.block, site.inst,
                    masm::fault_site_kind_name(site.kind)},
            site.prediction);
      }

      // Containment: every dynamic SDC escape must land on a site
      // predicted sdc-vulnerable or crash-prone. An escape on a
      // predicted-safe site (or on no flow site at all) is a flow
      // soundness bug and fails the bench.
      std::uint64_t contained = 0;
      for (const fault::AuditEscape& escape : audit.escapes) {
        const SiteKey key{escape.function, escape.block, escape.inst,
                          vm::fault_kind_name(escape.kind)};
        const auto it = predicted.find(key);
        if (it != predicted.end() &&
            (it->second == Prediction::kSdcVulnerable ||
             it->second == Prediction::kCrashProne)) {
          ++contained;
        } else {
          std::fprintf(stderr,
                       "containment MISS: %s/%s escape at %s b%d#%d (%s) "
                       "predicted %s\n",
                       kernel.name, pipeline::technique_name(technique),
                       escape.function.c_str(), escape.block, escape.inst,
                       vm::fault_kind_name(escape.kind),
                       it == predicted.end()
                           ? "<no site>"
                           : check::flow::prediction_name(it->second));
        }
      }

      // Precision over the sites the audit exercised: of the
      // predicted-sdc-vulnerable sites with at least one probe, how many
      // produced at least one SDC? Also re-check the safe buckets from
      // the tally side — a masked/detected site with an SDC probe is the
      // same soundness bug as a containment miss, caught even when the
      // escape list was truncated upstream.
      std::uint64_t vuln_exercised = 0;
      std::uint64_t vuln_hit = 0;
      std::uint64_t safe_sdc_sites = 0;
      for (const fault::SiteOutcome& site : audit.site_outcomes) {
        const SiteKey key{site.function, site.block, site.inst,
                          vm::fault_kind_name(site.kind)};
        const auto it = predicted.find(key);
        if (it == predicted.end()) continue;
        const bool saw_sdc = site.of(fault::ProbeOutcome::kSdc) > 0;
        if (it->second == Prediction::kSdcVulnerable) {
          ++vuln_exercised;
          if (saw_sdc) ++vuln_hit;
        } else if (saw_sdc && (it->second == Prediction::kMasked ||
                               it->second == Prediction::kDetected)) {
          ++safe_sdc_sites;
          std::fprintf(stderr,
                       "safe-bucket MISS: %s/%s site %s b%d#%d (%s) "
                       "predicted %s but produced an SDC\n",
                       kernel.name, pipeline::technique_name(technique),
                       site.function.c_str(), site.block, site.inst,
                       vm::fault_kind_name(site.kind),
                       check::flow::prediction_name(it->second));
        }
      }

      total_injections += audit.injections;
      total_escapes += audit.escapes.size();
      total_contained += contained;
      total_vuln_hit += vuln_hit;
      total_vuln_exercised += vuln_exercised;
      total_safe_sdc_sites += safe_sdc_sites;
      const double containment =
          audit.escapes.empty()
              ? 1.0
              : static_cast<double>(contained) /
                    static_cast<double>(audit.escapes.size());
      const double precision =
          vuln_exercised == 0 ? 1.0
                              : static_cast<double>(vuln_hit) /
                                    static_cast<double>(vuln_exercised);

      std::printf(
          "%-10s %-10s | %5llu %5llu %5llu %5llu | %7llu %7zu | %11.3f "
          "%9.3f\n",
          kernel.name, pipeline::technique_name(technique),
          static_cast<unsigned long long>(flow.profile.of(
              Prediction::kMasked)),
          static_cast<unsigned long long>(flow.profile.of(
              Prediction::kDetected)),
          static_cast<unsigned long long>(flow.profile.of(
              Prediction::kCrashProne)),
          static_cast<unsigned long long>(flow.profile.of(
              Prediction::kSdcVulnerable)),
          static_cast<unsigned long long>(audit.injections),
          audit.escapes.size(), containment, precision);

      telemetry::Json cell = telemetry::Json::object();
      cell["flow"] = check::flow::to_json(flow, build.program);
      cell["audit"] = telemetry::to_json(audit);
      cell["contained_escapes"] = contained;
      cell["containment"] = containment;
      cell["vulnerable_exercised"] = vuln_exercised;
      cell["vulnerable_hit"] = vuln_hit;
      cell["precision"] = precision;
      cell["safe_sdc_sites"] = safe_sdc_sites;
      kernel_json[pipeline::technique_name(technique)] = cell;
      (void)short_prediction;
    }
    report.metrics()["kernels"][kernel.name] = kernel_json;
  }
  benchutil::print_rule(98);
  const double containment =
      total_escapes == 0 ? 1.0
                         : static_cast<double>(total_contained) /
                               static_cast<double>(total_escapes);
  const double precision =
      total_vuln_exercised == 0
          ? 1.0
          : static_cast<double>(total_vuln_hit) /
                static_cast<double>(total_vuln_exercised);
  std::printf("\nOverall containment: %llu/%llu escapes predicted "
              "vulnerable-or-crash-prone (%.3f). Anything below 1.000 is "
              "a ferrum-flow soundness bug.\n",
              static_cast<unsigned long long>(total_contained),
              static_cast<unsigned long long>(total_escapes), containment);
  std::printf("Overall precision: %llu/%llu exercised predicted-vulnerable "
              "sites produced an SDC (%.3f) — expected < 1, reported so "
              "the prediction stays falsifiable.\n",
              static_cast<unsigned long long>(total_vuln_hit),
              static_cast<unsigned long long>(total_vuln_exercised),
              precision);
  report.metrics()["total_escapes"] = total_escapes;
  report.metrics()["contained_escapes"] = total_contained;
  report.metrics()["containment"] = containment;
  report.metrics()["vulnerable_exercised"] = total_vuln_exercised;
  report.metrics()["vulnerable_hit"] = total_vuln_hit;
  report.metrics()["precision"] = precision;
  report.metrics()["safe_sdc_sites"] = total_safe_sdc_sites;
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.wallclock()["wall_seconds"] = wall_seconds;
  // Throughput for the baselines tripwire (scripts/bench_diff.py):
  // includes every audit probe across the 32 cells.
  report.wallclock()["injections_per_second"] =
      wall_seconds > 0.0 ? static_cast<double>(total_injections) /
                               wall_seconds
                         : 0.0;
  report.write();
  const bool sound =
      total_contained == total_escapes && total_safe_sdc_sites == 0;
  if (!sound) {
    std::fprintf(stderr, "\nFAIL: flow containment below 1.000\n");
  }
  return sound ? 0 : 1;
}
