// check_smoke — tier-1 harness for the static protection verifier. Runs
// ferrum-check over every workload × protection configuration (the same
// sweep `ferrumc lint` exposes), writes the coverage artifact through the
// bench telemetry layer, then re-reads and validates it against the bench
// JSON schema bench_smoke enforces:
//
//   1. cleanliness — zero violations on every unmutated protected build
//      (a violation here is a protection-pass bug, not a lint finding);
//   2. coverage — every cell classifies at least one site, and protected
//      techniques leave strictly fewer unprotected sites than baseline;
//   3. schema — the artifact carries bench/schema_version/metrics/
//      wallclock and each cell's static report is a ferrum.check.v1 doc.
//
// Usage: check_smoke   (registered as a ctest; artifact lands in
// $FERRUM_BENCH_DIR or the working directory)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "check/check.h"
#include "pipeline/pipeline.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;
using telemetry::Json;

namespace {

int failures = 0;

void fail(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  ++failures;
}

struct Config {
  const char* name;
  Technique technique;
  pipeline::BuildOptions options;
  check::CheckOptions check_options;
};

std::vector<Config> configs() {
  std::vector<Config> out;
  out.push_back({"ir-eddi", Technique::kIrEddi, {}, {}});
  out.push_back({"hybrid", Technique::kHybrid, {}, {}});
  out.push_back({"ferrum", Technique::kFerrum, {}, {}});
  {
    Config c{"ferrum-nosimd", Technique::kFerrum, {}, {}};
    c.options.ferrum.use_simd = false;
    out.push_back(c);
  }
  {
    Config c{"ferrum-batch1", Technique::kFerrum, {}, {}};
    c.options.ferrum.simd_batch = 1;
    out.push_back(c);
  }
  {
    Config c{"ferrum-stack", Technique::kFerrum, {}, {}};
    c.options.ferrum.force_stack_redundancy = true;
    out.push_back(c);
  }
  {
    Config c{"ferrum-stores", Technique::kFerrum, {}, {}};
    c.options.ferrum.protect_store_data = true;
    c.check_options.store_data_sites = true;
    out.push_back(c);
  }
  return out;
}

/// Validates the written artifact the way bench_smoke validates bench
/// outputs: parseable, schema keys present, and every cell clean.
void validate_artifact(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    fail("cannot open " + path);
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = Json::parse(buffer.str());
  if (!parsed.has_value()) {
    fail(path + " does not parse as JSON");
    return;
  }
  for (const char* key : {"bench", "schema_version", "metrics", "wallclock"}) {
    if (parsed->find(key) == nullptr) {
      fail(path + " lacks required key '" + key + "'");
      return;
    }
  }
  if (parsed->find("bench")->as_string() != "check_smoke") {
    fail(path + " 'bench' key is not 'check_smoke'");
  }
  Json& workloads = (*parsed)["metrics"]["workloads"];
  if (workloads.size() == 0) {
    fail(path + " metrics carry no workloads");
    return;
  }
  for (const auto& [workload, cells] : workloads.fields()) {
    for (const auto& [config, cell] : cells.fields()) {
      const Json* static_report = cell.find("static");
      const Json* schema =
          static_report == nullptr ? nullptr : static_report->find("schema");
      if (schema == nullptr || schema->as_string() != "ferrum.check.v1") {
        fail(workload + "/" + config +
             ": static report is not a ferrum.check.v1 document");
        continue;
      }
      const Json* violations = static_report->find("violations");
      if (violations == nullptr || violations->size() != 0) {
        fail(workload + "/" + config + ": artifact records violations");
      }
    }
  }
}

}  // namespace

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  benchutil::BenchReport report("check_smoke");

  std::printf("ferrum-check lint sweep — workloads x protection configs\n\n");
  std::printf("%-15s %-14s | %5s %6s %6s %6s\n", "workload", "config", "viol",
              "prot", "benign", "unprot");
  benchutil::print_rule(72);

  for (const auto& workload : workloads::all()) {
    Json row = Json::object();
    // Baseline unprotected fraction: protection grows the program (so
    // absolute site counts rise), but the unprotected share must drop.
    double baseline_fraction = 1.0;
    {
      const auto build = pipeline::build(workload.source, Technique::kNone);
      const auto base = check::check_program(build.program);
      baseline_fraction = static_cast<double>(base.unprotected_sites) /
                          static_cast<double>(base.total_sites());
    }
    for (const Config& config : configs()) {
      check::CheckReport result;
      try {
        const auto build = pipeline::build(workload.source, config.technique,
                                           config.options);
        result = check::check_program(build.program, config.check_options);
      } catch (const std::exception& e) {
        fail(std::string(workload.name) + "/" + config.name +
             ": build failed: " + e.what());
        continue;
      }
      std::printf("%-15s %-14s | %5zu %6llu %6llu %6llu\n", workload.name,
                  config.name, result.violations.size(),
                  static_cast<unsigned long long>(result.protected_sites),
                  static_cast<unsigned long long>(result.benign_sites),
                  static_cast<unsigned long long>(result.unprotected_sites));
      if (!result.clean()) {
        fail(std::string(workload.name) + "/" + config.name + ": " +
             check::to_string(result.violations.front()));
      }
      if (result.total_sites() == 0) {
        fail(std::string(workload.name) + "/" + config.name +
             ": classified no fault sites");
      }
      const double fraction =
          static_cast<double>(result.unprotected_sites) /
          static_cast<double>(result.total_sites());
      if (result.protected_sites == 0 || fraction >= baseline_fraction) {
        fail(std::string(workload.name) + "/" + config.name +
             ": protection did not shrink the unprotected fraction");
      }
      Json cell = Json::object();
      cell["static"] = check::to_json(result);
      row[config.name] = cell;
    }
    report.metrics()["workloads"][workload.name] = row;
  }
  benchutil::print_rule(72);

  report.wallclock()["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const std::string path = report.write();
  if (path.empty()) {
    fail("artifact write failed");
  } else {
    validate_artifact(path);
  }

  if (failures == 0) std::printf("check_smoke: all checks passed\n");
  return failures == 0 ? 0 : 1;
}
