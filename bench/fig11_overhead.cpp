// Reproduces Fig 11: runtime performance overhead of each protection
// technique, measured with the VM's port/dependency timing model
// (substitute for the paper's wall-clock Xeon measurements; see DESIGN.md).
//
// Paper reference points (averages): IR-LEVEL-EDDI 62.27%,
// HYBRID-ASSEMBLY-LEVEL-EDDI 83.39%, FERRUM 29.83% — i.e. FERRUM is the
// cheapest and HYBRID the most expensive, with FERRUM roughly 50% faster
// than IR-level EDDI.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "pipeline/pipeline.h"
#include "telemetry/export.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  const int scale = benchutil::env_scale();
  benchutil::BenchReport report("fig11_overhead");
  report.metrics()["scale"] = scale;
  std::printf("Fig 11 — runtime overhead from the timing model "
              "(workload scale x%d)\n\n", scale);
  std::printf("%-15s %12s | %10s %10s %10s | %10s %10s %10s\n", "benchmark",
              "raw cycles", "ir-eddi", "hybrid", "ferrum", "ir ovh",
              "hyb ovh", "fer ovh");
  benchutil::print_rule(100);

  const Technique techniques[] = {Technique::kNone, Technique::kIrEddi,
                                  Technique::kHybrid, Technique::kFerrum};
  double overhead_sum[3] = {0, 0, 0};
  int rows = 0;

  for (const auto& base : workloads::all()) {
    const auto w = workloads::scaled(base.name, scale);
    std::uint64_t cycles[4] = {0, 0, 0, 0};
    telemetry::Json workload = telemetry::Json::object();
    for (int t = 0; t < 4; ++t) {
      auto build = pipeline::build(w.source, techniques[t]);
      vm::VmOptions options;
      options.timing = true;
      options.profile = true;
      const auto result = vm::run(build.program, options);
      if (!result.ok()) {
        std::printf("%-15s FAILED (%s)\n", w.name.c_str(),
                    vm::exit_status_name(result.status));
        return 1;
      }
      cycles[t] = result.cycles;
      telemetry::Json tech = telemetry::Json::object();
      tech["cycles"] = result.cycles;
      tech["steps"] = result.steps;
      // Per-port cycle attribution split by InstOrigin: the mechanism
      // behind the figure. FERRUM's check instructions land on the vector
      // port class; hybrid's land on the ALU/branch classes.
      tech["timing"] = telemetry::to_json(*result.timing_stats);
      tech["profile"] = telemetry::to_json(*result.profile);
      workload[pipeline::technique_name(techniques[t])] = tech;
    }
    double overhead[3];
    for (int t = 0; t < 3; ++t) {
      overhead[t] = 100.0 *
                    (static_cast<double>(cycles[t + 1]) - cycles[0]) /
                    static_cast<double>(cycles[0]);
      overhead_sum[t] += overhead[t];
      workload[pipeline::technique_name(techniques[t + 1])]
              ["overhead_percent"] = overhead[t];
    }
    report.metrics()["workloads"][w.name] = workload;
    ++rows;
    std::printf("%-15s %12llu | %10llu %10llu %10llu | %9.1f%% %9.1f%% "
                "%9.1f%%\n",
                w.name.c_str(), static_cast<unsigned long long>(cycles[0]),
                static_cast<unsigned long long>(cycles[1]),
                static_cast<unsigned long long>(cycles[2]),
                static_cast<unsigned long long>(cycles[3]), overhead[0],
                overhead[1], overhead[2]);
  }
  benchutil::print_rule(100);
  std::printf("%-15s %12s | %10s %10s %10s | %9.1f%% %9.1f%% %9.1f%%\n",
              "AVERAGE", "", "", "", "", overhead_sum[0] / rows,
              overhead_sum[1] / rows, overhead_sum[2] / rows);
  std::printf("\npaper:  ir-eddi 62.3%%, hybrid 83.4%%, ferrum 29.8%% "
              "(ordering: ferrum < ir-eddi < hybrid)\n");

  telemetry::Json average = telemetry::Json::object();
  average["ir-level-eddi"] = overhead_sum[0] / rows;
  average["hybrid-assembly-level-eddi"] = overhead_sum[1] / rows;
  average["ferrum"] = overhead_sum[2] / rows;
  report.metrics()["average_overhead_percent"] = average;
  report.wallclock()["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.write();
  return 0;
}
