// bench_smoke — CI harness for the experiment binaries. Runs every bench
// with tiny knobs (FERRUM_TRIALS/FERRUM_SCALE) into a scratch directory,
// then validates that each BENCH_<name>.json artifact parses, carries the
// required schema keys, and that the telemetry honours its two core
// promises:
//   1. determinism — the "metrics" section is byte-identical across
//      FERRUM_JOBS values (the "wallclock" section is exempt);
//   2. mechanism — fig11's per-port attribution shows FERRUM's
//      protection-origin instructions peaking on the vector port class
//      while hybrid's land on the ALU/branch classes.
//
// Usage: bench_smoke <bench-binary-dir>   (registered as a ctest)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.h"

using ferrum::telemetry::Json;

namespace {

int failures = 0;

void fail(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  ++failures;
}

std::optional<Json> load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    fail("cannot open " + path);
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto json = Json::parse(buffer.str());
  if (!json.has_value()) fail(path + " does not parse as JSON");
  return json;
}

/// Runs `binary` with the smoke-test knobs, artifacts into `out_dir`.
bool run_bench(const std::string& binary, const std::string& out_dir,
               int jobs, const std::string& extra_args = "") {
  const std::string command =
      "env FERRUM_TRIALS=4 FERRUM_SCALE=1 FERRUM_JOBS=" +
      std::to_string(jobs) + " FERRUM_BENCH_DIR=" + out_dir + " " + binary +
      (extra_args.empty() ? "" : " " + extra_args) + " > /dev/null";
  if (std::system(command.c_str()) != 0) {
    fail(binary + " exited non-zero");
    return false;
  }
  return true;
}

/// Parses the artifact and checks the required schema keys.
std::optional<Json> check_artifact(const std::string& out_dir,
                                   const std::string& name) {
  const std::string path = out_dir + "/BENCH_" + name + ".json";
  auto json = load_json(path);
  if (!json.has_value()) return std::nullopt;
  for (const char* key : {"bench", "schema_version", "metrics", "wallclock"}) {
    if (json->find(key) == nullptr) {
      fail(path + " lacks required key '" + key + "'");
      return std::nullopt;
    }
  }
  if (const Json* bench = json->find("bench");
      bench != nullptr && bench->as_string() != name) {
    fail(path + " 'bench' key is '" + bench->as_string() + "', want '" +
         name + "'");
  }
  return json;
}

std::uint64_t protection_issues(const Json& tech_json, const char* port) {
  const Json* timing = tech_json.find("timing");
  if (timing == nullptr) return 0;
  const Json* ports = timing->find("ports");
  if (ports == nullptr) return 0;
  const Json* entry = ports->find(port);
  if (entry == nullptr) return 0;
  const Json* issues = entry->find("issues");
  if (issues == nullptr) return 0;
  const Json* count = issues->find("protection");
  return count == nullptr ? 0 : count->as_uint();
}

/// Acceptance check on fig11: FERRUM's check instructions predominantly
/// occupy the vector port class; hybrid's land on ALU/branch.
void check_fig11_mechanism(const Json& fig11) {
  const Json* workloads = fig11.find("metrics");
  workloads = workloads == nullptr ? nullptr : workloads->find("workloads");
  if (workloads == nullptr) {
    fail("fig11_overhead metrics lack 'workloads'");
    return;
  }
  std::uint64_t ferrum_vec = 0, ferrum_alu = 0, ferrum_branch = 0;
  std::uint64_t hybrid_vec = 0, hybrid_alu = 0, hybrid_branch = 0;
  for (const auto& [name, workload] : workloads->fields()) {
    const Json* ferrum = workload.find("ferrum");
    const Json* hybrid = workload.find("hybrid-assembly-level-eddi");
    if (ferrum == nullptr || hybrid == nullptr) {
      fail("fig11_overhead workload '" + name + "' lacks technique data");
      return;
    }
    ferrum_vec += protection_issues(*ferrum, "vec");
    ferrum_alu += protection_issues(*ferrum, "alu");
    ferrum_branch += protection_issues(*ferrum, "branch");
    hybrid_vec += protection_issues(*hybrid, "vec");
    hybrid_alu += protection_issues(*hybrid, "alu");
    hybrid_branch += protection_issues(*hybrid, "branch");
  }
  if (!(ferrum_vec > ferrum_alu && ferrum_vec > ferrum_branch)) {
    fail("fig11: FERRUM protection issues do not peak on the vector port");
  }
  if (!(hybrid_alu > hybrid_vec && hybrid_branch > hybrid_vec)) {
    fail("fig11: hybrid protection issues do not land on ALU/branch");
  }
  if (ferrum_vec == 0) fail("fig11: FERRUM vector-port attribution is empty");
}

/// Acceptance check on the static-coverage cross-validation: every
/// dynamically observed SDC escape must have landed on a statically
/// unprotected site (agreement == 1.0), and the unprotected audit must
/// actually have produced escapes (otherwise containment is vacuous).
void check_static_coverage(Json& artifact) {
  Json& metrics = artifact["metrics"];
  const Json* agreement = metrics.find("agreement");
  if (agreement == nullptr) {
    fail("analysis_static_coverage metrics lack 'agreement'");
    return;
  }
  if (agreement->as_double() != 1.0) {
    fail("analysis_static_coverage agreement below 1.0: a dynamic SDC "
         "escaped outside the statically-unprotected set");
  }
  const Json* escapes = metrics.find("total_escapes");
  if (escapes == nullptr || escapes->as_uint() == 0) {
    fail("analysis_static_coverage observed no escapes — containment "
         "check is vacuous");
  }
  const Json* dead = metrics.find("dead_escape_misses");
  if (dead == nullptr) {
    fail("analysis_static_coverage metrics lack 'dead_escape_misses'");
  } else if (dead->as_uint() != 0) {
    fail("analysis_static_coverage found escapes on statically-dead bits — "
         "a ferrum-prune liveness soundness bug");
  }
}

/// Acceptance check on the flow-prediction cross-validation: every
/// dynamic SDC escape must have landed on a site ferrum-flow predicted
/// sdc-vulnerable or crash-prone (containment == 1.0), no predicted-safe
/// site may have produced an SDC, and the sweep must have observed
/// escapes (otherwise containment is vacuous). Precision is reported,
/// not asserted — the flow contract is one-directional.
void check_flow_accuracy(Json& artifact) {
  Json& metrics = artifact["metrics"];
  const Json* containment = metrics.find("containment");
  if (containment == nullptr) {
    fail("analysis_flow_accuracy metrics lack 'containment'");
    return;
  }
  if (containment->as_double() != 1.0) {
    fail("analysis_flow_accuracy containment below 1.0: a dynamic SDC "
         "escaped outside the predicted-vulnerable set");
  }
  const Json* escapes = metrics.find("total_escapes");
  if (escapes == nullptr || escapes->as_uint() == 0) {
    fail("analysis_flow_accuracy observed no escapes — containment check "
         "is vacuous");
  }
  const Json* safe = metrics.find("safe_sdc_sites");
  if (safe == nullptr) {
    fail("analysis_flow_accuracy metrics lack 'safe_sdc_sites'");
  } else if (safe->as_uint() != 0) {
    fail("analysis_flow_accuracy found an SDC on a predicted-safe site — "
         "a ferrum-flow soundness bug");
  }
  if (metrics.find("precision") == nullptr) {
    fail("analysis_flow_accuracy metrics lack 'precision'");
  }
}

/// Schema + invariant check on bench_vm's dispatch/batch telemetry: the
/// wallclock section must carry the per-technique dispatch rates and the
/// batch-width sweep, and the metrics section must assert that switch vs
/// threaded dispatch and scalar vs batched campaigns agree exactly.
void check_bench_vm(const Json& artifact) {
  const Json* metrics = artifact.find("metrics");
  const Json* wallclock = artifact.find("wallclock");
  if (metrics == nullptr || wallclock == nullptr) return;  // already failed
  for (const char* section : {"dispatch_equivalent", "campaign_equivalent"}) {
    const Json* flags = metrics->find(section);
    if (flags == nullptr) {
      fail(std::string("bench_vm metrics lack '") + section + "'");
      continue;
    }
    if (flags->fields().empty()) {
      fail(std::string("bench_vm '") + section + "' has no techniques");
    }
    for (const auto& [technique, flag] : flags->fields()) {
      if (!flag.as_bool()) {
        fail("bench_vm " + std::string(section) + "['" + technique +
             "'] is false — dispatch/batch paths diverged from the "
             "reference interpreter");
      }
    }
  }
  const Json* dispatch = wallclock->find("dispatch");
  if (dispatch == nullptr || dispatch->fields().empty()) {
    fail("bench_vm wallclock lacks a populated 'dispatch' section");
  } else {
    for (const auto& [technique, row] : dispatch->fields()) {
      for (const char* key :
           {"threaded_available", "switch_minst_per_second",
            "threaded_minst_per_second", "speedup"}) {
        if (row.find(key) == nullptr) {
          fail("bench_vm dispatch['" + technique + "'] lacks '" + key + "'");
        }
      }
    }
  }
  const Json* campaign = wallclock->find("campaign_throughput");
  if (campaign == nullptr || campaign->fields().empty()) {
    fail("bench_vm wallclock lacks a populated 'campaign_throughput'");
  } else {
    for (const auto& [technique, row] : campaign->fields()) {
      for (const char* key :
           {"cold_trials_per_second", "switch_scalar_trials_per_second",
            "ckpt_trials_per_second", "speedup_vs_switch_scalar"}) {
        if (row.find(key) == nullptr) {
          fail("bench_vm campaign_throughput['" + technique + "'] lacks '" +
               key + "'");
        }
      }
      // The rejoin counter must ride with the checkpoint accounting.
      const Json* ckpt = row.find("ckpt");
      const Json* ff = ckpt != nullptr ? ckpt->find("ckpt") : nullptr;
      if (ff == nullptr || ff->find("rejoins") == nullptr) {
        fail("bench_vm campaign_throughput['" + technique +
             "'] lacks ckpt.rejoins");
      }
    }
  }
  const Json* batch = wallclock->find("batch");
  if (batch == nullptr) {
    fail("bench_vm wallclock lacks a 'batch' section");
  } else {
    for (const char* width : {"width1", "width4", "width8"}) {
      const Json* row = batch->find(width);
      if (row == nullptr) {
        fail(std::string("bench_vm batch section lacks '") + width + "'");
        continue;
      }
      for (const char* key : {"trials_per_second", "speedup_vs_width1"}) {
        if (row->find(key) == nullptr) {
          fail(std::string("bench_vm batch['") + width + "'] lacks '" +
               key + "'");
        }
      }
    }
  }
}

/// Acceptance check on the compose cross-validation: every workload x
/// technique cell must have composed exactly (agreement == 1.0 over a
/// non-empty frame), and the warm re-composition must have executed zero
/// engine trials while exporting byte-identical counts.
void check_compose_accuracy(Json& artifact) {
  Json& metrics = artifact["metrics"];
  const Json* agreement = metrics.find("agreement");
  if (agreement == nullptr) {
    fail("analysis_compose_accuracy metrics lack 'agreement'");
    return;
  }
  if (agreement->as_double() != 1.0) {
    fail("analysis_compose_accuracy agreement below 1.0: composed section "
         "summaries diverged from the monolithic audit");
  }
  const Json* injections = metrics.find("total_injections");
  if (injections == nullptr || injections->as_uint() == 0) {
    fail("analysis_compose_accuracy composed no injections — the "
         "agreement check is vacuous");
  }
  const Json* zero = metrics.find("warm_zero_trials");
  if (zero == nullptr || !zero->as_bool()) {
    fail("analysis_compose_accuracy warm re-composition executed engine "
         "trials");
  }
  const Json* identical = metrics.find("warm_matches_cold");
  if (identical == nullptr || !identical->as_bool()) {
    fail("analysis_compose_accuracy warm re-composition not byte-identical "
         "to cold");
  }
}

/// Acceptance check on the early-stop cross-validation: interval
/// coverage at or above nominal, canonical-prefix containment, and the
/// bench's own verdicts (the 5x reduction floor arms itself only at
/// realistic budgets — smoke budgets cannot cross a stop boundary).
void check_earlystop_accuracy(Json& artifact) {
  Json& metrics = artifact["metrics"];
  const Json* coverage = metrics.find("coverage_ok");
  if (coverage == nullptr || !coverage->as_bool()) {
    fail("analysis_earlystop_accuracy interval coverage below nominal");
  }
  const Json* prefix = metrics.find("prefix_containment");
  if (prefix == nullptr || !prefix->as_bool()) {
    fail("analysis_earlystop_accuracy adaptive counts exceeded the "
         "full-budget counts — canonical-prefix property violated");
  }
  const Json* reduction = metrics.find("reduction_ok");
  if (reduction == nullptr || !reduction->as_bool()) {
    fail("analysis_earlystop_accuracy mean reduction below the 5x floor");
  }
  const Json* intervals = metrics.find("intervals_total");
  if (intervals == nullptr || intervals->as_uint() == 0) {
    fail("analysis_earlystop_accuracy checked no intervals — the coverage "
         "check is vacuous");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <bench-binary-dir>\n", argv[0]);
    return 2;
  }
  const std::string bin_dir = argv[1];
  const std::string out_dir = "bench_smoke_out";
  std::system(("rm -rf " + out_dir + " && mkdir -p " + out_dir).c_str());

  // Google-benchmark binaries write their telemetry before the benchmark
  // loop; --benchmark_list_tests skips the (slow) measured iterations.
  struct Bench {
    const char* name;
    const char* extra_args;
  };
  const Bench benches[] = {
      {"table1_matrix", ""},
      {"table2_benchmarks", ""},
      {"fig10_sdc_coverage", ""},
      {"fig11_overhead", ""},
      {"ablation_batch", ""},
      {"ablation_spare", ""},
      {"ablation_storedata", ""},
      {"ablation_multibit", ""},
      {"pareto_selective", ""},
      {"detection_latency", ""},
      {"analysis_rootcause", ""},
      {"analysis_static_coverage", ""},
      {"analysis_flow_accuracy", ""},
      {"analysis_compose_accuracy", ""},
      {"analysis_earlystop_accuracy", ""},
      {"bench_pass_time", "--benchmark_list_tests=true"},
      {"bench_vm", "--benchmark_list_tests=true"},
      {"bench_service", ""},
  };
  for (const Bench& bench : benches) {
    std::printf("smoke: %s\n", bench.name);
    std::fflush(stdout);
    if (!run_bench(bin_dir + "/" + bench.name, out_dir, /*jobs=*/2,
                   bench.extra_args)) {
      continue;
    }
    check_artifact(out_dir, bench.name);
  }

  // Determinism: the metrics section must be byte-identical across
  // FERRUM_JOBS values. fig10 exercises the full campaign path.
  std::printf("smoke: fig10 determinism across FERRUM_JOBS\n");
  std::fflush(stdout);
  const std::string jobs1_dir = out_dir + "/jobs1";
  std::system(("mkdir -p " + jobs1_dir).c_str());
  if (run_bench(bin_dir + "/fig10_sdc_coverage", jobs1_dir, /*jobs=*/1)) {
    const auto jobs1 = load_json(jobs1_dir + "/BENCH_fig10_sdc_coverage.json");
    const auto jobs2 = load_json(out_dir + "/BENCH_fig10_sdc_coverage.json");
    if (jobs1.has_value() && jobs2.has_value()) {
      const Json* m1 = jobs1->find("metrics");
      const Json* m2 = jobs2->find("metrics");
      if (m1 == nullptr || m2 == nullptr) {
        fail("fig10 artifacts lack a metrics section");
      } else if (m1->dump() != m2->dump()) {
        fail("fig10 metrics differ between FERRUM_JOBS=1 and FERRUM_JOBS=2");
      }
    }
  }

  if (const auto fig11 = check_artifact(out_dir, "fig11_overhead");
      fig11.has_value()) {
    check_fig11_mechanism(*fig11);
  }

  if (auto coverage = check_artifact(out_dir, "analysis_static_coverage");
      coverage.has_value()) {
    check_static_coverage(*coverage);
  }

  if (const auto vm = check_artifact(out_dir, "bench_vm"); vm.has_value()) {
    check_bench_vm(*vm);
  }

  if (auto flow = check_artifact(out_dir, "analysis_flow_accuracy");
      flow.has_value()) {
    check_flow_accuracy(*flow);
  }

  if (auto compose = check_artifact(out_dir, "analysis_compose_accuracy");
      compose.has_value()) {
    check_compose_accuracy(*compose);
  }

  if (auto earlystop = check_artifact(out_dir, "analysis_earlystop_accuracy");
      earlystop.has_value()) {
    check_earlystop_accuracy(*earlystop);
  }

  // The service bench asserts its own cold/warm contract and exits
  // non-zero on violation; re-check the recorded verdict here so a
  // future edit that stops asserting is still caught.
  if (const auto service = check_artifact(out_dir, "bench_service");
      service.has_value()) {
    const Json* metrics = service->find("metrics");
    const Json* matches =
        metrics != nullptr ? metrics->find("warm_matches_cold") : nullptr;
    const Json* warm_trials =
        metrics != nullptr ? metrics->find("warm_trials_executed") : nullptr;
    if (matches == nullptr || !matches->as_bool()) {
      fail("bench_service warm pass not byte-identical to cold");
    }
    if (warm_trials == nullptr || warm_trials->as_uint() != 0) {
      fail("bench_service warm pass executed engine trials");
    }
    const Json* shared =
        metrics != nullptr ? metrics->find("golden_shared") : nullptr;
    if (shared == nullptr || !shared->as_bool()) {
      fail("bench_service did not share golden runs across same-program "
           "cells");
    }
  }

  if (failures == 0) std::printf("bench_smoke: all checks passed\n");
  return failures == 0 ? 0 : 1;
}
