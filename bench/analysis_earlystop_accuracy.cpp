// Cross-validation of adaptive early stopping (EXPERIMENTS.md A10): on
// every workload x technique cell the stop rule must (a) cut the mean
// trial count by at least 5x at the default target half-width, and
// (b) remain statistically honest — the Wilson interval reported at the
// stop boundary must cover the full-budget estimate of the same outcome
// rate at least as often as the nominal 95% level promises.
//
// The comparison leans on the canonical-prefix property: an adaptive
// campaign at seed s executes exactly the first `executed` trials of the
// full-budget campaign at the same seed, so the full-budget counts are
// the natural ground truth and per-outcome prefix containment
// (adaptive_count <= full_count) is a hard invariant, asserted here
// alongside the coverage and reduction numbers.
//
// Smoke scales (tiny FERRUM_TRIALS) cannot stop early — the planned
// budget sits below the rule's first boundary — so the 5x floor is only
// enforced once the budget is realistic (>= 2048 planned trials); the
// artifact records whether the floor was armed.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/campaign.h"
#include "pipeline/pipeline.h"
#include "telemetry/export.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  const int scale = benchutil::env_scale();
  const int trials = benchutil::env_trials(4096);
  const int jobs = benchutil::env_jobs();
  const int ckpt_stride = benchutil::env_ckpt_stride();
  const int batch = benchutil::env_batch();
  // FERRUM_CI_TARGET overrides the default 0.05 target; 0 would disable
  // the rule and make the experiment vacuous, so clamp to the default.
  double target = env_ci_target(0.05);
  if (target <= 0.0) target = 0.05;
  // The 5x floor is the paper-level claim and needs a budget the rule
  // can actually shrink; tiny smoke budgets never cross a boundary.
  const bool enforce_reduction = trials >= 2048;
  // Below that budget the run is a pure smoke pass (boundary ladder never
  // fires), so a minimal matrix suffices — under TSan the full one blows
  // the bench_smoke budget without buying extra coverage.
  const int replicates = !enforce_reduction ? 1 : scale <= 1 ? 2 : 5;

  benchutil::BenchReport report("analysis_earlystop_accuracy");
  report.metrics()["scale"] = scale;
  report.metrics()["planned_trials"] = trials;
  report.metrics()["target_half_width"] = target;
  report.metrics()["replicates"] = replicates;
  report.metrics()["reduction_floor_enforced"] = enforce_reduction;

  std::printf("Adaptive early-stopping cross-validation — stopped-prefix "
              "intervals vs full-budget estimates (target %.3f, %d planned "
              "trial(s), %d replicate(s), %d worker(s))\n\n",
              target, trials, replicates, jobs);
  std::printf("%-12s %-10s | %8s %8s %8s | %8s | %8s\n", "workload",
              "technique", "planned", "stopped", "reduce", "maxhw", "covered");
  benchutil::print_rule(78);

  std::vector<Technique> techniques = {Technique::kNone, Technique::kIrEddi,
                                       Technique::kHybrid, Technique::kFerrum};
  if (!enforce_reduction)
    techniques = {Technique::kNone, Technique::kFerrum};
  std::uint64_t cells = 0;
  std::uint64_t intervals_total = 0;
  std::uint64_t intervals_covered = 0;
  double reduction_sum = 0.0;
  std::uint64_t reduction_samples = 0;
  bool prefix_contained = true;
  for (const auto& workload : workloads::all()) {
    telemetry::Json workload_json = telemetry::Json::object();
    for (Technique technique : techniques) {
      const auto build = pipeline::build(workload.source, technique);
      std::uint64_t cell_covered = 0;
      std::uint64_t cell_intervals = 0;
      double cell_reduction = 0.0;
      double cell_max_hw = 0.0;
      int cell_executed = 0;
      for (int r = 0; r < replicates; ++r) {
        fault::CampaignOptions options;
        options.trials = trials;
        options.seed = 0xa5e0u + 977u * static_cast<unsigned>(r);
        options.jobs = jobs;
        options.ckpt_stride = ckpt_stride;
        options.batch = batch;
        const fault::CampaignResult full =
            fault::run_campaign(build.program, options);
        options.max_half_width = target;
        const fault::CampaignResult adaptive =
            fault::run_campaign(build.program, options);
        cell_reduction += adaptive.adaptive.reduction();
        reduction_sum += adaptive.adaptive.reduction();
        ++reduction_samples;
        cell_executed = adaptive.adaptive.executed_trials;
        for (int o = 0; o < 4; ++o) {
          if (adaptive.counts[o] > full.counts[o]) prefix_contained = false;
          const double truth =
              full.trials() > 0
                  ? static_cast<double>(full.counts[o]) / full.trials()
                  : 0.0;
          const auto [lo, hi] = fault::wilson_interval(
              adaptive.counts[o], adaptive.adaptive.executed_trials);
          cell_max_hw = std::max(cell_max_hw, (hi - lo) / 2.0);
          ++cell_intervals;
          ++intervals_total;
          if (lo <= truth && truth <= hi) {
            ++cell_covered;
            ++intervals_covered;
          }
        }
      }
      cell_reduction /= replicates;
      ++cells;
      std::printf("%-12s %-10s | %8d %8d %7.1fx | %8.4f | %llu/%llu\n",
                  workload.name.c_str(), pipeline::technique_name(technique),
                  trials, cell_executed, cell_reduction, cell_max_hw,
                  static_cast<unsigned long long>(cell_covered),
                  static_cast<unsigned long long>(cell_intervals));

      telemetry::Json cell = telemetry::Json::object();
      cell["mean_reduction"] = cell_reduction;
      cell["executed_trials"] = static_cast<std::uint64_t>(cell_executed);
      cell["intervals"] = cell_intervals;
      cell["covered"] = cell_covered;
      workload_json[pipeline::technique_name(technique)] = cell;
    }
    report.metrics()["workloads"][workload.name] = workload_json;
  }
  benchutil::print_rule(78);

  const double mean_reduction =
      reduction_samples > 0 ? reduction_sum / reduction_samples : 0.0;
  const double coverage =
      intervals_total > 0
          ? static_cast<double>(intervals_covered) / intervals_total
          : 0.0;
  const bool reduction_ok = !enforce_reduction || mean_reduction >= 5.0;
  const bool coverage_ok = coverage >= 0.95;
  std::printf("\nMean trial reduction: %.1fx over %llu cells (floor 5.0x %s)\n",
              mean_reduction, static_cast<unsigned long long>(cells),
              enforce_reduction ? (reduction_ok ? "met" : "MISSED")
                                : "not armed at this budget");
  std::printf("Interval coverage: %llu/%llu = %.4f vs nominal 0.95 (%s); "
              "prefix containment %s\n",
              static_cast<unsigned long long>(intervals_covered),
              static_cast<unsigned long long>(intervals_total), coverage,
              coverage_ok ? "ok" : "BELOW NOMINAL",
              prefix_contained ? "holds" : "VIOLATED");
  report.metrics()["cells"] = cells;
  report.metrics()["mean_reduction"] = mean_reduction;
  report.metrics()["intervals_total"] = intervals_total;
  report.metrics()["intervals_covered"] = intervals_covered;
  report.metrics()["coverage"] = coverage;
  report.metrics()["coverage_nominal"] = 0.95;
  report.metrics()["prefix_containment"] = prefix_contained;
  report.metrics()["reduction_ok"] = reduction_ok;
  report.metrics()["coverage_ok"] = coverage_ok;
  report.wallclock()["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.write();
  return reduction_ok && coverage_ok && prefix_contained ? 0 : 1;
}
