// Extension — detection latency: how many instructions execute between
// the bit flip and the detector firing. The paper's deferred detection
// (Fig 5) and SIMD batching (Fig 6) trade immediate checking for speed;
// this experiment quantifies the window that trade opens. Latency matters
// when corrupted state can escape through I/O before the batched check
// runs (FERRUM bounds the window by flushing at block ends and calls).
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "fault/campaign.h"
#include "pipeline/pipeline.h"
#include "telemetry/export.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  const int trials = benchutil::env_trials(600);
  const int jobs = benchutil::env_jobs();
  const int ckpt_stride = benchutil::env_ckpt_stride();
  benchutil::BenchReport report("detection_latency");
  report.metrics()["trials"] = trials;
  std::printf("Extension — detection latency in dynamic instructions "
              "(%d faults per cell, Detected runs only, %d worker(s))\n\n",
              trials, jobs);
  std::printf("%-15s | %-21s %-21s %-21s\n", "", "ir-eddi", "hybrid",
              "ferrum");
  std::printf("%-15s | %9s %9s   %9s %9s   %9s %9s\n", "benchmark", "mean",
              "max", "mean", "max", "mean", "max");
  benchutil::print_rule(86);

  const Technique techniques[] = {Technique::kIrEddi, Technique::kHybrid,
                                  Technique::kFerrum};
  double mean_sums[3] = {0, 0, 0};
  int rows = 0;

  for (const auto& w : workloads::all()) {
    std::printf("%-15s |", w.name.c_str());
    for (int t = 0; t < 3; ++t) {
      auto build = pipeline::build(w.source, techniques[t]);
      fault::CampaignOptions options;
      options.trials = trials;
      options.jobs = jobs;
      options.ckpt_stride = ckpt_stride;
      const auto result = fault::run_campaign(build.program, options);
      mean_sums[t] += result.mean_detection_latency();
      std::printf(" %9.1f %9llu  ", result.mean_detection_latency(),
                  static_cast<unsigned long long>(result.latency_max));
      report.metrics()["workloads"][w.name]
          [pipeline::technique_name(techniques[t])] =
          telemetry::to_json(result);
    }
    std::printf("\n");
    ++rows;
  }
  benchutil::print_rule(86);
  std::printf("%-15s |", "AVERAGE mean");
  for (double sum : mean_sums) std::printf(" %9.1f %9s  ", sum / rows, "");
  std::printf("\n\nExpected shape: HYBRID's immediate per-site checks "
              "detect within a handful of instructions; FERRUM's deferred "
              "captures and 4-site batches open a wider (but block-"
              "bounded) window; IR-EDDI's sync-point checks sit in "
              "between. The paper accepts this window silently — it never "
              "reports latency — and FERRUM's flush-before-call rule is "
              "what keeps corrupted values from escaping through output "
              "in spite of it.\n");
  const char* names[] = {"ir-level-eddi", "hybrid-assembly-level-eddi",
                         "ferrum"};
  for (int t = 0; t < 3; ++t) {
    report.metrics()["average_mean_latency"][names[t]] = mean_sums[t] / rows;
  }
  report.wallclock()["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.write();
  return 0;
}
