// Ablation: spare registers vs stack-level data redundancy (paper Sec
// III-B4, Fig 7). FERRUM normally finds whole-function spare registers
// for its condition captures, duplicates and SIMD batches; this ablation
// forces the scarce-register fallbacks everywhere — condition captures in
// protection-frame slots, duplicates in liveness-dead or push/pop
// requisitioned registers, no SIMD batching — and measures what the
// fallback machinery costs.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "pipeline/pipeline.h"
#include "telemetry/json.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

namespace {

struct Row {
  std::uint64_t cycles = 0;
  std::uint64_t requisitions = 0;
  std::uint64_t spare_fns = 0;
  std::size_t insts = 0;
};

Row measure(const workloads::Workload& w, bool force_stack) {
  pipeline::BuildOptions options;
  options.ferrum.force_stack_redundancy = force_stack;
  auto build = pipeline::build(w.source, Technique::kFerrum, options);
  vm::VmOptions vm_options;
  vm_options.timing = true;
  const auto result = vm::run(build.program, vm_options);
  Row row;
  row.cycles = result.ok() ? result.cycles : 0;
  row.requisitions = build.asm_stats.requisitions;
  row.spare_fns = build.asm_stats.functions_with_spare_gprs;
  row.insts = build.program.inst_count();
  return row;
}

}  // namespace

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  benchutil::BenchReport report("ablation_spare");
  std::printf("Ablation — spare registers vs forced stack redundancy\n\n");
  std::printf("%-15s %10s | %-30s | %-30s\n", "", "raw cyc",
              "FERRUM (spare registers)", "FERRUM (stack redundancy)");
  std::printf("%-15s %10s | %8s %6s %12s | %8s %6s %12s\n", "benchmark", "",
              "overhead", "req", "prot insts", "overhead", "req",
              "prot insts");
  benchutil::print_rule(96);

  double sums[2] = {0, 0};
  int rows = 0;
  for (const auto& w : workloads::all()) {
    auto raw_build = pipeline::build(w.source, Technique::kNone);
    vm::VmOptions vm_options;
    vm_options.timing = true;
    const auto raw = vm::run(raw_build.program, vm_options);
    if (!raw.ok()) return 1;

    const Row with_spares = measure(w, false);
    const Row forced = measure(w, true);
    const double overhead_spares =
        100.0 * (static_cast<double>(with_spares.cycles) - raw.cycles) /
        raw.cycles;
    const double overhead_forced =
        100.0 * (static_cast<double>(forced.cycles) - raw.cycles) /
        raw.cycles;
    sums[0] += overhead_spares;
    sums[1] += overhead_forced;
    ++rows;
    telemetry::Json row = telemetry::Json::object();
    row["raw_cycles"] = raw.cycles;
    const Row* variants[] = {&with_spares, &forced};
    const double overheads[] = {overhead_spares, overhead_forced};
    const char* names[] = {"spare-registers", "stack-redundancy"};
    for (int i = 0; i < 2; ++i) {
      telemetry::Json cell = telemetry::Json::object();
      cell["cycles"] = variants[i]->cycles;
      cell["overhead_percent"] = overheads[i];
      cell["requisitions"] = variants[i]->requisitions;
      cell["functions_with_spare_gprs"] = variants[i]->spare_fns;
      cell["protected_instructions"] =
          static_cast<std::uint64_t>(variants[i]->insts);
      row[names[i]] = cell;
    }
    report.metrics()["workloads"][w.name] = row;
    std::printf("%-15s %10llu | %7.1f%% %6llu %12zu | %7.1f%% %6llu %12zu\n",
                w.name.c_str(), static_cast<unsigned long long>(raw.cycles),
                overhead_spares,
                static_cast<unsigned long long>(with_spares.requisitions),
                with_spares.insts, overhead_forced,
                static_cast<unsigned long long>(forced.requisitions),
                forced.insts);
  }
  benchutil::print_rule(96);
  std::printf("%-15s %10s | %7.1f%% %19s | %7.1f%%\n", "AVERAGE", "",
              sums[0] / rows, "", sums[1] / rows);
  std::printf("\nExpected shape: forcing stack redundancy costs extra "
              "instructions and cycles — quantifying why FERRUM's spare-"
              "register scan (paper Fig 3 step 1) is worth having.\n");
  report.metrics()["average_overhead_percent"]["spare-registers"] =
      sums[0] / rows;
  report.metrics()["average_overhead_percent"]["stack-redundancy"] =
      sums[1] / rows;
  report.wallclock()["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.write();
  return 0;
}
