// Substrate microbenchmarks: VM interpretation throughput (switch vs
// threaded dispatch), the cost of enabling the timing model, and campaign
// trial throughput cold vs checkpointed vs lockstep-batched, per
// technique. Not a paper experiment, but documents what one
// fault-injection trial costs — and what the snapshot/fast-forward engine
// and the threaded/batched inner loop buy back.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "fault/campaign.h"
#include "pipeline/pipeline.h"
#include "telemetry/export.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

namespace {

void BM_VmRun(benchmark::State& state, Technique technique, bool timing,
              vm::DispatchMode dispatch = vm::DispatchMode::kAuto) {
  const auto& w = workloads::by_name("pathfinder");
  auto build = pipeline::build(w.source, technique);
  vm::VmOptions options;
  options.timing = timing;
  options.dispatch = dispatch;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const auto result = vm::run(build.program, options);
    if (!result.ok()) {
      state.SkipWithError("run failed");
      return;
    }
    steps = result.steps;
    benchmark::DoNotOptimize(result.return_value);
  }
  state.counters["dyn_insts"] = static_cast<double>(steps);
  state.SetItemsProcessed(static_cast<std::int64_t>(steps) *
                          state.iterations());
}

/// Best-of-`reps` Minst/s for one dispatch mode (steady-clock; the
/// best-of filters scheduler noise on the shared CI machine).
double minst_per_second(const masm::AsmProgram& program,
                        vm::DispatchMode dispatch, int reps) {
  vm::VmOptions options;
  options.dispatch = dispatch;
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const auto result = vm::run(program, options);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (!result.ok() || seconds <= 0.0) continue;
    const double rate =
        static_cast<double>(result.steps) / seconds / 1e6;
    if (rate > best) best = rate;
  }
  return best;
}

double trials_per_second(const fault::CampaignResult& result, int trials) {
  return result.wall_seconds > 0.0 ? trials / result.wall_seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  // Telemetry artifact (written up front; google-benchmark's timing goes
  // to stdout): one profiled run per technique on the microbenchmark
  // workload — dynamic footprint and instruction mix under `metrics`.
  {
    benchutil::BenchReport report("bench_vm");
    const auto& w = workloads::by_name("pathfinder");
    const Technique techniques[] = {Technique::kNone, Technique::kHybrid,
                                    Technique::kFerrum};
    for (Technique technique : techniques) {
      auto build = pipeline::build(w.source, technique);
      vm::VmOptions options;
      options.profile = true;
      const auto result = vm::run(build.program, options);
      if (result.ok()) {
        telemetry::Json row = telemetry::Json::object();
        row["steps"] = result.steps;
        row["fi_sites"] = result.fi_sites;
        row["profile"] = telemetry::to_json(*result.profile);
        report.metrics()["techniques"]
            [pipeline::technique_name(technique)] = row;
      }
    }

    // Dispatch throughput: functional Minst/s under the portable switch
    // loop vs the computed-goto threaded loop, per technique. The result
    // equivalence flag goes under `metrics` (it must hold everywhere);
    // the rates are wall-clock observability.
    {
      const bool threaded = vm::threaded_dispatch_available();
      for (Technique technique : techniques) {
        auto build = pipeline::build(w.source, technique);
        vm::VmOptions sw;
        sw.dispatch = vm::DispatchMode::kSwitch;
        const auto sw_run = vm::run(build.program, sw);
        bool equivalent = sw_run.ok();
        double threaded_rate = 0.0;
        if (threaded) {
          vm::VmOptions th;
          th.dispatch = vm::DispatchMode::kThreaded;
          const auto th_run = vm::run(build.program, th);
          equivalent = equivalent && th_run.status == sw_run.status &&
                       th_run.output == sw_run.output &&
                       th_run.steps == sw_run.steps &&
                       th_run.fi_sites == sw_run.fi_sites &&
                       th_run.return_value == sw_run.return_value;
          threaded_rate =
              minst_per_second(build.program, vm::DispatchMode::kThreaded, 3);
        }
        const double switch_rate =
            minst_per_second(build.program, vm::DispatchMode::kSwitch, 3);
        const char* name = pipeline::technique_name(technique);
        report.metrics()["dispatch_equivalent"][name] = equivalent;
        telemetry::Json row = telemetry::Json::object();
        row["threaded_available"] = threaded;
        row["switch_minst_per_second"] = switch_rate;
        row["threaded_minst_per_second"] = threaded_rate;
        row["speedup"] =
            switch_rate > 0.0 ? threaded_rate / switch_rate : 0.0;
        report.wallclock()["dispatch"][name] = row;
        std::printf("dispatch %-8s switch %7.1f Minst/s   threaded %7.1f "
                    "Minst/s   speedup %5.2fx\n",
                    name, switch_rate, threaded_rate,
                    switch_rate > 0.0 ? threaded_rate / switch_rate : 0.0);
      }
    }

    // Campaign throughput per technique, three engine configurations:
    //   cold          stride=0, switch dispatch, scalar — the reference
    //   switch_scalar checkpointed, switch dispatch, scalar, golden
    //                 rejoin off — the pre-threading engine (PR 4's
    //                 "ckpt" row), the speedup baseline
    //   default       checkpointed, threaded dispatch, FERRUM_BATCH-wide
    //                 lockstep, golden rejoin — what run_campaign does
    //                 out of the box
    // Outcome counts are deterministic and identical on every path
    // (asserted into `metrics`); trials/sec and speedups are wall-clock.
    {
      const int trials = benchutil::env_trials(256);
      const int jobs = benchutil::env_jobs();
      const int stride_knob = benchutil::env_ckpt_stride();
      const int stride = stride_knob == 0 ? 64 : stride_knob;
      const int batch = benchutil::env_batch();
      for (Technique technique : techniques) {
        auto build = pipeline::build(w.source, technique);
        fault::CampaignOptions campaign;
        campaign.trials = trials;
        campaign.jobs = jobs;
        campaign.vm.dispatch = vm::DispatchMode::kSwitch;
        campaign.vm.golden_rejoin = false;
        campaign.batch = 1;
        campaign.ckpt_stride = 0;
        const auto cold = fault::run_campaign(build.program, campaign);
        campaign.ckpt_stride = stride;
        const auto scalar = fault::run_campaign(build.program, campaign);
        campaign.vm.dispatch = vm::DispatchMode::kAuto;
        campaign.vm.golden_rejoin = true;
        campaign.batch = batch;
        const auto fast = fault::run_campaign(build.program, campaign);

        const char* name = pipeline::technique_name(technique);
        report.metrics()["campaign"][name] = telemetry::to_json(cold);
        const std::string cold_dump = telemetry::to_json(cold).dump();
        report.metrics()["campaign_equivalent"][name] =
            cold_dump == telemetry::to_json(scalar).dump() &&
            cold_dump == telemetry::to_json(fast).dump();

        telemetry::Json row = telemetry::Json::object();
        row["trials"] = trials;
        row["batch"] = batch;
        const double cold_tps = trials_per_second(cold, trials);
        const double scalar_tps = trials_per_second(scalar, trials);
        const double fast_tps = trials_per_second(fast, trials);
        row["cold_trials_per_second"] = cold_tps;
        row["switch_scalar_trials_per_second"] = scalar_tps;
        row["ckpt_trials_per_second"] = fast_tps;
        row["speedup"] = cold_tps > 0.0 ? fast_tps / cold_tps : 0.0;
        row["speedup_vs_switch_scalar"] =
            scalar_tps > 0.0 ? fast_tps / scalar_tps : 0.0;
        row["cold"] = telemetry::wallclock_json(cold);
        row["ckpt"] = telemetry::wallclock_json(fast);
        report.wallclock()["campaign_throughput"][name] = row;
        std::printf(
            "campaign %-8s cold %9.1f trials/s   ckpt+switch %9.1f "
            "trials/s   ckpt+threaded+batch%d %9.1f trials/s   vs-scalar "
            "%5.2fx\n",
            name, cold_tps, scalar_tps, batch, fast_tps,
            scalar_tps > 0.0 ? fast_tps / scalar_tps : 0.0);
      }

      // Batch-width sweep on the FERRUM build: trials/s at widths
      // {1, 4, 8} under the default (threaded) dispatch, all
      // checkpointed — isolates what lockstep prefix sharing adds on
      // top of threading.
      {
        auto build = pipeline::build(w.source, Technique::kFerrum);
        fault::CampaignOptions campaign;
        campaign.trials = trials;
        campaign.jobs = jobs;
        campaign.ckpt_stride = stride;
        double width1_tps = 0.0;
        for (int width : {1, 4, 8}) {
          campaign.batch = width;
          const auto result = fault::run_campaign(build.program, campaign);
          const double tps = trials_per_second(result, trials);
          if (width == 1) width1_tps = tps;
          telemetry::Json row = telemetry::Json::object();
          row["trials_per_second"] = tps;
          row["speedup_vs_width1"] =
              width1_tps > 0.0 ? tps / width1_tps : 0.0;
          row["ckpt"] = telemetry::wallclock_json(result);
          report.wallclock()["batch"]["width" + std::to_string(width)] =
              row;
          std::printf("batch    width=%d %9.1f trials/s   vs width1 "
                      "%5.2fx\n",
                      width, tps, width1_tps > 0.0 ? tps / width1_tps : 0.0);
        }
      }
    }
    report.write();
  }

  benchmark::RegisterBenchmark(
      "VmRun/raw", [](benchmark::State& s) {
        BM_VmRun(s, Technique::kNone, false);
      })->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      "VmRun/raw_switch", [](benchmark::State& s) {
        BM_VmRun(s, Technique::kNone, false, vm::DispatchMode::kSwitch);
      })->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      "VmRun/raw_timing", [](benchmark::State& s) {
        BM_VmRun(s, Technique::kNone, true);
      })->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      "VmRun/ferrum", [](benchmark::State& s) {
        BM_VmRun(s, Technique::kFerrum, false);
      })->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      "VmRun/ferrum_switch", [](benchmark::State& s) {
        BM_VmRun(s, Technique::kFerrum, false, vm::DispatchMode::kSwitch);
      })->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      "VmRun/hybrid", [](benchmark::State& s) {
        BM_VmRun(s, Technique::kHybrid, false);
      })->Unit(benchmark::kMicrosecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
