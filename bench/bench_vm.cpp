// Substrate microbenchmarks: VM interpretation throughput and the cost of
// enabling the timing model, per technique. Not a paper experiment, but
// documents what one fault-injection trial costs.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "pipeline/pipeline.h"
#include "telemetry/export.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

namespace {

void BM_VmRun(benchmark::State& state, Technique technique, bool timing) {
  const auto& w = workloads::by_name("pathfinder");
  auto build = pipeline::build(w.source, technique);
  vm::VmOptions options;
  options.timing = timing;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const auto result = vm::run(build.program, options);
    if (!result.ok()) {
      state.SkipWithError("run failed");
      return;
    }
    steps = result.steps;
    benchmark::DoNotOptimize(result.return_value);
  }
  state.counters["dyn_insts"] = static_cast<double>(steps);
  state.SetItemsProcessed(static_cast<std::int64_t>(steps) *
                          state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  // Telemetry artifact (written up front; google-benchmark's timing goes
  // to stdout): one profiled run per technique on the microbenchmark
  // workload — dynamic footprint and instruction mix under `metrics`.
  {
    benchutil::BenchReport report("bench_vm");
    const auto& w = workloads::by_name("pathfinder");
    const Technique techniques[] = {Technique::kNone, Technique::kHybrid,
                                    Technique::kFerrum};
    for (Technique technique : techniques) {
      auto build = pipeline::build(w.source, technique);
      vm::VmOptions options;
      options.profile = true;
      const auto result = vm::run(build.program, options);
      if (result.ok()) {
        telemetry::Json row = telemetry::Json::object();
        row["steps"] = result.steps;
        row["fi_sites"] = result.fi_sites;
        row["profile"] = telemetry::to_json(*result.profile);
        report.metrics()["techniques"]
            [pipeline::technique_name(technique)] = row;
      }
    }
    report.write();
  }

  benchmark::RegisterBenchmark(
      "VmRun/raw", [](benchmark::State& s) {
        BM_VmRun(s, Technique::kNone, false);
      })->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      "VmRun/raw_timing", [](benchmark::State& s) {
        BM_VmRun(s, Technique::kNone, true);
      })->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      "VmRun/ferrum", [](benchmark::State& s) {
        BM_VmRun(s, Technique::kFerrum, false);
      })->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      "VmRun/hybrid", [](benchmark::State& s) {
        BM_VmRun(s, Technique::kHybrid, false);
      })->Unit(benchmark::kMicrosecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
