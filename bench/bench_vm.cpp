// Substrate microbenchmarks: VM interpretation throughput, the cost of
// enabling the timing model, and campaign trial throughput cold vs
// checkpointed, per technique. Not a paper experiment, but documents what
// one fault-injection trial costs — and what the snapshot/fast-forward
// engine buys back.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "fault/campaign.h"
#include "pipeline/pipeline.h"
#include "telemetry/export.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

namespace {

void BM_VmRun(benchmark::State& state, Technique technique, bool timing) {
  const auto& w = workloads::by_name("pathfinder");
  auto build = pipeline::build(w.source, technique);
  vm::VmOptions options;
  options.timing = timing;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const auto result = vm::run(build.program, options);
    if (!result.ok()) {
      state.SkipWithError("run failed");
      return;
    }
    steps = result.steps;
    benchmark::DoNotOptimize(result.return_value);
  }
  state.counters["dyn_insts"] = static_cast<double>(steps);
  state.SetItemsProcessed(static_cast<std::int64_t>(steps) *
                          state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  // Telemetry artifact (written up front; google-benchmark's timing goes
  // to stdout): one profiled run per technique on the microbenchmark
  // workload — dynamic footprint and instruction mix under `metrics`.
  {
    benchutil::BenchReport report("bench_vm");
    const auto& w = workloads::by_name("pathfinder");
    const Technique techniques[] = {Technique::kNone, Technique::kHybrid,
                                    Technique::kFerrum};
    for (Technique technique : techniques) {
      auto build = pipeline::build(w.source, technique);
      vm::VmOptions options;
      options.profile = true;
      const auto result = vm::run(build.program, options);
      if (result.ok()) {
        telemetry::Json row = telemetry::Json::object();
        row["steps"] = result.steps;
        row["fi_sites"] = result.fi_sites;
        row["profile"] = telemetry::to_json(*result.profile);
        report.metrics()["techniques"]
            [pipeline::technique_name(technique)] = row;
      }
    }

    // Campaign throughput, cold vs checkpointed, per technique. Outcome
    // counts are deterministic and identical on both paths (asserted into
    // `metrics`); trials/sec and the speedup are wall-clock observability.
    {
      const int trials = benchutil::env_trials(256);
      const int jobs = benchutil::env_jobs();
      const int stride = benchutil::env_ckpt_stride();
      for (Technique technique : techniques) {
        auto build = pipeline::build(w.source, technique);
        fault::CampaignOptions campaign;
        campaign.trials = trials;
        campaign.jobs = jobs;
        campaign.ckpt_stride = 0;
        const auto cold = fault::run_campaign(build.program, campaign);
        campaign.ckpt_stride = stride == 0 ? 64 : stride;
        const auto warm = fault::run_campaign(build.program, campaign);

        const char* name = pipeline::technique_name(technique);
        report.metrics()["campaign"][name] = telemetry::to_json(cold);
        report.metrics()["campaign_equivalent"][name] =
            telemetry::to_json(cold).dump() == telemetry::to_json(warm).dump();

        telemetry::Json row = telemetry::Json::object();
        row["trials"] = trials;
        const double cold_tps = cold.wall_seconds > 0.0
                                    ? trials / cold.wall_seconds
                                    : 0.0;
        const double warm_tps = warm.wall_seconds > 0.0
                                    ? trials / warm.wall_seconds
                                    : 0.0;
        row["cold_trials_per_second"] = cold_tps;
        row["ckpt_trials_per_second"] = warm_tps;
        row["speedup"] = cold_tps > 0.0 ? warm_tps / cold_tps : 0.0;
        row["cold"] = telemetry::wallclock_json(cold);
        row["ckpt"] = telemetry::wallclock_json(warm);
        report.wallclock()["campaign_throughput"][name] = row;
        std::printf(
            "campaign %-8s cold %10.1f trials/s   ckpt(stride=%d) %10.1f "
            "trials/s   speedup %5.2fx\n",
            name, cold_tps, static_cast<int>(warm.ckpt.stride), warm_tps,
            cold_tps > 0.0 ? warm_tps / cold_tps : 0.0);
      }
    }
    report.write();
  }

  benchmark::RegisterBenchmark(
      "VmRun/raw", [](benchmark::State& s) {
        BM_VmRun(s, Technique::kNone, false);
      })->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      "VmRun/raw_timing", [](benchmark::State& s) {
        BM_VmRun(s, Technique::kNone, true);
      })->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      "VmRun/ferrum", [](benchmark::State& s) {
        BM_VmRun(s, Technique::kFerrum, false);
      })->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      "VmRun/hybrid", [](benchmark::State& s) {
        BM_VmRun(s, Technique::kHybrid, false);
      })->Unit(benchmark::kMicrosecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
