// Cross-validation of ferrum-prune against the exhaustive dynamic audit,
// over all eight Table II workloads x four protection techniques. Three
// claims are checked per cell:
//
//  1. Dead-bit soundness (ZERO tolerance): every (site, bit) probe the
//     analysis marks dead is re-injected and the run must be
//     bit-identical to the golden run — same status, output, return
//     value, step count and site count. A single divergence is a
//     liveness-analysis soundness bug and fails the bench.
//
//  2. Pilot fidelity (ZERO tolerance): every pilot the pruned audit
//     executed is re-injected independently and must reproduce the same
//     outcome category — the prune path must observe exactly what the
//     exhaustive audit observes at that (site, bit).
//
//  3. Extrapolation accuracy (statistical tolerance): the pruned audit's
//     class-extrapolated SDC rate must track the exhaustive audit's true
//     rate. Equivalence classing is a heuristic — members of a class can
//     behave differently on data-dependent paths — so this is a bounded
//     estimate, not an identity: |pruned - exhaustive| must stay within
//     max(kSdcAbsTol, kSdcRelTol * exhaustive).
//
// The artifact additionally records the injection-reduction factor per
// cell and overall; the overall reduction must clear kMinReduction, and
// the three assertions land in the artifact as `equivalence_ok`.
//
// The exhaustive audit is quadratic (sites x steps), so the smoke scale
// (FERRUM_SCALE=1) probes one mid-word bit; larger scales add the sign
// and low bits. Expect minutes of wall-clock per protected cell on the
// larger workloads at scale >= 2.
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "check/prune.h"
#include "fault/audit.h"
#include "fault/step_budget.h"
#include "pipeline/pipeline.h"
#include "support/parallel.h"
#include "telemetry/export.h"
#include "vm/engine.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

namespace {

constexpr double kSdcAbsTol = 0.05;  // absolute SDC-rate tolerance
constexpr double kSdcRelTol = 0.15;  // relative SDC-rate tolerance
constexpr double kMinReduction = 3.0;

int failures = 0;

void fail(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  ++failures;
}

/// Full architectural equality against the golden run — stronger than the
/// audit's benign test (output only): a dead flip may not even change the
/// step count or the dynamic site count.
bool identical_to_golden(const vm::VmResult& run, const vm::VmResult& golden) {
  return run.status == golden.status && run.output == golden.output &&
         run.return_value == golden.return_value && run.steps == golden.steps &&
         run.fi_sites == golden.fi_sites;
}

struct CellValidation {
  std::uint64_t dead_checked = 0;
  std::uint64_t dead_divergent = 0;
  std::uint64_t pilots_checked = 0;
  std::uint64_t pilot_mismatches = 0;
};

/// Re-injects (a) every statically-dead probe and (b) every pilot, with
/// independent engines, and compares against the golden run / the pilot's
/// recorded outcome. Runs on the pool; tallies merge in probe order.
CellValidation validate_cell(const masm::AsmProgram& program,
                             const fault::AuditOptions& options,
                             const check::prune::PruneReport& prune,
                             const fault::AuditReport& pruned) {
  CellValidation v;
  const vm::PredecodedProgram decoded(program);
  vm::CheckpointSet ckpts;
  vm::Engine golden_engine(decoded, options.vm);
  std::vector<std::int32_t> site_pcs;
  golden_engine.set_site_pc_sink(&site_pcs);
  const std::uint64_t stride =
      options.ckpt_stride > 0 ? static_cast<std::uint64_t>(options.ckpt_stride)
                              : 64;
  const vm::VmResult golden =
      golden_engine.run_capturing(options.vm, stride, ckpts);
  golden_engine.set_site_pc_sink(nullptr);

  // Map each dynamic site to its static record exactly as the audit does.
  const auto& code = decoded.code();
  std::vector<std::int32_t> pc_site(code.size(), -1);
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    if (code[pc].inst == nullptr) continue;
    pc_site[pc] = prune.site_index(code[pc].fidx, code[pc].bidx, code[pc].iidx);
  }

  // Work list: every statically-dead (site, probe-bit), then every pilot.
  struct Probe {
    std::uint64_t site = 0;
    int bit = 0;
    int pilot = -1;  // >= 0: index into pruned.prune.pilots
  };
  std::vector<Probe> probes;
  for (std::uint64_t id = 0; id < golden.fi_sites; ++id) {
    const std::int32_t s = pc_site[static_cast<std::size_t>(
        site_pcs[static_cast<std::size_t>(id)])];
    if (s < 0) continue;
    const check::prune::PruneSite& site =
        prune.sites[static_cast<std::size_t>(s)];
    for (int bit : options.probe_bits) {
      if (site.bit_dead(bit)) probes.push_back({id, bit, -1});
    }
  }
  v.dead_checked = probes.size();
  for (std::size_t p = 0; p < pruned.prune.pilots.size(); ++p) {
    probes.push_back({pruned.prune.pilots[p].site, pruned.prune.pilots[p].bit,
                      static_cast<int>(p)});
  }
  v.pilots_checked = pruned.prune.pilots.size();

  vm::VmOptions faulty = options.vm;
  faulty.max_steps = fault::faulty_step_budget(golden.steps);
  std::vector<std::uint8_t> bad(probes.size(), 0);
  ThreadPool pool(options.jobs);
  std::vector<std::unique_ptr<vm::Engine>> engines(
      static_cast<std::size_t>(pool.workers()));
  pool.parallel_for_indexed(
      probes.size(), [&](int worker, std::size_t begin, std::size_t end) {
        auto& engine = engines[static_cast<std::size_t>(worker)];
        if (engine == nullptr) {
          engine = std::make_unique<vm::Engine>(decoded, faulty);
        }
        for (std::size_t i = begin; i < end; ++i) {
          vm::FaultSpec spec;
          spec.site = probes[i].site;
          spec.bit = probes[i].bit;
          const vm::VmResult run = engine->run_from(ckpts, faulty, &spec, 1);
          if (probes[i].pilot < 0) {
            bad[i] = identical_to_golden(run, golden) ? 0 : 1;
          } else {
            fault::ProbeOutcome outcome;
            if (run.status == vm::ExitStatus::kDetected) {
              outcome = fault::ProbeOutcome::kDetected;
            } else if (!run.ok()) {
              outcome = fault::ProbeOutcome::kCrashed;
            } else if (run.output == golden.output) {
              outcome = fault::ProbeOutcome::kBenign;
            } else {
              outcome = fault::ProbeOutcome::kSdc;
            }
            bad[i] = outcome == pruned.prune
                                    .pilots[static_cast<std::size_t>(
                                        probes[i].pilot)]
                                    .outcome
                         ? 0
                         : 1;
          }
        }
      });
  for (std::size_t i = 0; i < probes.size(); ++i) {
    if (bad[i] == 0) continue;
    if (probes[i].pilot < 0) {
      ++v.dead_divergent;
      std::fprintf(stderr,
                   "dead divergence: site=%llu bit=%d changed the "
                   "architectural outcome\n",
                   static_cast<unsigned long long>(probes[i].site),
                   probes[i].bit);
    } else {
      ++v.pilot_mismatches;
      std::fprintf(stderr, "pilot mismatch: site=%llu bit=%d\n",
                   static_cast<unsigned long long>(probes[i].site),
                   probes[i].bit);
    }
  }
  return v;
}

}  // namespace

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  const int scale = benchutil::env_scale();
  const int jobs = benchutil::env_jobs();
  const int ckpt_stride = benchutil::env_ckpt_stride();
  benchutil::BenchReport report("analysis_prune_accuracy");
  report.metrics()["scale"] = scale;

  std::printf("Prune accuracy cross-validation — pruned vs exhaustive "
              "audit (scale %d, %d worker(s))\n\n", scale, jobs);
  std::printf("%-15s %-8s | %9s %7s | %8s %8s | %5s %5s | %7s\n", "workload",
              "tech", "inject", "pilots", "sdc_ex", "sdc_pr", "dead%",
              "redux", "checks");
  benchutil::print_rule(100);

  const Technique techniques[] = {Technique::kNone, Technique::kIrEddi,
                                  Technique::kHybrid, Technique::kFerrum};
  std::uint64_t total_injections = 0;
  std::uint64_t total_pilots = 0;
  std::uint64_t total_dead_checked = 0;
  std::uint64_t total_pilots_checked = 0;
  for (const workloads::Workload& workload : workloads::all()) {
    telemetry::Json workload_json = telemetry::Json::object();
    for (Technique technique : techniques) {
      const auto build = pipeline::build(workload.source, technique);

      fault::AuditOptions options;
      options.probe_bits =
          scale <= 1 ? std::vector<int>{17} : std::vector<int>{0, 17, 63};
      options.jobs = jobs;
      options.ckpt_stride = ckpt_stride;

      const auto exhaustive = fault::audit_program(build.program, options);

      const check::prune::PruneReport prune =
          check::prune::prune_program(build.program);
      options.prune = &prune;
      const auto pruned = fault::audit_program(build.program, options);

      const char* tech = pipeline::technique_name(technique);
      const std::string cell_name =
          workload.name + "/" + tech;
      if (pruned.injections != exhaustive.injections ||
          pruned.sites != exhaustive.sites) {
        fail(cell_name + ": pruned audit frame differs from exhaustive");
      }

      // Statistical tolerance on the extrapolated SDC rate.
      const double sdc_ex =
          exhaustive.injections == 0
              ? 0.0
              : static_cast<double>(exhaustive.escapes.size()) /
                    static_cast<double>(exhaustive.injections);
      const double sdc_pr =
          pruned.injections == 0
              ? 0.0
              : static_cast<double>(pruned.escapes.size()) /
                    static_cast<double>(pruned.injections);
      const double tolerance =
          kSdcAbsTol > kSdcRelTol * sdc_ex ? kSdcAbsTol : kSdcRelTol * sdc_ex;
      const double sdc_error = sdc_pr > sdc_ex ? sdc_pr - sdc_ex
                                               : sdc_ex - sdc_pr;
      if (sdc_error > tolerance) {
        fail(cell_name + ": extrapolated SDC rate off by " +
             std::to_string(sdc_error) + " (tolerance " +
             std::to_string(tolerance) + ")");
      }
      // Escape containment: the pruned audit must never invent an escape
      // at a statically-dead probe.
      std::set<std::pair<std::uint64_t, int>> exhaustive_escapes;
      for (const fault::AuditEscape& escape : exhaustive.escapes) {
        exhaustive_escapes.insert({escape.site, escape.bit});
      }
      std::uint64_t escape_hits = 0;
      for (const fault::AuditEscape& escape : pruned.escapes) {
        if (exhaustive_escapes.count({escape.site, escape.bit}) != 0) {
          ++escape_hits;
        }
      }

      // Zero-tolerance checks: dead probes and pilot fidelity.
      const CellValidation v =
          validate_cell(build.program, options, prune, pruned);
      if (v.dead_divergent != 0) {
        fail(cell_name + ": " + std::to_string(v.dead_divergent) +
             " statically-dead probes diverged from the golden run");
      }
      if (v.pilot_mismatches != 0) {
        fail(cell_name + ": " + std::to_string(v.pilot_mismatches) +
             " pilots did not reproduce their recorded outcome");
      }

      total_injections += pruned.injections;
      total_pilots += pruned.prune.pilot_injections;
      total_dead_checked += v.dead_checked;
      total_pilots_checked += v.pilots_checked;

      std::printf("%-15s %-8s | %9llu %7llu | %8.4f %8.4f | %5.1f %5.1f | "
                  "%7s\n",
                  workload.name.c_str(), tech,
                  static_cast<unsigned long long>(pruned.injections),
                  static_cast<unsigned long long>(
                      pruned.prune.pilot_injections),
                  sdc_ex, sdc_pr,
                  100.0 * pruned.prune.dead_fraction_static,
                  pruned.prune.reduction,
                  v.dead_divergent == 0 && v.pilot_mismatches == 0 ? "ok"
                                                                   : "FAIL");

      telemetry::Json cell = telemetry::Json::object();
      cell["exhaustive"] = telemetry::to_json(exhaustive);
      cell["pruned"] = telemetry::to_json(pruned);
      cell["sdc_rate_exhaustive"] = sdc_ex;
      cell["sdc_rate_pruned"] = sdc_pr;
      cell["sdc_rate_error"] = sdc_error;
      cell["sdc_rate_tolerance"] = tolerance;
      cell["escape_overlap"] = escape_hits;
      cell["dead_probes_checked"] = v.dead_checked;
      cell["dead_probes_divergent"] = v.dead_divergent;
      cell["pilots_checked"] = v.pilots_checked;
      cell["pilot_mismatches"] = v.pilot_mismatches;
      cell["reduction"] = pruned.prune.reduction;
      workload_json[tech] = cell;
    }
    report.metrics()["workloads"][workload.name] = workload_json;
  }
  benchutil::print_rule(100);

  const double overall_reduction =
      total_pilots == 0 ? 0.0
                        : static_cast<double>(total_injections) /
                              static_cast<double>(total_pilots);
  if (overall_reduction < kMinReduction) {
    fail("overall injection reduction " + std::to_string(overall_reduction) +
         "x below the " + std::to_string(kMinReduction) + "x floor");
  }
  std::printf("\nOverall: %llu exhaustive-frame injections answered by %llu "
              "pilots (%.1fx reduction); %llu dead probes and %llu pilots "
              "re-validated, %d failure(s).\n",
              static_cast<unsigned long long>(total_injections),
              static_cast<unsigned long long>(total_pilots),
              overall_reduction,
              static_cast<unsigned long long>(total_dead_checked),
              static_cast<unsigned long long>(total_pilots_checked),
              failures);
  report.metrics()["total_injections"] = total_injections;
  report.metrics()["total_pilots"] = total_pilots;
  report.metrics()["overall_reduction"] = overall_reduction;
  report.metrics()["dead_probes_checked"] = total_dead_checked;
  report.metrics()["pilots_checked"] = total_pilots_checked;
  report.metrics()["equivalence_ok"] = failures == 0;
  report.wallclock()["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.write();
  return failures == 0 ? 0 : 1;
}
