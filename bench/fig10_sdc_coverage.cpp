// Reproduces Fig 10: SDC coverage per benchmark for IR-LEVEL-EDDI,
// HYBRID-ASSEMBLY-LEVEL-EDDI and FERRUM, from assembly-level single-bit
// fault-injection campaigns (default 1000 sampled faults per measurement,
// as in the paper; override with FERRUM_TRIALS).
//
// Paper reference points: IR-LEVEL-EDDI averages 72% coverage (kNN 50%,
// Needle 54%, kmeans 100%); HYBRID and FERRUM reach 100% everywhere.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "fault/campaign.h"
#include "pipeline/pipeline.h"
#include "telemetry/export.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  const int trials = benchutil::env_trials();
  const int jobs = benchutil::env_jobs();
  const int ckpt_stride = benchutil::env_ckpt_stride();
  benchutil::BenchReport report("fig10_sdc_coverage");
  report.metrics()["trials"] = trials;
  std::printf("Fig 10 — SDC coverage after protection "
              "(%d sampled faults per cell across %d worker(s); raw column "
              "shows the 95%% Wilson interval)\n\n", trials, jobs);
  std::printf("%-15s %19s | %12s %12s %12s\n", "benchmark", "raw SDC",
              "ir-eddi", "hybrid", "ferrum");
  benchutil::print_rule(80);

  const Technique protected_techniques[] = {
      Technique::kIrEddi, Technique::kHybrid, Technique::kFerrum};
  double coverage_sum[3] = {0, 0, 0};
  int rows = 0;

  for (const auto& w : workloads::all()) {
    fault::CampaignOptions options;
    options.trials = trials;
    options.jobs = jobs;
    options.ckpt_stride = ckpt_stride;

    auto raw_build = pipeline::build(w.source, Technique::kNone);
    const auto raw = fault::run_campaign(raw_build.program, options);
    const auto [raw_lo, raw_hi] = raw.sdc_rate_ci();
    std::printf("%-15s %5.1f%% [%4.1f,%4.1f] |", w.name.c_str(),
                raw.sdc_rate() * 100.0, raw_lo * 100.0, raw_hi * 100.0);

    telemetry::Json workload = telemetry::Json::object();
    workload["raw"] = telemetry::to_json(raw);
    telemetry::Json wall = telemetry::Json::object();
    wall["raw"] = telemetry::wallclock_json(raw);
    for (int t = 0; t < 3; ++t) {
      auto build = pipeline::build(w.source, protected_techniques[t]);
      const auto result = fault::run_campaign(build.program, options);
      const double coverage =
          fault::sdc_coverage(raw.sdc_rate(), result.sdc_rate());
      coverage_sum[t] += coverage;
      std::printf(" %11.1f%%", coverage * 100.0);
      const char* tech = pipeline::technique_name(protected_techniques[t]);
      workload[tech] = telemetry::to_json(result);
      workload[tech]["coverage"] = coverage;
      wall[tech] = telemetry::wallclock_json(result);
    }
    report.metrics()["workloads"][w.name] = workload;
    report.wallclock()["workloads"][w.name] = wall;
    std::printf("\n");
    ++rows;
  }
  benchutil::print_rule(80);
  std::printf("%-15s %19s |", "AVERAGE", "");
  for (double sum : coverage_sum) {
    std::printf(" %11.1f%%", sum / rows * 100.0);
  }
  std::printf("\n\npaper:  ir-eddi avg 72%% (min 50%%), hybrid 100%%, "
              "ferrum 100%%\n");

  telemetry::Json average = telemetry::Json::object();
  const char* names[] = {"ir-level-eddi", "hybrid-assembly-level-eddi",
                         "ferrum"};
  for (int t = 0; t < 3; ++t) average[names[t]] = coverage_sum[t] / rows;
  report.metrics()["average_coverage"] = average;
  report.wallclock()["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.write();
  return 0;
}
