// flow_smoke — tier-1 harness for the ferrum-flow outcome-prediction
// analysis and the selective-protection planner built on it. Runs
// flow_program over every workload × technique × store-data knob and
// checks the invariants that must hold for ANY input:
//
//   1. totality — every static fault site gets a prediction, and the
//      profile/per-function/per-section tallies account for exactly the
//      site list;
//   2. determinism — two independent flow_program runs serialize to
//      byte-identical ferrum.flow.v1 documents (the analysis has no
//      hidden state; FERRUM_JOBS/dispatch/batch never enter it);
//   3. shape — an unprotected build has no reachable detector, so zero
//      predicted-detected sites; a ferrum build detects most sites; the
//      store-data knob strictly grows the site list with kStoreData
//      sites predicted sdc-vulnerable (store sink by definition);
//   4. planner — for every budget the selective plan picks exactly
//      round(budget × universe) distinct in-range ordinals, the analysis
//      ranking never prefers a lower-scored site over a higher-scored
//      one, plans are deterministic, and the random strategy is a
//      permutation-prefix of the same universe;
//   5. schema — the artifact passes the bench JSON validation that
//      bench_smoke applies, with each cell a ferrum.flow.v1 doc.
//
// Usage: flow_smoke   (registered as a ctest; artifact lands in
// $FERRUM_BENCH_DIR or the working directory)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "check/flow.h"
#include "pipeline/pipeline.h"
#include "pipeline/selective.h"
#include "workloads/workloads.h"

using namespace ferrum;
using check::flow::FlowOptions;
using check::flow::FlowReport;
using check::flow::Prediction;
using pipeline::SelectiveOptions;
using pipeline::Technique;
using telemetry::Json;

namespace {

int failures = 0;

void fail(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  ++failures;
}

struct Config {
  const char* name;
  Technique technique;
  bool store_data;
};

const Config kConfigs[] = {
    {"none", Technique::kNone, false},
    {"ir-eddi", Technique::kIrEddi, false},
    {"hybrid", Technique::kHybrid, false},
    {"ferrum", Technique::kFerrum, false},
    {"ferrum-stores", Technique::kFerrum, true},
};

std::uint64_t profile_total(const FlowReport& report) {
  return report.profile.of(Prediction::kMasked) +
         report.profile.of(Prediction::kDetected) +
         report.profile.of(Prediction::kCrashProne) +
         report.profile.of(Prediction::kSdcVulnerable);
}

void check_report(const std::string& label, const masm::AsmProgram& program,
                  const FlowReport& report, const FlowOptions& options) {
  if (report.sites.empty()) {
    fail(label + ": flow produced no sites");
    return;
  }
  if (profile_total(report) != report.sites.size()) {
    fail(label + ": profile total does not match the site list");
  }
  std::uint64_t by_function_total = 0;
  for (const auto& profile : report.by_function) {
    by_function_total += profile.of(Prediction::kMasked) +
                         profile.of(Prediction::kDetected) +
                         profile.of(Prediction::kCrashProne) +
                         profile.of(Prediction::kSdcVulnerable);
  }
  if (by_function_total != report.sites.size()) {
    fail(label + ": per-function profiles do not account for every site");
  }
  for (const check::flow::FlowSite& site : report.sites) {
    const check::flow::FlowSite* found =
        report.find(site.function, site.block, site.inst);
    if (found == nullptr) {
      fail(label + ": site_index lookup lost a site");
      break;
    }
  }
  // Determinism: a fresh analysis of the same program serializes
  // byte-identically. flow_program reads nothing but the program and
  // options, so this also certifies jobs/dispatch/batch invariance —
  // those knobs have no channel into the analysis.
  const FlowReport again = check::flow::flow_program(program, options);
  if (check::flow::to_json(report, program).dump() !=
      check::flow::to_json(again, program).dump()) {
    fail(label + ": two flow runs serialize differently");
  }
}

void check_plan(const std::string& label, const masm::AsmProgram& program) {
  eddi::AsmProtectOptions protect_options;
  const double budgets[] = {0.0, 0.25, 0.5, 1.0};
  for (const double budget : budgets) {
    for (const auto strategy : {SelectiveOptions::Strategy::kAnalysis,
                                SelectiveOptions::Strategy::kRandom}) {
      SelectiveOptions options;
      options.strategy = strategy;
      options.budget = budget;
      const auto plan =
          pipeline::plan_selective(program, options, protect_options);
      const auto n = plan.universe.size();
      const auto want = static_cast<std::size_t>(
          std::lround(budget * static_cast<double>(n)));
      char tag[64];
      std::snprintf(tag, sizeof(tag), "%s budget=%.2f",
                    pipeline::selective_strategy_name(strategy), budget);
      if (plan.selected.size() != want) {
        fail(label + " " + tag + ": selected " +
             std::to_string(plan.selected.size()) + " sites, expected " +
             std::to_string(want));
      }
      const std::set<int> unique(plan.selected.begin(), plan.selected.end());
      if (unique.size() != plan.selected.size() ||
          (!plan.selected.empty() &&
           (*unique.begin() < 0 ||
            *unique.rbegin() >= static_cast<int>(n)))) {
        fail(label + " " + tag + ": selection is not a distinct in-range "
                                 "ordinal set");
      }
      // Same options → same plan (the planner owns all of its entropy).
      const auto replay =
          pipeline::plan_selective(program, options, protect_options);
      if (replay.selected != plan.selected) {
        fail(label + " " + tag + ": plan is not deterministic");
      }
      // Ranking monotonicity: an analysis plan never leaves a
      // higher-scored site unprotected while selecting a lower-scored
      // one (the score mirrors the planner's prediction tiers).
      if (strategy == SelectiveOptions::Strategy::kAnalysis &&
          !plan.selected.empty() && plan.selected.size() < n) {
        const auto score = [&plan](int ordinal) {
          const auto& ref = plan.universe[static_cast<std::size_t>(ordinal)];
          int best = 0;
          const int span = ref.cluster ? 2 : 1;
          for (int d = 0; d < span; ++d) {
            const check::flow::FlowSite* site =
                plan.flow.find(ref.function, ref.block, ref.inst + d);
            if (site == nullptr) continue;
            switch (site->prediction) {
              case Prediction::kSdcVulnerable: best = std::max(best, 3); break;
              case Prediction::kCrashProne: best = std::max(best, 2); break;
              case Prediction::kDetected: best = std::max(best, 1); break;
              case Prediction::kMasked: break;
            }
          }
          return best;
        };
        int min_selected = 3;
        for (const int ordinal : plan.selected) {
          min_selected = std::min(min_selected, score(ordinal));
        }
        int max_skipped = 0;
        for (int ordinal = 0; ordinal < static_cast<int>(n); ++ordinal) {
          if (unique.count(ordinal) == 0) {
            max_skipped = std::max(max_skipped, score(ordinal));
          }
        }
        if (min_selected < max_skipped) {
          fail(label + " " + tag + ": analysis plan skipped a site scored "
                                   "above one it selected");
        }
      }
    }
  }
}

void validate_artifact(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    fail("cannot open " + path);
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = Json::parse(buffer.str());
  if (!parsed.has_value()) {
    fail(path + " does not parse as JSON");
    return;
  }
  for (const char* key : {"bench", "schema_version", "metrics", "wallclock"}) {
    if (parsed->find(key) == nullptr) {
      fail(path + " lacks required key '" + key + "'");
      return;
    }
  }
  if (parsed->find("bench")->as_string() != "flow_smoke") {
    fail(path + " 'bench' key is not 'flow_smoke'");
  }
  Json& workloads = (*parsed)["metrics"]["workloads"];
  if (workloads.size() == 0) {
    fail(path + " metrics carry no workloads");
    return;
  }
  for (const auto& [workload, cells] : workloads.fields()) {
    for (const auto& [config, cell] : cells.fields()) {
      const Json* flow = cell.find("flow");
      const Json* schema = flow == nullptr ? nullptr : flow->find("schema");
      if (schema == nullptr || schema->as_string() != "ferrum.flow.v1") {
        fail(workload + "/" + config +
             ": flow report is not a ferrum.flow.v1 document");
      }
    }
  }
}

}  // namespace

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  benchutil::BenchReport report("flow_smoke");

  std::printf("ferrum-flow smoke — workloads x techniques x knobs\n\n");
  std::printf("%-15s %-14s | %6s %6s %6s %6s\n", "workload", "config",
              "mask", "det", "crash", "vuln");
  benchutil::print_rule(72);

  for (const auto& workload : workloads::all()) {
    Json row = Json::object();
    std::uint64_t none_sites = 0;
    std::uint64_t stores_sites = 0;
    for (const Config& config : kConfigs) {
      const std::string label =
          std::string(workload.name) + "/" + config.name;
      FlowReport result;
      pipeline::Build build;
      try {
        pipeline::BuildOptions options;
        options.ferrum.protect_store_data = config.store_data;
        build = pipeline::build(workload.source, config.technique, options);
        FlowOptions flow_options;
        flow_options.store_data_sites = config.store_data;
        result = check::flow::flow_program(build.program, flow_options);
        check_report(label, build.program, result, flow_options);
      } catch (const std::exception& e) {
        fail(label + ": " + e.what());
        continue;
      }
      std::printf("%-15s %-14s | %6llu %6llu %6llu %6llu\n",
                  workload.name.c_str(),
                  config.name,
                  static_cast<unsigned long long>(
                      result.profile.of(Prediction::kMasked)),
                  static_cast<unsigned long long>(
                      result.profile.of(Prediction::kDetected)),
                  static_cast<unsigned long long>(
                      result.profile.of(Prediction::kCrashProne)),
                  static_cast<unsigned long long>(
                      result.profile.of(Prediction::kSdcVulnerable)));

      if (config.technique == Technique::kNone) {
        none_sites = result.sites.size();
        // No detector blocks exist, so nothing can be predicted detected.
        if (result.profile.of(Prediction::kDetected) != 0) {
          fail(label + ": unprotected build predicts detected sites");
        }
        // The planner runs on the pre-protection program; exercise every
        // budget/strategy knob against this cell.
        check_plan(label, build.program);
      }
      if (config.technique == Technique::kFerrum) {
        if (result.profile.of(Prediction::kDetected) == 0) {
          fail(label + ": ferrum build predicts no detected sites");
        }
        if (config.store_data) stores_sites = result.sites.size();
      }
      // Store-data kStoreData sites carry the store sink by definition —
      // any predicted masked/detected among them must come from a prune
      // deadness proof or a check protected fact, never from flow alone.
      for (const check::flow::FlowSite& site : result.sites) {
        if (site.kind == masm::FaultSiteKind::kStoreData &&
            site.basis == check::flow::PredictionBasis::kFlow &&
            (site.prediction == Prediction::kMasked ||
             site.prediction == Prediction::kDetected)) {
          fail(label + ": store-data site predicted safe on flow evidence");
          break;
        }
      }
      Json cell = Json::object();
      cell["flow"] = check::flow::to_json(result, build.program);
      row[config.name] = cell;
    }
    if (stores_sites != 0 && stores_sites <= none_sites) {
      fail(std::string(workload.name) +
           ": store-data knob did not grow the site list");
    }
    report.metrics()["workloads"][workload.name] = row;
  }
  benchutil::print_rule(72);

  report.wallclock()["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const std::string path = report.write();
  if (path.empty()) {
    fail("artifact write failed");
  } else {
    validate_artifact(path);
  }

  if (failures == 0) std::printf("flow_smoke: all checks passed\n");
  return failures == 0 ? 0 : 1;
}
