// Cross-validation of ferrum-check against the exhaustive dynamic audit:
// the checker promises that its kUnprotected classification
// over-approximates the dynamically reachable SDC surface, i.e. every
// fault the audit observes escaping as a silent data corruption landed on
// an (instruction, operand) site the checker reported unprotected.
//
// The audit is exhaustive (every dynamic FI site x probe bit), so this
// experiment runs on compact kernels rather than the full Table II
// workloads — small enough that sites x steps stays tractable, varied
// enough to exercise integer ALU, division, doubles, branches and calls.
//
// Per (kernel, technique) cell the table shows the static classification,
// the audit outcome, and the containment ratio:
//
//   containment = escapes landing on statically-unprotected sites
//                 / total escapes            (1.0 when no escapes)
//
// Anything below 1.0 is a checker soundness bug. The converse gap
// (unprotected sites that never produce an SDC) is expected — static
// over-approximation plus untoggled bits — and reported as `tightness`.
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "check/check.h"
#include "check/prune.h"
#include "fault/audit.h"
#include "pipeline/pipeline.h"
#include "telemetry/export.h"
#include "vm/vm.h"

using namespace ferrum;
using pipeline::Technique;

namespace {

struct Kernel {
  const char* name;
  std::string source;
};

std::string with_reps(const char* text, int reps) {
  std::string source(text);
  const std::string token = "%REPS%";
  const std::size_t pos = source.find(token);
  if (pos != std::string::npos) {
    source.replace(pos, token.size(), std::to_string(reps));
  }
  return source;
}

std::vector<Kernel> kernels(int scale) {
  return {
      {"mixsum", with_reps(R"MINIC(
        int seed = 7;
        int main() {
          int acc = 0;
          for (int r = 0; r < %REPS%; r++) {
            for (int i = 0; i < 10; i++) {
              seed = (seed * 1103515245 + 12345) % 65536;
              if (seed < 0) seed = -seed;
              if (seed % 3 == 0) acc = acc + seed;
              else acc = acc - seed / 2;
            }
            print_int(acc);
          }
          return 0;
        })MINIC", scale)},
      {"gcdchain", with_reps(R"MINIC(
        int gcd(int a, int b) {
          while (b != 0) {
            int t = a % b;
            a = b;
            b = t;
          }
          return a;
        }
        int main() {
          int acc = 0;
          for (int r = 0; r < %REPS%; r++) {
            for (int i = 1; i < 7; i++) {
              acc = acc + gcd(90 + i * 7, 36 + i);
            }
          }
          print_int(acc);
          return 0;
        })MINIC", scale)},
      {"newton", with_reps(R"MINIC(
        int main() {
          double x = 7.0;
          for (int r = 0; r < %REPS%; r++) {
            double guess = x / 2.0;
            for (int i = 0; i < 4; i++) {
              guess = (guess + x / guess) / 2.0;
            }
            print_f64(guess);
            x = x + 3.0;
          }
          return 0;
        })MINIC", scale)},
      {"argmax", with_reps(R"MINIC(
        int data[8];
        int main() {
          int seed = 3;
          for (int r = 0; r < %REPS%; r++) {
            for (int i = 0; i < 8; i++) {
              seed = (seed * 75 + 74) % 65537;
              data[i] = seed % 100;
            }
            int best = 0;
            for (int i = 1; i < 8; i++) {
              if (data[i] > data[best]) best = i;
            }
            print_int(best);
            print_int(data[best]);
          }
          return 0;
        })MINIC", scale)},
  };
}

using SiteKey = std::tuple<std::string, int, int, std::string>;

}  // namespace

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  const int scale = benchutil::env_scale();
  const int jobs = benchutil::env_jobs();
  const int ckpt_stride = benchutil::env_ckpt_stride();
  benchutil::BenchReport report("analysis_static_coverage");
  report.metrics()["scale"] = scale;

  std::printf("Static coverage cross-validation — exhaustive audit vs "
              "ferrum-check (scale %d, %d worker(s))\n\n", scale, jobs);
  std::printf("%-10s %-10s | %6s %6s %6s | %8s %7s | %11s %9s\n", "kernel",
              "technique", "prot", "benign", "unprot", "inject", "escape",
              "containment", "tightness");
  benchutil::print_rule(96);

  const Technique techniques[] = {Technique::kNone, Technique::kIrEddi,
                                  Technique::kHybrid, Technique::kFerrum};
  std::uint64_t total_escapes = 0;
  std::uint64_t total_contained = 0;
  std::uint64_t total_dead_escapes = 0;
  for (const Kernel& kernel : kernels(scale)) {
    telemetry::Json kernel_json = telemetry::Json::object();
    for (Technique technique : techniques) {
      const auto build = pipeline::build(kernel.source, technique);
      const auto static_report = check::check_program(build.program);

      fault::AuditOptions audit_options;
      // The audit is quadratic (sites x steps), so the smoke scale
      // probes one mid-word bit; larger scales add sign and low bits.
      audit_options.probe_bits =
          scale <= 1 ? std::vector<int>{17} : std::vector<int>{0, 17, 63};
      audit_options.jobs = jobs;
      audit_options.ckpt_stride = ckpt_stride;
      const auto audit = fault::audit_program(build.program, audit_options);

      // Containment: every dynamic SDC escape must land on a site the
      // checker classified unprotected (keyed by function, block, inst
      // and fault kind — the strings match by construction).
      std::set<SiteKey> unprotected;
      for (const check::SiteRecord& site : static_report.sites) {
        if (site.status == check::SiteStatus::kUnprotected) {
          unprotected.insert({site.function, site.block, site.inst,
                              check::site_kind_name(site.kind)});
        }
      }
      // Dead-escape containment (ferrum-prune soundness from the other
      // side): a bit the liveness analysis proves dead must never show up
      // as a dynamic SDC escape.
      const check::prune::PruneReport prune =
          check::prune::prune_program(build.program);
      std::uint64_t dead_escapes = 0;
      for (const fault::AuditEscape& escape : audit.escapes) {
        for (std::size_t f = 0; f < build.program.functions.size(); ++f) {
          if (build.program.functions[f].name != escape.function) continue;
          const check::prune::PruneSite* site = prune.find(
              static_cast<int>(f), escape.block, escape.inst);
          if (site != nullptr && site->bit_dead(escape.bit)) {
            ++dead_escapes;
            std::fprintf(stderr,
                         "dead-escape MISS: %s/%s escape at %s b%d#%d bit %d "
                         "is statically dead\n",
                         kernel.name, pipeline::technique_name(technique),
                         escape.function.c_str(), escape.block, escape.inst,
                         escape.bit);
          }
          break;
        }
      }
      std::uint64_t contained = 0;
      std::set<SiteKey> escaped_keys;
      for (const fault::AuditEscape& escape : audit.escapes) {
        const SiteKey key{escape.function, escape.block, escape.inst,
                          vm::fault_kind_name(escape.kind)};
        escaped_keys.insert(key);
        if (unprotected.count(key) != 0) {
          ++contained;
        } else {
          std::fprintf(stderr,
                       "containment MISS: %s/%s escape at %s b%d#%d (%s) "
                       "not statically unprotected\n",
                       kernel.name, pipeline::technique_name(technique),
                       escape.function.c_str(), escape.block, escape.inst,
                       vm::fault_kind_name(escape.kind));
        }
      }
      total_escapes += audit.escapes.size();
      total_contained += contained;
      total_dead_escapes += dead_escapes;
      const double containment =
          audit.escapes.empty()
              ? 1.0
              : static_cast<double>(contained) /
                    static_cast<double>(audit.escapes.size());
      // Tightness: what fraction of statically-unprotected sites did the
      // audit actually corrupt? Low values are expected for protected
      // techniques (the residue is crash- or benign-dominated).
      const double tightness =
          static_report.unprotected_sites == 0
              ? 1.0
              : static_cast<double>(escaped_keys.size()) /
                    static_cast<double>(static_report.unprotected_sites);

      std::printf("%-10s %-10s | %6llu %6llu %6llu | %8llu %7zu | %11.3f "
                  "%9.3f\n",
                  kernel.name, pipeline::technique_name(technique),
                  static_cast<unsigned long long>(
                      static_report.protected_sites),
                  static_cast<unsigned long long>(static_report.benign_sites),
                  static_cast<unsigned long long>(
                      static_report.unprotected_sites),
                  static_cast<unsigned long long>(audit.injections),
                  audit.escapes.size(), containment, tightness);

      telemetry::Json cell = telemetry::Json::object();
      cell["static"] = check::to_json(static_report);
      cell["audit"] = telemetry::to_json(audit);
      cell["contained_escapes"] = contained;
      cell["containment"] = containment;
      cell["tightness"] = tightness;
      cell["dead_escapes"] = dead_escapes;
      kernel_json[pipeline::technique_name(technique)] = cell;
    }
    report.metrics()["kernels"][kernel.name] = kernel_json;
  }
  benchutil::print_rule(96);
  const double agreement =
      total_escapes == 0 ? 1.0
                         : static_cast<double>(total_contained) /
                               static_cast<double>(total_escapes);
  std::printf("\nOverall agreement: %llu/%llu escapes statically "
              "unprotected (%.3f). Anything below 1.0 is a ferrum-check "
              "soundness bug.\n",
              static_cast<unsigned long long>(total_contained),
              static_cast<unsigned long long>(total_escapes), agreement);
  std::printf("Dead-escape containment: %llu escapes on statically-dead "
              "bits (anything above 0 is a ferrum-prune soundness bug).\n",
              static_cast<unsigned long long>(total_dead_escapes));
  report.metrics()["total_escapes"] = total_escapes;
  report.metrics()["contained_escapes"] = total_contained;
  report.metrics()["agreement"] = agreement;
  report.metrics()["dead_escape_misses"] = total_dead_escapes;
  report.wallclock()["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.write();
  return 0;
}
