// Cross-validation of compositional campaigns against the monolithic
// audit: the section decomposition partitions the dynamic FI site
// stream, each section is campaigned in isolation, and the composition
// rule folds the per-section summaries into whole-program counts. For
// the exhaustive frame (every site x probe bit) the composed counts must
// agree with fault::audit_program EXACTLY — agreement 1.000 on every
// workload x technique cell, asserted in-artifact and re-checked by
// bench_smoke. Anything below 1.0 means the decomposition dropped or
// double-counted a site, or a per-section trial diverged from the
// monolithic engine semantics.
//
// The experiment also measures the incremental payoff (EXPERIMENTS.md
// A9): a sampled compositional campaign run cold into a summary cache,
// then re-run warm — the warm pass must execute zero engine trials and
// compose byte-identical counts from the cached summaries alone.
#include <chrono>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "check/sections.h"
#include "fault/audit.h"
#include "fault/compose.h"
#include "pipeline/pipeline.h"
#include "telemetry/export.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  const int scale = benchutil::env_scale();
  const int trials = benchutil::env_trials();
  const int jobs = benchutil::env_jobs();
  const int ckpt_stride = benchutil::env_ckpt_stride();
  const int batch = benchutil::env_batch();
  benchutil::BenchReport report("analysis_compose_accuracy");
  report.metrics()["scale"] = scale;

  // The exhaustive frame is quadratic (sites x steps), so the smoke
  // scale probes one mid-word bit over a strided site subsample (both
  // sweeps stride identically, so exact agreement stays meaningful);
  // larger scales add sign and low bits (the analysis_static_coverage
  // convention) and widen toward the full frame. Strides are prime so a
  // loop body's site periodicity cannot phase-lock the sample.
  const std::vector<int> probe_bits =
      scale <= 1 ? std::vector<int>{17} : std::vector<int>{0, 17, 63};
  const int site_stride = scale <= 1 ? 61 : scale == 2 ? 7 : 1;
  report.metrics()["site_stride"] = site_stride;

  std::printf("Compositional-campaign cross-validation — composed section "
              "summaries vs monolithic audit (scale %d, %d worker(s))\n\n",
              scale, jobs);
  std::printf("%-12s %-10s | %5s %8s | %8s %8s %8s %8s | %5s\n", "workload",
              "technique", "sects", "inject", "detected", "benign", "crashed",
              "sdc", "match");
  benchutil::print_rule(92);

  const Technique techniques[] = {Technique::kNone, Technique::kIrEddi,
                                  Technique::kHybrid, Technique::kFerrum};
  std::uint64_t cells = 0;
  std::uint64_t matched = 0;
  std::uint64_t total_injections = 0;
  bool warm_zero_trials = true;
  bool warm_matches_cold = true;
  telemetry::Json speedups = telemetry::Json::object();
  for (const auto& workload : workloads::all()) {
    telemetry::Json workload_json = telemetry::Json::object();
    for (Technique technique : techniques) {
      const auto build = pipeline::build(workload.source, technique);
      const check::sections::SectionMap map =
          check::sections::build_sections(build.program);

      fault::AuditOptions audit_options;
      audit_options.probe_bits = probe_bits;
      audit_options.jobs = jobs;
      audit_options.ckpt_stride = ckpt_stride;
      audit_options.batch = batch;
      audit_options.site_stride = site_stride;
      const fault::AuditReport audit =
          fault::audit_program(build.program, audit_options);

      fault::ComposeOptions compose_options;
      compose_options.probe_bits = probe_bits;
      compose_options.jobs = jobs;
      compose_options.ckpt_stride = ckpt_stride;
      compose_options.batch = batch;
      compose_options.site_stride = site_stride;
      const fault::ComposeReport composed =
          fault::compose_audit(build.program, map, compose_options);

      // The audit reports SDCs as its escape list; everything else is a
      // named counter. Exact agreement on all five numbers is the bar.
      const std::uint64_t audit_sdc = audit.escapes.size();
      const bool match = composed.injections == audit.injections &&
                         composed.detected == audit.detected &&
                         composed.benign == audit.benign &&
                         composed.crashed == audit.crashed &&
                         composed.sdc == audit_sdc;
      ++cells;
      matched += match ? 1 : 0;
      total_injections += audit.injections;
      if (!match) {
        std::fprintf(stderr,
                     "compose MISMATCH: %s/%s audit(det=%llu ben=%llu "
                     "crash=%llu sdc=%llu) composed(det=%llu ben=%llu "
                     "crash=%llu sdc=%llu)\n",
                     workload.name.c_str(),
                     pipeline::technique_name(technique),
                     static_cast<unsigned long long>(audit.detected),
                     static_cast<unsigned long long>(audit.benign),
                     static_cast<unsigned long long>(audit.crashed),
                     static_cast<unsigned long long>(audit_sdc),
                     static_cast<unsigned long long>(composed.detected),
                     static_cast<unsigned long long>(composed.benign),
                     static_cast<unsigned long long>(composed.crashed),
                     static_cast<unsigned long long>(composed.sdc));
      }
      std::printf("%-12s %-10s | %5zu %8llu | %8llu %8llu %8llu %8llu | "
                  "%5s\n",
                  workload.name.c_str(), pipeline::technique_name(technique),
                  composed.sections.size(),
                  static_cast<unsigned long long>(composed.injections),
                  static_cast<unsigned long long>(composed.detected),
                  static_cast<unsigned long long>(composed.benign),
                  static_cast<unsigned long long>(composed.crashed),
                  static_cast<unsigned long long>(composed.sdc),
                  match ? "yes" : "NO");

      telemetry::Json cell = telemetry::Json::object();
      cell["audit"] = telemetry::to_json(audit);
      cell["compose"] = telemetry::to_json(composed);
      cell["match"] = match;
      workload_json[pipeline::technique_name(technique)] = cell;
    }

    // Incremental payoff on the FERRUM configuration: a sampled
    // compositional campaign cold into an in-memory summary cache, then
    // warm from it. The warm pass must execute zero engine trials and
    // export byte-identical deterministic counts.
    {
      const auto build = pipeline::build(workload.source, Technique::kFerrum);
      const check::sections::SectionMap map =
          check::sections::build_sections(build.program);
      std::map<std::string, std::string> cache;
      fault::ComposeOptions campaign_options;
      campaign_options.trials = static_cast<std::uint64_t>(trials);
      campaign_options.jobs = jobs;
      campaign_options.ckpt_stride = ckpt_stride;
      campaign_options.batch = batch;
      campaign_options.lookup =
          [&cache](const std::string& key) -> std::optional<std::string> {
        const auto it = cache.find(key);
        if (it == cache.end()) return std::nullopt;
        return it->second;
      };
      campaign_options.store = [&cache](const std::string& key,
                                        const std::string& bytes) {
        cache[key] = bytes;  // replace semantics, like the CLI wiring
      };
      const fault::ComposeReport cold =
          fault::compose_campaign(build.program, map, campaign_options);
      const fault::ComposeReport warm =
          fault::compose_campaign(build.program, map, campaign_options);
      if (warm.trials_executed != 0) warm_zero_trials = false;
      if (telemetry::to_json(warm).dump() != telemetry::to_json(cold).dump()) {
        warm_matches_cold = false;
      }
      telemetry::Json row = telemetry::Json::object();
      row["cold_seconds"] = cold.wall_seconds;
      row["warm_seconds"] = warm.wall_seconds;
      row["speedup"] = warm.wall_seconds > 0.0
                           ? cold.wall_seconds / warm.wall_seconds
                           : 0.0;
      row["cold_trials_executed"] = cold.trials_executed;
      row["warm_trials_executed"] = warm.trials_executed;
      speedups[workload.name] = row;
    }
    report.metrics()["workloads"][workload.name] = workload_json;
  }
  benchutil::print_rule(92);

  const double agreement =
      cells == 0 ? 0.0
                 : static_cast<double>(matched) / static_cast<double>(cells);
  std::printf("\nOverall agreement: %llu/%llu cells composed exactly "
              "(%.3f). Anything below 1.0 is a decomposition or "
              "composition soundness bug.\n",
              static_cast<unsigned long long>(matched),
              static_cast<unsigned long long>(cells), agreement);
  std::printf("Warm re-composition: zero_trials=%s byte_identical=%s\n",
              warm_zero_trials ? "yes" : "NO",
              warm_matches_cold ? "yes" : "NO");
  report.metrics()["cells"] = cells;
  report.metrics()["matched_cells"] = matched;
  report.metrics()["agreement"] = agreement;
  report.metrics()["total_injections"] = total_injections;
  report.metrics()["warm_zero_trials"] = warm_zero_trials;
  report.metrics()["warm_matches_cold"] = warm_matches_cold;
  report.wallclock()["incremental"] = speedups;
  report.wallclock()["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.write();
  return agreement == 1.0 && warm_zero_trials && warm_matches_cold ? 0 : 1;
}
