// Reproduces Sec IV-B3: wall-clock execution time of the FERRUM pass
// itself, per benchmark, via google-benchmark. The paper reports 0.117 s
// on average (min 0.089 s for BFS at 406 static instructions, max 0.196 s
// for Particlefilter at 2230) and observes the time is linear in the
// static instruction count — the final benchmark checks that scaling
// directly on synthetic program sizes.
#include <benchmark/benchmark.h>

#include "backend/backend.h"
#include "bench_util.h"
#include "eddi/ferrum.h"
#include "frontend/codegen.h"
#include "support/source_location.h"
#include "telemetry/json.h"
#include "workloads/workloads.h"

using namespace ferrum;

namespace {

masm::AsmProgram lower_workload(const std::string& name) {
  const auto& w = workloads::by_name(name);
  DiagEngine diags;
  auto module = minic::compile(w.source, diags);
  if (module == nullptr) throw std::runtime_error(diags.render());
  return backend::lower(*module);
}

void BM_FerrumPass(benchmark::State& state, const std::string& name) {
  const masm::AsmProgram original = lower_workload(name);
  std::size_t static_instructions = original.inst_count();
  for (auto _ : state) {
    state.PauseTiming();
    masm::AsmProgram copy = original;  // protect a fresh copy each round
    state.ResumeTiming();
    const auto report = eddi::apply_ferrum(copy);
    benchmark::DoNotOptimize(report.stats.simd_sites);
  }
  state.counters["static_insts"] =
      static_cast<double>(static_instructions);
}

/// Linearity probe: a synthetic straight-line program of N statements.
std::string synthetic_program(int statements) {
  std::string source = "int main() {\n  int a = 1;\n  int b = 2;\n";
  for (int i = 0; i < statements; ++i) {
    source += "  a = a + b * " + std::to_string(i % 7 + 1) + ";\n";
  }
  source += "  print_int(a);\n  return 0;\n}\n";
  return source;
}

void BM_FerrumPassScaling(benchmark::State& state) {
  DiagEngine diags;
  auto module = minic::compile(synthetic_program(
                                   static_cast<int>(state.range(0))),
                               diags);
  if (module == nullptr) {
    state.SkipWithError("frontend error");
    return;
  }
  const masm::AsmProgram original = backend::lower(*module);
  for (auto _ : state) {
    state.PauseTiming();
    masm::AsmProgram copy = original;
    state.ResumeTiming();
    const auto report = eddi::apply_ferrum(copy);
    benchmark::DoNotOptimize(report.static_instructions_after);
  }
  state.counters["static_insts"] =
      static_cast<double>(original.inst_count());
  state.SetComplexityN(static_cast<std::int64_t>(original.inst_count()));
}

}  // namespace

int main(int argc, char** argv) {
  // The telemetry artifact is written up front (google-benchmark's own
  // timing output stays on stdout): one FERRUM pass per workload, static
  // footprint + pass stats under `metrics`, pass wall time under
  // `wallclock`.
  {
    benchutil::BenchReport report("bench_pass_time");
    for (const auto& w : workloads::all()) {
      masm::AsmProgram program = lower_workload(w.name);
      const auto pass = eddi::apply_ferrum(program);
      telemetry::Json row = telemetry::Json::object();
      row["static_instructions_before"] =
          static_cast<std::uint64_t>(pass.static_instructions_before);
      row["static_instructions_after"] =
          static_cast<std::uint64_t>(pass.static_instructions_after);
      row["simd_sites"] = pass.stats.simd_sites;
      row["general_sites"] = pass.stats.general_sites;
      row["flushes"] = pass.stats.flushes;
      row["requisitions"] = pass.stats.requisitions;
      report.metrics()["workloads"][w.name] = row;
      report.wallclock()["pass_seconds"][w.name] = pass.seconds;
    }
    report.write();
  }

  for (const auto& w : workloads::all()) {
    benchmark::RegisterBenchmark(("FerrumPass/" + w.name).c_str(),
                                 [name = w.name](benchmark::State& state) {
                                   BM_FerrumPass(state, name);
                                 })
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::RegisterBenchmark("FerrumPassScaling", BM_FerrumPassScaling)
      ->RangeMultiplier(4)
      ->Range(16, 4096)
      ->Unit(benchmark::kMicrosecond)
      ->Complexity(benchmark::oN);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
