// Reproduces the paper's Sec IV-B1 root-cause analysis: *why* IR-level
// EDDI loses coverage at the assembly level. Two views:
//  1. static: how much of each protected program the backend generated
//     beyond the IR ("the additional unprotected footprint", also the
//     paper's explanation for HYBRID's overhead);
//  2. dynamic: where IR-LEVEL-EDDI's escaped SDCs actually landed,
//     bucketed by fault class and instruction origin (Figs 8/9 predict
//     flag materialisation and backend glue).
#include <chrono>
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "fault/campaign.h"
#include "masm/masm.h"
#include "pipeline/pipeline.h"
#include "telemetry/json.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  const int trials = benchutil::env_trials();
  const int jobs = benchutil::env_jobs();
  const int ckpt_stride = benchutil::env_ckpt_stride();
  benchutil::BenchReport report("analysis_rootcause");
  report.metrics()["trials"] = trials;

  std::printf("Sec IV-B1 — root causes of IR-LEVEL-EDDI's coverage gap\n\n");
  std::printf("1. Static backend footprint of the protected programs\n\n");
  std::printf("%-15s %10s %10s %10s %12s\n", "benchmark", "from-IR",
              "glue", "total", "glue share");
  benchutil::print_rule(62);
  for (const auto& w : workloads::all()) {
    auto build = pipeline::build(w.source, Technique::kIrEddi);
    std::size_t from_ir = 0;
    std::size_t glue = 0;
    for (const auto& fn : build.program.functions) {
      for (const auto& block : fn.blocks) {
        for (const auto& inst : block.insts) {
          if (inst.origin == masm::InstOrigin::kFromIR) ++from_ir;
          if (inst.origin == masm::InstOrigin::kBackendGlue) ++glue;
        }
      }
    }
    std::printf("%-15s %10zu %10zu %10zu %11.1f%%\n", w.name.c_str(),
                from_ir, glue, from_ir + glue,
                100.0 * glue / (from_ir + glue));
    telemetry::Json row = telemetry::Json::object();
    row["from_ir"] = static_cast<std::uint64_t>(from_ir);
    row["backend_glue"] = static_cast<std::uint64_t>(glue);
    row["glue_share"] = static_cast<double>(glue) /
                        static_cast<double>(from_ir + glue);
    report.metrics()["static_footprint"][w.name] = row;
  }
  std::printf("\nEvery 'glue' instruction (setcc materialisation, spills, "
              "moves, flag re-tests) is an assembly-level fault site that "
              "IR-level protection cannot see (paper Figs 8/9).\n\n");

  std::printf("2. Where IR-LEVEL-EDDI's escaped SDCs landed "
              "(%d faults per benchmark)\n\n", trials);
  std::map<std::string, int> totals;
  int total_sdcs = 0;
  for (const auto& w : workloads::all()) {
    auto build = pipeline::build(w.source, Technique::kIrEddi);
    fault::CampaignOptions options;
    options.trials = trials;
    options.jobs = jobs;
    options.ckpt_stride = ckpt_stride;
    const auto result = fault::run_campaign(build.program, options);
    for (const auto& [key, count] : result.sdc_breakdown) {
      totals[key] += count;
      total_sdcs += count;
    }
  }
  std::printf("%-40s %8s %8s\n", "fault class / instruction origin",
              "SDCs", "share");
  benchutil::print_rule(58);
  for (const auto& [key, count] : totals) {
    std::printf("%-40s %8d %7.1f%%\n", key.c_str(), count,
                100.0 * count / total_sdcs);
  }
  benchutil::print_rule(58);
  std::printf("%-40s %8d\n", "total escaped SDCs (8 benchmarks)",
              total_sdcs);
  std::printf("\npaper root causes: (a) instructions that only exist at "
              "assembly level (branch materialisation, backend glue) and "
              "(b) IR-level protection made ineffective by lowering — "
              "both visible above; FERRUM closes every row to zero "
              "(Fig 10).\n");
  telemetry::Json breakdown = telemetry::Json::object();
  for (const auto& [key, count] : totals) breakdown[key] = count;
  report.metrics()["sdc_breakdown"] = breakdown;
  report.metrics()["total_escaped_sdcs"] = total_sdcs;
  report.wallclock()["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.write();
  return 0;
}
