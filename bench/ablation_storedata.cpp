// Ablation: the fault-model boundary. The paper injects into instruction
// *destination registers* only — stores have none, so corrupted store
// data is outside its model. This experiment turns store-data faults on
// (extended model) and measures (a) how much coverage FERRUM loses when
// configured per the paper, and (b) what the load-back store verification
// that closes the hole costs.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "fault/campaign.h"
#include "pipeline/pipeline.h"
#include "telemetry/export.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ferrum;
using pipeline::Technique;

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  const int trials = benchutil::env_trials(400);
  const int jobs = benchutil::env_jobs();
  const int ckpt_stride = benchutil::env_ckpt_stride();
  benchutil::BenchReport report("ablation_storedata");
  report.metrics()["trials"] = trials;
  std::printf("Ablation — extended fault model (store-data faults), "
              "%d samples per cell, %d worker(s)\n\n", trials, jobs);
  std::printf("%-15s | %16s %16s | %12s\n", "benchmark",
              "ferrum (paper)", "ferrum+storechk", "extra insts");
  benchutil::print_rule(70);

  for (const auto& w : workloads::all()) {
    fault::CampaignOptions campaign;
    campaign.trials = trials;
    campaign.jobs = jobs;
    campaign.ckpt_stride = ckpt_stride;
    campaign.vm.fault_store_data = true;  // extended model for everyone

    auto raw_build = pipeline::build(w.source, Technique::kNone);
    const auto raw = fault::run_campaign(raw_build.program, campaign);

    // FERRUM as configured in the paper's fault model.
    auto paper_build = pipeline::build(w.source, Technique::kFerrum);
    const auto paper = fault::run_campaign(paper_build.program, campaign);

    // FERRUM with load-back store verification.
    pipeline::BuildOptions options;
    options.ferrum.protect_store_data = true;
    auto hardened_build =
        pipeline::build(w.source, Technique::kFerrum, options);
    const auto hardened =
        fault::run_campaign(hardened_build.program, campaign);

    std::printf("%-15s | %9.1f%% cov  %9.1f%% cov  | %12zu\n",
                w.name.c_str(),
                fault::sdc_coverage(raw.sdc_rate(), paper.sdc_rate()) * 100.0,
                fault::sdc_coverage(raw.sdc_rate(), hardened.sdc_rate()) *
                    100.0,
                hardened_build.program.inst_count() -
                    paper_build.program.inst_count());
    telemetry::Json row = telemetry::Json::object();
    row["raw"] = telemetry::to_json(raw);
    row["ferrum-paper"] = telemetry::to_json(paper);
    row["ferrum-paper"]["coverage"] =
        fault::sdc_coverage(raw.sdc_rate(), paper.sdc_rate());
    row["ferrum-storecheck"] = telemetry::to_json(hardened);
    row["ferrum-storecheck"]["coverage"] =
        fault::sdc_coverage(raw.sdc_rate(), hardened.sdc_rate());
    row["extra_static_instructions"] = static_cast<std::uint64_t>(
        hardened_build.program.inst_count() -
        paper_build.program.inst_count());
    report.metrics()["workloads"][w.name] = row;
  }
  benchutil::print_rule(70);
  std::printf("\nExpected shape: under store-data faults the paper "
              "configuration leaks some SDCs; load-back verification "
              "restores full coverage at extra static cost.\n");
  report.wallclock()["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.write();
  return 0;
}
