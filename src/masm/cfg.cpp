#include "masm/cfg.h"

namespace ferrum::masm {

UseDef use_def_of(const AsmInst& inst) {
  const RegEffects fx = effects_of(inst);
  UseDef ud;
  for (Gpr reg : fx.gpr_reads) ud.use |= gpr_bit(reg);
  for (Gpr reg : fx.gpr_writes) ud.def |= gpr_bit(reg);
  for (int xmm : fx.xmm_reads) ud.use |= xmm_bit(xmm);
  for (int xmm : fx.xmm_writes) ud.def |= xmm_bit(xmm);
  if (fx.reads_flags) ud.use |= kFlagsBit;
  if (fx.writes_flags) ud.def |= kFlagsBit;
  // Narrow register writes (setcc to %r10b) preserve the upper bits, so
  // the old value still matters: treat sub-64-bit GPR defs as read+write.
  if (inst.nops > 0) {
    const Operand& dst = inst.ops[inst.nops - 1];
    if (dst.is_reg() && dst.width < 8 && (ud.def & gpr_bit(dst.reg)) != 0) {
      ud.use |= gpr_bit(dst.reg);
    }
  }
  return ud;
}

Cfg build_cfg(const AsmFunction& fn) {
  Cfg cfg;
  const int block_count = static_cast<int>(fn.blocks.size());
  cfg.successors.resize(block_count);
  cfg.predecessors.resize(block_count);
  for (int b = 0; b < block_count; ++b) {
    const AsmBlock& block = fn.blocks[b];
    bool falls_through = true;
    for (auto it = block.insts.rbegin(); it != block.insts.rend(); ++it) {
      if (it->op == Op::kJmp) {
        cfg.successors[b].push_back(fn.block_index(it->ops[0].label));
        falls_through = false;
      } else if (it->op == Op::kRet) {
        falls_through = false;
      } else if (it->op == Op::kJcc) {
        cfg.successors[b].push_back(fn.block_index(it->ops[0].label));
      } else {
        break;  // past the terminator cluster
      }
    }
    if (falls_through && b + 1 < block_count) {
      cfg.successors[b].push_back(b + 1);
    }
  }
  for (int b = 0; b < block_count; ++b) {
    for (int succ : cfg.successors[b]) {
      if (succ >= 0) cfg.predecessors[succ].push_back(b);
    }
  }
  return cfg;
}

Liveness::Liveness(const AsmFunction& fn) : fn_(fn) {
  const int block_count = static_cast<int>(fn.blocks.size());
  live_in_.assign(block_count, 0);
  live_out_.assign(block_count, 0);
  const Cfg cfg = build_cfg(fn);

  // Precompute per-block gen/kill.
  std::vector<LiveSet> gen(block_count, 0), kill(block_count, 0);
  for (int b = 0; b < block_count; ++b) {
    LiveSet block_gen = 0, block_kill = 0;
    for (const AsmInst& inst : fn.blocks[b].insts) {
      const UseDef ud = use_def_of(inst);
      block_gen |= ud.use & ~block_kill;
      block_kill |= ud.def;
    }
    gen[b] = block_gen;
    kill[b] = block_kill;
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (int b = block_count - 1; b >= 0; --b) {
      LiveSet out = 0;
      for (int succ : cfg.successors[b]) {
        if (succ >= 0) out |= live_in_[succ];
      }
      const LiveSet in = gen[b] | (out & ~kill[b]);
      if (out != live_out_[b] || in != live_in_[b]) {
        live_out_[b] = out;
        live_in_[b] = in;
        changed = true;
      }
    }
  }
}

LiveSet Liveness::live_after(int block, int inst_index) const {
  // Walk backward from the block's live-out to the requested point.
  const AsmBlock& blk = fn_.blocks[block];
  LiveSet live = live_out_[block];
  for (int i = static_cast<int>(blk.insts.size()) - 1; i > inst_index; --i) {
    const UseDef ud = use_def_of(blk.insts[i]);
    live = (live & ~ud.def) | ud.use;
  }
  return live;
}

LiveSet used_registers(const AsmFunction& fn) {
  LiveSet used = 0;
  for (const AsmBlock& block : fn.blocks) {
    for (const AsmInst& inst : block.insts) {
      const UseDef ud = use_def_of(inst);
      used |= ud.use | ud.def;
    }
  }
  return used;
}

}  // namespace ferrum::masm
