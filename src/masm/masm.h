// MiniASM: the x86-64 subset that the backend emits, the protection passes
// rewrite, and the VM executes. Instructions use AT&T operand order
// (source first, destination last), matching the paper's listings.
//
// Deviations from real x86-64, documented here and in DESIGN.md:
//  * signed division/remainder are two-address (`idivq %src, %dst`)
//    instead of the rax/rdx idiom — the paper's mechanisms do not depend
//    on idiv's register constraints and this keeps every ALU op uniform;
//  * addresses are flat within the VM's memory image; globals are symbols
//    resolved at load time.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ferrum::masm {

/// General-purpose registers, standard x86 encoding order.
enum class Gpr : std::uint8_t {
  kRax, kRcx, kRdx, kRbx, kRsp, kRbp, kRsi, kRdi,
  kR8, kR9, kR10, kR11, kR12, kR13, kR14, kR15,
  kNone,  // sentinel: "no register" in memory operands
};
constexpr int kGprCount = 16;

/// SIMD registers. We model the full 256-bit YMM backing store; XMM names
/// refer to the low 128 bits.
constexpr int kXmmCount = 16;

/// Condition codes used by jcc / setcc.
enum class Cond : std::uint8_t {
  kE, kNe, kL, kLe, kG, kGe,  // signed
  kA, kAe, kB, kBe,           // unsigned (ucomisd results)
};

/// Name of a 64-bit register ("rax") or its narrower aliases.
std::string gpr_name(Gpr reg, int width);
const char* cond_name(Cond cc);
/// Inverse condition (e <-> ne, l <-> ge, ...).
Cond invert(Cond cc);

enum class Op : std::uint8_t {
  // Data movement.
  kMov,    // mov src, dst : reg/imm/mem -> reg, or reg/imm -> mem
  kMovsx,  // sign-extending move (movslq etc.)
  kMovzx,  // zero-extending move (movzbl etc.)
  kLea,    // lea mem, reg64
  kPush,   // push reg64
  kPop,    // pop reg64
  // Integer ALU, two-address RMW: dst = dst OP src.
  kAdd, kSub, kImul, kAnd, kOr, kXor,
  kShl, kSar,          // src is imm or %cl
  kIdiv, kIrem,        // two-address pseudo (see header comment)
  // Flags producers.
  kCmp,   // cmp src2, src1 : flags from src1 - src2 (AT&T)
  kTest,  // test src2, src1 : flags from src1 & src2
  // Flags consumers.
  kSetcc,  // setcc %r8b
  kJcc,    // conditional jump to label
  kJmp,
  kCall,
  kRet,
  // Scalar double-precision SSE.
  kMovsd,      // mem<->xmm, xmm<->xmm
  kAddsd, kSubsd, kMulsd, kDivsd,  // xmm src, xmm dst RMW
  kSqrtsd,     // dst = sqrt(src)
  kUcomisd,    // flags from compare
  kCvtsi2sd,   // gpr -> xmm
  kCvttsd2si,  // xmm -> gpr
  // Data shuffling used by FERRUM's SIMD checks.
  kMovq,         // gpr<->xmm low lane, or mem -> xmm low lane (width 4/8)
  kPinsrq,       // pinsrq/pinsrd $lane, gpr/mem, xmm
  kVinserti128,  // vinserti128 $lane, xmm, ymm, ymm
  kVpxor,        // vpxor src2, src1, dst (256-bit)
  kVptest,       // vptest src1, src2 -> ZF = ((src1 & src2) == 0)
  // Pseudo: error detector fired; VM halts with Detected status.
  kDetectTrap,
};

/// Number of opcodes, for dense per-opcode tables (profilers, timing).
constexpr int kOpCount = static_cast<int>(Op::kDetectTrap) + 1;

const char* op_mnemonic(Op op);
bool is_asm_terminator(Op op);

/// Memory operand: disp(base, index, scale) or symbol+disp for globals.
struct MemRef {
  Gpr base = Gpr::kNone;
  Gpr index = Gpr::kNone;
  int scale = 1;
  std::int64_t disp = 0;
  /// When >= 0, address = global_base(global_id) + disp (+ index*scale).
  int global_id = -1;
};

struct Operand {
  enum class Kind : std::uint8_t {
    kNone, kReg, kXmm, kImm, kMem, kLabel, kFunc,
  };
  Kind kind = Kind::kNone;
  /// Access width in bytes (1, 4, or 8) for reg/mem/imm operands.
  int width = 8;
  Gpr reg = Gpr::kNone;
  int xmm = 0;
  /// True when an xmm operand names the full 256-bit ymm register.
  bool ymm = false;
  std::int64_t imm = 0;
  MemRef mem;
  std::string label;  // jump target (block label) or callee (kFunc)

  static Operand make_reg(Gpr r, int w = 8);
  static Operand make_xmm(int index);
  static Operand make_ymm(int index);
  static Operand make_imm(std::int64_t value, int w = 8);
  static Operand make_mem(MemRef ref, int w);
  static Operand make_label(std::string name);
  static Operand make_func(std::string name);

  bool is_reg() const { return kind == Kind::kReg; }
  bool is_xmm() const { return kind == Kind::kXmm; }
  bool is_imm() const { return kind == Kind::kImm; }
  bool is_mem() const { return kind == Kind::kMem; }
};

/// Provenance of an instruction, used by coverage audits and reports.
enum class InstOrigin : std::uint8_t {
  kFromIR,       // direct lowering of an IR instruction
  kBackendGlue,  // backend-introduced: spills, flag materialisation,
                 // prologue/epilogue, address arithmetic, moves
  kProtection,   // inserted by an EDDI pass (duplicate / check / bookkeep)
};

/// Number of InstOrigin values, for dense per-origin tables.
constexpr int kInstOriginCount = 3;

/// Stable lower-case name ("from-ir", "backend-glue", "protection") used
/// by analyses and telemetry exports.
const char* origin_name(InstOrigin origin);

/// One MiniASM instruction. Operand order is AT&T: operands[0] is the
/// source, the last operand is the destination (cmp/test/vptest read-only).
struct AsmInst {
  Op op = Op::kMov;
  Cond cc = Cond::kE;
  std::array<Operand, 3> ops;
  int nops = 0;
  InstOrigin origin = InstOrigin::kFromIR;

  AsmInst() = default;
  AsmInst(Op o, std::initializer_list<Operand> operands);
  AsmInst(Op o, Cond c, std::initializer_list<Operand> operands);

  const Operand& src() const { return ops[0]; }
  const Operand& dst() const { return ops[nops > 0 ? nops - 1 : 0]; }

  std::string to_string() const;
};

struct AsmBlock {
  std::string label;
  std::vector<AsmInst> insts;
};

struct AsmFunction {
  std::string name;
  std::vector<AsmBlock> blocks;

  /// ABI metadata: how many integer / floating-point arguments the
  /// function receives (System V order: %rdi..%r9, %xmm0..%xmm7). Filled
  /// by the backend; parsed assembly leaves both at 0, which disables the
  /// verifier's call argument-register discipline for that callee. Not
  /// part of the printed form.
  int int_args = 0;
  int fp_args = 0;

  /// Index of a block by label, -1 if absent.
  int block_index(const std::string& label) const;
  std::size_t inst_count() const;
};

struct AsmGlobal {
  std::string name;
  std::int64_t size_bytes = 0;
  /// Leading initialised bytes (zero-filled beyond).
  std::vector<std::uint8_t> init;
};

/// A whole program: functions (main must exist to run) + global data.
struct AsmProgram {
  std::vector<AsmFunction> functions;
  std::vector<AsmGlobal> globals;

  const AsmFunction* find_function(const std::string& name) const;
  AsmFunction* find_function(const std::string& name);
  int global_index(const std::string& name) const;
  std::size_t inst_count() const;
};

/// AT&T-style rendering of a function / program.
std::string print(const AsmFunction& fn);
std::string print(const AsmProgram& program);

// --------------------------------------------------------------------------
// Register read/write sets, shared by liveness analysis, the protection
// passes and the VM's fault-site enumeration.

struct RegEffects {
  std::vector<Gpr> gpr_reads;
  std::vector<Gpr> gpr_writes;
  std::vector<int> xmm_reads;
  std::vector<int> xmm_writes;
  bool reads_flags = false;
  bool writes_flags = false;
  bool reads_mem = false;
  bool writes_mem = false;
};

/// Architectural effects of one instruction (calls report ABI clobbers).
RegEffects effects_of(const AsmInst& inst);

}  // namespace ferrum::masm
