#include "masm/parser.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "support/str.h"

namespace ferrum::masm {

namespace {

/// Reverse lookup: register name (any width) -> (gpr, width).
const std::unordered_map<std::string, std::pair<Gpr, int>>& reg_table() {
  static const auto* table = [] {
    auto* map = new std::unordered_map<std::string, std::pair<Gpr, int>>();
    for (int i = 0; i < kGprCount; ++i) {
      const Gpr reg = static_cast<Gpr>(i);
      map->emplace(gpr_name(reg, 8), std::make_pair(reg, 8));
      map->emplace(gpr_name(reg, 4), std::make_pair(reg, 4));
      map->emplace(gpr_name(reg, 1), std::make_pair(reg, 1));
    }
    return map;
  }();
  return *table;
}

int width_of_suffix(char suffix) {
  switch (suffix) {
    case 'b': return 1;
    case 'l': return 4;
    case 'q': return 8;
    default: return 0;
  }
}

bool parse_cond(std::string_view name, Cond& cc) {
  static const std::unordered_map<std::string_view, Cond> table = {
      {"e", Cond::kE},   {"ne", Cond::kNe}, {"l", Cond::kL},
      {"le", Cond::kLe}, {"g", Cond::kG},   {"ge", Cond::kGe},
      {"a", Cond::kA},   {"ae", Cond::kAe}, {"b", Cond::kB},
      {"be", Cond::kBe},
  };
  auto it = table.find(name);
  if (it == table.end()) return false;
  cc = it->second;
  return true;
}

class LineParser {
 public:
  LineParser(std::string_view text, int line_number, const AsmProgram& program,
             DiagEngine& diags)
      : text_(text), line_(line_number), program_(program), diags_(diags) {}

  /// Parses one instruction line (mnemonic + operands).
  bool parse_inst(AsmInst& inst) {
    skip_spaces();
    std::string mnemonic = take_word();
    if (mnemonic.empty()) return fail("missing mnemonic");
    std::vector<Operand> operands;
    skip_spaces();
    while (!at_end()) {
      Operand operand;
      if (!parse_operand(operand)) return false;
      operands.push_back(operand);
      skip_spaces();
      if (at_end()) break;
      if (peek() != ',') return fail("expected ','");
      take();
      skip_spaces();
    }
    return decode(mnemonic, operands, inst);
  }

 private:
  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return at_end() ? '\0' : text_[pos_]; }
  char take() { return text_[pos_++]; }
  void skip_spaces() {
    while (!at_end() && (peek() == ' ' || peek() == '\t')) take();
  }
  std::string take_word() {
    std::string word;
    while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                         peek() == '_' || peek() == '.')) {
      word.push_back(take());
    }
    return word;
  }
  bool fail(const std::string& message) {
    diags_.error({line_, static_cast<int>(pos_) + 1}, message);
    return false;
  }

  bool parse_int(std::int64_t& value) {
    std::size_t start = pos_;
    if (peek() == '-' || peek() == '+') take();
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      take();
    }
    if (pos_ == start) return fail("expected a number");
    value = std::strtoll(std::string(text_.substr(start, pos_ - start)).c_str(),
                         nullptr, 10);
    return true;
  }

  bool parse_register(Operand& operand) {
    take();  // '%'
    std::string name = take_word();
    if (starts_with(name, "xmm") || starts_with(name, "ymm")) {
      const int index = std::atoi(name.c_str() + 3);
      operand = name[0] == 'y' ? Operand::make_ymm(index)
                               : Operand::make_xmm(index);
      return true;
    }
    auto it = reg_table().find(name);
    if (it == reg_table().end()) return fail("unknown register %" + name);
    operand = Operand::make_reg(it->second.first, it->second.second);
    return true;
  }

  bool parse_operand(Operand& operand) {
    if (peek() == '%') return parse_register(operand);
    if (peek() == '$') {
      take();
      std::int64_t value = 0;
      if (!parse_int(value)) return false;
      operand = Operand::make_imm(value);
      return true;
    }
    if (peek() == '.') {
      take();
      operand = Operand::make_label(take_word());
      return true;
    }
    // Memory: [disp](%base[,%index[,scale]]) or symbol[+disp](%rip...),
    // or a bare function name (call target).
    MemRef mem;
    bool have_symbol = false;
    if (std::isalpha(static_cast<unsigned char>(peek())) || peek() == '_') {
      std::string symbol = take_word();
      const int global_id = program_.global_index(symbol);
      if (global_id < 0) {
        // Function name (call target).
        operand = Operand::make_func(std::move(symbol));
        return true;
      }
      mem.global_id = global_id;
      have_symbol = true;
      if (peek() == '+') {
        take();
        if (!parse_int(mem.disp)) return false;
      }
    } else if (peek() == '-' || peek() == '+' ||
               std::isdigit(static_cast<unsigned char>(peek()))) {
      if (!parse_int(mem.disp)) return false;
    }
    if (peek() != '(') return fail("expected '(' in memory operand");
    take();
    if (peek() == '%') {
      Operand base;
      if (!parse_register(base)) return false;
      // %rip base in symbol-relative operands is a syntactic marker only.
      if (!(have_symbol && base.reg == Gpr::kNone)) {
        if (!have_symbol) mem.base = base.reg;
        // symbol(%rip): ignore the rip base
        if (have_symbol && gpr_name(base.reg, 8) != std::string("rip")) {
          // A real register after a symbol is treated as index below.
        }
      }
      if (!have_symbol) mem.base = base.reg;
    }
    if (peek() == ',') {
      take();
      skip_spaces();
      Operand index;
      if (!parse_register(index)) return false;
      mem.index = index.reg;
      if (peek() == ',') {
        take();
        std::int64_t scale = 1;
        if (!parse_int(scale)) return false;
        mem.scale = static_cast<int>(scale);
      }
    }
    if (peek() != ')') return fail("expected ')' in memory operand");
    take();
    operand = Operand::make_mem(mem, 8);  // width fixed up by decode()
    return true;
  }

  bool decode(const std::string& mnemonic, std::vector<Operand>& operands,
              AsmInst& inst) {
    auto set_ops = [&](Op op, int expected) {
      if (static_cast<int>(operands.size()) != expected) {
        return fail(mnemonic + " expects " + std::to_string(expected) +
                    " operands");
      }
      inst.op = op;
      for (const Operand& operand : operands) inst.ops[inst.nops++] = operand;
      return true;
    };
    auto apply_width = [&](int width) {
      for (int i = 0; i < inst.nops; ++i) {
        if (inst.ops[i].kind == Operand::Kind::kMem ||
            inst.ops[i].kind == Operand::Kind::kImm) {
          inst.ops[i].width = width;
        }
      }
    };

    // Fixed-name SSE / AVX mnemonics first (they would otherwise collide
    // with suffix-decoded scalar names like "movs" + "d").
    static const std::unordered_map<std::string, std::pair<Op, int>> fixed = {
        {"movsd", {Op::kMovsd, 2}},       {"addsd", {Op::kAddsd, 2}},
        {"subsd", {Op::kSubsd, 2}},       {"mulsd", {Op::kMulsd, 2}},
        {"divsd", {Op::kDivsd, 2}},       {"sqrtsd", {Op::kSqrtsd, 2}},
        {"ucomisd", {Op::kUcomisd, 2}},   {"cvtsi2sd", {Op::kCvtsi2sd, 2}},
        {"cvttsd2si", {Op::kCvttsd2si, 2}}, {"vinserti128", {Op::kVinserti128, 3}},
        {"vpxor", {Op::kVpxor, 3}},       {"vptest", {Op::kVptest, 2}},
        {"ret", {Op::kRet, 0}},           {"jmp", {Op::kJmp, 1}},
        {"call", {Op::kCall, 1}},
    };
    auto fixed_it = fixed.find(mnemonic);
    if (fixed_it != fixed.end()) {
      if (fixed_it->second.first == Op::kCall && operands.size() == 1 &&
          operands[0].kind == Operand::Kind::kFunc &&
          operands[0].label == "__ferrum_detect") {
        inst.op = Op::kDetectTrap;
        return true;
      }
      if (!set_ops(fixed_it->second.first, fixed_it->second.second)) {
        return false;
      }
      apply_width(8);
      return true;
    }
    if (mnemonic == "movq" || mnemonic == "movd") {
      // kMovq when any xmm operand is involved, otherwise plain kMov.
      const int width = mnemonic == "movd" ? 4 : 8;
      bool any_xmm = false;
      for (const Operand& operand : operands) {
        if (operand.kind == Operand::Kind::kXmm) any_xmm = true;
      }
      if (!set_ops(any_xmm ? Op::kMovq : Op::kMov, 2)) return false;
      apply_width(width);
      for (int i = 0; i < inst.nops; ++i) {
        if (inst.ops[i].is_reg()) inst.ops[i].width = width;
      }
      return true;
    }
    if (mnemonic == "pinsrq" || mnemonic == "pinsrd") {
      if (!set_ops(Op::kPinsrq, 3)) return false;
      const int width = mnemonic == "pinsrd" ? 4 : 8;
      inst.ops[1].width = width;
      return true;
    }
    if (starts_with(mnemonic, "movs") && mnemonic.size() == 6) {
      inst.op = Op::kMovsx;
      const int from = width_of_suffix(mnemonic[4]);
      const int to = width_of_suffix(mnemonic[5]);
      if (from == 0 || to == 0) return fail("bad movsx suffix");
      if (!set_ops(Op::kMovsx, 2)) return false;
      inst.ops[0].width = from;
      inst.ops[1].width = to;
      return true;
    }
    if (starts_with(mnemonic, "movz") && mnemonic.size() == 6) {
      const int from = width_of_suffix(mnemonic[4]);
      const int to = width_of_suffix(mnemonic[5]);
      if (from == 0 || to == 0) return fail("bad movzx suffix");
      if (!set_ops(Op::kMovzx, 2)) return false;
      inst.ops[0].width = from;
      inst.ops[1].width = to;
      return true;
    }
    if (starts_with(mnemonic, "set")) {
      Cond cc;
      if (!parse_cond(mnemonic.substr(3), cc)) return fail("bad setcc");
      if (!set_ops(Op::kSetcc, 1)) return false;
      inst.cc = cc;
      return true;
    }
    if (mnemonic[0] == 'j') {
      Cond cc;
      if (!parse_cond(mnemonic.substr(1), cc)) return fail("bad jcc");
      if (!set_ops(Op::kJcc, 1)) return false;
      inst.cc = cc;
      return true;
    }
    // Width-suffixed integer forms.
    static const std::unordered_map<std::string, std::pair<Op, int>> alu = {
        {"mov", {Op::kMov, 2}},   {"lea", {Op::kLea, 2}},
        {"push", {Op::kPush, 1}}, {"pop", {Op::kPop, 1}},
        {"add", {Op::kAdd, 2}},   {"sub", {Op::kSub, 2}},
        {"imul", {Op::kImul, 2}}, {"and", {Op::kAnd, 2}},
        {"or", {Op::kOr, 2}},     {"xor", {Op::kXor, 2}},
        {"shl", {Op::kShl, 2}},   {"sar", {Op::kSar, 2}},
        {"idiv", {Op::kIdiv, 2}}, {"irem", {Op::kIrem, 2}},
        {"cmp", {Op::kCmp, 2}},   {"test", {Op::kTest, 2}},
    };
    if (mnemonic.size() >= 2) {
      const int width = width_of_suffix(mnemonic.back());
      if (width != 0) {
        auto it = alu.find(mnemonic.substr(0, mnemonic.size() - 1));
        if (it != alu.end()) {
          if (!set_ops(it->second.first, it->second.second)) return false;
          apply_width(width);
          return true;
        }
      }
    }
    return fail("unknown mnemonic '" + mnemonic + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_;
  const AsmProgram& program_;
  DiagEngine& diags_;
};

}  // namespace

AsmProgram parse_program(std::string_view text, DiagEngine& diags) {
  AsmProgram program;
  // First pass: collect globals so memory operands can resolve symbols.
  {
    int line_number = 0;
    for (std::string_view line : split(text, '\n')) {
      ++line_number;
      std::string_view trimmed = trim(line);
      auto colon = trimmed.find(':');
      if (colon == std::string_view::npos) continue;
      std::string_view rest = trim(trimmed.substr(colon + 1));
      if (starts_with(rest, ".space")) {
        AsmGlobal global;
        global.name = std::string(trimmed.substr(0, colon));
        global.size_bytes = std::atoll(std::string(rest.substr(6)).c_str());
        program.globals.push_back(std::move(global));
      }
    }
  }

  AsmFunction* current_fn = nullptr;
  AsmBlock* current_block = nullptr;
  int line_number = 0;
  for (std::string_view line : split(text, '\n')) {
    ++line_number;
    std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (trimmed.back() == ':' &&
        trimmed.find('\t') == std::string_view::npos &&
        trimmed.find(' ') == std::string_view::npos) {
      std::string_view name = trimmed.substr(0, trimmed.size() - 1);
      if (name.empty()) continue;
      if (name[0] == '.') {
        if (current_fn == nullptr) {
          diags.error({line_number, 1}, "label outside a function");
          continue;
        }
        current_fn->blocks.push_back({std::string(name.substr(1)), {}});
        current_block = &current_fn->blocks.back();
      } else {
        program.functions.push_back({std::string(name), {}});
        current_fn = &program.functions.back();
        current_block = nullptr;
      }
      continue;
    }
    // Global data line handled in the first pass.
    if (trimmed.find(".space") != std::string_view::npos) continue;
    if (current_fn == nullptr) {
      diags.error({line_number, 1}, "instruction outside a function");
      continue;
    }
    if (current_block == nullptr) {
      current_fn->blocks.push_back({"entry", {}});
      current_block = &current_fn->blocks.back();
    }
    AsmInst inst;
    LineParser parser(trimmed, line_number, program, diags);
    if (parser.parse_inst(inst)) current_block->insts.push_back(inst);
  }
  return program;
}

}  // namespace ferrum::masm
