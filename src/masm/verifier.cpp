#include "masm/verifier.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "masm/cfg.h"

namespace ferrum::masm {

namespace {

bool is_terminatorish(Op op) {
  return op == Op::kJmp || op == Op::kJcc || op == Op::kRet;
}

/// Known intrinsics and their (int, fp) argument counts.
const std::unordered_map<std::string, std::pair<int, int>>& intrinsics() {
  static const std::unordered_map<std::string, std::pair<int, int>> names = {
      {"print_int", {1, 0}}, {"print_f64", {0, 1}}};
  return names;
}

/// Integer-argument registers, System V order (mirrors the backend).
constexpr Gpr kIntArgRegs[] = {Gpr::kRdi, Gpr::kRsi, Gpr::kRdx,
                               Gpr::kRcx, Gpr::kR8,  Gpr::kR9};

/// Register set a callee expects to find populated.
LiveSet arg_regs_mask(int int_args, int fp_args) {
  LiveSet mask = 0;
  for (int i = 0; i < int_args && i < 6; ++i) mask |= gpr_bit(kIntArgRegs[i]);
  for (int i = 0; i < fp_args && i < 8; ++i) mask |= xmm_bit(i);
  return mask;
}

/// Caller-saved state a call clobbers (the callee may trash these).
LiveSet call_clobber_mask() {
  LiveSet mask = 0;
  for (Gpr reg : {Gpr::kRax, Gpr::kRcx, Gpr::kRdx, Gpr::kRsi, Gpr::kRdi,
                  Gpr::kR8, Gpr::kR9, Gpr::kR10, Gpr::kR11}) {
    mask |= gpr_bit(reg);
  }
  for (int i = 0; i < kXmmCount; ++i) mask |= xmm_bit(i);
  return mask;
}

class Verifier {
 public:
  Verifier(const AsmProgram& program, bool require_main)
      : program_(program), require_main_(require_main) {}

  std::vector<std::string> run() {
    if (require_main_ && program_.find_function("main") == nullptr) {
      problems_.push_back("program has no main function");
    }
    for (const AsmFunction& fn : program_.functions) check_function(fn);
    return std::move(problems_);
  }

 private:
  void problem(const AsmFunction& fn, const std::string& message) {
    problems_.push_back(fn.name + ": " + message);
  }

  void check_function(const AsmFunction& fn) {
    if (fn.blocks.empty()) {
      problem(fn, "function has no blocks");
      return;
    }
    std::unordered_set<std::string> labels;
    for (const AsmBlock& block : fn.blocks) {
      if (!labels.insert(block.label).second) {
        problem(fn, "duplicate block label ." + block.label);
      }
    }
    for (const AsmBlock& block : fn.blocks) {
      // jcc may appear anywhere (it falls through), but unconditional
      // jmp/ret make everything after them unreachable: they are only
      // legal in the block's trailing terminator cluster.
      std::size_t cluster = block.insts.size();
      while (cluster > 0 && is_terminatorish(block.insts[cluster - 1].op)) {
        --cluster;
      }
      for (std::size_t i = 0; i < block.insts.size(); ++i) {
        const AsmInst& inst = block.insts[i];
        if ((inst.op == Op::kJmp || inst.op == Op::kRet) && i < cluster) {
          problem(fn, "." + block.label +
                          ": unreachable code after " + inst.to_string());
        }
        check_inst(fn, block, inst, labels);
      }
    }
    check_call_discipline(fn);
  }

  /// Register set a call's callee expects populated, or 0 if unknowable
  /// (unknown callee, or parsed assembly whose arg counts default to 0).
  LiveSet required_args(const AsmInst& inst) const {
    if (inst.nops != 1 || inst.ops[0].kind != Operand::Kind::kFunc) return 0;
    const std::string& callee = inst.ops[0].label;
    if (const AsmFunction* f = program_.find_function(callee)) {
      return arg_regs_mask(f->int_args, f->fp_args);
    }
    auto it = intrinsics().find(callee);
    return it == intrinsics().end() ? 0
                                    : arg_regs_mask(it->second.first,
                                                    it->second.second);
  }

  /// Forward must-analysis of definitely-assigned registers: at every
  /// call, the callee's argument registers must be assigned on all paths
  /// from function entry. Catches protection or backend rewrites that
  /// clobber a marshalled argument (a call clobbers caller-saved state,
  /// so an argument surviving one call does not satisfy the next).
  void check_call_discipline(const AsmFunction& fn) {
    const int block_count = static_cast<int>(fn.blocks.size());
    const LiveSet top = ~LiveSet{0};
    // Entry state: the function's own incoming arguments plus the stack
    // registers, which the ABI guarantees are valid on entry.
    const LiveSet entry = arg_regs_mask(fn.int_args, fn.fp_args) |
                          gpr_bit(Gpr::kRsp) | gpr_bit(Gpr::kRbp);

    // Walks one block from `state`, meeting each outgoing edge's state
    // into `edge_in`. Protection checks put jcc mid-block, so the state
    // exported to a branch target is the state at that jcc, not the
    // block's final state (build_cfg's block-granular edges would both
    // miss those branches and be less precise).
    auto transfer = [&](int b, LiveSet state, std::vector<LiveSet>* edge_in,
                        std::vector<std::string>* missing) {
      const AsmBlock& block = fn.blocks[b];
      for (const AsmInst& inst : block.insts) {
        if (inst.op == Op::kCall) {
          const LiveSet required = required_args(inst);
          if (missing != nullptr && (state & required) != required) {
            std::ostringstream os;
            os << "." << block.label << ": " << inst.to_string()
               << " argument register(s) not definitely assigned:";
            for (int i = 0; i < 6; ++i) {
              if ((required & ~state & gpr_bit(kIntArgRegs[i])) != 0) {
                os << " %" << gpr_name(kIntArgRegs[i], 8);
              }
            }
            for (int i = 0; i < 8; ++i) {
              if ((required & ~state & xmm_bit(i)) != 0) os << " %xmm" << i;
            }
            missing->push_back(os.str());
          }
          // The callee clobbers caller-saved state and hands back its
          // return registers.
          state = (state & ~call_clobber_mask()) | gpr_bit(Gpr::kRax) |
                  xmm_bit(0);
        } else if (inst.op == Op::kJcc || inst.op == Op::kJmp) {
          const int target = fn.block_index(inst.ops[0].label);
          if (target >= 0 && edge_in != nullptr) {
            (*edge_in)[target] &= state;
          }
          if (inst.op == Op::kJmp) return;  // nothing below executes
        } else if (inst.op == Op::kRet || inst.op == Op::kDetectTrap) {
          return;
        } else {
          state |= use_def_of(inst).def;
        }
      }
      // Implicit fall-through to the next block in layout order.
      if (b + 1 < block_count && edge_in != nullptr) {
        (*edge_in)[b + 1] &= state;
      }
    };

    // Round-robin must-fixpoint. Blocks never reached stay at top and are
    // skipped when reporting (dead blocks would flag phantom problems).
    std::vector<LiveSet> in(block_count, top);
    in[0] = entry;
    bool changed = true;
    while (changed) {
      std::vector<LiveSet> next(block_count, top);
      next[0] = entry;
      for (int b = 0; b < block_count; ++b) {
        if (in[b] == top && b != 0) continue;  // not yet reached
        transfer(b, in[b], &next, nullptr);
      }
      changed = next != in;
      in = std::move(next);
    }
    for (int b = 0; b < block_count; ++b) {
      if (in[b] == top && b != 0) continue;  // unreachable
      std::vector<std::string> missing;
      transfer(b, in[b], nullptr, &missing);
      for (const std::string& message : missing) problem(fn, message);
    }
  }

  void check_operand(const AsmFunction& fn, const AsmBlock& block,
                     const AsmInst& inst, const Operand& op) {
    switch (op.kind) {
      case Operand::Kind::kReg:
        if (op.reg == Gpr::kNone) {
          problem(fn, "." + block.label + ": null register in " +
                          inst.to_string());
        }
        if (op.width != 1 && op.width != 4 && op.width != 8) {
          problem(fn, "." + block.label + ": bad register width in " +
                          inst.to_string());
        }
        break;
      case Operand::Kind::kXmm:
        if (op.xmm < 0 || op.xmm >= kXmmCount) {
          problem(fn, "." + block.label + ": xmm index out of range in " +
                          inst.to_string());
        }
        break;
      case Operand::Kind::kMem:
        if (op.mem.global_id >= 0 &&
            op.mem.global_id >= static_cast<int>(program_.globals.size())) {
          problem(fn, "." + block.label + ": global id out of range in " +
                          inst.to_string());
        }
        if (op.mem.scale != 1 && op.mem.scale != 2 && op.mem.scale != 4 &&
            op.mem.scale != 8) {
          problem(fn, "." + block.label + ": illegal scale in " +
                          inst.to_string());
        }
        break;
      default:
        break;
    }
  }

  void check_inst(const AsmFunction& fn, const AsmBlock& block,
                  const AsmInst& inst,
                  const std::unordered_set<std::string>& labels) {
    for (int i = 0; i < inst.nops; ++i) {
      check_operand(fn, block, inst, inst.ops[i]);
    }
    auto expect_ops = [&](int count) {
      if (inst.nops != count) {
        std::ostringstream os;
        os << "." << block.label << ": " << op_mnemonic(inst.op)
           << " expects " << count << " operands, has " << inst.nops;
        problem(fn, os.str());
        return false;
      }
      return true;
    };
    switch (inst.op) {
      case Op::kJmp:
      case Op::kJcc:
        if (expect_ops(1)) {
          if (inst.ops[0].kind != Operand::Kind::kLabel ||
              labels.count(inst.ops[0].label) == 0) {
            problem(fn, "." + block.label + ": unresolved jump target in " +
                            inst.to_string());
          }
        }
        break;
      case Op::kCall:
        if (expect_ops(1)) {
          const std::string& callee = inst.ops[0].label;
          if (program_.find_function(callee) == nullptr &&
              intrinsics().count(callee) == 0) {
            problem(fn, "." + block.label + ": call to unknown function " +
                            callee);
          }
        }
        break;
      case Op::kRet:
      case Op::kDetectTrap:
        if (inst.nops != 0) {
          problem(fn, "." + block.label + ": operands on " +
                          op_mnemonic(inst.op));
        }
        break;
      case Op::kLea:
        if (expect_ops(2)) {
          if (!inst.ops[0].is_mem() || !inst.ops[1].is_reg()) {
            problem(fn, "." + block.label + ": lea needs mem -> reg");
          }
        }
        break;
      case Op::kSetcc:
        if (expect_ops(1)) {
          if (inst.ops[0].is_reg() && inst.ops[0].width != 1) {
            problem(fn, "." + block.label + ": setcc writes a byte");
          }
          if (!inst.ops[0].is_reg() && !inst.ops[0].is_mem()) {
            problem(fn, "." + block.label + ": setcc needs reg/mem");
          }
        }
        break;
      case Op::kPush:
      case Op::kPop:
        if (expect_ops(1)) {
          if (!inst.ops[0].is_reg() || inst.ops[0].width != 8) {
            problem(fn, "." + block.label + ": push/pop needs a 64-bit reg");
          }
        }
        break;
      case Op::kPinsrq:
        if (expect_ops(3)) {
          if (!inst.ops[0].is_imm() || (inst.ops[0].imm & ~1) != 0) {
            problem(fn, "." + block.label + ": pinsrq lane must be 0 or 1");
          }
          if (!inst.ops[2].is_xmm()) {
            problem(fn, "." + block.label + ": pinsrq destination is xmm");
          }
        }
        break;
      case Op::kVinserti128:
        if (expect_ops(3)) {
          if (!inst.ops[1].is_xmm() || !inst.ops[2].is_xmm()) {
            problem(fn, "." + block.label + ": vinserti128 operands");
          }
        }
        break;
      case Op::kVpxor:
        expect_ops(3);
        break;
      case Op::kVptest:
      case Op::kCmp:
      case Op::kTest:
      case Op::kUcomisd:
        expect_ops(2);
        break;
      case Op::kMov:
        if (expect_ops(2)) {
          if (inst.ops[0].is_mem() && inst.ops[1].is_mem()) {
            problem(fn, "." + block.label + ": mov mem -> mem is illegal");
          }
          if (inst.ops[0].is_xmm() || inst.ops[1].is_xmm()) {
            problem(fn, "." + block.label +
                            ": mov with xmm operand (use movq/movsd)");
          }
        }
        break;
      default:
        break;
    }
  }

  const AsmProgram& program_;
  bool require_main_;
  std::vector<std::string> problems_;
};

}  // namespace

std::vector<std::string> verify_program(const AsmProgram& program,
                                        bool require_main) {
  return Verifier(program, require_main).run();
}

std::string verify_program_to_string(const AsmProgram& program,
                                     bool require_main) {
  std::ostringstream os;
  for (const std::string& problem : verify_program(program, require_main)) {
    os << problem << "\n";
  }
  return os.str();
}

}  // namespace ferrum::masm
