#include "masm/verifier.h"

#include <sstream>
#include <unordered_set>

namespace ferrum::masm {

namespace {

bool is_terminatorish(Op op) {
  return op == Op::kJmp || op == Op::kJcc || op == Op::kRet;
}

const std::unordered_set<std::string>& intrinsics() {
  static const std::unordered_set<std::string> names = {"print_int",
                                                        "print_f64"};
  return names;
}

class Verifier {
 public:
  Verifier(const AsmProgram& program, bool require_main)
      : program_(program), require_main_(require_main) {}

  std::vector<std::string> run() {
    if (require_main_ && program_.find_function("main") == nullptr) {
      problems_.push_back("program has no main function");
    }
    for (const AsmFunction& fn : program_.functions) check_function(fn);
    return std::move(problems_);
  }

 private:
  void problem(const AsmFunction& fn, const std::string& message) {
    problems_.push_back(fn.name + ": " + message);
  }

  void check_function(const AsmFunction& fn) {
    if (fn.blocks.empty()) {
      problem(fn, "function has no blocks");
      return;
    }
    std::unordered_set<std::string> labels;
    for (const AsmBlock& block : fn.blocks) {
      if (!labels.insert(block.label).second) {
        problem(fn, "duplicate block label ." + block.label);
      }
    }
    for (const AsmBlock& block : fn.blocks) {
      // jcc may appear anywhere (it falls through), but unconditional
      // jmp/ret make everything after them unreachable: they are only
      // legal in the block's trailing terminator cluster.
      std::size_t cluster = block.insts.size();
      while (cluster > 0 && is_terminatorish(block.insts[cluster - 1].op)) {
        --cluster;
      }
      for (std::size_t i = 0; i < block.insts.size(); ++i) {
        const AsmInst& inst = block.insts[i];
        if ((inst.op == Op::kJmp || inst.op == Op::kRet) && i < cluster) {
          problem(fn, "." + block.label +
                          ": unreachable code after " + inst.to_string());
        }
        check_inst(fn, block, inst, labels);
      }
    }
  }

  void check_operand(const AsmFunction& fn, const AsmBlock& block,
                     const AsmInst& inst, const Operand& op) {
    switch (op.kind) {
      case Operand::Kind::kReg:
        if (op.reg == Gpr::kNone) {
          problem(fn, "." + block.label + ": null register in " +
                          inst.to_string());
        }
        if (op.width != 1 && op.width != 4 && op.width != 8) {
          problem(fn, "." + block.label + ": bad register width in " +
                          inst.to_string());
        }
        break;
      case Operand::Kind::kXmm:
        if (op.xmm < 0 || op.xmm >= kXmmCount) {
          problem(fn, "." + block.label + ": xmm index out of range in " +
                          inst.to_string());
        }
        break;
      case Operand::Kind::kMem:
        if (op.mem.global_id >= 0 &&
            op.mem.global_id >= static_cast<int>(program_.globals.size())) {
          problem(fn, "." + block.label + ": global id out of range in " +
                          inst.to_string());
        }
        if (op.mem.scale != 1 && op.mem.scale != 2 && op.mem.scale != 4 &&
            op.mem.scale != 8) {
          problem(fn, "." + block.label + ": illegal scale in " +
                          inst.to_string());
        }
        break;
      default:
        break;
    }
  }

  void check_inst(const AsmFunction& fn, const AsmBlock& block,
                  const AsmInst& inst,
                  const std::unordered_set<std::string>& labels) {
    for (int i = 0; i < inst.nops; ++i) {
      check_operand(fn, block, inst, inst.ops[i]);
    }
    auto expect_ops = [&](int count) {
      if (inst.nops != count) {
        std::ostringstream os;
        os << "." << block.label << ": " << op_mnemonic(inst.op)
           << " expects " << count << " operands, has " << inst.nops;
        problem(fn, os.str());
        return false;
      }
      return true;
    };
    switch (inst.op) {
      case Op::kJmp:
      case Op::kJcc:
        if (expect_ops(1)) {
          if (inst.ops[0].kind != Operand::Kind::kLabel ||
              labels.count(inst.ops[0].label) == 0) {
            problem(fn, "." + block.label + ": unresolved jump target in " +
                            inst.to_string());
          }
        }
        break;
      case Op::kCall:
        if (expect_ops(1)) {
          const std::string& callee = inst.ops[0].label;
          if (program_.find_function(callee) == nullptr &&
              intrinsics().count(callee) == 0) {
            problem(fn, "." + block.label + ": call to unknown function " +
                            callee);
          }
        }
        break;
      case Op::kRet:
      case Op::kDetectTrap:
        if (inst.nops != 0) {
          problem(fn, "." + block.label + ": operands on " +
                          op_mnemonic(inst.op));
        }
        break;
      case Op::kLea:
        if (expect_ops(2)) {
          if (!inst.ops[0].is_mem() || !inst.ops[1].is_reg()) {
            problem(fn, "." + block.label + ": lea needs mem -> reg");
          }
        }
        break;
      case Op::kSetcc:
        if (expect_ops(1)) {
          if (inst.ops[0].is_reg() && inst.ops[0].width != 1) {
            problem(fn, "." + block.label + ": setcc writes a byte");
          }
          if (!inst.ops[0].is_reg() && !inst.ops[0].is_mem()) {
            problem(fn, "." + block.label + ": setcc needs reg/mem");
          }
        }
        break;
      case Op::kPush:
      case Op::kPop:
        if (expect_ops(1)) {
          if (!inst.ops[0].is_reg() || inst.ops[0].width != 8) {
            problem(fn, "." + block.label + ": push/pop needs a 64-bit reg");
          }
        }
        break;
      case Op::kPinsrq:
        if (expect_ops(3)) {
          if (!inst.ops[0].is_imm() || (inst.ops[0].imm & ~1) != 0) {
            problem(fn, "." + block.label + ": pinsrq lane must be 0 or 1");
          }
          if (!inst.ops[2].is_xmm()) {
            problem(fn, "." + block.label + ": pinsrq destination is xmm");
          }
        }
        break;
      case Op::kVinserti128:
        if (expect_ops(3)) {
          if (!inst.ops[1].is_xmm() || !inst.ops[2].is_xmm()) {
            problem(fn, "." + block.label + ": vinserti128 operands");
          }
        }
        break;
      case Op::kVpxor:
        expect_ops(3);
        break;
      case Op::kVptest:
      case Op::kCmp:
      case Op::kTest:
      case Op::kUcomisd:
        expect_ops(2);
        break;
      case Op::kMov:
        if (expect_ops(2)) {
          if (inst.ops[0].is_mem() && inst.ops[1].is_mem()) {
            problem(fn, "." + block.label + ": mov mem -> mem is illegal");
          }
          if (inst.ops[0].is_xmm() || inst.ops[1].is_xmm()) {
            problem(fn, "." + block.label +
                            ": mov with xmm operand (use movq/movsd)");
          }
        }
        break;
      default:
        break;
    }
  }

  const AsmProgram& program_;
  bool require_main_;
  std::vector<std::string> problems_;
};

}  // namespace

std::vector<std::string> verify_program(const AsmProgram& program,
                                        bool require_main) {
  return Verifier(program, require_main).run();
}

std::string verify_program_to_string(const AsmProgram& program,
                                     bool require_main) {
  std::ostringstream os;
  for (const std::string& problem : verify_program(program, require_main)) {
    os << problem << "\n";
  }
  return os.str();
}

}  // namespace ferrum::masm
