// Control-flow graph and register liveness over MiniASM functions.
// FERRUM's spare-register scan, the stack-requisition logic, and the
// coverage audit are all built on these analyses.
#pragma once

#include <cstdint>
#include <vector>

#include "masm/masm.h"

namespace ferrum::masm {

/// Compact register set: bits 0..15 = GPRs, 16..31 = XMMs, bit 32 = FLAGS.
using LiveSet = std::uint64_t;

constexpr LiveSet gpr_bit(Gpr reg) {
  return LiveSet{1} << static_cast<int>(reg);
}
constexpr LiveSet xmm_bit(int index) { return LiveSet{1} << (16 + index); }
constexpr LiveSet kFlagsBit = LiveSet{1} << 32;

inline bool has_gpr(LiveSet set, Gpr reg) { return (set & gpr_bit(reg)) != 0; }
inline bool has_xmm(LiveSet set, int index) {
  return (set & xmm_bit(index)) != 0;
}
inline bool has_flags(LiveSet set) { return (set & kFlagsBit) != 0; }

/// Registers read / written by one instruction, as LiveSet masks.
///
/// The masks for the protection pseudo-ops are load-bearing — the spare
/// register scan, the requisition machinery, the VM's fault-site
/// enumeration and the ferrum-check verifier all consume them, and an
/// omission silently shrinks live sets (a register scavenged while its
/// value is still needed). The non-obvious cases:
///
///   * `vptest a, b` reads BOTH xmm operands and defines only FLAGS —
///     it is the consumer that keeps batched capture registers alive up
///     to the check point;
///   * `pinsrq $lane, src, x` and `vinserti128 $1, src, y` are
///     read-modify-writes: the destination register appears in `use` as
///     well as `def`, because the untouched lanes survive;
///   * `push r` / `pop r` read AND write %rsp (pointer bump) on top of
///     the value transfer — requisition push/pop balance depends on rsp
///     appearing in both masks;
///   * `call __ferrum_detect` (kDetectTrap) uses/defs nothing: it never
///     returns, so nothing downstream can be live through it;
///   * a sub-64-bit GPR def (e.g. `setcc %r10b`, `movl` into a spare)
///     also counts as a use of that register — the preserved upper bits
///     may still carry a parked value.
struct UseDef {
  LiveSet use = 0;
  LiveSet def = 0;
};
UseDef use_def_of(const AsmInst& inst);

/// Successor block indices of each block. Blocks may end with an explicit
/// `jmp`/`ret`, a `jcc` with fall-through to the next block, or plain
/// fall-through.
struct Cfg {
  std::vector<std::vector<int>> successors;
  std::vector<std::vector<int>> predecessors;
};
Cfg build_cfg(const AsmFunction& fn);

/// Backward dataflow liveness over the LiveSet domain.
class Liveness {
 public:
  explicit Liveness(const AsmFunction& fn);

  LiveSet live_in(int block) const { return live_in_[block]; }
  LiveSet live_out(int block) const { return live_out_[block]; }

  /// Live set immediately *after* instruction `index` of `block` executes
  /// (index -1 gives the block's live-in).
  LiveSet live_after(int block, int inst_index) const;

 private:
  const AsmFunction& fn_;
  std::vector<LiveSet> live_in_;
  std::vector<LiveSet> live_out_;
};

/// Every register mentioned (read or written) anywhere in the function.
/// This is what FERRUM's static scan uses to find spare registers.
LiveSet used_registers(const AsmFunction& fn);

}  // namespace ferrum::masm
