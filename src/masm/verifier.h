// Structural well-formedness checks for MiniASM programs. Run after the
// backend and after every protection pass: catches dangling labels,
// malformed operand shapes and terminator-discipline violations that
// would otherwise surface as confusing VM traps.
#pragma once

#include <string>
#include <vector>

#include "masm/masm.h"

namespace ferrum::masm {

/// Checks:
///  * every jump label resolves to a block of the same function, every
///    call target to a function or known intrinsic;
///  * every memory operand's global id is in range;
///  * operand shapes match each opcode (e.g. lea needs mem -> reg, setcc
///    writes a byte reg or mem, pinsrq lane is 0/1);
///  * jcc/jmp/ret appear only in a block's trailing terminator cluster;
///  * functions have at least one block and main exists when
///    `require_main`.
/// Returns human-readable violations; empty means valid.
std::vector<std::string> verify_program(const AsmProgram& program,
                                        bool require_main = true);

std::string verify_program_to_string(const AsmProgram& program,
                                     bool require_main = true);

}  // namespace ferrum::masm
