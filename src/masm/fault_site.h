// The fault-injection site taxonomy shared by every layer that talks
// about sites: the VM's dynamic enumeration (vm::FaultKind), the static
// protection verifier (check::SiteKind), and the liveness/equivalence
// pruner (check::prune). Historically vm and check each declared a
// hand-mirrored copy of this enum ("Mirrors vm::FaultKind"); one header
// means a new classification cannot drift between layers.
//
// `static_site_of` is the static mirror of Engine::exec's fault hooks: it
// answers, for one MiniASM instruction, which site (if any) one executed
// instance registers and how many bit positions are injectable there.
// tests/test_prune.cpp cross-validates it against the VM's dynamic
// enumeration on every workload.
#pragma once

#include <cstdint>

#include "masm/masm.h"

namespace ferrum::masm {

/// What a fault-injection site writes (paper Sec II-A / IV-A2). The
/// integer values are pinned: dense tables (vm::VmProfile::site_counts)
/// and serialized artifacts index by them.
enum class FaultSiteKind : std::uint8_t {
  kGprWrite,        // destination general-purpose register
  kXmmWrite,        // destination SIMD register (written lane bits)
  kFlagsWrite,      // RFLAGS producers (cmp / test / ucomisd / vptest)
  kStoreData,       // value written to memory (enabled by fault_store_data)
  kBranchDecision,  // conditional-jump resolution (the taken bit)
};
constexpr int kFaultSiteKindCount = 5;

static_assert(static_cast<int>(FaultSiteKind::kGprWrite) == 0 &&
                  static_cast<int>(FaultSiteKind::kXmmWrite) == 1 &&
                  static_cast<int>(FaultSiteKind::kFlagsWrite) == 2 &&
                  static_cast<int>(FaultSiteKind::kStoreData) == 3 &&
                  static_cast<int>(FaultSiteKind::kBranchDecision) == 4,
              "FaultSiteKind values are pinned: profile tables and bench "
              "artifacts index by them");

/// Stable names ("gpr-write", ...) used identically by static and dynamic
/// artifacts so their keys match by construction.
const char* fault_site_kind_name(FaultSiteKind kind);

/// Static description of the site one executed instance of an instruction
/// registers. `bit_space` is the number of distinct injectable bit
/// positions: a sampled FaultSpec::bit lands on effective position
/// `bit % bit_space` (the VM's burst_mask / lane arithmetic), so two
/// probe bits congruent mod bit_space are the same physical flip.
struct StaticSiteInfo {
  bool has_site = false;
  FaultSiteKind kind = FaultSiteKind::kGprWrite;
  /// 64 for GPR, 4 for flags (zf/sf/of/cf), 64*lane_count for XMM,
  /// 8*store width for store-data, 1 for branch decisions (the VM flips
  /// the taken bit whatever the sampled bit is).
  int bit_space = 64;
  /// kGprWrite: the destination register (the flip applies to the full
  /// merged 64-bit value, even for 1- and 4-byte writes).
  Gpr reg = Gpr::kNone;
  /// kXmmWrite: destination register and the written 64-bit lane span.
  int xmm = -1;
  int lane_base = 0;
  int lane_count = 0;
  /// kStoreData: store width in bytes.
  int store_width = 8;
};

/// Mirrors Engine::exec exactly. `store_data` mirrors
/// VmOptions::fault_store_data. `call_pushes_ret` matters only for kCall:
/// the return-address push is a store site unless the callee is a print
/// builtin (handled before the push) or unresolved (traps before it).
StaticSiteInfo static_site_of(const AsmInst& inst, bool store_data,
                              bool call_pushes_ret = true);

}  // namespace ferrum::masm
