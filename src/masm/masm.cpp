#include "masm/masm.h"

#include <cassert>
#include <sstream>

namespace ferrum::masm {

namespace {

constexpr const char* kGpr64[] = {
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15"};
constexpr const char* kGpr32[] = {
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
    "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d"};
constexpr const char* kGpr8[] = {
    "al",  "cl",  "dl",  "bl",  "spl", "bpl", "sil", "dil",
    "r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b"};

}  // namespace

std::string gpr_name(Gpr reg, int width) {
  if (reg == Gpr::kNone) return "none";
  const int index = static_cast<int>(reg);
  switch (width) {
    case 1: return kGpr8[index];
    case 4: return kGpr32[index];
    default: return kGpr64[index];
  }
}

const char* cond_name(Cond cc) {
  switch (cc) {
    case Cond::kE: return "e";
    case Cond::kNe: return "ne";
    case Cond::kL: return "l";
    case Cond::kLe: return "le";
    case Cond::kG: return "g";
    case Cond::kGe: return "ge";
    case Cond::kA: return "a";
    case Cond::kAe: return "ae";
    case Cond::kB: return "b";
    case Cond::kBe: return "be";
  }
  return "?";
}

Cond invert(Cond cc) {
  switch (cc) {
    case Cond::kE: return Cond::kNe;
    case Cond::kNe: return Cond::kE;
    case Cond::kL: return Cond::kGe;
    case Cond::kLe: return Cond::kG;
    case Cond::kG: return Cond::kLe;
    case Cond::kGe: return Cond::kL;
    case Cond::kA: return Cond::kBe;
    case Cond::kAe: return Cond::kB;
    case Cond::kB: return Cond::kAe;
    case Cond::kBe: return Cond::kA;
  }
  return Cond::kE;
}

const char* op_mnemonic(Op op) {
  switch (op) {
    case Op::kMov: return "mov";
    case Op::kMovsx: return "movs";
    case Op::kMovzx: return "movz";
    case Op::kLea: return "lea";
    case Op::kPush: return "push";
    case Op::kPop: return "pop";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kImul: return "imul";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kSar: return "sar";
    case Op::kIdiv: return "idiv";
    case Op::kIrem: return "irem";
    case Op::kCmp: return "cmp";
    case Op::kTest: return "test";
    case Op::kSetcc: return "set";
    case Op::kJcc: return "j";
    case Op::kJmp: return "jmp";
    case Op::kCall: return "call";
    case Op::kRet: return "ret";
    case Op::kMovsd: return "movsd";
    case Op::kAddsd: return "addsd";
    case Op::kSubsd: return "subsd";
    case Op::kMulsd: return "mulsd";
    case Op::kDivsd: return "divsd";
    case Op::kSqrtsd: return "sqrtsd";
    case Op::kUcomisd: return "ucomisd";
    case Op::kCvtsi2sd: return "cvtsi2sd";
    case Op::kCvttsd2si: return "cvttsd2si";
    case Op::kMovq: return "movq";
    case Op::kPinsrq: return "pinsr";
    case Op::kVinserti128: return "vinserti128";
    case Op::kVpxor: return "vpxor";
    case Op::kVptest: return "vptest";
    case Op::kDetectTrap: return "call\t__ferrum_detect";
  }
  return "?";
}

bool is_asm_terminator(Op op) {
  return op == Op::kJmp || op == Op::kRet;
}

const char* origin_name(InstOrigin origin) {
  switch (origin) {
    case InstOrigin::kFromIR: return "from-ir";
    case InstOrigin::kBackendGlue: return "backend-glue";
    case InstOrigin::kProtection: return "protection";
  }
  return "?";
}

Operand Operand::make_reg(Gpr r, int w) {
  Operand op;
  op.kind = Kind::kReg;
  op.reg = r;
  op.width = w;
  return op;
}

Operand Operand::make_xmm(int index) {
  Operand op;
  op.kind = Kind::kXmm;
  op.xmm = index;
  op.width = 16;
  return op;
}

Operand Operand::make_ymm(int index) {
  Operand op = make_xmm(index);
  op.ymm = true;
  op.width = 32;
  return op;
}

Operand Operand::make_imm(std::int64_t value, int w) {
  Operand op;
  op.kind = Kind::kImm;
  op.imm = value;
  op.width = w;
  return op;
}

Operand Operand::make_mem(MemRef ref, int w) {
  Operand op;
  op.kind = Kind::kMem;
  op.mem = ref;
  op.width = w;
  return op;
}

Operand Operand::make_label(std::string name) {
  Operand op;
  op.kind = Kind::kLabel;
  op.label = std::move(name);
  return op;
}

Operand Operand::make_func(std::string name) {
  Operand op;
  op.kind = Kind::kFunc;
  op.label = std::move(name);
  return op;
}

AsmInst::AsmInst(Op o, std::initializer_list<Operand> operands) : op(o) {
  assert(operands.size() <= 3);
  for (const Operand& operand : operands) ops[nops++] = operand;
}

AsmInst::AsmInst(Op o, Cond c, std::initializer_list<Operand> operands)
    : AsmInst(o, operands) {
  cc = c;
}

namespace {

char width_suffix(int width) {
  switch (width) {
    case 1: return 'b';
    case 4: return 'l';
    case 8: return 'q';
    default: return ' ';
  }
}

std::string operand_to_string(const Operand& op,
                              const AsmProgram* program) {
  std::ostringstream os;
  switch (op.kind) {
    case Operand::Kind::kNone:
      break;
    case Operand::Kind::kReg:
      os << "%" << gpr_name(op.reg, op.width);
      break;
    case Operand::Kind::kXmm:
      os << "%" << (op.ymm ? "ymm" : "xmm") << op.xmm;
      break;
    case Operand::Kind::kImm:
      os << "$" << op.imm;
      break;
    case Operand::Kind::kMem: {
      const MemRef& mem = op.mem;
      if (mem.global_id >= 0) {
        if (program != nullptr &&
            mem.global_id < static_cast<int>(program->globals.size())) {
          os << program->globals[mem.global_id].name;
        } else {
          os << "g" << mem.global_id;
        }
        if (mem.disp != 0) os << "+" << mem.disp;
        os << "(%rip";
        if (mem.index != Gpr::kNone) {
          // Symbol-relative indexed form (not real x86 encoding; the VM
          // resolves it directly).
          os << ",%" << gpr_name(mem.index, 8) << "," << mem.scale;
        }
        os << ")";
        break;
      }
      if (mem.disp != 0) os << mem.disp;
      os << "(";
      if (mem.base != Gpr::kNone) os << "%" << gpr_name(mem.base, 8);
      if (mem.index != Gpr::kNone) {
        os << ",%" << gpr_name(mem.index, 8) << "," << mem.scale;
      }
      os << ")";
      break;
    }
    case Operand::Kind::kLabel:
      os << "." << op.label;
      break;
    case Operand::Kind::kFunc:
      os << op.label;
      break;
  }
  return os.str();
}

std::string mnemonic_of(const AsmInst& inst) {
  std::ostringstream os;
  switch (inst.op) {
    case Op::kJcc:
      os << "j" << cond_name(inst.cc);
      break;
    case Op::kSetcc:
      os << "set" << cond_name(inst.cc);
      break;
    case Op::kMovsx:
      // movslq / movsbq style: suffix from src and dst widths.
      os << "movs" << width_suffix(inst.ops[0].width)
         << width_suffix(inst.ops[1].width);
      break;
    case Op::kMovzx:
      os << "movz" << width_suffix(inst.ops[0].width)
         << width_suffix(inst.ops[1].width);
      break;
    case Op::kMovq:
      os << (inst.ops[0].width == 4 || inst.ops[1].width == 4 ? "movd"
                                                              : "movq");
      break;
    case Op::kPinsrq:
      os << (inst.ops[1].width == 4 ? "pinsrd" : "pinsrq");
      break;
    case Op::kMov:
    case Op::kAdd:
    case Op::kSub:
    case Op::kImul:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kSar:
    case Op::kIdiv:
    case Op::kIrem:
    case Op::kCmp:
    case Op::kTest:
    case Op::kLea:
    case Op::kPush:
    case Op::kPop: {
      // Width suffix from the widest register/mem operand involved.
      int width = 8;
      for (int i = 0; i < inst.nops; ++i) {
        if (inst.ops[i].kind == Operand::Kind::kReg ||
            inst.ops[i].kind == Operand::Kind::kMem) {
          width = inst.ops[i].width;
        }
      }
      os << op_mnemonic(inst.op) << width_suffix(width);
      break;
    }
    default:
      os << op_mnemonic(inst.op);
      break;
  }
  return os.str();
}

std::string inst_to_string(const AsmInst& inst, const AsmProgram* program) {
  if (inst.op == Op::kDetectTrap) return "call\t__ferrum_detect";
  std::ostringstream os;
  os << mnemonic_of(inst);
  for (int i = 0; i < inst.nops; ++i) {
    os << (i == 0 ? "\t" : ", ") << operand_to_string(inst.ops[i], program);
  }
  return os.str();
}

}  // namespace

std::string AsmInst::to_string() const { return inst_to_string(*this, nullptr); }

int AsmFunction::block_index(const std::string& label) const {
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i].label == label) return static_cast<int>(i);
  }
  return -1;
}

std::size_t AsmFunction::inst_count() const {
  std::size_t count = 0;
  for (const AsmBlock& block : blocks) count += block.insts.size();
  return count;
}

const AsmFunction* AsmProgram::find_function(const std::string& name) const {
  for (const AsmFunction& fn : functions) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

AsmFunction* AsmProgram::find_function(const std::string& name) {
  for (AsmFunction& fn : functions) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

int AsmProgram::global_index(const std::string& name) const {
  for (std::size_t i = 0; i < globals.size(); ++i) {
    if (globals[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::size_t AsmProgram::inst_count() const {
  std::size_t count = 0;
  for (const AsmFunction& fn : functions) count += fn.inst_count();
  return count;
}

namespace {
std::string print_function(const AsmFunction& fn, const AsmProgram* program) {
  std::ostringstream os;
  os << fn.name << ":\n";
  for (const AsmBlock& block : fn.blocks) {
    os << "." << block.label << ":\n";
    for (const AsmInst& inst : block.insts) {
      os << "\t" << inst_to_string(inst, program) << "\n";
    }
  }
  return os.str();
}
}  // namespace

std::string print(const AsmFunction& fn) { return print_function(fn, nullptr); }

std::string print(const AsmProgram& program) {
  std::ostringstream os;
  for (const AsmGlobal& global : program.globals) {
    os << global.name << ":\t.space " << global.size_bytes << "\n";
  }
  if (!program.globals.empty()) os << "\n";
  for (const AsmFunction& fn : program.functions) {
    os << print_function(fn, &program) << "\n";
  }
  return os.str();
}

RegEffects effects_of(const AsmInst& inst) {
  RegEffects fx;
  auto read_operand = [&fx](const Operand& op) {
    switch (op.kind) {
      case Operand::Kind::kReg:
        fx.gpr_reads.push_back(op.reg);
        break;
      case Operand::Kind::kXmm:
        fx.xmm_reads.push_back(op.xmm);
        break;
      case Operand::Kind::kMem:
        if (op.mem.base != Gpr::kNone) fx.gpr_reads.push_back(op.mem.base);
        if (op.mem.index != Gpr::kNone) fx.gpr_reads.push_back(op.mem.index);
        fx.reads_mem = true;
        break;
      default:
        break;
    }
  };
  auto write_operand = [&fx, &read_operand](const Operand& op) {
    switch (op.kind) {
      case Operand::Kind::kReg:
        fx.gpr_writes.push_back(op.reg);
        break;
      case Operand::Kind::kXmm:
        fx.xmm_writes.push_back(op.xmm);
        break;
      case Operand::Kind::kMem: {
        // Address registers are read even when the access is a write.
        Operand address_only = op;
        read_operand(address_only);
        fx.reads_mem = false;  // undo the read flag; this is a store
        fx.writes_mem = true;
        if (op.mem.base != Gpr::kNone || op.mem.index != Gpr::kNone) {
          // reads recorded above
        }
        break;
      }
      default:
        break;
    }
  };

  switch (inst.op) {
    case Op::kMov:
    case Op::kMovsx:
    case Op::kMovzx:
    case Op::kMovsd:
    case Op::kMovq:
    case Op::kCvtsi2sd:
    case Op::kCvttsd2si:
      read_operand(inst.ops[0]);
      write_operand(inst.ops[1]);
      break;
    case Op::kSqrtsd:
      read_operand(inst.ops[0]);
      write_operand(inst.ops[1]);
      break;
    case Op::kLea:
      if (inst.ops[0].mem.base != Gpr::kNone) {
        fx.gpr_reads.push_back(inst.ops[0].mem.base);
      }
      if (inst.ops[0].mem.index != Gpr::kNone) {
        fx.gpr_reads.push_back(inst.ops[0].mem.index);
      }
      write_operand(inst.ops[1]);
      break;
    case Op::kPush:
      read_operand(inst.ops[0]);
      fx.gpr_reads.push_back(Gpr::kRsp);
      fx.gpr_writes.push_back(Gpr::kRsp);
      fx.writes_mem = true;
      break;
    case Op::kPop:
      write_operand(inst.ops[0]);
      fx.gpr_reads.push_back(Gpr::kRsp);
      fx.gpr_writes.push_back(Gpr::kRsp);
      fx.reads_mem = true;
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kImul:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kSar:
    case Op::kIdiv:
    case Op::kIrem:
      read_operand(inst.ops[0]);
      read_operand(inst.ops[1]);
      write_operand(inst.ops[1]);
      fx.writes_flags = true;
      break;
    case Op::kAddsd:
    case Op::kSubsd:
    case Op::kMulsd:
    case Op::kDivsd:
      read_operand(inst.ops[0]);
      read_operand(inst.ops[1]);
      write_operand(inst.ops[1]);
      break;
    case Op::kCmp:
    case Op::kTest:
    case Op::kUcomisd:
      read_operand(inst.ops[0]);
      read_operand(inst.ops[1]);
      fx.writes_flags = true;
      break;
    case Op::kSetcc:
      fx.reads_flags = true;
      write_operand(inst.ops[0]);
      break;
    case Op::kJcc:
      fx.reads_flags = true;
      break;
    case Op::kJmp:
    case Op::kDetectTrap:
      break;
    case Op::kRet:
      // Return value and callee-saved registers matter to the caller.
      for (Gpr reg : {Gpr::kRax, Gpr::kRbx, Gpr::kRsp, Gpr::kRbp, Gpr::kR12,
                      Gpr::kR13, Gpr::kR14, Gpr::kR15}) {
        fx.gpr_reads.push_back(reg);
      }
      fx.xmm_reads.push_back(0);
      fx.reads_mem = true;
      break;
    case Op::kCall:
      // ABI: caller-saved registers are clobbered; argument registers are
      // (conservatively) read.
      for (Gpr reg : {Gpr::kRdi, Gpr::kRsi, Gpr::kRdx, Gpr::kRcx, Gpr::kR8,
                      Gpr::kR9, Gpr::kRsp}) {
        fx.gpr_reads.push_back(reg);
      }
      for (Gpr reg : {Gpr::kRax, Gpr::kRcx, Gpr::kRdx, Gpr::kRsi, Gpr::kRdi,
                      Gpr::kR8, Gpr::kR9, Gpr::kR10, Gpr::kR11}) {
        fx.gpr_writes.push_back(reg);
      }
      for (int i = 0; i < 16; ++i) {
        if (i < 8) fx.xmm_reads.push_back(i);
        fx.xmm_writes.push_back(i);
      }
      fx.writes_flags = true;
      break;
    case Op::kPinsrq:
      // ops: $lane, src(gpr/mem), xmm — read-modify-write of the xmm.
      read_operand(inst.ops[1]);
      fx.xmm_reads.push_back(inst.ops[2].xmm);
      write_operand(inst.ops[2]);
      break;
    case Op::kVinserti128:
      read_operand(inst.ops[1]);
      fx.xmm_reads.push_back(inst.ops[2].xmm);
      write_operand(inst.ops[2]);
      break;
    case Op::kVpxor:
      read_operand(inst.ops[0]);
      read_operand(inst.ops[1]);
      write_operand(inst.ops[2]);
      break;
    case Op::kVptest:
      read_operand(inst.ops[0]);
      read_operand(inst.ops[1]);
      fx.writes_flags = true;
      break;
  }
  return fx;
}

}  // namespace ferrum::masm
