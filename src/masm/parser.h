// Parser for the AT&T-style text that masm::print produces. Lets tests and
// examples write assembly fragments directly and round-trip programs.
#pragma once

#include <string_view>

#include "masm/masm.h"
#include "support/source_location.h"

namespace ferrum::masm {

/// Parses a whole program (globals + functions). On error, reports to
/// `diags` and returns what was parsed so far.
AsmProgram parse_program(std::string_view text, DiagEngine& diags);

}  // namespace ferrum::masm
