#include "masm/fault_site.h"

namespace ferrum::masm {

const char* fault_site_kind_name(FaultSiteKind kind) {
  switch (kind) {
    case FaultSiteKind::kGprWrite: return "gpr-write";
    case FaultSiteKind::kXmmWrite: return "xmm-write";
    case FaultSiteKind::kFlagsWrite: return "flags-write";
    case FaultSiteKind::kStoreData: return "store-data";
    case FaultSiteKind::kBranchDecision: return "branch-decision";
  }
  return "unknown";
}

namespace {

StaticSiteInfo none() { return StaticSiteInfo{}; }

StaticSiteInfo gpr_site(const Operand& dst) {
  StaticSiteInfo info;
  info.has_site = true;
  info.kind = FaultSiteKind::kGprWrite;
  // The VM XORs burst_mask(spec, 64) into the merged 64-bit value, so
  // every bit position is injectable regardless of the write width.
  info.bit_space = 64;
  info.reg = dst.reg;
  return info;
}

StaticSiteInfo flags_site() {
  StaticSiteInfo info;
  info.has_site = true;
  info.kind = FaultSiteKind::kFlagsWrite;
  info.bit_space = 4;  // zf / sf / of / cf
  return info;
}

StaticSiteInfo store_site(bool store_data, int width) {
  if (!store_data) return none();  // store_faultable registers no site
  StaticSiteInfo info;
  info.has_site = true;
  info.kind = FaultSiteKind::kStoreData;
  info.bit_space = width * 8;
  info.store_width = width;
  return info;
}

StaticSiteInfo xmm_site(int xmm, int lane_base, int lane_count) {
  StaticSiteInfo info;
  info.has_site = true;
  info.kind = FaultSiteKind::kXmmWrite;
  info.bit_space = lane_count * 64;
  info.xmm = xmm;
  info.lane_base = lane_base;
  info.lane_count = lane_count;
  return info;
}

StaticSiteInfo branch_site() {
  StaticSiteInfo info;
  info.has_site = true;
  info.kind = FaultSiteKind::kBranchDecision;
  info.bit_space = 1;  // the taken bit flips whatever spec.bit was drawn
  return info;
}

}  // namespace

StaticSiteInfo static_site_of(const AsmInst& inst, bool store_data,
                              bool call_pushes_ret) {
  switch (inst.op) {
    case Op::kMov:
      return inst.ops[1].is_mem() ? store_site(store_data, inst.ops[1].width)
                                  : gpr_site(inst.ops[1]);
    case Op::kMovsx:
    case Op::kMovzx:
    case Op::kLea:
    case Op::kCvttsd2si:
      return gpr_site(inst.ops[1]);
    case Op::kPush:
      return store_site(store_data, 8);
    case Op::kPop:
      return gpr_site(inst.ops[0]);
    case Op::kAdd: case Op::kSub: case Op::kImul: case Op::kAnd:
    case Op::kOr: case Op::kXor: case Op::kShl: case Op::kSar:
    case Op::kIdiv: case Op::kIrem:
      return inst.ops[1].is_mem() ? store_site(store_data, inst.ops[1].width)
                                  : gpr_site(inst.ops[1]);
    case Op::kCmp:
    case Op::kTest:
    case Op::kUcomisd:
    case Op::kVptest:
      return flags_site();
    case Op::kSetcc:
      return inst.ops[0].is_mem() ? store_site(store_data, 1)
                                  : gpr_site(inst.ops[0]);
    case Op::kJcc:
      return branch_site();
    case Op::kJmp:
    case Op::kRet:
    case Op::kDetectTrap:
      return none();
    case Op::kCall:
      // Builtins return before the push; unresolved callees trap before
      // it. Only a resolved user-function call stores the return address.
      return call_pushes_ret ? store_site(store_data, 8) : none();
    case Op::kMovsd:
      if (inst.ops[1].is_xmm()) return xmm_site(inst.ops[1].xmm, 0, 1);
      return store_site(store_data, 8);
    case Op::kAddsd: case Op::kSubsd: case Op::kMulsd: case Op::kDivsd:
    case Op::kSqrtsd:
    case Op::kCvtsi2sd:
      return xmm_site(inst.ops[1].xmm, 0, 1);
    case Op::kMovq:
      if (inst.ops[1].is_xmm()) {
        return xmm_site(inst.ops[1].xmm, 0, 2);  // lane1 zeroed by movq
      }
      return inst.ops[1].is_mem() ? store_site(store_data, inst.ops[1].width)
                                  : gpr_site(inst.ops[1]);
    case Op::kPinsrq:
      return xmm_site(inst.ops[2].xmm, static_cast<int>(inst.ops[0].imm) & 1,
                      1);
    case Op::kVinserti128:
      return xmm_site(inst.ops[2].xmm,
                      (static_cast<int>(inst.ops[0].imm) & 1) * 2, 2);
    case Op::kVpxor:
      return xmm_site(inst.ops[2].xmm, 0, 4);
  }
  return none();
}

}  // namespace ferrum::masm
