#include "fault/compose.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <unordered_map>

// Plain data + inline lookups only, like audit's check/prune.h include:
// the decomposition itself runs in ferrum_check and reaches this layer
// as a built SectionMap, so ferrum_fault takes no link dependency on it.
#include "check/sections.h"
#include "fault/adaptive.h"
#include "fault/audit.h"
#include "fault/prune_map.h"
#include "fault/step_budget.h"
#include "masm/cfg.h"
#include "support/hash.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/str.h"
#include "vm/engine.h"

namespace ferrum::fault {

namespace {

using detail::mix64;

/// Effective lockstep width for Engine::run_batch (the audit gate).
std::size_t batch_width(int batch, const vm::VmOptions& vm) {
  if (batch <= 1) return 1;
  if (vm.timing || vm.profile || vm.trace_limit != 0) return 1;
  return static_cast<std::size_t>(batch);
}

std::string hex16(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

/// First 16 hex digits of a SHA-256 as a salt word (0 on malformed).
std::uint64_t sha_prefix64(const std::string& sha) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 16 && i < sha.size(); ++i) {
    const char c = sha[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return 0;
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  return value;
}

/// Per-section golden-run facts gathered from the site pc/digest sinks.
struct SectionRuntime {
  std::vector<std::uint64_t> sites;  // absolute dynamic site ids, ascending
  std::uint64_t occurrences = 0;
  std::uint64_t digest_fold = 0;  // fold of per-site digests (caching only)
};

/// What a stored summary carries besides the counts: the validation
/// dependencies that gate its reuse.
struct StoredSummary {
  std::uint64_t detected = 0;
  std::uint64_t benign = 0;
  std::uint64_t crashed = 0;
  std::uint64_t sdc = 0;
  /// Trials the counts cover (== planned unless the stop rule fired).
  std::uint64_t trials = 0;
  /// The plan the summary was computed under. The warm gate compares
  /// THIS against today's plan, not `trials`: an early-stopped summary
  /// legitimately covers fewer trials than it was planned for, and the
  /// stopped count is already a pure function of the key material.
  std::uint64_t planned = 0;
  bool touched_all = false;
  std::vector<std::pair<std::string, std::string>> touched;  // fn -> sha
  std::vector<std::pair<std::uint64_t, std::uint64_t>> deps;  // site -> digest
};

std::string serialize_summary(const StoredSummary& summary) {
  std::string out = "ferrum-section-summary-v2\n";
  const auto num = [&out](const char* key, std::uint64_t value) {
    out += key;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  num("detected", summary.detected);
  num("benign", summary.benign);
  num("crashed", summary.crashed);
  num("sdc", summary.sdc);
  num("trials", summary.trials);
  num("planned", summary.planned);
  num("touched_all", summary.touched_all ? 1 : 0);
  for (const auto& [name, sha] : summary.touched) {
    out += "touched " + name + " " + sha + "\n";
  }
  for (const auto& [site, digest] : summary.deps) {
    out += "dep " + std::to_string(site) + " " + hex16(digest) + "\n";
  }
  return out;
}

std::optional<StoredSummary> parse_summary(const std::string& bytes) {
  StoredSummary summary;
  std::size_t pos = 0;
  const auto next_line = [&]() -> std::optional<std::string> {
    if (pos >= bytes.size()) return std::nullopt;
    const std::size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos) return std::nullopt;  // strict: must end \n
    std::string line = bytes.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };
  const auto parse_u64 = [](const std::string& text,
                            std::uint64_t& out) -> bool {
    if (text.empty()) return false;
    out = 0;
    for (const char c : text) {
      if (c < '0' || c > '9') return false;
      out = out * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
  };
  auto header = next_line();
  if (!header.has_value() || *header != "ferrum-section-summary-v2") {
    return std::nullopt;
  }
  for (auto line = next_line(); line.has_value(); line = next_line()) {
    const std::size_t space = line->find(' ');
    if (space == std::string::npos) return std::nullopt;
    const std::string key = line->substr(0, space);
    const std::string rest = line->substr(space + 1);
    std::uint64_t value = 0;
    if (key == "detected" && parse_u64(rest, summary.detected)) continue;
    if (key == "benign" && parse_u64(rest, summary.benign)) continue;
    if (key == "crashed" && parse_u64(rest, summary.crashed)) continue;
    if (key == "sdc" && parse_u64(rest, summary.sdc)) continue;
    if (key == "trials" && parse_u64(rest, summary.trials)) continue;
    if (key == "planned" && parse_u64(rest, summary.planned)) continue;
    if (key == "touched_all" && parse_u64(rest, value)) {
      summary.touched_all = value != 0;
      continue;
    }
    if (key == "touched") {
      const std::size_t sep = rest.rfind(' ');
      if (sep == std::string::npos) return std::nullopt;
      summary.touched.emplace_back(rest.substr(0, sep), rest.substr(sep + 1));
      continue;
    }
    if (key == "dep") {
      const std::size_t sep = rest.find(' ');
      if (sep == std::string::npos) return std::nullopt;
      std::uint64_t site = 0;
      if (!parse_u64(rest.substr(0, sep), site)) return std::nullopt;
      const std::string hex = rest.substr(sep + 1);
      if (hex.size() != 16) return std::nullopt;
      std::uint64_t digest = 0;
      for (const char c : hex) {
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else {
          return std::nullopt;
        }
        digest = (digest << 4) | static_cast<std::uint64_t>(digit);
      }
      summary.deps.emplace_back(site, digest);
      continue;
    }
    return std::nullopt;  // unknown or malformed line
  }
  return summary;
}

/// Campaign-mode trial budget: faulty_step_budget rounded up to the next
/// power of two. The quantized budget is still an exact key input (every
/// trial runs under it, so a summary is only reused at the identical
/// budget), but small golden-step drifts from an edit land in the same
/// quantum instead of re-keying every section in the program. Audit mode
/// keeps the exact audit budget so agreement with fault::audit_program
/// stays structural.
std::uint64_t quantize_budget(std::uint64_t budget) {
  std::uint64_t quantum = 1;
  while (quantum < budget) quantum <<= 1;
  return quantum;
}

/// One planned injection.
struct WorkItem {
  std::uint64_t site = 0;
  int bit = 0;
  std::int32_t section = 0;
};

}  // namespace

std::string section_key_material(const SectionKeyInfo& info) {
  std::string material = "ferrum-section-v2\n";
  material += "mode=" + info.mode + "\n";
  material += "code_sha256=" + info.code_sha256 + "\n";
  material += "state_digest=" + info.state_digest + "\n";
  material += "dynamic_sites=" + std::to_string(info.dynamic_sites) + "\n";
  material += "occurrences=" + std::to_string(info.occurrences) + "\n";
  material += "max_steps=" + std::to_string(info.max_steps) + "\n";
  material += "probe_bits=";
  for (std::size_t i = 0; i < info.probe_bits.size(); ++i) {
    if (i != 0) material += ',';
    material += std::to_string(info.probe_bits[i]);
  }
  material += "\n";
  material += "trials=" + std::to_string(info.trials) + "\n";
  material += "seed=" + std::to_string(info.seed) + "\n";
  material += "burst=" + std::to_string(info.burst) + "\n";
  material += "store_data=" + std::string(info.store_data ? "1" : "0") + "\n";
  // Canonical round-trip formatter: the same double always prints the
  // same line (0 for the disabled default), matching cell_key_material.
  material += "max_half_width=" + format_double(info.max_half_width) + "\n";
  return material;
}

std::string section_key(const SectionKeyInfo& info) {
  return sha256_hex(section_key_material(info));
}

namespace {

ComposeReport compose_impl(const masm::AsmProgram& program,
                           const check::sections::SectionMap& map,
                           const ComposeOptions& options,
                           const bool audit_mode) {
  const bool caching = options.lookup != nullptr && options.store != nullptr;
  const std::uint64_t stride =
      audit_mode && options.site_stride > 1
          ? static_cast<std::uint64_t>(options.site_stride)
          : 1;
  if (stride > 1 && caching) {
    throw std::invalid_argument(
        "site_stride is a validation-harness subsample; cached summaries "
        "must cover every site");
  }
  if (audit_mode && options.max_half_width > 0.0) {
    throw std::invalid_argument(
        "adaptive early stopping applies to compose_campaign only "
        "(compose_audit is exhaustive)");
  }
  // NaN fails the first comparison, so it is rejected too — the same
  // range validate_cell enforces for whole-program cells.
  if (!audit_mode &&
      (!(options.max_half_width >= 0.0) || options.max_half_width >= 0.5)) {
    throw std::invalid_argument("max_half_width must be in [0, 0.5)");
  }
  const StopRule rule{options.max_half_width};
  const vm::PredecodedProgram decoded(program);
  const bool fast_forward = options.ckpt_stride > 0 && !options.vm.timing &&
                            !options.vm.profile &&
                            options.vm.trace_limit == 0;

  // Liveness masks per flat pc (masm::LiveSet: what is live *before* the
  // instruction) — the projection that keeps state digests blind to dead
  // register/stack noise. Only the caching path pays for them.
  std::vector<std::uint64_t> live_masks;
  if (caching) {
    live_masks.assign(decoded.code().size(), ~std::uint64_t{0});
    for (std::size_t f = 0; f < program.functions.size(); ++f) {
      const masm::AsmFunction& fn = program.functions[f];
      const masm::Liveness liveness(fn);
      for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        const std::int32_t base =
            decoded.block_pc(static_cast<int>(f), static_cast<int>(b));
        for (std::size_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
          live_masks[static_cast<std::size_t>(base) + i] = liveness.live_after(
              static_cast<int>(b), static_cast<int>(i) - 1);
        }
      }
    }
  }

  // Golden run: one cold pass that captures checkpoints, the site pc map
  // and (when caching) the per-site liveness-masked state digests.
  vm::CheckpointSet ckpts;
  vm::Engine golden_engine(decoded, options.vm);
  std::vector<std::int32_t> site_pcs;
  std::vector<std::uint64_t> site_digests;
  golden_engine.set_site_pc_sink(&site_pcs);
  if (caching) golden_engine.set_state_digest_sink(&site_digests, &live_masks);
  const vm::VmResult golden =
      fast_forward
          ? golden_engine.run_capturing(
                options.vm, static_cast<std::uint64_t>(options.ckpt_stride),
                ckpts)
          : golden_engine.run(options.vm, nullptr, 0);
  golden_engine.set_site_pc_sink(nullptr);
  golden_engine.set_state_digest_sink(nullptr, nullptr);
  if (!golden.ok()) {
    throw std::runtime_error(std::string("compose golden run failed: ") +
                             vm::exit_status_name(golden.status));
  }

  // Dynamic site -> section, via the decoded instruction each site's pc
  // names. Sections are straight-line, so one traversal's sites are
  // consecutive in the stream; a new occurrence starts when the section
  // changes or the pc does not advance (loop re-entry).
  const std::size_t nsites = static_cast<std::size_t>(golden.fi_sites);
  std::vector<std::int32_t> site_section(nsites, -1);
  std::vector<SectionRuntime> runtime(map.sections.size());
  std::int32_t prev_section = -1;
  std::int32_t prev_pc = -1;
  for (std::size_t id = 0; id < nsites; ++id) {
    const std::int32_t pc = site_pcs[id];
    const vm::DecodedInst& d = decoded.code()[static_cast<std::size_t>(pc)];
    const int section = map.section_of(d.fidx, d.bidx, d.iidx);
    if (section < 0 ||
        static_cast<std::size_t>(section) >= runtime.size()) {
      throw std::runtime_error(
          "compose: dynamic site outside the section partition");
    }
    site_section[id] = section;
    SectionRuntime& rt = runtime[static_cast<std::size_t>(section)];
    if (section != prev_section || pc <= prev_pc) ++rt.occurrences;
    rt.sites.push_back(id);
    if (caching) rt.digest_fold = mix64(rt.digest_fold ^ site_digests[id]);
    prev_section = section;
    prev_pc = pc;
  }
  std::uint64_t mapped = 0;
  for (const SectionRuntime& rt : runtime) mapped += rt.sites.size();
  if (mapped != golden.fi_sites) {
    throw std::runtime_error(
        "compose: sections do not partition the dynamic site stream");
  }

  const std::uint64_t max_steps =
      audit_mode ? faulty_step_budget(golden.steps)
                 : quantize_budget(faulty_step_budget(golden.steps));

  ComposeReport report;
  report.sites = golden.fi_sites;
  report.golden_steps = golden.steps;
  report.sections.resize(map.sections.size());

  // Per-section plan: trials each section owes. Audit mode probes every
  // site x bit. Campaign mode samples at a per-site rate derived from
  // options.trials, quantized to a power of two, so a section's
  // allocation (and hence its cache key) depends only on its own site
  // count — a global apportionment would re-key every section whenever
  // an edit changed the program's total site count. The composed total
  // tracks options.trials but is not exactly it.
  std::vector<std::uint64_t> plan_trials(map.sections.size(), 0);
  if (audit_mode) {
    for (std::size_t s = 0; s < runtime.size(); ++s) {
      std::uint64_t selected = 0;
      for (const std::uint64_t site : runtime[s].sites) {
        if (site % stride == 0) ++selected;
      }
      plan_trials[s] = selected * options.probe_bits.size();
    }
  } else if (golden.fi_sites > 0 && options.trials > 0) {
    const double rate = static_cast<double>(options.trials) /
                        static_cast<double>(golden.fi_sites);
    const double rate_q = std::exp2(std::round(std::log2(rate)));
    for (std::size_t s = 0; s < runtime.size(); ++s) {
      if (runtime[s].sites.empty()) continue;
      const double sites = static_cast<double>(runtime[s].sites.size());
      plan_trials[s] = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::llround(rate_q * sites)));
    }
  }

  // Keys + warm lookups, in section id order.
  std::vector<StoredSummary> warm(map.sections.size());
  std::vector<bool> is_warm(map.sections.size(), false);
  std::unordered_map<std::string, std::string> fn_sha;
  if (caching) {
    for (const masm::AsmFunction& fn : program.functions) {
      fn_sha[fn.name] = sha256_hex(masm::print(fn));
    }
  }
  for (std::size_t s = 0; s < map.sections.size(); ++s) {
    SectionSummary& summary = report.sections[s];
    summary.section = static_cast<int>(s);
    summary.code_sha256 = map.sections[s].code_sha256;
    summary.dynamic_sites = runtime[s].sites.size();
    summary.occurrences = runtime[s].occurrences;
    summary.planned = plan_trials[s];
    if (!caching || plan_trials[s] == 0) continue;
    SectionKeyInfo info;
    info.mode = audit_mode ? "audit" : "campaign";
    info.code_sha256 = map.sections[s].code_sha256;
    info.state_digest = hex16(runtime[s].digest_fold);
    info.dynamic_sites = runtime[s].sites.size();
    info.occurrences = runtime[s].occurrences;
    info.max_steps = max_steps;
    if (audit_mode) {
      info.probe_bits = options.probe_bits;
    } else {
      info.trials = plan_trials[s];
      info.seed = options.seed;
    }
    info.burst = options.burst;
    info.store_data = options.vm.fault_store_data;
    info.max_half_width = rule.max_half_width;
    summary.key = section_key(info);
    const std::optional<std::string> hit = options.lookup(summary.key);
    if (!hit.has_value()) continue;
    std::optional<StoredSummary> parsed = parse_summary(*hit);
    if (!parsed.has_value()) continue;
    // Reuse gate, false-miss-only: the summary must have been computed
    // under today's PLAN (not today's stopped count — an early-stopped
    // summary legitimately covers a prefix of the plan, and that prefix
    // length is already determined by the key material), every function
    // the cached trials touched post-fault must still print to the same
    // SHA-256, and every golden-rejoin boundary the cached trials used
    // must carry the same golden state digest today.
    if (parsed->planned != plan_trials[s]) continue;
    if (parsed->trials == 0 || parsed->trials > parsed->planned) continue;
    if (parsed->touched_all &&
        parsed->touched.size() != program.functions.size()) {
      continue;
    }
    bool valid = true;
    for (const auto& [name, sha] : parsed->touched) {
      const auto it = fn_sha.find(name);
      if (it == fn_sha.end() || it->second != sha) {
        valid = false;
        break;
      }
    }
    if (valid) {
      for (const auto& [site, digest] : parsed->deps) {
        if (site >= site_digests.size() || site_digests[site] != digest) {
          valid = false;
          break;
        }
      }
    }
    if (!valid) continue;
    warm[s] = std::move(*parsed);
    is_warm[s] = true;
  }

  // Per-section cold plans, each in its section's canonical trial order
  // — exactly the order the stop rule consumes a prefix of. Drawing the
  // FULL plan up front (even when the rule will stop early) is what
  // keeps a section's trial stream independent of the stopping decision.
  std::vector<std::vector<WorkItem>> plan(map.sections.size());
  for (std::size_t s = 0; s < map.sections.size(); ++s) {
    if (is_warm[s] || plan_trials[s] == 0) continue;
    const SectionRuntime& rt = runtime[s];
    std::vector<WorkItem>& items = plan[s];
    if (audit_mode) {
      for (const std::uint64_t site : rt.sites) {
        if (site % stride != 0) continue;
        for (const int bit : options.probe_bits) {
          items.push_back({site, bit, static_cast<std::int32_t>(s)});
        }
      }
    } else {
      std::uint64_t seed = mix64(options.seed ^
                                 sha_prefix64(map.sections[s].code_sha256));
      seed = mix64(seed ^ rt.sites.size());
      seed = mix64(seed ^ rt.occurrences);
      Rng rng(seed);
      for (std::uint64_t t = 0; t < plan_trials[s]; ++t) {
        const std::uint64_t rel = rng.next_below(rt.sites.size());
        const int bit = static_cast<int>(rng.next_below(64));
        items.push_back(
            {rt.sites[static_cast<std::size_t>(rel)], bit,
             static_cast<std::int32_t>(s)});
      }
    }
  }

  // Per-section stop-rule state. Each cold section walks its OWN
  // power-of-two boundary ladder; a global round executes every active
  // section's next block on the pool at once (flattened, site-ascending
  // within the round), then evaluates each section's rule at the
  // boundary it just reached. Budgets shrink independently: a pinned
  // section drops out while its neighbours keep running.
  struct SectionStop {
    std::vector<std::uint64_t> boundaries;
    std::size_t next = 0;
    std::array<int, 4> counts{};  // indexed by ProbeOutcome value
    std::uint64_t executed = 0;
    bool active = false;
  };
  constexpr std::uint64_t kIntMax =
      static_cast<std::uint64_t>(std::numeric_limits<int>::max());
  std::vector<SectionStop> stops(map.sections.size());
  for (std::size_t s = 0; s < map.sections.size(); ++s) {
    if (plan[s].empty()) continue;
    SectionStop& st = stops[s];
    st.active = true;
    if (rule.enabled() && plan[s].size() <= kIntMax) {
      for (const int b :
           stop_boundaries(static_cast<int>(plan[s].size()), rule)) {
        st.boundaries.push_back(static_cast<std::uint64_t>(b));
      }
    } else {
      st.boundaries.push_back(plan[s].size());
    }
  }

  // Execute the cold work across the pool, one boundary round at a time.
  // Each item records into its own slot, so the per-section reduction
  // below (commutative count sums) is identical for every
  // jobs/batch/dispatch choice — and so is the stop decision, which only
  // reads those slots at boundaries fixed before anything ran.
  vm::VmOptions faulty = options.vm;
  faulty.max_steps = max_steps;
  faulty.track_touched_functions = caching;
  std::vector<WorkItem> work;
  std::vector<std::uint8_t> outcomes;
  std::vector<std::uint64_t> touched;
  std::vector<std::uint64_t> rejoin_sites;
  std::vector<std::uint8_t> rejoined;
  ThreadPool pool(options.jobs);
  std::vector<std::unique_ptr<vm::Engine>> engines(
      static_cast<std::size_t>(pool.workers()));
  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t width = batch_width(options.batch, options.vm);
  const auto run_round = [&](const std::size_t round_begin) {
    pool.parallel_for_indexed(
        work.size() - round_begin,
        [&, round_begin](int worker, std::size_t begin, std::size_t end) {
          begin += round_begin;
          end += round_begin;
        auto& engine = engines[static_cast<std::size_t>(worker)];
        if (engine == nullptr) {
          engine = std::make_unique<vm::Engine>(decoded, faulty);
        }
        const auto record = [&](std::size_t w, const vm::VmResult& run) {
          ProbeOutcome outcome;
          if (run.status == vm::ExitStatus::kDetected) {
            outcome = ProbeOutcome::kDetected;
          } else if (!run.ok()) {
            outcome = ProbeOutcome::kCrashed;
          } else if (run.output == golden.output) {
            outcome = ProbeOutcome::kBenign;
          } else {
            outcome = ProbeOutcome::kSdc;
          }
          outcomes[w] = static_cast<std::uint8_t>(outcome);
          if (caching) {
            touched[w] = run.touched_functions;
            rejoined[w] = run.rejoined ? 1 : 0;
            rejoin_sites[w] = run.rejoin_site;
          }
        };
        if (width <= 1) {
          for (std::size_t w = begin; w < end; ++w) {
            vm::FaultSpec fault;
            fault.site = work[w].site;
            fault.bit = work[w].bit;
            fault.burst = options.burst;
            const vm::VmResult run =
                fast_forward ? engine->run_from(ckpts, faulty, &fault, 1)
                             : engine->run(faulty, &fault, 1);
            record(w, run);
          }
          return;
        }
        std::vector<vm::FaultSpec> group(width);
        std::vector<vm::Engine::BatchTrial> lanes(width);
        std::vector<vm::VmResult> runs(width);
        for (std::size_t base = begin; base < end; base += width) {
          const std::size_t n = std::min(width, end - base);
          for (std::size_t lane = 0; lane < n; ++lane) {
            group[lane].site = work[base + lane].site;
            group[lane].bit = work[base + lane].bit;
            group[lane].burst = options.burst;
            lanes[lane].faults = &group[lane];
            lanes[lane].fault_count = 1;
          }
          engine->run_batch(fast_forward ? &ckpts : nullptr, faulty,
                            lanes.data(), n, runs.data());
          for (std::size_t lane = 0; lane < n; ++lane) {
            record(base + lane, runs[lane]);
          }
        }
      });
  };
  while (true) {
    // Collect every active section's next block into one flat round.
    const std::size_t round_begin = work.size();
    for (std::size_t s = 0; s < map.sections.size(); ++s) {
      const SectionStop& st = stops[s];
      if (!st.active) continue;
      const std::uint64_t upto = st.boundaries[st.next];
      for (std::uint64_t t = st.executed; t < upto; ++t) {
        work.push_back(plan[s][static_cast<std::size_t>(t)]);
      }
    }
    if (work.size() == round_begin) break;
    // Site-ascending within the round so one worker's consecutive
    // lockstep lanes share most of their golden-walk prefix.
    std::stable_sort(work.begin() + static_cast<std::ptrdiff_t>(round_begin),
                     work.end(),
                     [](const WorkItem& a, const WorkItem& b) {
                       return a.site < b.site;
                     });
    outcomes.resize(work.size(), 0);
    if (caching) {
      touched.resize(work.size(), 0);
      rejoin_sites.resize(work.size(), 0);
      rejoined.resize(work.size(), 0);
    }
    run_round(round_begin);
    // Tally the round into each section's running counts, then evaluate
    // each active section's rule at the boundary it just reached.
    for (std::size_t w = round_begin; w < work.size(); ++w) {
      ++stops[static_cast<std::size_t>(work[w].section)]
            .counts[outcomes[w]];
    }
    for (std::size_t s = 0; s < map.sections.size(); ++s) {
      SectionStop& st = stops[s];
      if (!st.active) continue;
      st.executed = st.boundaries[st.next];
      ++st.next;
      const bool budget_done = st.next == st.boundaries.size();
      const bool pinned =
          rule.enabled() &&
          max_outcome_half_width(st.counts,
                                 static_cast<int>(st.executed)) <=
              rule.max_half_width;
      if (budget_done || pinned) st.active = false;
    }
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.ckpt.stride = fast_forward ? static_cast<int>(ckpts.stride()) : 0;
  report.ckpt.checkpoints = ckpts.size();
  report.ckpt.snapshot_bytes = ckpts.snapshot_bytes();
  for (const auto& engine : engines) {
    if (engine != nullptr) report.ckpt.ff.merge(engine->stats());
  }
  report.trials_executed = work.size();

  // Per-section reduction of the cold work, then the composition fold.
  std::vector<StoredSummary> cold(map.sections.size());
  std::vector<std::uint64_t> cold_touched(map.sections.size(), 0);
  std::vector<std::map<std::uint64_t, std::uint64_t>> cold_deps(
      caching ? map.sections.size() : 0);
  for (std::size_t w = 0; w < work.size(); ++w) {
    StoredSummary& acc = cold[static_cast<std::size_t>(work[w].section)];
    switch (static_cast<ProbeOutcome>(outcomes[w])) {
      case ProbeOutcome::kDetected: ++acc.detected; break;
      case ProbeOutcome::kCrashed: ++acc.crashed; break;
      case ProbeOutcome::kBenign: ++acc.benign; break;
      case ProbeOutcome::kSdc: ++acc.sdc; break;
    }
    ++acc.trials;
    if (caching) {
      cold_touched[static_cast<std::size_t>(work[w].section)] |= touched[w];
      if (rejoined[w] != 0 && !site_digests.empty()) {
        const std::uint64_t dep =
            std::min<std::uint64_t>(rejoin_sites[w], site_digests.size() - 1);
        cold_deps[static_cast<std::size_t>(work[w].section)].emplace(
            dep, site_digests[dep]);
      }
    }
  }

  for (std::size_t s = 0; s < map.sections.size(); ++s) {
    SectionSummary& summary = report.sections[s];
    if (is_warm[s]) {
      summary.cached = true;
      summary.trials = warm[s].trials;
      summary.detected = warm[s].detected;
      summary.benign = warm[s].benign;
      summary.crashed = warm[s].crashed;
      summary.sdc = warm[s].sdc;
      ++report.warm_sections;
    } else if (plan_trials[s] != 0) {
      summary.trials = cold[s].trials;
      summary.detected = cold[s].detected;
      summary.benign = cold[s].benign;
      summary.crashed = cold[s].crashed;
      summary.sdc = cold[s].sdc;
      summary.trials_executed = cold[s].trials;
      ++report.cold_sections;
      if (caching) {
        StoredSummary& stored = cold[s];
        stored.planned = plan_trials[s];
        const std::uint64_t mask = cold_touched[s];
        stored.touched_all = (mask >> 63) & 1;
        for (std::size_t f = 0; f < program.functions.size(); ++f) {
          const bool hit = stored.touched_all || ((f < 63) && ((mask >> f) & 1));
          if (!hit) continue;
          stored.touched.emplace_back(program.functions[f].name,
                                      fn_sha[program.functions[f].name]);
        }
        std::sort(stored.touched.begin(), stored.touched.end());
        for (const auto& [site, digest] : cold_deps[s]) {
          stored.deps.emplace_back(site, digest);
        }
        options.store(summary.key, serialize_summary(stored));
      }
    }
    summary.stopped_early = summary.trials < summary.planned;
    report.injections += summary.trials;
    report.detected += summary.detected;
    report.benign += summary.benign;
    report.crashed += summary.crashed;
    report.sdc += summary.sdc;
  }

  // Composed adaptive accounting: the fold's sample size is the sum of
  // the (possibly stopped) per-section counts, so the whole-program
  // half-widths are computed at that composed size. Deterministic and
  // cache-state independent — a warm summary stores the same stopped
  // count the cold run computed.
  report.adaptive.enabled = rule.enabled();
  report.adaptive.target_half_width = rule.max_half_width;
  std::uint64_t planned_total = 0;
  for (const SectionSummary& summary : report.sections) {
    planned_total += summary.planned;
  }
  report.adaptive.planned_trials =
      static_cast<int>(std::min(planned_total, kIntMax));
  report.adaptive.executed_trials =
      static_cast<int>(std::min(report.injections, kIntMax));
  report.adaptive.stopped_early = report.injections < planned_total;
  const int composed_n = report.adaptive.executed_trials;
  report.adaptive.half_widths = {
      wilson_half_width(static_cast<int>(std::min(report.benign, kIntMax)),
                        composed_n),
      wilson_half_width(static_cast<int>(std::min(report.sdc, kIntMax)),
                        composed_n),
      wilson_half_width(static_cast<int>(std::min(report.detected, kIntMax)),
                        composed_n),
      wilson_half_width(static_cast<int>(std::min(report.crashed, kIntMax)),
                        composed_n)};
  return report;
}

}  // namespace

ComposeReport compose_audit(const masm::AsmProgram& program,
                            const check::sections::SectionMap& map,
                            const ComposeOptions& options) {
  return compose_impl(program, map, options, /*audit_mode=*/true);
}

ComposeReport compose_campaign(const masm::AsmProgram& program,
                               const check::sections::SectionMap& map,
                               const ComposeOptions& options) {
  return compose_impl(program, map, options, /*audit_mode=*/false);
}

}  // namespace ferrum::fault
