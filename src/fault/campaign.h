// Fault-injection campaign runner (paper Sec IV-A2): samples single
// bit-flips uniformly over the dynamic fault-injection sites of a program
// and classifies each run against the fault-free golden output.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <utility>
#include <string>
#include <vector>

#include "fault/adaptive.h"
#include "masm/masm.h"
#include "vm/engine.h"
#include "vm/vm.h"

namespace ferrum::check::prune {
struct PruneReport;
}

namespace ferrum::fault {

enum class Outcome : std::uint8_t { kBenign, kSdc, kDetected, kCrash };
const char* outcome_name(Outcome outcome);

/// Live outcome counts for a campaign in flight, for streaming "so far"
/// status (the campaign service's partial results). Workers bump the
/// counters as each trial run finishes, so a snapshot taken mid-campaign
/// is scheduling-dependent — wall-clock-quarantined observability, never
/// part of the deterministic result. Once run_campaign returns, the
/// counters equal the runs the campaign actually executed (all trials;
/// in prune mode only the pilots — dead and replayed trials never run).
struct CampaignProgress {
  std::array<std::atomic<std::uint64_t>, 4> counts{};
  std::uint64_t count(Outcome outcome) const {
    return counts[static_cast<std::size_t>(outcome)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t executed() const {
    std::uint64_t total = 0;
    for (const auto& c : counts) total += c.load(std::memory_order_relaxed);
    return total;
  }
};

/// Golden-run state shared across campaigns of one program — the
/// service's cross-cell reuse. Holds everything run_campaign derives
/// from the program before any trial runs: the predecode, the golden
/// result and (when fast-forwarding) the checkpoint set. Immutable after
/// construction, so one instance may back any number of concurrent
/// run_campaign calls over different seeds/trials/techniques-of-the-same-
/// assembly; each campaign still creates its own per-worker Engines.
///
/// The golden run depends on vm.fault_store_data (it changes the dynamic
/// FI-site numbering), so a prepared state is only valid for campaigns
/// with the same setting — run_campaign throws std::invalid_argument on
/// a mismatch. ckpt_stride and dispatch are result-invariant: a campaign
/// may reuse a state captured under any stride.
struct PreparedCampaign {
  /// Runs the golden profiling run (capturing checkpoints every
  /// `ckpt_stride` FI sites unless the vm options need the full prefix).
  /// Throws std::runtime_error when the golden run fails or the program
  /// has no fault-injection sites, exactly like run_campaign.
  PreparedCampaign(const masm::AsmProgram& program, const vm::VmOptions& vm,
                   int ckpt_stride = 64);

  vm::PredecodedProgram decoded;
  vm::CheckpointSet ckpts;
  vm::VmResult golden;
  bool fast_forward = false;  // checkpoints captured, trials may restore
  bool store_data = false;    // vm.fault_store_data the golden ran under
};

struct CampaignOptions {
  int trials = 1000;          // samples per measurement, as in the paper
  std::uint64_t seed = 0xfe44u;
  vm::VmOptions vm;
  /// Independent fault sites injected per run (1 = the paper's model;
  /// >1 probes the multi-fault regime named as future work).
  int faults_per_run = 1;
  /// Adjacent bits flipped per fault (burst upsets within one word).
  int burst = 1;
  /// Worker threads executing the trial runs (<= 0 selects hardware
  /// concurrency). The sampled fault set is drawn serially from `seed`
  /// before any run starts and results reduce in trial order, so the
  /// CampaignResult is bit-identical for every jobs value.
  int jobs = 1;
  /// Golden-run checkpoint stride in dynamic FI sites (FERRUM_CKPT_STRIDE):
  /// each faulty trial restores the nearest snapshot at-or-before its
  /// fault site instead of re-executing from main(). 0 disables
  /// fast-forwarding (cold trials). Any value yields bit-identical
  /// deterministic results — the stride only moves wall-clock.
  int ckpt_stride = 64;
  /// Lockstep batch width (FERRUM_BATCH): each worker hands `batch`
  /// trials at a time to vm::Engine::run_batch, which walks their shared
  /// fault-free prefix once, forks a lane at each trial's first fault
  /// site and undoes the lane's stores with a page journal. Values <= 1
  /// keep every trial on the scalar run/run_from path (the identical
  /// pre-batching code path). Like jobs and ckpt_stride the knob only
  /// moves wall-clock: results are bit-identical for every width, and
  /// timing/profile/trace runs fall back to scalar automatically.
  int batch = 8;
  /// Optional live observer: each finished trial run bumps one outcome
  /// counter (relaxed atomics, snapshot whenever). Must outlive the
  /// run_campaign call. Purely observational — attaching it never
  /// changes the CampaignResult.
  CampaignProgress* progress = nullptr;
  /// Prune mode: a static liveness/equivalence report for this program
  /// (check::prune::prune_program, computed with store_data_sites ==
  /// vm.fault_store_data). The fault set is drawn exactly as without
  /// pruning (same seed, same sequence); trials whose flip is statically
  /// dead are classified benign without running, and the remaining trials
  /// are answered by one *pilot* run per (equivalence class, effective
  /// bit, temporal stratum), its outcome/latency/landing replicated to
  /// every trial of the key. Deterministic and jobs-invariant. Requires
  /// faults_per_run == 1 (throws std::invalid_argument otherwise).
  const check::prune::PruneReport* prune = nullptr;
  /// Adaptive early stopping (--max-half-width / FERRUM_CI_TARGET): when
  /// > 0, the campaign evaluates the Wilson half-widths of all four
  /// outcome rates at power-of-two boundaries of the canonical trial
  /// order (see fault/adaptive.h) and stops at the first boundary where
  /// every half-width is <= this target. The stopped trial count is a
  /// pure function of (program, fault model, seed, target) — invariant
  /// to jobs/ckpt_stride/batch/dispatch like the full result. Cannot be
  /// combined with prune (throws std::invalid_argument): pilot
  /// extrapolation answers trials out of canonical order, so a prefix
  /// stop rule has no meaning there.
  double max_half_width = 0.0;
  /// Optional pre-built golden state shared across campaigns of this
  /// program (see PreparedCampaign). Must outlive the call and match
  /// vm.fault_store_data; ignored in prune mode, which needs its own
  /// site-pc-instrumented golden run.
  const PreparedCampaign* prepared = nullptr;
};

/// Where the SDC-causing faults landed, for the root-cause analysis of
/// Sec IV-B1 (key: "<fault-kind>/<origin>").
using SdcBreakdown = std::map<std::string, int>;

/// What campaign prune mode actually executed vs. accounted.
struct CampaignPruneStats {
  bool enabled = false;
  std::uint64_t pilot_runs = 0;        // trial runs actually executed
  std::uint64_t replayed_trials = 0;   // trials answered by another pilot
  std::uint64_t dead_trials = 0;       // statically-dead flips, never run
  std::uint64_t unmatched_trials = 0;  // no static record: run directly
  double dead_fraction_static = 0.0;   // dead bits / total bits, static
  /// trials / pilot_runs (>= 1); 0 when nothing ran.
  double reduction = 0.0;
};

struct CampaignResult {
  std::array<int, 4> counts{};  // indexed by Outcome
  std::uint64_t total_sites = 0;
  std::uint64_t golden_steps = 0;
  SdcBreakdown sdc_breakdown;
  /// Detection latency (dynamic instructions from injection to the
  /// detector firing) over all Detected runs. Immediate checks (HYBRID)
  /// detect within a few instructions; FERRUM's deferred/batched checks
  /// pay a measurable window.
  ///
  /// Multi-fault runs (faults_per_run > 1): latency is measured from the
  /// FIRST fault actually injected — the dynamically earliest site that
  /// was reached, regardless of the order the specs were drawn in. Later
  /// injections only shorten the apparent window; treat multi-fault
  /// latency as a lower-bound-anchored statistic, not per-fault truth.
  std::uint64_t latency_sum = 0;
  std::uint64_t latency_max = 0;
  int latency_samples = 0;
  /// Log2 latency histogram: bucket 0 counts latency 0, bucket i counts
  /// latencies in [2^(i-1), 2^i). Filled in trial order during the
  /// reduction, so it is deterministic like the rest of the result.
  static constexpr int kLatencyBuckets = 65;
  std::array<std::uint64_t, kLatencyBuckets> latency_histogram{};
  /// Prune-mode accounting (enabled == false for unpruned campaigns).
  /// When enabled, counts/latency/breakdown are class-extrapolated
  /// estimates of the unpruned campaign over the same drawn fault set;
  /// prune.pilot_runs counts the runs that actually happened.
  CampaignPruneStats prune;
  /// Adaptive early-stopping accounting (enabled == false when no target
  /// half-width was set). When enabled, counts/latency/breakdown cover
  /// exactly the executed canonical prefix — trials() ==
  /// adaptive.executed_trials — and every field is deterministic.
  AdaptiveStats adaptive;

  // --- Observability only (scheduling-dependent, NOT deterministic) ---
  /// Trials executed by each pool worker (index 0 = the calling thread).
  /// Which worker claims which chunk depends on scheduling; only the sum
  /// (== trials()) is stable.
  std::vector<std::uint64_t> trials_per_worker;
  /// Wall-clock seconds spent executing the trial runs.
  double wall_seconds = 0.0;
  /// Checkpoint/fast-forward accounting for the trial runs. Deterministic
  /// for a fixed stride, but stride-dependent — exported only in the
  /// wallclock section of BENCH artifacts.
  vm::CheckpointTelemetry ckpt;

  double mean_detection_latency() const {
    return latency_samples == 0
               ? 0.0
               : static_cast<double>(latency_sum) / latency_samples;
  }

  int count(Outcome outcome) const {
    return counts[static_cast<int>(outcome)];
  }
  int trials() const {
    return counts[0] + counts[1] + counts[2] + counts[3];
  }
  /// P(SDC | one sampled fault).
  double sdc_rate() const;
  /// 95% Wilson confidence interval for the SDC rate.
  std::pair<double, double> sdc_rate_ci() const;
};

/// 95% Wilson score interval for a binomial proportion — how the paper's
/// "1000 faults for statistical significance" translates into error bars.
std::pair<double, double> wilson_interval(int successes, int trials);

/// Runs `options.trials` single-fault executions. The program must run
/// clean (golden run) first; throws std::runtime_error otherwise.
CampaignResult run_campaign(const masm::AsmProgram& program,
                            const CampaignOptions& options = {});

/// The paper's SDC-coverage metric: (SDC_raw - SDC_prot) / SDC_raw.
/// Returns 1.0 when the unprotected rate is zero (nothing to cover).
double sdc_coverage(double raw_sdc_rate, double protected_sdc_rate);

}  // namespace ferrum::fault
