// Shared prune-mode plumbing for audit_program and run_campaign: maps the
// dynamic fault-site ids of a golden run (recorded via
// vm::Engine::set_site_pc_sink) back to the static records of a
// check::prune::PruneReport, and assigns each dynamic site its temporal
// stratum. Header-only and internal to ferrum_fault — it consumes the
// prune report through its inline lookups only, so no link dependency on
// ferrum_check is introduced (telemetry links fault back into check).
#pragma once

#include <cstdint>
#include <vector>

#include "check/prune.h"
#include "vm/engine.h"

namespace ferrum::fault::detail {

/// Pilot identity: (equivalence class, effective bit, temporal stratum).
/// Layout: class (32 bits) | effective bit (8) | stratum (24).
inline std::uint64_t pilot_key(std::uint32_t cls, int eff_bit,
                               std::uint32_t stratum) {
  return (static_cast<std::uint64_t>(cls) << 32) |
         (static_cast<std::uint64_t>(eff_bit & 0xff) << 24) |
         static_cast<std::uint64_t>(stratum & 0xffffff);
}

/// Mean occurrences of one equivalence class covered by a single pilot.
/// Linear strata bound each pilot's replication factor: whether a flip
/// propagates is often data-dependent per dynamic instance (a DP max
/// absorbs a corrupted operand on some iterations and not others), so
/// extrapolation error shrinks like 1/sqrt(pilots) only if no single
/// pilot answers for an unbounded span. Logarithmic strata were measured
/// 28pp off on needle's SDC rate; linear strata at this width land every
/// workload within tolerance while audits keep an order-of-magnitude
/// reduction.
constexpr std::uint64_t kPilotStride = 16;

/// splitmix64 finaliser — the deterministic hash behind the block jitter.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-class occurrence stream -> stratum ids, in blocks whose lengths
/// are jittered deterministically in [3/4, 5/4] of kPilotStride. Fixed
/// blocks alias with loop periods (a 16-iteration inner loop put every
/// pilot on the same loop phase — the DP boundary column — and biased
/// needle's extrapolated SDC rate by 7pp); varying the block length by a
/// hash of (class, block) decorrelates the pilot phase from any fixed
/// trip count. Capped to the key's 24-bit stratum field.
struct StratumCounter {
  std::uint64_t remaining = 0;
  std::uint32_t stratum = 0;
  bool started = false;

  std::uint32_t next(std::uint64_t cls_slot) {
    if (remaining == 0) {
      if (started && stratum < 0xffffff) ++stratum;
      started = true;
      const std::uint64_t lo = kPilotStride - kPilotStride / 4;
      const std::uint64_t span = kPilotStride / 2 + 1;
      remaining = lo + mix64((cls_slot << 32) | stratum) % span;
    }
    --remaining;
    return stratum;
  }
};

/// Dynamic site id -> (static prune record, temporal stratum).
struct DynSiteMap {
  /// Index into PruneReport::sites, -1 when the dynamic site has no
  /// static record (consumers must fall back to injecting exhaustively).
  std::vector<std::int32_t> static_site;
  std::vector<std::uint32_t> stratum;
};

/// Builds the map from the golden run's site-pc trace. Exact: site_pcs[id]
/// is the flat pc that registered dynamic site id, and end-of-function
/// sentinels never register sites, so every pc resolves to a real
/// instruction.
inline DynSiteMap map_dynamic_sites(const vm::PredecodedProgram& decoded,
                                    const std::vector<std::int32_t>& site_pcs,
                                    const check::prune::PruneReport& prune,
                                    std::uint64_t fi_sites) {
  const auto& code = decoded.code();
  std::vector<std::int32_t> pc_site(code.size(), -1);
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const vm::DecodedInst& d = code[pc];
    if (d.inst == nullptr) continue;  // end-of-function sentinel
    pc_site[pc] = prune.site_index(d.fidx, d.bidx, d.iidx);
  }
  DynSiteMap map;
  const std::size_t nsites = static_cast<std::size_t>(fi_sites);
  map.static_site.assign(nsites, -1);
  map.stratum.assign(nsites, 0);
  // Occurrences are counted per equivalence CLASS, not per static site:
  // a stratum is then a contiguous block of the class's dynamic stream
  // (sites interleaved in execution order), so the pilot of each block
  // is a systematic sample of the whole class instead of always the
  // earliest member site — which measurably biased extrapolation.
  std::vector<StratumCounter> occurrences(prune.classes.size() + 1);
  for (std::size_t id = 0; id < nsites && id < site_pcs.size(); ++id) {
    const std::int32_t pc = site_pcs[id];
    const std::int32_t s =
        pc >= 0 && static_cast<std::size_t>(pc) < pc_site.size()
            ? pc_site[static_cast<std::size_t>(pc)]
            : -1;
    map.static_site[id] = s;
    if (s >= 0) {
      const std::uint32_t cls =
          prune.sites[static_cast<std::size_t>(s)].class_id;
      // Fully-dead sites (kDeadClass) never seed pilots; park them on
      // the spare trailing counter so indexing stays in bounds.
      const std::size_t slot = cls == check::prune::kDeadClass
                                   ? prune.classes.size()
                                   : static_cast<std::size_t>(cls);
      map.stratum[id] = occurrences[slot].next(slot);
    }
  }
  return map;
}

}  // namespace ferrum::fault::detail
