// Campaign *cells* — the unit of work the campaign service schedules and
// caches. A cell names a program (inline MiniC source or a Table II
// workload), a protection technique, a fault model and the engine knobs,
// i.e. everything run_campaign needs; this header also defines the
// canonical serialization the content-addressed result store hashes into
// a cache key.
//
// Cache-key contract (the load-bearing invariant of the service):
//   * every knob that can change a CampaignResult is key material —
//     technique (via the built program's printed text), trials, seed,
//     faults_per_run, burst, fault_store_data, prune, and the adaptive
//     stop rule (max_half_width): an early-stopped result covers a
//     different trial prefix, so it must never alias the full-budget one;
//   * every knob that is proven result-invariant is EXCLUDED — jobs,
//     ckpt_stride, batch, dispatch only move wall-clock (asserted down to
//     byte-identical campaign JSON by tests/test_engine.cpp), so a warm
//     query with different engine knobs must still hit.
// The material is versioned ("ferrum-cell-v2"): widening the fault model
// bumps the version instead of silently aliasing old entries (v1 -> v2
// added the max_half_width line).
#pragma once

#include <cstdint>
#include <string>

#include "fault/campaign.h"
#include "masm/masm.h"

namespace ferrum::fault {

/// A campaign cell as submitted to the service. Exactly one of `program`
/// (MiniC source text) and `workload` (Table II benchmark name) must be
/// non-empty; the service resolves `workload`/`scale` through
/// workloads::scaled and builds either through the pipeline under
/// `technique`.
struct CampaignCell {
  std::string program;             // inline MiniC source ("" = use workload)
  std::string workload;            // named workload ("" = use program)
  int scale = 1;                   // workloads::scaled factor (floor 1)
  std::string technique = "ferrum";  // none | ir-eddi | hybrid | ferrum

  // Fault model + sampling — all key material.
  int trials = 1000;
  std::uint64_t seed = 0xfe44u;
  int faults_per_run = 1;
  int burst = 1;
  bool store_data = false;  // VmOptions::fault_store_data
  bool prune = false;       // pilot-extrapolated campaign (ferrumc --prune)
  /// Adaptive stop rule (CampaignOptions::max_half_width): 0 = run the
  /// full budget; > 0 = stop when every outcome-rate Wilson half-width
  /// is pinned below the target. Key material — the rule changes which
  /// canonical prefix the result covers. Incompatible with prune.
  double max_half_width = 0.0;

  // Engine knobs — result-invariant, never key material.
  int jobs = 1;
  int ckpt_stride = 64;
  int batch = 8;
  std::string dispatch = "auto";  // auto | switch | threaded
};

/// The campaign options a cell resolves to (vm knobs filled in; the
/// prune report, which needs the built program, stays with the caller).
CampaignOptions to_campaign_options(const CampaignCell& cell);

/// Stable content hash of the program as the fault model sees it: SHA-256
/// of the canonical printed MiniASM. Two sources that build to the same
/// assembly share golden runs, predecodes and finished cells.
std::string program_hash(const masm::AsmProgram& program);

/// Canonical, versioned key material for the result store: one
/// "key=value" line per result-affecting knob plus the program hash.
/// Human-readable on purpose — `ferrumc submit` prints it under -v and
/// the stability test pins its hash.
std::string cell_key_material(const CampaignCell& cell,
                              const std::string& program_sha256);

/// The cache key: sha256_hex(cell_key_material(...)).
std::string cell_key(const CampaignCell& cell,
                     const masm::AsmProgram& program);

/// Validates the parts of a cell that do not need a build: exactly one
/// program source, a known technique/dispatch name, in-range counts.
/// Returns false with a description in `error`.
bool validate_cell(const CampaignCell& cell, std::string& error);

}  // namespace ferrum::fault
