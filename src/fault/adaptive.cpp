#include "fault/adaptive.h"

#include <algorithm>
#include <cmath>

namespace ferrum::fault {

double wilson_half_width(int successes, int trials) {
  if (trials <= 0) return 0.5;
  // Same construction as wilson_interval (campaign.cpp); duplicated here
  // so adaptive.h stays free of the campaign header cycle.
  const double z = 1.959963985;  // 97.5th normal percentile
  const double n = trials;
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  const double lo = std::max(0.0, centre - margin);
  const double hi = std::min(1.0, centre + margin);
  return (hi - lo) / 2.0;
}

double max_outcome_half_width(const std::array<int, 4>& counts, int trials) {
  double widest = 0.0;
  for (int successes : counts) {
    widest = std::max(widest, wilson_half_width(successes, trials));
  }
  return widest;
}

std::vector<int> stop_boundaries(int planned, const StopRule& rule) {
  std::vector<int> boundaries;
  if (planned <= 0) return boundaries;
  // Doubling from min_trials caps the barrier count at ~log2(planned):
  // the block structure costs a handful of pool joins, not per-trial
  // synchronisation.
  long long boundary = std::max(1, rule.min_trials);
  while (boundary < planned) {
    boundaries.push_back(static_cast<int>(boundary));
    boundary *= 2;
  }
  boundaries.push_back(planned);
  return boundaries;
}

}  // namespace ferrum::fault
