#include "fault/campaign.h"

#include <bit>
#include <chrono>
#include <cmath>
#include <optional>
#include <stdexcept>

#include <memory>

#include "fault/step_budget.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "vm/engine.h"

namespace ferrum::fault {

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kBenign: return "benign";
    case Outcome::kSdc: return "sdc";
    case Outcome::kDetected: return "detected";
    case Outcome::kCrash: return "crash";
  }
  return "?";
}

double CampaignResult::sdc_rate() const {
  const int total = trials();
  if (total == 0) return 0.0;
  return static_cast<double>(count(Outcome::kSdc)) / total;
}

std::pair<double, double> wilson_interval(int successes, int trials) {
  if (trials <= 0) return {0.0, 1.0};
  const double z = 1.959963985;  // 97.5th normal percentile
  const double n = trials;
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  const double lo = centre - margin;
  const double hi = centre + margin;
  return {lo < 0.0 ? 0.0 : lo, hi > 1.0 ? 1.0 : hi};
}

std::pair<double, double> CampaignResult::sdc_rate_ci() const {
  return wilson_interval(count(Outcome::kSdc), trials());
}

namespace {

Outcome classify(const vm::VmResult& result,
                 const std::vector<std::uint64_t>& golden) {
  switch (result.status) {
    case vm::ExitStatus::kOk:
      return result.output == golden ? Outcome::kBenign : Outcome::kSdc;
    case vm::ExitStatus::kDetected:
      return Outcome::kDetected;
    default:
      return Outcome::kCrash;
  }
}

}  // namespace

CampaignResult run_campaign(const masm::AsmProgram& program,
                            const CampaignOptions& options) {
  // The decoded program is shared read-only by the golden run and every
  // worker's trial engine; resolve()-style hash lookups happen once per
  // campaign instead of once per run.
  const vm::PredecodedProgram decoded(program);

  // Checkpoints need the full prefix to be re-creatable from a snapshot;
  // timing/profile/trace state is not checkpointed, so those runs stay
  // cold. Declared before the engines so restores never outlive the
  // pages they point at.
  const bool fast_forward = options.ckpt_stride > 0 && !options.vm.timing &&
                            !options.vm.profile &&
                            options.vm.trace_limit == 0;
  vm::CheckpointSet ckpts;

  // Golden profiling run: output + dynamic FI-site count (and, when
  // fast-forwarding, the checkpoints every trial restores from).
  vm::Engine golden_engine(decoded, options.vm);
  const vm::VmResult golden =
      fast_forward
          ? golden_engine.run_capturing(
                options.vm,
                static_cast<std::uint64_t>(options.ckpt_stride), ckpts)
          : golden_engine.run(options.vm, nullptr, 0);
  if (!golden.ok()) {
    throw std::runtime_error(std::string("golden run failed: ") +
                             vm::exit_status_name(golden.status));
  }
  if (golden.fi_sites == 0) {
    throw std::runtime_error("program has no fault-injection sites");
  }

  CampaignResult result;
  result.total_sites = golden.fi_sites;
  result.golden_steps = golden.steps;

  // Faulty runs can loop; bound them relative to the golden length.
  vm::VmOptions faulty_vm = options.vm;
  faulty_vm.max_steps = faulty_step_budget(golden.steps);

  const std::size_t trials =
      options.trials < 0 ? 0 : static_cast<std::size_t>(options.trials);
  const std::size_t per_run = static_cast<std::size_t>(
      options.faults_per_run < 1 ? 1 : options.faults_per_run);

  // Pre-draw every trial's fault set serially from the seed. This is
  // what makes the campaign deterministic under parallel execution: the
  // sampled set is fixed before any worker runs, bit-identical to the
  // historical serial draw order (per trial: site, then bit, per fault).
  std::vector<vm::FaultSpec> specs(trials * per_run);
  Rng rng(options.seed);
  for (vm::FaultSpec& fault : specs) {
    fault.site = rng.next_below(golden.fi_sites);
    fault.bit = static_cast<int>(rng.next_below(64));
    fault.burst = options.burst < 1 ? 1 : options.burst;
  }

  // Execute the trials across the pool; each trial writes only its own
  // slot, and the reduction below walks the slots in trial order, so the
  // result does not depend on scheduling.
  struct TrialSlot {
    Outcome outcome = Outcome::kBenign;
    std::optional<std::uint64_t> latency;
    std::optional<vm::FaultLanding> sdc_landing;
  };
  std::vector<TrialSlot> slots(trials);
  ThreadPool pool(options.jobs);
  result.trials_per_worker.assign(static_cast<std::size_t>(pool.workers()), 0);
  // One reusable Engine per worker (created lazily on the thread that
  // uses it): the arena is allocated once and reset by dirty-page diff,
  // never re-zeroed wholesale, and restores read the shared CheckpointSet.
  std::vector<std::unique_ptr<vm::Engine>> engines(
      static_cast<std::size_t>(pool.workers()));
  const auto wall_start = std::chrono::steady_clock::now();
  pool.parallel_for_indexed(trials, [&](int worker, std::size_t begin,
                                        std::size_t end) {
    // Per-worker tallies are observability only: each slot is written by
    // exactly one thread, but which worker claims which chunk is
    // scheduling-dependent (see ThreadPool::parallel_for_indexed).
    result.trials_per_worker[static_cast<std::size_t>(worker)] += end - begin;
    auto& engine = engines[static_cast<std::size_t>(worker)];
    if (engine == nullptr) {
      engine = std::make_unique<vm::Engine>(decoded, faulty_vm);
    }
    for (std::size_t trial = begin; trial < end; ++trial) {
      const vm::FaultSpec* faults = specs.data() + trial * per_run;
      const vm::VmResult run =
          fast_forward ? engine->run_from(ckpts, faulty_vm, faults, per_run)
                       : engine->run(faulty_vm, faults, per_run);
      TrialSlot& slot = slots[trial];
      slot.outcome = classify(run, golden.output);
      if (slot.outcome == Outcome::kDetected && run.fault_injected) {
        // Latency anchors on the FIRST injected fault (see CampaignResult).
        slot.latency = run.steps - run.fault_step;
      }
      if (slot.outcome == Outcome::kSdc && run.fault_landing.has_value()) {
        slot.sdc_landing = run.fault_landing;
      }
    }
  });
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  result.ckpt.stride =
      fast_forward ? static_cast<int>(ckpts.stride()) : 0;
  result.ckpt.checkpoints = ckpts.size();
  result.ckpt.snapshot_bytes = ckpts.snapshot_bytes();
  // Unordered uint64 sums over the worker engines — deterministic for a
  // fixed stride even though worker-chunk assignment is not.
  for (const auto& engine : engines) {
    if (engine != nullptr) result.ckpt.ff.merge(engine->stats());
  }

  for (const TrialSlot& slot : slots) {
    ++result.counts[static_cast<int>(slot.outcome)];
    if (slot.latency.has_value()) {
      result.latency_sum += *slot.latency;
      if (*slot.latency > result.latency_max) result.latency_max = *slot.latency;
      ++result.latency_samples;
      ++result.latency_histogram[std::bit_width(*slot.latency)];
    }
    if (slot.sdc_landing.has_value()) {
      const vm::FaultLanding& landing = *slot.sdc_landing;
      std::string key = std::string(vm::fault_kind_name(landing.kind)) + "/" +
                        masm::origin_name(landing.origin);
      ++result.sdc_breakdown[key];
    }
  }
  return result;
}

double sdc_coverage(double raw_sdc_rate, double protected_sdc_rate) {
  if (raw_sdc_rate <= 0.0) return 1.0;
  return (raw_sdc_rate - protected_sdc_rate) / raw_sdc_rate;
}

}  // namespace ferrum::fault
