#include "fault/campaign.h"

#include <cmath>
#include <stdexcept>

#include "support/rng.h"

namespace ferrum::fault {

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kBenign: return "benign";
    case Outcome::kSdc: return "sdc";
    case Outcome::kDetected: return "detected";
    case Outcome::kCrash: return "crash";
  }
  return "?";
}

double CampaignResult::sdc_rate() const {
  const int total = trials();
  if (total == 0) return 0.0;
  return static_cast<double>(count(Outcome::kSdc)) / total;
}

std::pair<double, double> wilson_interval(int successes, int trials) {
  if (trials <= 0) return {0.0, 1.0};
  const double z = 1.959963985;  // 97.5th normal percentile
  const double n = trials;
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  const double lo = centre - margin;
  const double hi = centre + margin;
  return {lo < 0.0 ? 0.0 : lo, hi > 1.0 ? 1.0 : hi};
}

std::pair<double, double> CampaignResult::sdc_rate_ci() const {
  return wilson_interval(count(Outcome::kSdc), trials());
}

namespace {

Outcome classify(const vm::VmResult& result,
                 const std::vector<std::uint64_t>& golden) {
  switch (result.status) {
    case vm::ExitStatus::kOk:
      return result.output == golden ? Outcome::kBenign : Outcome::kSdc;
    case vm::ExitStatus::kDetected:
      return Outcome::kDetected;
    default:
      return Outcome::kCrash;
  }
}

const char* origin_name(masm::InstOrigin origin) {
  switch (origin) {
    case masm::InstOrigin::kFromIR: return "from-ir";
    case masm::InstOrigin::kBackendGlue: return "backend-glue";
    case masm::InstOrigin::kProtection: return "protection";
  }
  return "?";
}

}  // namespace

CampaignResult run_campaign(const masm::AsmProgram& program,
                            const CampaignOptions& options) {
  // Golden profiling run: output + dynamic FI-site count.
  const vm::VmResult golden = vm::run(program, options.vm);
  if (!golden.ok()) {
    throw std::runtime_error(std::string("golden run failed: ") +
                             vm::exit_status_name(golden.status));
  }
  if (golden.fi_sites == 0) {
    throw std::runtime_error("program has no fault-injection sites");
  }

  CampaignResult result;
  result.total_sites = golden.fi_sites;
  result.golden_steps = golden.steps;

  Rng rng(options.seed);
  // Faulty runs can loop; bound them relative to the golden length.
  vm::VmOptions faulty_vm = options.vm;
  faulty_vm.max_steps = golden.steps * 16 + 100'000;

  for (int trial = 0; trial < options.trials; ++trial) {
    std::vector<vm::FaultSpec> faults(
        static_cast<std::size_t>(options.faults_per_run < 1
                                     ? 1
                                     : options.faults_per_run));
    for (vm::FaultSpec& fault : faults) {
      fault.site = rng.next_below(golden.fi_sites);
      fault.bit = static_cast<int>(rng.next_below(64));
      fault.burst = options.burst < 1 ? 1 : options.burst;
    }
    const vm::VmResult run = vm::run_multi(program, faulty_vm, faults);
    const Outcome outcome = classify(run, golden.output);
    ++result.counts[static_cast<int>(outcome)];
    if (outcome == Outcome::kDetected && run.fault_injected) {
      const std::uint64_t latency = run.steps - run.fault_step;
      result.latency_sum += latency;
      if (latency > result.latency_max) result.latency_max = latency;
      ++result.latency_samples;
    }
    if (outcome == Outcome::kSdc && run.fault_landing.has_value()) {
      const vm::FaultLanding& landing = *run.fault_landing;
      std::string key = std::string(vm::fault_kind_name(landing.kind)) + "/" +
                        origin_name(landing.origin);
      ++result.sdc_breakdown[key];
    }
  }
  return result;
}

double sdc_coverage(double raw_sdc_rate, double protected_sdc_rate) {
  if (raw_sdc_rate <= 0.0) return 1.0;
  return (raw_sdc_rate - protected_sdc_rate) / raw_sdc_rate;
}

}  // namespace ferrum::fault
