#include "fault/campaign.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>

// Types and inline lookups only — see fault/prune_map.h for why this adds
// no link dependency on ferrum_check.
#include "check/prune.h"
#include "fault/prune_map.h"
#include "fault/step_budget.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "vm/engine.h"

namespace ferrum::fault {

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kBenign: return "benign";
    case Outcome::kSdc: return "sdc";
    case Outcome::kDetected: return "detected";
    case Outcome::kCrash: return "crash";
  }
  return "?";
}

double CampaignResult::sdc_rate() const {
  const int total = trials();
  if (total == 0) return 0.0;
  return static_cast<double>(count(Outcome::kSdc)) / total;
}

std::pair<double, double> wilson_interval(int successes, int trials) {
  if (trials <= 0) return {0.0, 1.0};
  const double z = 1.959963985;  // 97.5th normal percentile
  const double n = trials;
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  const double lo = centre - margin;
  const double hi = centre + margin;
  return {lo < 0.0 ? 0.0 : lo, hi > 1.0 ? 1.0 : hi};
}

std::pair<double, double> CampaignResult::sdc_rate_ci() const {
  return wilson_interval(count(Outcome::kSdc), trials());
}

PreparedCampaign::PreparedCampaign(const masm::AsmProgram& program,
                                   const vm::VmOptions& vm, int ckpt_stride)
    : decoded(program), store_data(vm.fault_store_data) {
  // Checkpoints need the full prefix to be re-creatable from a snapshot;
  // timing/profile/trace state is not checkpointed, so those runs stay
  // cold (the same gate run_campaign always applied).
  fast_forward =
      ckpt_stride > 0 && !vm.timing && !vm.profile && vm.trace_limit == 0;
  vm::Engine golden_engine(decoded, vm);
  golden = fast_forward
               ? golden_engine.run_capturing(
                     vm, static_cast<std::uint64_t>(ckpt_stride), ckpts)
               : golden_engine.run(vm, nullptr, 0);
  if (!golden.ok()) {
    throw std::runtime_error(std::string("golden run failed: ") +
                             vm::exit_status_name(golden.status));
  }
  if (golden.fi_sites == 0) {
    throw std::runtime_error("program has no fault-injection sites");
  }
}

namespace {

Outcome classify(const vm::VmResult& result,
                 const std::vector<std::uint64_t>& golden) {
  switch (result.status) {
    case vm::ExitStatus::kOk:
      return result.output == golden ? Outcome::kBenign : Outcome::kSdc;
    case vm::ExitStatus::kDetected:
      return Outcome::kDetected;
    default:
      return Outcome::kCrash;
  }
}

struct TrialSlot {
  Outcome outcome = Outcome::kBenign;
  std::optional<std::uint64_t> latency;
  std::optional<vm::FaultLanding> sdc_landing;
};

void record_trial(TrialSlot& slot, const vm::VmResult& run,
                  const std::vector<std::uint64_t>& golden_output,
                  CampaignProgress* progress) {
  slot.outcome = classify(run, golden_output);
  if (progress != nullptr) {
    progress->counts[static_cast<std::size_t>(slot.outcome)].fetch_add(
        1, std::memory_order_relaxed);
  }
  if (slot.outcome == Outcome::kDetected && run.fault_injected) {
    // Latency anchors on the FIRST injected fault (see CampaignResult).
    slot.latency = run.steps - run.fault_step;
  }
  if (slot.outcome == Outcome::kSdc && run.fault_landing.has_value()) {
    slot.sdc_landing = run.fault_landing;
  }
}

/// Effective lockstep width: batching needs the full VmResult-only
/// contract of Engine::run_batch, so timing/profile/trace campaigns
/// stay scalar (exactly like fast_forward).
std::size_t batch_width(int batch, const vm::VmOptions& vm) {
  if (batch <= 1) return 1;
  if (vm.timing || vm.profile || vm.trace_limit != 0) return 1;
  return static_cast<std::size_t>(batch);
}

/// Class-extrapolated campaign: the fault set is drawn exactly like the
/// unpruned campaign; statically-dead flips are benign without running,
/// every other trial is answered by one pilot run per (class, effective
/// bit, stratum). The result keeps the unpruned frame — counts sum to
/// options.trials — so sdc_rate() estimates the unpruned campaign.
CampaignResult run_campaign_pruned(const masm::AsmProgram& program,
                                   const CampaignOptions& options) {
  const check::prune::PruneReport& prune = *options.prune;
  if (options.faults_per_run > 1) {
    throw std::invalid_argument(
        "campaign prune mode requires faults_per_run == 1");
  }
  if (prune.store_data_sites != options.vm.fault_store_data) {
    throw std::invalid_argument(
        "prune report store_data_sites must match vm.fault_store_data");
  }

  const vm::PredecodedProgram decoded(program);
  const bool fast_forward = options.ckpt_stride > 0 && !options.vm.timing &&
                            !options.vm.profile &&
                            options.vm.trace_limit == 0;
  vm::CheckpointSet ckpts;
  vm::Engine golden_engine(decoded, options.vm);
  std::vector<std::int32_t> site_pcs;
  golden_engine.set_site_pc_sink(&site_pcs);
  const vm::VmResult golden =
      fast_forward
          ? golden_engine.run_capturing(
                options.vm,
                static_cast<std::uint64_t>(options.ckpt_stride), ckpts)
          : golden_engine.run(options.vm, nullptr, 0);
  golden_engine.set_site_pc_sink(nullptr);
  if (!golden.ok()) {
    throw std::runtime_error(std::string("golden run failed: ") +
                             vm::exit_status_name(golden.status));
  }
  if (golden.fi_sites == 0) {
    throw std::runtime_error("program has no fault-injection sites");
  }

  CampaignResult result;
  result.total_sites = golden.fi_sites;
  result.golden_steps = golden.steps;
  result.prune.enabled = true;
  result.prune.dead_fraction_static = prune.dead_fraction();

  vm::VmOptions faulty_vm = options.vm;
  faulty_vm.max_steps = faulty_step_budget(golden.steps);

  // Identical serial draw to the unpruned campaign (per_run == 1), so a
  // pruned and an unpruned campaign over the same seed judge the same
  // sampled fault set.
  const std::size_t trials =
      options.trials < 0 ? 0 : static_cast<std::size_t>(options.trials);
  std::vector<vm::FaultSpec> specs(trials);
  Rng rng(options.seed);
  for (vm::FaultSpec& fault : specs) {
    fault.site = rng.next_below(golden.fi_sites);
    fault.bit = static_cast<int>(rng.next_below(64));
    fault.burst = options.burst < 1 ? 1 : options.burst;
  }

  const detail::DynSiteMap dyn =
      detail::map_dynamic_sites(decoded, site_pcs, prune, golden.fi_sites);

  // Serial pilot plan in trial order: deterministic and jobs-invariant.
  std::vector<std::size_t> pilots;  // trial index of each pilot run
  std::unordered_map<std::uint64_t, std::uint32_t> pilot_by_key;
  std::vector<std::int32_t> trial_pilot(trials, -1);  // -1 = dead flip
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const vm::FaultSpec& spec = specs[trial];
    const std::int32_t s =
        dyn.static_site[static_cast<std::size_t>(spec.site)];
    if (s < 0) {
      // No static record: sound fallback, run this trial directly.
      trial_pilot[trial] = static_cast<std::int32_t>(pilots.size());
      pilots.push_back(trial);
      ++result.prune.unmatched_trials;
      continue;
    }
    const check::prune::PruneSite& site =
        prune.sites[static_cast<std::size_t>(s)];
    if (site.flip_dead(spec.bit, spec.burst)) continue;  // provably benign
    const std::uint64_t key = detail::pilot_key(
        site.class_id, spec.bit % site.bit_space,
        dyn.stratum[static_cast<std::size_t>(spec.site)]);
    auto [it, inserted] =
        pilot_by_key.emplace(key, static_cast<std::uint32_t>(pilots.size()));
    if (inserted) pilots.push_back(trial);
    trial_pilot[trial] = static_cast<std::int32_t>(it->second);
  }

  // Execute only the pilots across the pool; per-pilot slots merge in
  // trial order below.
  std::vector<TrialSlot> slots(pilots.size());
  ThreadPool pool(options.jobs);
  result.trials_per_worker.assign(static_cast<std::size_t>(pool.workers()), 0);
  std::vector<std::unique_ptr<vm::Engine>> engines(
      static_cast<std::size_t>(pool.workers()));
  const std::size_t width = batch_width(options.batch, options.vm);
  const auto wall_start = std::chrono::steady_clock::now();
  pool.parallel_for_indexed(
      pilots.size(), [&](int worker, std::size_t begin, std::size_t end) {
        result.trials_per_worker[static_cast<std::size_t>(worker)] +=
            end - begin;
        auto& engine = engines[static_cast<std::size_t>(worker)];
        if (engine == nullptr) {
          engine = std::make_unique<vm::Engine>(decoded, faulty_vm);
        }
        if (width <= 1) {
          for (std::size_t p = begin; p < end; ++p) {
            const vm::FaultSpec* fault = specs.data() + pilots[p];
            const vm::VmResult run =
                fast_forward ? engine->run_from(ckpts, faulty_vm, fault, 1)
                             : engine->run(faulty_vm, fault, 1);
            record_trial(slots[p], run, golden.output,
                         options.progress);
          }
          return;
        }
        // Lockstep over the pilots: grouping by site shares the prefix
        // walk; slot p is still written from runs[lane] of its own
        // pilot, so the trial-order reduction is width-invariant.
        std::vector<std::size_t> order;
        order.reserve(end - begin);
        for (std::size_t p = begin; p < end; ++p) order.push_back(p);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                    const std::uint64_t sa = specs[pilots[a]].site;
                    const std::uint64_t sb = specs[pilots[b]].site;
                    return sa != sb ? sa < sb : a < b;
                  });
        std::vector<vm::Engine::BatchTrial> lanes(width);
        std::vector<vm::VmResult> runs(width);
        for (std::size_t base = 0; base < order.size(); base += width) {
          const std::size_t n = std::min(width, order.size() - base);
          for (std::size_t lane = 0; lane < n; ++lane) {
            lanes[lane].faults = specs.data() + pilots[order[base + lane]];
            lanes[lane].fault_count = 1;
          }
          engine->run_batch(fast_forward ? &ckpts : nullptr, faulty_vm,
                            lanes.data(), n, runs.data());
          for (std::size_t lane = 0; lane < n; ++lane) {
            record_trial(slots[order[base + lane]], runs[lane],
                         golden.output, options.progress);
          }
        }
      });
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  result.ckpt.stride = fast_forward ? static_cast<int>(ckpts.stride()) : 0;
  result.ckpt.checkpoints = ckpts.size();
  result.ckpt.snapshot_bytes = ckpts.snapshot_bytes();
  for (const auto& engine : engines) {
    if (engine != nullptr) result.ckpt.ff.merge(engine->stats());
  }

  // Trial-order reduction with extrapolation: every drawn trial is
  // counted; outcome/latency come from its pilot, SDC-breakdown
  // coordinates from the trial's OWN static record (only the outcome is
  // inherited).
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const std::int32_t p = trial_pilot[trial];
    if (p < 0) {
      ++result.counts[static_cast<int>(Outcome::kBenign)];
      ++result.prune.dead_trials;
      continue;
    }
    const TrialSlot& slot = slots[static_cast<std::size_t>(p)];
    if (pilots[static_cast<std::size_t>(p)] != trial) {
      ++result.prune.replayed_trials;
    }
    ++result.counts[static_cast<int>(slot.outcome)];
    if (slot.latency.has_value()) {
      result.latency_sum += *slot.latency;
      if (*slot.latency > result.latency_max) result.latency_max = *slot.latency;
      ++result.latency_samples;
      ++result.latency_histogram[std::bit_width(*slot.latency)];
    }
    if (slot.outcome == Outcome::kSdc) {
      const std::int32_t s =
          dyn.static_site[static_cast<std::size_t>(specs[trial].site)];
      std::string key;
      if (s >= 0) {
        const check::prune::PruneSite& site =
            prune.sites[static_cast<std::size_t>(s)];
        const masm::AsmInst& inst =
            program.functions[static_cast<std::size_t>(site.function)]
                .blocks[static_cast<std::size_t>(site.block)]
                .insts[static_cast<std::size_t>(site.inst)];
        key = std::string(masm::fault_site_kind_name(site.kind)) + "/" +
              masm::origin_name(inst.origin);
      } else if (slot.sdc_landing.has_value()) {
        key = std::string(vm::fault_kind_name(slot.sdc_landing->kind)) + "/" +
              masm::origin_name(slot.sdc_landing->origin);
      }
      if (!key.empty()) ++result.sdc_breakdown[key];
    }
  }
  result.prune.pilot_runs = pilots.size();
  result.prune.reduction =
      pilots.empty() ? 0.0
                     : static_cast<double>(trials) /
                           static_cast<double>(pilots.size());
  return result;
}

}  // namespace

CampaignResult run_campaign(const masm::AsmProgram& program,
                            const CampaignOptions& options) {
  if (options.prune != nullptr) {
    if (options.max_half_width > 0.0) {
      // Pilot extrapolation answers trials out of canonical order, so a
      // canonical-prefix stop rule has no meaning under prune.
      throw std::invalid_argument(
          "adaptive early stopping cannot be combined with prune mode");
    }
    return run_campaign_pruned(program, options);
  }
  // The decoded program / golden run / checkpoints either come prepared
  // (the service's cross-cell sharing) or are built here; both ways they
  // are shared read-only by every worker's trial engine, and resolve()-
  // style hash lookups happen once per campaign instead of once per run.
  // Declared before the engines so restores never outlive the pages they
  // point at.
  const PreparedCampaign* prep = options.prepared;
  if (prep != nullptr && prep->store_data != options.vm.fault_store_data) {
    throw std::invalid_argument(
        "prepared campaign state disagrees on fault_store_data");
  }
  std::optional<PreparedCampaign> owned;
  if (prep == nullptr) {
    owned.emplace(program, options.vm, options.ckpt_stride);
    prep = &*owned;
  }
  const vm::PredecodedProgram& decoded = prep->decoded;
  const vm::CheckpointSet& ckpts = prep->ckpts;
  const vm::VmResult& golden = prep->golden;
  // A state prepared without checkpoints (stride 0) just runs cold; one
  // prepared with them can still serve a cold-only campaign request.
  const bool fast_forward = prep->fast_forward && !options.vm.timing &&
                            !options.vm.profile &&
                            options.vm.trace_limit == 0;

  CampaignResult result;
  result.total_sites = golden.fi_sites;
  result.golden_steps = golden.steps;

  // Faulty runs can loop; bound them relative to the golden length.
  vm::VmOptions faulty_vm = options.vm;
  faulty_vm.max_steps = faulty_step_budget(golden.steps);

  const std::size_t trials =
      options.trials < 0 ? 0 : static_cast<std::size_t>(options.trials);
  const std::size_t per_run = static_cast<std::size_t>(
      options.faults_per_run < 1 ? 1 : options.faults_per_run);

  // Pre-draw every trial's fault set serially from the seed. This is
  // what makes the campaign deterministic under parallel execution: the
  // sampled set is fixed before any worker runs, bit-identical to the
  // historical serial draw order (per trial: site, then bit, per fault).
  std::vector<vm::FaultSpec> specs(trials * per_run);
  Rng rng(options.seed);
  for (vm::FaultSpec& fault : specs) {
    fault.site = rng.next_below(golden.fi_sites);
    fault.bit = static_cast<int>(rng.next_below(64));
    fault.burst = options.burst < 1 ? 1 : options.burst;
  }

  // Execute the trials across the pool; each trial writes only its own
  // slot, and the reduction below walks the slots in trial order, so the
  // result does not depend on scheduling.
  std::vector<TrialSlot> slots(trials);
  ThreadPool pool(options.jobs);
  result.trials_per_worker.assign(static_cast<std::size_t>(pool.workers()), 0);
  // One reusable Engine per worker (created lazily on the thread that
  // uses it): the arena is allocated once and reset by dirty-page diff,
  // never re-zeroed wholesale, and restores read the shared CheckpointSet.
  std::vector<std::unique_ptr<vm::Engine>> engines(
      static_cast<std::size_t>(pool.workers()));
  const std::size_t width = batch_width(options.batch, options.vm);

  // Executes the canonical trial range [range_begin, range_end) across
  // the pool. Adaptive campaigns call this once per power-of-two block
  // (a handful of pool joins in total); full-budget campaigns call it
  // once for the whole range — which makes the block structure itself
  // result-invariant: a trial's execution does not depend on which block
  // ran it.
  const auto run_range = [&](std::size_t range_begin, std::size_t range_end) {
    if (range_end <= range_begin) return;
    pool.parallel_for_indexed(range_end - range_begin, [&](int worker,
                                                           std::size_t begin,
                                                           std::size_t end) {
      begin += range_begin;
      end += range_begin;
      // Per-worker tallies are observability only: each slot is written by
      // exactly one thread, but which worker claims which chunk is
      // scheduling-dependent (see ThreadPool::parallel_for_indexed).
      result.trials_per_worker[static_cast<std::size_t>(worker)] +=
          end - begin;
      auto& engine = engines[static_cast<std::size_t>(worker)];
      if (engine == nullptr) {
        engine = std::make_unique<vm::Engine>(decoded, faulty_vm);
      }
      if (width <= 1) {
        for (std::size_t trial = begin; trial < end; ++trial) {
          const vm::FaultSpec* faults = specs.data() + trial * per_run;
          const vm::VmResult run =
              fast_forward
                  ? engine->run_from(ckpts, faulty_vm, faults, per_run)
                  : engine->run(faulty_vm, faults, per_run);
          record_trial(slots[trial], run, golden.output, options.progress);
        }
        return;
      }
      // Lockstep batches: order the chunk's trials by earliest fault site
      // so the lanes grouped into one run_batch call share as much of the
      // fault-free prefix as possible. The ordering is wall-clock only —
      // each trial still lands in its own slot and the reduction below
      // walks slots in trial order.
      std::vector<std::size_t> order;
      order.reserve(end - begin);
      for (std::size_t trial = begin; trial < end; ++trial) {
        order.push_back(trial);
      }
      const auto first_site = [&](std::size_t trial) {
        std::uint64_t site = specs[trial * per_run].site;
        for (std::size_t f = 1; f < per_run; ++f) {
          site = std::min(site, specs[trial * per_run + f].site);
        }
        return site;
      };
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  const std::uint64_t sa = first_site(a);
                  const std::uint64_t sb = first_site(b);
                  return sa != sb ? sa < sb : a < b;
                });
      std::vector<vm::Engine::BatchTrial> lanes(width);
      std::vector<vm::VmResult> runs(width);
      for (std::size_t base = 0; base < order.size(); base += width) {
        const std::size_t n = std::min(width, order.size() - base);
        for (std::size_t lane = 0; lane < n; ++lane) {
          lanes[lane].faults = specs.data() + order[base + lane] * per_run;
          lanes[lane].fault_count = per_run;
        }
        engine->run_batch(fast_forward ? &ckpts : nullptr, faulty_vm,
                          lanes.data(), n, runs.data());
        for (std::size_t lane = 0; lane < n; ++lane) {
          record_trial(slots[order[base + lane]], runs[lane], golden.output,
                       options.progress);
        }
      }
    });
  };

  const StopRule rule{options.max_half_width};
  result.adaptive.enabled = rule.enabled();
  result.adaptive.target_half_width = rule.enabled() ? rule.max_half_width : 0.0;
  result.adaptive.planned_trials = static_cast<int>(trials);

  const auto wall_start = std::chrono::steady_clock::now();
  std::size_t executed = trials;
  if (!rule.enabled()) {
    run_range(0, trials);
  } else {
    // Block-boundary evaluation (fault/adaptive.h): run the canonical
    // order in power-of-two blocks and quit at the first boundary where
    // every outcome rate is pinned. The boundary sequence and the counts
    // at each boundary depend only on the pre-drawn specs, so the stop
    // decision is identical for every jobs/batch/dispatch combination.
    std::array<int, 4> running{};
    std::size_t done = 0;
    executed = 0;
    for (const int boundary : stop_boundaries(static_cast<int>(trials), rule)) {
      const std::size_t upto = static_cast<std::size_t>(boundary);
      run_range(done, upto);
      for (std::size_t trial = done; trial < upto; ++trial) {
        ++running[static_cast<int>(slots[trial].outcome)];
      }
      done = executed = upto;
      if (max_outcome_half_width(running, boundary) <= rule.max_half_width) {
        result.adaptive.stopped_early = upto < trials;
        break;
      }
    }
    for (int i = 0; i < 4; ++i) {
      result.adaptive.half_widths[static_cast<std::size_t>(i)] =
          wilson_half_width(running[static_cast<std::size_t>(i)],
                            static_cast<int>(executed));
    }
  }
  result.adaptive.executed_trials = static_cast<int>(executed);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  result.ckpt.stride =
      fast_forward ? static_cast<int>(ckpts.stride()) : 0;
  result.ckpt.checkpoints = ckpts.size();
  result.ckpt.snapshot_bytes = ckpts.snapshot_bytes();
  // Unordered uint64 sums over the worker engines — deterministic for a
  // fixed stride even though worker-chunk assignment is not.
  for (const auto& engine : engines) {
    if (engine != nullptr) result.ckpt.ff.merge(engine->stats());
  }

  // Trial-order reduction over the executed canonical prefix (the whole
  // plan unless the stop rule fired).
  for (std::size_t trial = 0; trial < executed; ++trial) {
    const TrialSlot& slot = slots[trial];
    ++result.counts[static_cast<int>(slot.outcome)];
    if (slot.latency.has_value()) {
      result.latency_sum += *slot.latency;
      if (*slot.latency > result.latency_max) result.latency_max = *slot.latency;
      ++result.latency_samples;
      ++result.latency_histogram[std::bit_width(*slot.latency)];
    }
    if (slot.sdc_landing.has_value()) {
      const vm::FaultLanding& landing = *slot.sdc_landing;
      std::string key = std::string(vm::fault_kind_name(landing.kind)) + "/" +
                        masm::origin_name(landing.origin);
      ++result.sdc_breakdown[key];
    }
  }
  return result;
}

double sdc_coverage(double raw_sdc_rate, double protected_sdc_rate) {
  if (raw_sdc_rate <= 0.0) return 1.0;
  return (raw_sdc_rate - protected_sdc_rate) / raw_sdc_rate;
}

}  // namespace ferrum::fault
