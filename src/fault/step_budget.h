// Step budget for faulty executions. A fault can turn a terminating
// program into a livelock, so every faulty run gets a budget relative to
// the golden run's length; exceeding it classifies as a crash
// (ExitStatus::kTrapSteps). Campaign and audit MUST share this bound so
// they classify the same borderline hang identically.
#pragma once

#include <cstdint>

namespace ferrum::fault {

inline std::uint64_t faulty_step_budget(std::uint64_t golden_steps) {
  return golden_steps * 16 + 100'000;
}

}  // namespace ferrum::fault
