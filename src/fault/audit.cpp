#include "fault/audit.h"

#include <chrono>
#include <iterator>
#include <memory>
#include <stdexcept>

#include "fault/step_budget.h"
#include "support/parallel.h"
#include "vm/engine.h"

namespace ferrum::fault {

AuditReport audit_program(const masm::AsmProgram& program,
                          const AuditOptions& options) {
  const vm::PredecodedProgram decoded(program);

  const bool fast_forward = options.ckpt_stride > 0 && !options.vm.timing &&
                            !options.vm.profile &&
                            options.vm.trace_limit == 0;
  vm::CheckpointSet ckpts;

  vm::Engine golden_engine(decoded, options.vm);
  const vm::VmResult golden =
      fast_forward
          ? golden_engine.run_capturing(
                options.vm,
                static_cast<std::uint64_t>(options.ckpt_stride), ckpts)
          : golden_engine.run(options.vm, nullptr, 0);
  if (!golden.ok()) {
    throw std::runtime_error(std::string("audit golden run failed: ") +
                             vm::exit_status_name(golden.status));
  }
  AuditReport report;
  report.sites = golden.fi_sites;

  vm::VmOptions faulty = options.vm;
  faulty.max_steps = faulty_step_budget(golden.steps);

  // Every (site, bit) probe is independent: sweep the sites across the
  // pool into per-site partial reports, then merge them in site order so
  // the escape list comes out exactly as a serial sweep would produce it.
  struct SitePartial {
    std::uint64_t injections = 0;
    std::uint64_t detected = 0;
    std::uint64_t benign = 0;
    std::uint64_t crashed = 0;
    std::vector<AuditEscape> escapes;
  };
  std::vector<SitePartial> partials(
      static_cast<std::size_t>(golden.fi_sites));
  ThreadPool pool(options.jobs);
  report.sites_per_worker.assign(static_cast<std::size_t>(pool.workers()), 0);
  std::vector<std::unique_ptr<vm::Engine>> engines(
      static_cast<std::size_t>(pool.workers()));
  const auto wall_start = std::chrono::steady_clock::now();
  pool.parallel_for_indexed(
      static_cast<std::size_t>(golden.fi_sites),
      [&](int worker, std::size_t begin, std::size_t end) {
        report.sites_per_worker[static_cast<std::size_t>(worker)] +=
            end - begin;
        auto& engine = engines[static_cast<std::size_t>(worker)];
        if (engine == nullptr) {
          engine = std::make_unique<vm::Engine>(decoded, faulty);
        }
        for (std::size_t site = begin; site < end; ++site) {
          SitePartial& partial = partials[site];
          for (int bit : options.probe_bits) {
            vm::FaultSpec fault;
            fault.site = site;
            fault.bit = bit;
            const vm::VmResult run =
                fast_forward ? engine->run_from(ckpts, faulty, &fault, 1)
                             : engine->run(faulty, &fault, 1);
            ++partial.injections;
            if (run.status == vm::ExitStatus::kDetected) {
              ++partial.detected;
            } else if (!run.ok()) {
              ++partial.crashed;
            } else if (run.output == golden.output) {
              ++partial.benign;
            } else {
              AuditEscape escape;
              escape.site = site;
              escape.bit = bit;
              if (run.fault_landing.has_value()) {
                escape.kind = run.fault_landing->kind;
                escape.origin = run.fault_landing->origin;
                escape.op = run.fault_landing->op;
                escape.function = run.fault_landing->function;
                escape.block = run.fault_landing->block;
                escape.inst = run.fault_landing->inst;
              }
              partial.escapes.push_back(std::move(escape));
            }
          }
        }
      });
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.ckpt.stride = fast_forward ? static_cast<int>(ckpts.stride()) : 0;
  report.ckpt.checkpoints = ckpts.size();
  report.ckpt.snapshot_bytes = ckpts.snapshot_bytes();
  for (const auto& engine : engines) {
    if (engine != nullptr) report.ckpt.ff.merge(engine->stats());
  }

  // Merge in site order with one up-front reservation; the escape lists
  // splice over with bulk moves instead of element-by-element growth.
  std::size_t total_escapes = 0;
  for (const SitePartial& partial : partials) {
    total_escapes += partial.escapes.size();
  }
  report.escapes.reserve(total_escapes);
  for (SitePartial& partial : partials) {
    report.injections += partial.injections;
    report.detected += partial.detected;
    report.benign += partial.benign;
    report.crashed += partial.crashed;
    report.escapes.insert(report.escapes.end(),
                          std::make_move_iterator(partial.escapes.begin()),
                          std::make_move_iterator(partial.escapes.end()));
  }
  return report;
}

}  // namespace ferrum::fault
