#include "fault/audit.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <map>
#include <memory>
#include <stdexcept>
#include <tuple>
#include <unordered_map>

// Types and inline lookups only — the prune analysis itself runs in
// ferrum_check and reaches this layer as a const pointer, so ferrum_fault
// takes no link dependency on it (telemetry links fault back into check).
#include "check/prune.h"
#include "fault/prune_map.h"
#include "fault/step_budget.h"
#include "support/parallel.h"
#include "vm/engine.h"

namespace ferrum::fault {

namespace {

/// Deterministically-ordered accumulator for AuditOptions::site_outcomes:
/// static coordinates -> per-outcome probe counts.
class SiteOutcomeTally {
 public:
  void add(const std::string& function, int block, int inst,
           vm::FaultKind kind, ProbeOutcome outcome, std::uint64_t n = 1) {
    SiteOutcome& entry = map_[std::make_tuple(function, block, inst,
                                              static_cast<int>(kind))];
    if (entry.function.empty()) {
      entry.function = function;
      entry.block = block;
      entry.inst = inst;
      entry.kind = kind;
    }
    entry.count[static_cast<std::size_t>(outcome)] += n;
  }

  std::vector<SiteOutcome> take() {
    std::vector<SiteOutcome> out;
    out.reserve(map_.size());
    for (auto& [key, entry] : map_) out.push_back(std::move(entry));
    map_.clear();
    return out;
  }

 private:
  std::map<std::tuple<std::string, int, int, int>, SiteOutcome> map_;
};

/// Effective lockstep width for Engine::run_batch (mirrors the campaign
/// gate): timing/profile/trace audits stay scalar.
std::size_t batch_width(int batch, const vm::VmOptions& vm) {
  if (batch <= 1) return 1;
  if (vm.timing || vm.profile || vm.trace_limit != 0) return 1;
  return static_cast<std::size_t>(batch);
}

/// Class-extrapolated audit: one pilot injection per (class, effective
/// bit, stratum); every other live probe inherits its pilot's outcome,
/// dead probes are benign by the liveness proof. The report keeps the
/// exhaustive frame (injections/detected/... count every probe) so it is
/// directly comparable with audit_program without prune.
AuditReport audit_pruned(const masm::AsmProgram& program,
                         const AuditOptions& options) {
  const check::prune::PruneReport& prune = *options.prune;
  if (prune.store_data_sites != options.vm.fault_store_data) {
    throw std::invalid_argument(
        "prune report store_data_sites must match vm.fault_store_data");
  }
  if (options.site_stride > 1) {
    throw std::invalid_argument(
        "site_stride is a subsampling knob for exhaustive sweeps; the "
        "pruned audit extrapolates from pilots and cannot stride");
  }
  const vm::PredecodedProgram decoded(program);
  const bool fast_forward = options.ckpt_stride > 0 && !options.vm.timing &&
                            !options.vm.profile &&
                            options.vm.trace_limit == 0;
  vm::CheckpointSet ckpts;
  vm::Engine golden_engine(decoded, options.vm);
  std::vector<std::int32_t> site_pcs;
  golden_engine.set_site_pc_sink(&site_pcs);
  const vm::VmResult golden =
      fast_forward
          ? golden_engine.run_capturing(
                options.vm,
                static_cast<std::uint64_t>(options.ckpt_stride), ckpts)
          : golden_engine.run(options.vm, nullptr, 0);
  golden_engine.set_site_pc_sink(nullptr);
  if (!golden.ok()) {
    throw std::runtime_error(std::string("audit golden run failed: ") +
                             vm::exit_status_name(golden.status));
  }

  AuditReport report;
  report.sites = golden.fi_sites;
  report.prune.enabled = true;
  report.prune.static_sites = prune.sites.size();
  report.prune.classes = prune.classes.size();
  report.prune.dead_fraction_static = prune.dead_fraction();

  // Dynamic site -> (static record, temporal stratum). The golden site
  // map makes this exact: site_pcs[id] is the pc that registered dynamic
  // site id.
  const std::size_t nsites = static_cast<std::size_t>(golden.fi_sites);
  const std::size_t nbits = options.probe_bits.size();
  const detail::DynSiteMap dyn =
      detail::map_dynamic_sites(decoded, site_pcs, prune, golden.fi_sites);
  const std::vector<std::int32_t>& dyn_static = dyn.static_site;
  const std::vector<std::uint32_t>& dyn_stratum = dyn.stratum;

  // Serial pilot plan: walk probes in (site, probe-bit) order; the first
  // probe of each pilot key becomes the pilot. Deterministic and
  // jobs-invariant by construction.
  struct Pilot {
    std::uint64_t site = 0;
    int bit = 0;
  };
  std::vector<Pilot> pilots;
  std::unordered_map<std::uint64_t, std::uint32_t> pilot_by_key;
  std::vector<std::int32_t> probe_pilot(nsites * nbits, -1);
  for (std::size_t id = 0; id < nsites; ++id) {
    const std::int32_t s = dyn_static[id];
    for (std::size_t k = 0; k < nbits; ++k) {
      const int bit = options.probe_bits[k];
      const std::size_t probe = id * nbits + k;
      if (s < 0) {
        // No static record: sound fallback, inject this probe itself.
        probe_pilot[probe] = static_cast<std::int32_t>(pilots.size());
        pilots.push_back({id, bit});
        ++report.prune.unmatched_probes;
        continue;
      }
      const check::prune::PruneSite& site =
          prune.sites[static_cast<std::size_t>(s)];
      if (site.bit_dead(bit)) continue;  // stays -1: provably benign
      const std::uint64_t key = detail::pilot_key(
          site.class_id, bit % site.bit_space, dyn_stratum[id]);
      auto [it, inserted] = pilot_by_key.emplace(
          key, static_cast<std::uint32_t>(pilots.size()));
      if (inserted) pilots.push_back({id, bit});
      probe_pilot[probe] = static_cast<std::int32_t>(it->second);
    }
  }

  // Execute the pilots across the pool; per-pilot slots merge in pilot
  // order, so the report is identical for every jobs value.
  vm::VmOptions faulty = options.vm;
  faulty.max_steps = faulty_step_budget(golden.steps);
  std::vector<ProbeOutcome> outcomes(pilots.size(), ProbeOutcome::kBenign);
  std::vector<vm::FaultLanding> landings(pilots.size());
  ThreadPool pool(options.jobs);
  report.sites_per_worker.assign(static_cast<std::size_t>(pool.workers()), 0);
  std::vector<std::unique_ptr<vm::Engine>> engines(
      static_cast<std::size_t>(pool.workers()));
  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t width = batch_width(options.batch, options.vm);
  pool.parallel_for_indexed(
      pilots.size(), [&](int worker, std::size_t begin, std::size_t end) {
        report.sites_per_worker[static_cast<std::size_t>(worker)] +=
            end - begin;
        auto& engine = engines[static_cast<std::size_t>(worker)];
        if (engine == nullptr) {
          engine = std::make_unique<vm::Engine>(decoded, faulty);
        }
        const auto record = [&](std::size_t p, const vm::VmResult& run) {
          if (run.status == vm::ExitStatus::kDetected) {
            outcomes[p] = ProbeOutcome::kDetected;
          } else if (!run.ok()) {
            outcomes[p] = ProbeOutcome::kCrashed;
          } else if (run.output == golden.output) {
            outcomes[p] = ProbeOutcome::kBenign;
          } else {
            outcomes[p] = ProbeOutcome::kSdc;
          }
          // Landing coordinates are kept for every outcome: the
          // site_outcomes tally needs them for unmatched pilots, not
          // just the SDC escapes.
          if (run.fault_landing.has_value()) {
            landings[p] = *run.fault_landing;
          }
        };
        if (width <= 1) {
          for (std::size_t p = begin; p < end; ++p) {
            vm::FaultSpec fault;
            fault.site = pilots[p].site;
            fault.bit = pilots[p].bit;
            const vm::VmResult run =
                fast_forward ? engine->run_from(ckpts, faulty, &fault, 1)
                             : engine->run(faulty, &fault, 1);
            record(p, run);
          }
          return;
        }
        // Lockstep over the pilot plan. The plan walks dynamic sites in
        // ascending order, so consecutive pilots already share a prefix
        // window — no per-chunk sort is needed here.
        std::vector<vm::FaultSpec> group(width);
        std::vector<vm::Engine::BatchTrial> lanes(width);
        std::vector<vm::VmResult> runs(width);
        for (std::size_t base = begin; base < end; base += width) {
          const std::size_t n = std::min(width, end - base);
          for (std::size_t lane = 0; lane < n; ++lane) {
            group[lane].site = pilots[base + lane].site;
            group[lane].bit = pilots[base + lane].bit;
            lanes[lane].faults = &group[lane];
            lanes[lane].fault_count = 1;
          }
          engine->run_batch(fast_forward ? &ckpts : nullptr, faulty,
                            lanes.data(), n, runs.data());
          for (std::size_t lane = 0; lane < n; ++lane) {
            record(base + lane, runs[lane]);
          }
        }
      });
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.ckpt.stride = fast_forward ? static_cast<int>(ckpts.stride()) : 0;
  report.ckpt.checkpoints = ckpts.size();
  report.ckpt.snapshot_bytes = ckpts.snapshot_bytes();
  for (const auto& engine : engines) {
    if (engine != nullptr) report.ckpt.ff.merge(engine->stats());
  }

  // Extrapolate in probe order. Escape coordinates are exact — each
  // probe's own static record, not the pilot's — only the outcome is
  // inherited from the pilot.
  SiteOutcomeTally tally;
  for (std::size_t id = 0; id < nsites; ++id) {
    const std::int32_t s = dyn_static[id];
    for (std::size_t k = 0; k < nbits; ++k) {
      const int bit = options.probe_bits[k];
      const std::int32_t p = probe_pilot[id * nbits + k];
      const auto tally_probe = [&](ProbeOutcome outcome) {
        if (!options.site_outcomes) return;
        if (s >= 0) {
          const check::prune::PruneSite& site =
              prune.sites[static_cast<std::size_t>(s)];
          tally.add(
              program.functions[static_cast<std::size_t>(site.function)].name,
              site.block, site.inst, site.kind, outcome);
        } else if (p >= 0 &&
                   !landings[static_cast<std::size_t>(p)].function.empty()) {
          const vm::FaultLanding& landing =
              landings[static_cast<std::size_t>(p)];
          tally.add(landing.function, landing.block, landing.inst,
                    landing.kind, outcome);
        }
      };
      ++report.injections;
      if (p < 0) {
        ++report.benign;
        ++report.prune.dead_probes;
        tally_probe(ProbeOutcome::kBenign);
        continue;
      }
      tally_probe(outcomes[static_cast<std::size_t>(p)]);
      const bool is_pilot = pilots[static_cast<std::size_t>(p)].site == id &&
                            pilots[static_cast<std::size_t>(p)].bit == bit;
      if (!is_pilot) ++report.prune.extrapolated_probes;
      switch (outcomes[static_cast<std::size_t>(p)]) {
        case ProbeOutcome::kDetected:
          ++report.detected;
          break;
        case ProbeOutcome::kCrashed:
          ++report.crashed;
          break;
        case ProbeOutcome::kBenign:
          ++report.benign;
          break;
        case ProbeOutcome::kSdc: {
          AuditEscape escape;
          escape.site = id;
          escape.bit = bit;
          if (s >= 0) {
            const check::prune::PruneSite& site =
                prune.sites[static_cast<std::size_t>(s)];
            const auto& fn =
                program.functions[static_cast<std::size_t>(site.function)];
            const masm::AsmInst& inst =
                fn.blocks[static_cast<std::size_t>(site.block)]
                    .insts[static_cast<std::size_t>(site.inst)];
            escape.kind = site.kind;
            escape.origin = inst.origin;
            escape.op = inst.op;
            escape.function = fn.name;
            escape.block = site.block;
            escape.inst = site.inst;
          } else {
            const vm::FaultLanding& landing =
                landings[static_cast<std::size_t>(p)];
            escape.kind = landing.kind;
            escape.origin = landing.origin;
            escape.op = landing.op;
            escape.function = landing.function;
            escape.block = landing.block;
            escape.inst = landing.inst;
          }
          report.escapes.push_back(std::move(escape));
          break;
        }
      }
    }
  }
  report.prune.pilot_keys = pilots.size();
  report.prune.pilot_injections = pilots.size();
  report.prune.reduction =
      pilots.empty() ? 1.0
                     : static_cast<double>(report.injections) /
                           static_cast<double>(pilots.size());
  report.prune.pilots.reserve(pilots.size());
  for (std::size_t p = 0; p < pilots.size(); ++p) {
    report.prune.pilots.push_back({pilots[p].site, pilots[p].bit, outcomes[p]});
  }
  if (options.site_outcomes) report.site_outcomes = tally.take();
  return report;
}

}  // namespace

AuditReport audit_program(const masm::AsmProgram& program,
                          const AuditOptions& options) {
  if (options.prune != nullptr) return audit_pruned(program, options);
  const vm::PredecodedProgram decoded(program);

  const bool fast_forward = options.ckpt_stride > 0 && !options.vm.timing &&
                            !options.vm.profile &&
                            options.vm.trace_limit == 0;
  vm::CheckpointSet ckpts;

  vm::Engine golden_engine(decoded, options.vm);
  const vm::VmResult golden =
      fast_forward
          ? golden_engine.run_capturing(
                options.vm,
                static_cast<std::uint64_t>(options.ckpt_stride), ckpts)
          : golden_engine.run(options.vm, nullptr, 0);
  if (!golden.ok()) {
    throw std::runtime_error(std::string("audit golden run failed: ") +
                             vm::exit_status_name(golden.status));
  }
  AuditReport report;
  report.sites = golden.fi_sites;

  vm::VmOptions faulty = options.vm;
  faulty.max_steps = faulty_step_budget(golden.steps);

  // Strided site selection: slot i probes site i * stride. Stride 1 is
  // the exhaustive audit; larger strides keep the same per-probe
  // semantics over a deterministic subset of the site stream.
  const std::uint64_t stride =
      options.site_stride > 1 ? static_cast<std::uint64_t>(options.site_stride)
                              : 1;
  const std::size_t slots = static_cast<std::size_t>(
      golden.fi_sites == 0 ? 0 : (golden.fi_sites + stride - 1) / stride);

  // Every (site, bit) probe is independent: sweep the sites across the
  // pool into per-site partial reports, then merge them in site order so
  // the escape list comes out exactly as a serial sweep would produce it.
  struct SitePartial {
    std::uint64_t injections = 0;
    std::uint64_t detected = 0;
    std::uint64_t benign = 0;
    std::uint64_t crashed = 0;
    std::vector<AuditEscape> escapes;
    /// Every probe of a slot lands on the same static instruction (one
    /// dynamic site, one landing pc), so the slot carries one landing
    /// plus per-outcome counts for the site_outcomes tally.
    vm::FaultLanding landing;
    bool has_landing = false;
    std::array<std::uint64_t, kProbeOutcomeCount> outcome{};
  };
  std::vector<SitePartial> partials(slots);
  ThreadPool pool(options.jobs);
  report.sites_per_worker.assign(static_cast<std::size_t>(pool.workers()), 0);
  std::vector<std::unique_ptr<vm::Engine>> engines(
      static_cast<std::size_t>(pool.workers()));
  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t width = batch_width(options.batch, options.vm);
  pool.parallel_for_indexed(
      slots, [&](int worker, std::size_t begin, std::size_t end) {
        report.sites_per_worker[static_cast<std::size_t>(worker)] +=
            end - begin;
        auto& engine = engines[static_cast<std::size_t>(worker)];
        if (engine == nullptr) {
          engine = std::make_unique<vm::Engine>(decoded, faulty);
        }
        const auto record = [&](std::size_t slot, std::uint64_t site, int bit,
                                const vm::VmResult& run) {
          SitePartial& partial = partials[slot];
          ++partial.injections;
          ProbeOutcome outcome;
          if (run.status == vm::ExitStatus::kDetected) {
            outcome = ProbeOutcome::kDetected;
            ++partial.detected;
          } else if (!run.ok()) {
            outcome = ProbeOutcome::kCrashed;
            ++partial.crashed;
          } else if (run.output == golden.output) {
            outcome = ProbeOutcome::kBenign;
            ++partial.benign;
          } else {
            outcome = ProbeOutcome::kSdc;
            AuditEscape escape;
            escape.site = site;
            escape.bit = bit;
            if (run.fault_landing.has_value()) {
              escape.kind = run.fault_landing->kind;
              escape.origin = run.fault_landing->origin;
              escape.op = run.fault_landing->op;
              escape.function = run.fault_landing->function;
              escape.block = run.fault_landing->block;
              escape.inst = run.fault_landing->inst;
            }
            partial.escapes.push_back(std::move(escape));
          }
          if (options.site_outcomes && run.fault_landing.has_value()) {
            if (!partial.has_landing) {
              partial.landing = *run.fault_landing;
              partial.has_landing = true;
            }
            ++partial.outcome[static_cast<std::size_t>(outcome)];
          }
        };
        if (width <= 1) {
          for (std::size_t slot = begin; slot < end; ++slot) {
            const std::uint64_t site = slot * stride;
            for (int bit : options.probe_bits) {
              vm::FaultSpec fault;
              fault.site = site;
              fault.bit = bit;
              const vm::VmResult run =
                  fast_forward ? engine->run_from(ckpts, faulty, &fault, 1)
                               : engine->run(faulty, &fault, 1);
              record(slot, site, bit, run);
            }
          }
          return;
        }
        // Lockstep over the chunk's flattened (site, bit) probes. The
        // flattening walks sites in ascending order, so one batch's
        // lanes cluster on neighbouring sites and share most of the
        // fault-free prefix walk. Probes still record into their own
        // site's partial — the site-order merge below is unchanged.
        const std::size_t nbits = options.probe_bits.size();
        const std::size_t nprobes = (end - begin) * nbits;
        std::vector<vm::FaultSpec> group(width);
        std::vector<vm::Engine::BatchTrial> lanes(width);
        std::vector<vm::VmResult> runs(width);
        for (std::size_t base = 0; base < nprobes; base += width) {
          const std::size_t n = std::min(width, nprobes - base);
          for (std::size_t lane = 0; lane < n; ++lane) {
            const std::size_t probe = base + lane;
            group[lane].site = (begin + probe / nbits) * stride;
            group[lane].bit = options.probe_bits[probe % nbits];
            lanes[lane].faults = &group[lane];
            lanes[lane].fault_count = 1;
          }
          engine->run_batch(fast_forward ? &ckpts : nullptr, faulty,
                            lanes.data(), n, runs.data());
          for (std::size_t lane = 0; lane < n; ++lane) {
            const std::size_t probe = base + lane;
            const std::size_t slot = begin + probe / nbits;
            record(slot, slot * stride, options.probe_bits[probe % nbits],
                   runs[lane]);
          }
        }
      });
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.ckpt.stride = fast_forward ? static_cast<int>(ckpts.stride()) : 0;
  report.ckpt.checkpoints = ckpts.size();
  report.ckpt.snapshot_bytes = ckpts.snapshot_bytes();
  for (const auto& engine : engines) {
    if (engine != nullptr) report.ckpt.ff.merge(engine->stats());
  }

  // Merge in site order with one up-front reservation; the escape lists
  // splice over with bulk moves instead of element-by-element growth.
  std::size_t total_escapes = 0;
  for (const SitePartial& partial : partials) {
    total_escapes += partial.escapes.size();
  }
  report.escapes.reserve(total_escapes);
  for (SitePartial& partial : partials) {
    report.injections += partial.injections;
    report.detected += partial.detected;
    report.benign += partial.benign;
    report.crashed += partial.crashed;
    report.escapes.insert(report.escapes.end(),
                          std::make_move_iterator(partial.escapes.begin()),
                          std::make_move_iterator(partial.escapes.end()));
  }
  if (options.site_outcomes) {
    SiteOutcomeTally tally;
    for (const SitePartial& partial : partials) {
      if (!partial.has_landing) continue;
      for (int o = 0; o < kProbeOutcomeCount; ++o) {
        const std::uint64_t n = partial.outcome[static_cast<std::size_t>(o)];
        if (n == 0) continue;
        tally.add(partial.landing.function, partial.landing.block,
                  partial.landing.inst, partial.landing.kind,
                  static_cast<ProbeOutcome>(o), n);
      }
    }
    report.site_outcomes = tally.take();
  }
  return report;
}

}  // namespace ferrum::fault
