#include "fault/audit.h"

#include <chrono>
#include <stdexcept>

#include "fault/step_budget.h"
#include "support/parallel.h"

namespace ferrum::fault {

AuditReport audit_program(const masm::AsmProgram& program,
                          const AuditOptions& options) {
  const vm::VmResult golden = vm::run(program, options.vm);
  if (!golden.ok()) {
    throw std::runtime_error(std::string("audit golden run failed: ") +
                             vm::exit_status_name(golden.status));
  }
  AuditReport report;
  report.sites = golden.fi_sites;

  vm::VmOptions faulty = options.vm;
  faulty.max_steps = faulty_step_budget(golden.steps);

  // Every (site, bit) probe is independent: sweep the sites across the
  // pool into per-site partial reports, then merge them in site order so
  // the escape list comes out exactly as a serial sweep would produce it.
  struct SitePartial {
    std::uint64_t injections = 0;
    std::uint64_t detected = 0;
    std::uint64_t benign = 0;
    std::uint64_t crashed = 0;
    std::vector<AuditEscape> escapes;
  };
  std::vector<SitePartial> partials(
      static_cast<std::size_t>(golden.fi_sites));
  ThreadPool pool(options.jobs);
  report.sites_per_worker.assign(static_cast<std::size_t>(pool.workers()), 0);
  const auto wall_start = std::chrono::steady_clock::now();
  pool.parallel_for_indexed(
      static_cast<std::size_t>(golden.fi_sites),
      [&](int worker, std::size_t begin, std::size_t end) {
        report.sites_per_worker[static_cast<std::size_t>(worker)] +=
            end - begin;
        for (std::size_t site = begin; site < end; ++site) {
          SitePartial& partial = partials[site];
          for (int bit : options.probe_bits) {
            vm::FaultSpec fault;
            fault.site = site;
            fault.bit = bit;
            const vm::VmResult run = vm::run(program, faulty, &fault);
            ++partial.injections;
            if (run.status == vm::ExitStatus::kDetected) {
              ++partial.detected;
            } else if (!run.ok()) {
              ++partial.crashed;
            } else if (run.output == golden.output) {
              ++partial.benign;
            } else {
              AuditEscape escape;
              escape.site = site;
              escape.bit = bit;
              if (run.fault_landing.has_value()) {
                escape.kind = run.fault_landing->kind;
                escape.origin = run.fault_landing->origin;
                escape.op = run.fault_landing->op;
                escape.function = run.fault_landing->function;
                escape.block = run.fault_landing->block;
                escape.inst = run.fault_landing->inst;
              }
              partial.escapes.push_back(std::move(escape));
            }
          }
        }
      });
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  for (SitePartial& partial : partials) {
    report.injections += partial.injections;
    report.detected += partial.detected;
    report.benign += partial.benign;
    report.crashed += partial.crashed;
    for (AuditEscape& escape : partial.escapes) {
      report.escapes.push_back(std::move(escape));
    }
  }
  return report;
}

}  // namespace ferrum::fault
