#include "fault/audit.h"

#include <stdexcept>

namespace ferrum::fault {

AuditReport audit_program(const masm::AsmProgram& program,
                          const AuditOptions& options) {
  const vm::VmResult golden = vm::run(program, options.vm);
  if (!golden.ok()) {
    throw std::runtime_error(std::string("audit golden run failed: ") +
                             vm::exit_status_name(golden.status));
  }
  AuditReport report;
  report.sites = golden.fi_sites;

  vm::VmOptions faulty = options.vm;
  faulty.max_steps = golden.steps * 16 + 10'000;

  for (std::uint64_t site = 0; site < golden.fi_sites; ++site) {
    for (int bit : options.probe_bits) {
      vm::FaultSpec fault;
      fault.site = site;
      fault.bit = bit;
      const vm::VmResult run = vm::run(program, faulty, &fault);
      ++report.injections;
      if (run.status == vm::ExitStatus::kDetected) {
        ++report.detected;
      } else if (!run.ok()) {
        ++report.crashed;
      } else if (run.output == golden.output) {
        ++report.benign;
      } else {
        AuditEscape escape;
        escape.site = site;
        escape.bit = bit;
        if (run.fault_landing.has_value()) {
          escape.kind = run.fault_landing->kind;
          escape.origin = run.fault_landing->origin;
          escape.function = run.fault_landing->function;
        }
        report.escapes.push_back(std::move(escape));
      }
    }
  }
  return report;
}

}  // namespace ferrum::fault
