// Exhaustive coverage audit: injects one fault into EVERY dynamic
// fault-injection site of a program (for a set of probe bits) and reports
// whether any injection escaped as a silent data corruption. This is the
// mechanical verification of the paper's 100%-coverage claim — stronger
// than a sampled campaign, feasible for small programs.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "masm/masm.h"
#include "vm/engine.h"
#include "vm/vm.h"

namespace ferrum::check::prune {
struct PruneReport;
}

namespace ferrum::fault {

struct AuditOptions {
  /// Bit positions probed at each site (a spread across the word).
  std::vector<int> probe_bits = {0, 1, 17, 63};
  vm::VmOptions vm;
  /// Worker threads sweeping the sites (<= 0 selects hardware
  /// concurrency). Each (site, bit) probe is independent and the report
  /// reduces in site order, so the AuditReport — including the order of
  /// `escapes` — is identical for every jobs value.
  int jobs = 1;
  /// Golden-run checkpoint stride in dynamic FI sites (FERRUM_CKPT_STRIDE):
  /// each probe restores the nearest snapshot at-or-before its site. The
  /// audit is quadratic (sites x steps) when cold, so this is the knob
  /// that makes larger programs auditable. 0 disables fast-forwarding;
  /// the report is bit-identical either way.
  int ckpt_stride = 64;
  /// Lockstep batch width (FERRUM_BATCH): each worker hands `batch`
  /// (site, bit) probes at a time to vm::Engine::run_batch, which walks
  /// their shared fault-free prefix once and forks a journaled lane per
  /// probe. <= 1 keeps every probe on the scalar run/run_from path. The
  /// report is bit-identical for every width — the knob, like jobs and
  /// ckpt_stride, only moves wall-clock.
  int batch = 8;
  /// Probe only every Nth dynamic site (ids congruent to 0 mod N) — a
  /// deterministic subsample that keeps the exhaustive frame's exactness
  /// on the sites it does probe, for cross-validation harnesses that
  /// compare two sweeps over the identical strided frame at a fraction
  /// of the quadratic cost (bench/analysis_compose_accuracy at smoke
  /// scale). 1 probes every site; incompatible with prune mode.
  int site_stride = 1;
  /// Prune mode: a static liveness/equivalence report for this program
  /// (check::prune::prune_program, computed with store_data_sites ==
  /// vm.fault_store_data). Statically-dead (site, bit) probes are counted
  /// benign without injection; live probes are answered by one *pilot*
  /// injection per (equivalence class, effective bit, temporal stratum)
  /// and extrapolated with exact cardinality accounting. The top-level
  /// counters and escape list then *estimate* the exhaustive audit (same
  /// totals frame); AuditReport::prune records what actually ran.
  /// Deterministic and jobs-invariant, like the exhaustive sweep.
  const check::prune::PruneReport* prune = nullptr;
  /// Aggregate per-static-site outcome tallies into
  /// AuditReport::site_outcomes (keyed by the fault-landing coordinates
  /// the engine records at injection time). Off by default — the tally
  /// costs a map merge per audit. bench/analysis_flow_accuracy uses it
  /// for the precision denominator of the flow predictions.
  bool site_outcomes = false;
};

struct AuditEscape {
  std::uint64_t site = 0;
  int bit = 0;
  vm::FaultKind kind = vm::FaultKind::kGprWrite;
  masm::InstOrigin origin = masm::InstOrigin::kFromIR;
  masm::Op op = masm::Op::kMov;
  std::string function;
  /// Static (block, inst) coordinates of the landing instruction — the
  /// key used by bench/analysis_static_coverage to test containment in
  /// the ferrum-check unprotected-site set.
  int block = 0;
  int inst = 0;
};

/// Outcome category of one audit probe (the audit's four-way
/// classification: detector fired / abnormal exit / output matches golden
/// / silent data corruption).
enum class ProbeOutcome : std::uint8_t { kDetected, kCrashed, kBenign, kSdc };
constexpr int kProbeOutcomeCount = 4;

/// Probe-outcome tally of one *static* fault site across every dynamic
/// occurrence and probe bit the audit exercised. The coordinates match
/// AuditEscape (and check/prune/flow site records), so static analyses
/// can join on (function, block, inst, kind).
struct SiteOutcome {
  std::string function;
  int block = 0;
  int inst = 0;
  vm::FaultKind kind = vm::FaultKind::kGprWrite;
  /// Probe counts indexed by ProbeOutcome. In prune mode these are the
  /// class-extrapolated counts (the exhaustive-frame estimate), matching
  /// the report's top-level counters.
  std::array<std::uint64_t, kProbeOutcomeCount> count{};

  std::uint64_t total() const {
    return count[0] + count[1] + count[2] + count[3];
  }
  std::uint64_t of(ProbeOutcome outcome) const {
    return count[static_cast<std::size_t>(outcome)];
  }
};

/// One pilot injection executed by the prune mode: the (site, bit) probe
/// that represented its (equivalence class, effective bit, temporal
/// stratum) key, and the outcome every probe of that key inherited.
/// Deterministic — bench/analysis_prune_accuracy re-injects each pilot
/// and requires the identical outcome the exhaustive audit would see.
struct AuditPilot {
  std::uint64_t site = 0;
  int bit = 0;
  ProbeOutcome outcome = ProbeOutcome::kBenign;
};

/// What the prune mode actually executed vs. accounted. The temporal
/// stratum refines classes dynamically: occurrence n of a static site
/// falls in stratum floor(log2(n)), so a loop-resident site is piloted at
/// a logarithmic spread of iterations instead of once.
struct PruneAuditStats {
  bool enabled = false;
  std::uint64_t static_sites = 0;   // sites in the prune report
  std::uint64_t classes = 0;        // live static equivalence classes
  std::uint64_t pilot_keys = 0;     // (class, bit, stratum) pilots executed
  std::uint64_t pilot_injections = 0;  // injections actually run
  std::uint64_t dead_probes = 0;    // probes skipped as provably dead
  std::uint64_t extrapolated_probes = 0;  // probes answered by a pilot
  std::uint64_t unmatched_probes = 0;  // no static record: swept exhaustively
  double dead_fraction_static = 0.0;   // dead bits / total bits, static
  /// Exhaustive-equivalent injections / injections executed (>= 1).
  double reduction = 0.0;
  /// The pilots actually injected, in deterministic plan order (the JSON
  /// export carries only their count; the list is for cross-validation).
  std::vector<AuditPilot> pilots;
};

struct AuditReport {
  std::uint64_t sites = 0;
  std::uint64_t injections = 0;
  std::uint64_t detected = 0;
  std::uint64_t benign = 0;
  std::uint64_t crashed = 0;
  std::vector<AuditEscape> escapes;  // SDCs — empty means fully covered
  /// Prune-mode accounting (enabled == false for exhaustive audits).
  /// When enabled, the counters above are class-extrapolated estimates of
  /// the exhaustive audit; `injections` still counts every probe the
  /// exhaustive frame would perform, while prune.pilot_injections counts
  /// the runs that actually happened.
  PruneAuditStats prune;
  /// Per-static-site tallies (AuditOptions::site_outcomes; empty when
  /// off). Sorted by (function, block, inst, kind) — deterministic and
  /// jobs-invariant like the rest of the report.
  std::vector<SiteOutcome> site_outcomes;

  // --- Observability only (scheduling-dependent, NOT deterministic) ---
  /// Sites swept by each pool worker (index 0 = the calling thread).
  std::vector<std::uint64_t> sites_per_worker;
  /// Wall-clock seconds spent sweeping the sites.
  double wall_seconds = 0.0;
  /// Checkpoint/fast-forward accounting (stride-dependent, exported only
  /// in the wallclock section of BENCH artifacts).
  vm::CheckpointTelemetry ckpt;

  bool fully_covered() const { return escapes.empty(); }
};

/// Runs the audit. Throws std::runtime_error if the golden run fails.
AuditReport audit_program(const masm::AsmProgram& program,
                          const AuditOptions& options = {});

}  // namespace ferrum::fault
