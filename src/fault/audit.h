// Exhaustive coverage audit: injects one fault into EVERY dynamic
// fault-injection site of a program (for a set of probe bits) and reports
// whether any injection escaped as a silent data corruption. This is the
// mechanical verification of the paper's 100%-coverage claim — stronger
// than a sampled campaign, feasible for small programs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "masm/masm.h"
#include "vm/engine.h"
#include "vm/vm.h"

namespace ferrum::fault {

struct AuditOptions {
  /// Bit positions probed at each site (a spread across the word).
  std::vector<int> probe_bits = {0, 1, 17, 63};
  vm::VmOptions vm;
  /// Worker threads sweeping the sites (<= 0 selects hardware
  /// concurrency). Each (site, bit) probe is independent and the report
  /// reduces in site order, so the AuditReport — including the order of
  /// `escapes` — is identical for every jobs value.
  int jobs = 1;
  /// Golden-run checkpoint stride in dynamic FI sites (FERRUM_CKPT_STRIDE):
  /// each probe restores the nearest snapshot at-or-before its site. The
  /// audit is quadratic (sites x steps) when cold, so this is the knob
  /// that makes larger programs auditable. 0 disables fast-forwarding;
  /// the report is bit-identical either way.
  int ckpt_stride = 64;
};

struct AuditEscape {
  std::uint64_t site = 0;
  int bit = 0;
  vm::FaultKind kind = vm::FaultKind::kGprWrite;
  masm::InstOrigin origin = masm::InstOrigin::kFromIR;
  masm::Op op = masm::Op::kMov;
  std::string function;
  /// Static (block, inst) coordinates of the landing instruction — the
  /// key used by bench/analysis_static_coverage to test containment in
  /// the ferrum-check unprotected-site set.
  int block = 0;
  int inst = 0;
};

struct AuditReport {
  std::uint64_t sites = 0;
  std::uint64_t injections = 0;
  std::uint64_t detected = 0;
  std::uint64_t benign = 0;
  std::uint64_t crashed = 0;
  std::vector<AuditEscape> escapes;  // SDCs — empty means fully covered

  // --- Observability only (scheduling-dependent, NOT deterministic) ---
  /// Sites swept by each pool worker (index 0 = the calling thread).
  std::vector<std::uint64_t> sites_per_worker;
  /// Wall-clock seconds spent sweeping the sites.
  double wall_seconds = 0.0;
  /// Checkpoint/fast-forward accounting (stride-dependent, exported only
  /// in the wallclock section of BENCH artifacts).
  vm::CheckpointTelemetry ckpt;

  bool fully_covered() const { return escapes.empty(); }
};

/// Runs the audit. Throws std::runtime_error if the golden run fails.
AuditReport audit_program(const masm::AsmProgram& program,
                          const AuditOptions& options = {});

}  // namespace ferrum::fault
