#include "fault/cell.h"

#include "support/hash.h"
#include "support/str.h"

namespace ferrum::fault {

CampaignOptions to_campaign_options(const CampaignCell& cell) {
  CampaignOptions options;
  options.trials = cell.trials;
  options.seed = cell.seed;
  options.faults_per_run = cell.faults_per_run < 1 ? 1 : cell.faults_per_run;
  options.burst = cell.burst < 1 ? 1 : cell.burst;
  options.vm.fault_store_data = cell.store_data;
  options.max_half_width = cell.max_half_width;
  options.jobs = cell.jobs;
  options.ckpt_stride = cell.ckpt_stride;
  options.batch = cell.batch;
  if (cell.dispatch == "switch") {
    options.vm.dispatch = vm::DispatchMode::kSwitch;
  } else if (cell.dispatch == "threaded") {
    options.vm.dispatch = vm::DispatchMode::kThreaded;
  } else {
    options.vm.dispatch = vm::DispatchMode::kAuto;
  }
  return options;
}

std::string program_hash(const masm::AsmProgram& program) {
  return sha256_hex(masm::print(program));
}

std::string cell_key_material(const CampaignCell& cell,
                              const std::string& program_sha256) {
  // The technique is implicit in the program hash (the protected assembly
  // differs per technique), but it is kept explicit so two techniques
  // that happened to build identical assembly still read distinctly in
  // `ferrumc submit -v` output; it costs nothing because the mapping
  // technique -> program is a function.
  std::string material;
  material.reserve(256);
  material += "ferrum-cell-v2\n";
  material += "program_sha256=" + program_sha256 + "\n";
  material += "technique=" + cell.technique + "\n";
  material += "trials=" + std::to_string(cell.trials) + "\n";
  material += "seed=" + std::to_string(cell.seed) + "\n";
  material +=
      "faults_per_run=" +
      std::to_string(cell.faults_per_run < 1 ? 1 : cell.faults_per_run) +
      "\n";
  material += "burst=" + std::to_string(cell.burst < 1 ? 1 : cell.burst) +
              "\n";
  material += std::string("store_data=") + (cell.store_data ? "1" : "0") +
              "\n";
  material += std::string("prune=") + (cell.prune ? "1" : "0") + "\n";
  // Rendered via the canonical round-trip formatter so the same double
  // always prints the same line (0 for the disabled default).
  material += "max_half_width=" + format_double(cell.max_half_width) + "\n";
  return material;
}

std::string cell_key(const CampaignCell& cell,
                     const masm::AsmProgram& program) {
  return sha256_hex(cell_key_material(cell, program_hash(program)));
}

bool validate_cell(const CampaignCell& cell, std::string& error) {
  if (cell.program.empty() == cell.workload.empty()) {
    error = "cell needs exactly one of 'program' and 'workload'";
    return false;
  }
  if (cell.technique != "none" && cell.technique != "ir-eddi" &&
      cell.technique != "hybrid" && cell.technique != "ferrum") {
    error = "unknown technique '" + cell.technique + "'";
    return false;
  }
  if (cell.dispatch != "auto" && cell.dispatch != "switch" &&
      cell.dispatch != "threaded") {
    error = "unknown dispatch '" + cell.dispatch + "'";
    return false;
  }
  if (cell.trials < 1) {
    error = "trials must be >= 1";
    return false;
  }
  if (cell.scale < 1) {
    error = "scale must be >= 1";
    return false;
  }
  if (cell.prune && cell.faults_per_run > 1) {
    error = "prune mode requires faults_per_run == 1";
    return false;
  }
  // NaN fails both comparisons below, so it is rejected too.
  if (!(cell.max_half_width >= 0.0) || cell.max_half_width >= 0.5) {
    error = "max_half_width must be in [0, 0.5)";
    return false;
  }
  if (cell.prune && cell.max_half_width > 0.0) {
    error = "max_half_width cannot be combined with prune";
    return false;
  }
  if (cell.jobs < 1 || cell.batch < 1 || cell.ckpt_stride < 0 ||
      cell.faults_per_run < 1 || cell.burst < 1) {
    error = "engine knobs out of range";
    return false;
  }
  return true;
}

}  // namespace ferrum::fault
