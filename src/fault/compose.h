// Compositional campaigns (FastFlip-style): per-section error-
// propagation summaries composed along dataflow interfaces into whole-
// program outcome counts, with an incremental mode that re-injects only
// the sections whose code or entry states changed.
//
// Two modes over the same machinery:
//
//  * compose_audit — every dynamic FI site x probe bit, exactly the
//    frame fault::audit_program uses, but executed and accounted
//    section-by-section. The composition rule is a fold: sections
//    partition the dynamic site stream (checked, not assumed), each
//    probe's outcome is classified against the same golden run audit
//    uses, and the per-section counts sum to the whole-program counts —
//    so agreement with audit_program is 1.000 by construction, which
//    bench/analysis_compose_accuracy asserts on every workload x
//    technique.
//
//  * compose_campaign — sampled trials apportioned to sections by their
//    dynamic site counts (largest remainder), drawn from a per-section
//    seed over section-relative site indices, so a section's summary is
//    invariant under shifts of its absolute site ids — the property that
//    lets an unchanged section reuse its cached summary after an edit
//    moved it.
//
// Caching (incremental mode): when the lookup/store callbacks are set,
// each section's summary is stored under a `ferrum-section-v2` content
// key — section code SHA-256, a liveness-masked digest of the golden
// machine state at every one of the section's dynamic sites (see
// Engine::set_state_digest_sink), site/occurrence counts, the golden
// step budget, the probe/trial plan, and the adaptive stop rule. A warm hit is additionally
// validated against the summary's recorded dependencies — the SHA-256
// of every function the cached trials touched after their faults fired,
// and the golden state digest at every checkpoint boundary where a
// cached trial golden-rejoined — and any mismatch is a miss (false
// misses only, so staleness cannot leak in; soundness is modulo 64-bit
// digest collisions, argued in DESIGN.md).
//
// Layering: like audit's prune hook, this consumes the section map as
// plain data (check::sections::SectionMap, built by ferrum_check) and
// reaches the cache through std::function callbacks, so ferrum_fault
// links neither ferrum_check nor ferrum_service. JSON export lives in
// telemetry/export.h with the other report converters.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fault/adaptive.h"
#include "masm/masm.h"
#include "vm/engine.h"
#include "vm/vm.h"

namespace ferrum::check::sections {
struct SectionMap;
}

namespace ferrum::fault {

struct ComposeOptions {
  /// Bit positions probed at each dynamic site (compose_audit; matches
  /// the fault::AuditOptions default).
  std::vector<int> probe_bits = {0, 1, 17, 63};
  /// Target sampled-trial total (compose_campaign). The per-section
  /// allocation quantizes the per-site rate to a power of two so each
  /// section's trial count depends only on its own dynamic site count
  /// (an incrementality requirement); the composed total tracks this
  /// value but is not exactly it.
  std::uint64_t trials = 1000;
  std::uint64_t seed = 0xfe44;
  int burst = 1;
  /// Adaptive stop rule (compose_campaign only; compose_audit rejects a
  /// non-zero target — the exhaustive frame has no sampling error to
  /// bound). Each section evaluates the rule over its OWN canonical trial
  /// order at power-of-two boundaries, so per-section budgets shrink
  /// independently and a section's stopped count stays a pure function of
  /// its key material — the invariant that keeps early-stopped summaries
  /// cacheable. Key material (ferrum-section-v2).
  double max_half_width = 0.0;
  vm::VmOptions vm;
  /// Worker threads / checkpoint stride / lockstep batch width — result-
  /// invariant scheduling knobs, excluded from cache keys by contract
  /// (the same contract cell_key documents for whole-program cells).
  int jobs = 1;
  int ckpt_stride = 64;
  int batch = 8;
  /// Audit mode only: probe every Nth dynamic site (ids congruent to 0
  /// mod N), mirroring AuditOptions::site_stride so a strided compose
  /// and a strided audit sweep the identical frame and exact agreement
  /// stays meaningful at a fraction of the quadratic cost. 1 probes
  /// every site; > 1 is a validation-harness knob and rejects caching.
  int site_stride = 1;
  /// Content-addressed summary cache. Both must be set to enable
  /// caching; lookup returns the stored bytes or nullopt.
  std::function<std::optional<std::string>(const std::string& key)> lookup;
  std::function<void(const std::string& key, const std::string& bytes)> store;
};

/// One section's error-propagation summary: outcome counts over the
/// injections that land inside the section.
struct SectionSummary {
  int section = 0;
  std::string code_sha256;
  /// ferrum-section-v2 cache key (empty when caching is off).
  std::string key;
  std::uint64_t dynamic_sites = 0;
  std::uint64_t occurrences = 0;
  /// Trials the plan owed this section before adaptive stopping.
  std::uint64_t planned = 0;
  /// Injections this section accounts for (probes or sampled trials;
  /// == planned unless the stop rule fired). Deterministic: the stopped
  /// count is a function of the section's canonical trial order alone.
  std::uint64_t trials = 0;
  /// True when the stop rule fired strictly before `planned`.
  bool stopped_early = false;
  std::uint64_t detected = 0;
  std::uint64_t benign = 0;
  std::uint64_t crashed = 0;
  std::uint64_t sdc = 0;

  // --- Observability only (cache-state dependent, excluded from the
  // deterministic JSON so warm and cold runs export identical bytes) ---
  bool cached = false;
  std::uint64_t trials_executed = 0;
};

/// Whole-program composition of the per-section summaries.
struct ComposeReport {
  std::vector<SectionSummary> sections;  // section id order
  /// Golden-run dynamic site count (== sum of section dynamic_sites —
  /// the partition consistency check).
  std::uint64_t sites = 0;
  std::uint64_t golden_steps = 0;
  /// Composed whole-program counts: the fold over sections.
  std::uint64_t injections = 0;
  std::uint64_t detected = 0;
  std::uint64_t benign = 0;
  std::uint64_t crashed = 0;
  std::uint64_t sdc = 0;
  /// Composed adaptive accounting: planned/executed summed over sections,
  /// half-widths of the composed whole-program rates at the composed
  /// sample size. Deterministic (cache-state independent: a warm summary
  /// stores the same stopped count the cold run computed).
  AdaptiveStats adaptive;

  // --- Observability only ---
  std::uint64_t trials_executed = 0;  // engine trials actually run
  std::uint64_t warm_sections = 0;
  std::uint64_t cold_sections = 0;
  double wall_seconds = 0.0;
  vm::CheckpointTelemetry ckpt;
};

/// Inputs of one section's cache key. Exposed (with the material
/// renderer) so tests can pin the key format byte-for-byte.
struct SectionKeyInfo {
  std::string mode;  // "audit" | "campaign"
  std::string code_sha256;
  /// Hex fold of the golden state digests at the section's dynamic
  /// sites, in dynamic order.
  std::string state_digest;
  std::uint64_t dynamic_sites = 0;
  std::uint64_t occurrences = 0;
  /// Faulty trial step budget (faulty_step_budget(golden steps)) — ties
  /// the summary's timeout classification to the golden run length.
  std::uint64_t max_steps = 0;
  std::vector<int> probe_bits;  // audit mode
  std::uint64_t trials = 0;     // campaign mode: PLANNED budget (the
                                // stop rule consumes a prefix of it)
  std::uint64_t seed = 0;       // campaign mode
  int burst = 1;
  bool store_data = false;
  /// Adaptive stop rule target (campaign mode; 0 = full budget). Key
  /// material: a stopped summary covers a different trial prefix.
  double max_half_width = 0.0;
};

/// Versioned key material ("ferrum-section-v2\n...") and its SHA-256.
std::string section_key_material(const SectionKeyInfo& info);
std::string section_key(const SectionKeyInfo& info);

/// Exhaustive per-section audit + composition. Throws std::runtime_error
/// when the golden run fails or the sections do not partition the
/// dynamic site stream.
ComposeReport compose_audit(const masm::AsmProgram& program,
                            const check::sections::SectionMap& map,
                            const ComposeOptions& options = {});

/// Sampled per-section campaign + composition (the --incremental path).
ComposeReport compose_campaign(const masm::AsmProgram& program,
                               const check::sections::SectionMap& map,
                               const ComposeOptions& options = {});

}  // namespace ferrum::fault
