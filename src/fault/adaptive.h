// Deterministic confidence-interval early stopping for fault-injection
// campaigns. A campaign's outcome rates usually converge long before the
// planned trial budget is spent; this header defines the *stop rule* that
// lets a campaign quit early without giving up the repo's determinism
// contract.
//
// The rule: walk the canonical (pre-drawn) trial order and evaluate the
// 95% Wilson-score half-width of all four outcome rates (benign / SDC /
// detected / crash) only at power-of-two block boundaries of that order —
// min_trials, 2*min_trials, 4*min_trials, ... capped at the planned
// budget. The campaign stops at the first boundary where every half-width
// is <= the target. Because the trial order is fixed by the seed before
// any worker runs and boundaries depend only on (planned, rule), the
// stopped trial count is a pure function of (program, fault model, seed,
// target half-width): jobs, ckpt_stride, batch and dispatch cannot move
// it, so early-stopped results stay byte-identical across engine knobs —
// the same invariant the rest of the stack already holds.
#pragma once

#include <array>
#include <vector>

namespace ferrum::fault {

/// The stop rule an adaptive campaign evaluates at block boundaries.
/// Only `max_half_width` is caller-visible key material (it changes the
/// result, so cells record it in their cache key); `min_trials` and the
/// confidence level are constants of the rule version — changing them
/// means bumping the cell/section key version, not a new knob.
struct StopRule {
  /// Target half-width for every outcome-rate interval; <= 0 disables
  /// early stopping (the campaign runs its full planned budget).
  double max_half_width = 0.0;
  /// First evaluation boundary. Small enough that cheap cells stop
  /// quickly, large enough that the normal approximation behind the
  /// Wilson interval is respectable.
  int min_trials = 64;

  bool enabled() const { return max_half_width > 0.0; }
};

/// Half-width of the 95% Wilson score interval, after clamping the
/// interval to [0, 1] (matching wilson_interval in campaign.h).
/// Returns 0.5 for trials <= 0 (the vacuous [0, 1] interval).
double wilson_half_width(int successes, int trials);

/// Largest Wilson half-width over the four outcome rates given the
/// outcome counts of the first `trials` canonical trials.
double max_outcome_half_width(const std::array<int, 4>& counts, int trials);

/// The boundaries at which the stop rule is evaluated, in canonical trial
/// order: min_trials, 2*min_trials, ... doubled until the planned budget,
/// which is always the final boundary. Empty for planned <= 0.
std::vector<int> stop_boundaries(int planned, const StopRule& rule);

/// What adaptive stopping actually did, carried in CampaignResult.
/// Deterministic: every field is a function of the canonical trial
/// prefix, never of scheduling.
struct AdaptiveStats {
  bool enabled = false;
  double target_half_width = 0.0;
  int planned_trials = 0;
  /// Trials actually executed and reduced (== CampaignResult::trials()).
  int executed_trials = 0;
  /// True when the rule fired strictly before the planned budget.
  bool stopped_early = false;
  /// Wilson half-widths of the four outcome rates at the stop boundary,
  /// indexed by Outcome.
  std::array<double, 4> half_widths{};

  /// planned / executed (>= 1 when anything ran; 0 otherwise).
  double reduction() const {
    return executed_trials > 0
               ? static_cast<double>(planned_trials) / executed_trials
               : 0.0;
  }
};

}  // namespace ferrum::fault
