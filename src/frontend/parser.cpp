#include "frontend/parser.h"

#include "frontend/lexer.h"

namespace ferrum::minic {

std::string CType::to_string() const {
  std::string out;
  switch (base) {
    case Base::kVoid: out = "void"; break;
    case Base::kInt: out = "int"; break;
    case Base::kLong: out = "long"; break;
    case Base::kDouble: out = "double"; break;
  }
  if (is_pointer) out += "*";
  return out;
}

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagEngine& diags)
      : tokens_(std::move(tokens)), diags_(diags) {}

  TranslationUnit run() {
    TranslationUnit unit;
    while (!at(Tok::kEof)) {
      parse_top_level(unit);
      if (diags_.error_count() > 20) break;  // avoid error avalanches
    }
    return unit;
  }

 private:
  const Token& cur() const { return tokens_[pos_]; }
  const Token& ahead(std::size_t n) const {
    return tokens_[std::min(pos_ + n, tokens_.size() - 1)];
  }
  bool at(Tok kind) const { return cur().kind == kind; }
  Token take() { return tokens_[pos_ == tokens_.size() - 1 ? pos_ : pos_++]; }
  bool accept(Tok kind) {
    if (!at(kind)) return false;
    take();
    return true;
  }
  Token expect(Tok kind) {
    if (at(kind)) return take();
    diags_.error(cur().loc, std::string("expected '") + tok_name(kind) +
                                "', found '" + tok_name(cur().kind) + "'");
    return cur();
  }

  bool at_type() const {
    return at(Tok::kKwInt) || at(Tok::kKwLong) || at(Tok::kKwDouble) ||
           at(Tok::kKwVoid);
  }

  CType parse_type() {
    CType type;
    switch (cur().kind) {
      case Tok::kKwInt: type.base = CType::Base::kInt; break;
      case Tok::kKwLong: type.base = CType::Base::kLong; break;
      case Tok::kKwDouble: type.base = CType::Base::kDouble; break;
      case Tok::kKwVoid: type.base = CType::Base::kVoid; break;
      default:
        diags_.error(cur().loc, "expected a type name");
        return type;
    }
    take();
    if (accept(Tok::kStar)) type.is_pointer = true;
    return type;
  }

  void parse_top_level(TranslationUnit& unit) {
    if (!at_type()) {
      diags_.error(cur().loc, "expected a declaration");
      take();
      return;
    }
    CType type = parse_type();
    Token name = expect(Tok::kIdent);
    if (at(Tok::kLParen)) {
      unit.functions.push_back(parse_function(type, name));
    } else {
      parse_global(unit, type, name);
    }
  }

  FunctionDecl parse_function(CType return_type, const Token& name) {
    FunctionDecl fn;
    fn.return_type = return_type;
    fn.name = name.text;
    fn.loc = name.loc;
    expect(Tok::kLParen);
    if (!at(Tok::kRParen)) {
      do {
        ParamDecl param;
        param.type = parse_type();
        Token pname = expect(Tok::kIdent);
        param.name = pname.text;
        param.loc = pname.loc;
        if (param.type.base == CType::Base::kVoid && !param.type.is_pointer) {
          diags_.error(param.loc, "parameter cannot have type void");
        }
        fn.params.push_back(std::move(param));
      } while (accept(Tok::kComma));
    }
    expect(Tok::kRParen);
    fn.body = parse_block();
    return fn;
  }

  void parse_global(TranslationUnit& unit, CType type, const Token& name) {
    GlobalDecl global;
    global.type = type;
    global.name = name.text;
    global.loc = name.loc;
    if (accept(Tok::kLBracket)) {
      Token size = expect(Tok::kIntLit);
      global.array_size = size.int_value;
      expect(Tok::kRBracket);
      if (global.array_size <= 0) {
        diags_.error(size.loc, "array size must be positive");
      }
    }
    if (accept(Tok::kAssign)) {
      global.has_init = true;
      if (global.array_size > 0) {
        expect(Tok::kLBrace);
        if (!at(Tok::kRBrace)) {
          do {
            parse_global_init_value(global);
          } while (accept(Tok::kComma));
        }
        expect(Tok::kRBrace);
      } else {
        parse_global_init_value(global);
      }
    }
    expect(Tok::kSemi);
    unit.globals.push_back(std::move(global));
  }

  void parse_global_init_value(GlobalDecl& global) {
    bool negate = accept(Tok::kMinus);
    if (at(Tok::kFloatLit)) {
      Token lit = take();
      global.float_init.push_back(negate ? -lit.float_value
                                         : lit.float_value);
      global.int_init.push_back(0);
    } else {
      Token lit = expect(Tok::kIntLit);
      global.int_init.push_back(negate ? -lit.int_value : lit.int_value);
      global.float_init.push_back(0.0);
    }
  }

  // -------------------------------------------------------- statements --

  std::unique_ptr<Stmt> parse_block() {
    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::kBlock;
    block->loc = cur().loc;
    expect(Tok::kLBrace);
    while (!at(Tok::kRBrace) && !at(Tok::kEof)) {
      block->stmts.push_back(parse_stmt());
      if (diags_.error_count() > 20) break;
    }
    expect(Tok::kRBrace);
    return block;
  }

  std::unique_ptr<Stmt> parse_stmt() {
    if (at(Tok::kLBrace)) return parse_block();
    if (at_type()) return parse_decl_stmt();
    auto stmt = std::make_unique<Stmt>();
    stmt->loc = cur().loc;
    switch (cur().kind) {
      case Tok::kSemi:
        take();
        stmt->kind = StmtKind::kEmpty;
        return stmt;
      case Tok::kKwIf: {
        take();
        stmt->kind = StmtKind::kIf;
        expect(Tok::kLParen);
        stmt->cond = parse_expr();
        expect(Tok::kRParen);
        stmt->body = parse_stmt();
        if (accept(Tok::kKwElse)) stmt->else_body = parse_stmt();
        return stmt;
      }
      case Tok::kKwWhile: {
        take();
        stmt->kind = StmtKind::kWhile;
        expect(Tok::kLParen);
        stmt->cond = parse_expr();
        expect(Tok::kRParen);
        stmt->body = parse_stmt();
        return stmt;
      }
      case Tok::kKwFor: {
        take();
        stmt->kind = StmtKind::kFor;
        expect(Tok::kLParen);
        if (!at(Tok::kSemi)) {
          if (at_type()) {
            stmt->init_stmt = parse_decl_stmt();  // consumes ';'
          } else {
            auto init = std::make_unique<Stmt>();
            init->kind = StmtKind::kExpr;
            init->loc = cur().loc;
            init->expr = parse_expr();
            expect(Tok::kSemi);
            stmt->init_stmt = std::move(init);
          }
        } else {
          take();
        }
        if (!at(Tok::kSemi)) stmt->cond = parse_expr();
        expect(Tok::kSemi);
        if (!at(Tok::kRParen)) stmt->step = parse_expr();
        expect(Tok::kRParen);
        stmt->body = parse_stmt();
        return stmt;
      }
      case Tok::kKwReturn: {
        take();
        stmt->kind = StmtKind::kReturn;
        if (!at(Tok::kSemi)) stmt->expr = parse_expr();
        expect(Tok::kSemi);
        return stmt;
      }
      case Tok::kKwBreak:
        take();
        stmt->kind = StmtKind::kBreak;
        expect(Tok::kSemi);
        return stmt;
      case Tok::kKwContinue:
        take();
        stmt->kind = StmtKind::kContinue;
        expect(Tok::kSemi);
        return stmt;
      default: {
        stmt->kind = StmtKind::kExpr;
        stmt->expr = parse_expr();
        expect(Tok::kSemi);
        return stmt;
      }
    }
  }

  std::unique_ptr<Stmt> parse_decl_stmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kDecl;
    stmt->loc = cur().loc;
    stmt->decl_type = parse_type();
    Token name = expect(Tok::kIdent);
    stmt->decl_name = name.text;
    if (stmt->decl_type.base == CType::Base::kVoid &&
        !stmt->decl_type.is_pointer) {
      diags_.error(stmt->loc, "variable cannot have type void");
    }
    if (accept(Tok::kLBracket)) {
      Token size = expect(Tok::kIntLit);
      stmt->array_size = size.int_value;
      expect(Tok::kRBracket);
      if (stmt->array_size <= 0) {
        diags_.error(size.loc, "array size must be positive");
      }
    }
    if (accept(Tok::kAssign)) {
      if (stmt->array_size > 0) {
        diags_.error(cur().loc, "local array initialisers are not supported");
      }
      stmt->decl_init = parse_expr();
    }
    expect(Tok::kSemi);
    return stmt;
  }

  // ------------------------------------------------------- expressions --

  std::unique_ptr<Expr> parse_expr() { return parse_assign(); }

  std::unique_ptr<Expr> parse_assign() {
    auto lhs = parse_binary(0);
    AssignOp op;
    switch (cur().kind) {
      case Tok::kAssign: op = AssignOp::kPlain; break;
      case Tok::kPlusAssign: op = AssignOp::kAdd; break;
      case Tok::kMinusAssign: op = AssignOp::kSub; break;
      case Tok::kStarAssign: op = AssignOp::kMul; break;
      case Tok::kSlashAssign: op = AssignOp::kDiv; break;
      case Tok::kPercentAssign: op = AssignOp::kRem; break;
      default:
        return lhs;
    }
    Token token = take();
    auto rhs = parse_assign();  // right associative
    auto expr = std::make_unique<Expr>();
    expr->kind = ExprKind::kAssign;
    expr->loc = token.loc;
    expr->assign_op = op;
    expr->children.push_back(std::move(lhs));
    expr->children.push_back(std::move(rhs));
    return expr;
  }

  static int precedence_of(Tok kind) {
    switch (kind) {
      case Tok::kStar:
      case Tok::kSlash:
      case Tok::kPercent: return 10;
      case Tok::kPlus:
      case Tok::kMinus: return 9;
      case Tok::kShl:
      case Tok::kShr: return 8;
      case Tok::kLt:
      case Tok::kLe:
      case Tok::kGt:
      case Tok::kGe: return 7;
      case Tok::kEq:
      case Tok::kNe: return 6;
      case Tok::kAmp: return 5;
      case Tok::kCaret: return 4;
      case Tok::kPipe: return 3;
      case Tok::kAndAnd: return 2;
      case Tok::kOrOr: return 1;
      default: return -1;
    }
  }

  static BinaryOp binary_op_of(Tok kind) {
    switch (kind) {
      case Tok::kStar: return BinaryOp::kMul;
      case Tok::kSlash: return BinaryOp::kDiv;
      case Tok::kPercent: return BinaryOp::kRem;
      case Tok::kPlus: return BinaryOp::kAdd;
      case Tok::kMinus: return BinaryOp::kSub;
      case Tok::kShl: return BinaryOp::kShl;
      case Tok::kShr: return BinaryOp::kShr;
      case Tok::kLt: return BinaryOp::kLt;
      case Tok::kLe: return BinaryOp::kLe;
      case Tok::kGt: return BinaryOp::kGt;
      case Tok::kGe: return BinaryOp::kGe;
      case Tok::kEq: return BinaryOp::kEq;
      case Tok::kNe: return BinaryOp::kNe;
      case Tok::kAmp: return BinaryOp::kAnd;
      case Tok::kCaret: return BinaryOp::kXor;
      case Tok::kPipe: return BinaryOp::kOr;
      case Tok::kAndAnd: return BinaryOp::kLogicalAnd;
      case Tok::kOrOr: return BinaryOp::kLogicalOr;
      default: return BinaryOp::kAdd;
    }
  }

  std::unique_ptr<Expr> parse_binary(int min_precedence) {
    auto lhs = parse_unary();
    for (;;) {
      int precedence = precedence_of(cur().kind);
      if (precedence < min_precedence || precedence < 0) return lhs;
      Token op = take();
      auto rhs = parse_binary(precedence + 1);
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kBinary;
      expr->loc = op.loc;
      expr->binary_op = binary_op_of(op.kind);
      expr->children.push_back(std::move(lhs));
      expr->children.push_back(std::move(rhs));
      lhs = std::move(expr);
    }
  }

  std::unique_ptr<Expr> parse_unary() {
    auto make_unary = [&](UnaryOp op) {
      Token token = take();
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kUnary;
      expr->loc = token.loc;
      expr->unary_op = op;
      expr->children.push_back(parse_unary());
      return expr;
    };
    switch (cur().kind) {
      case Tok::kMinus: return make_unary(UnaryOp::kNeg);
      case Tok::kBang: return make_unary(UnaryOp::kNot);
      case Tok::kTilde: return make_unary(UnaryOp::kBitNot);
      case Tok::kPlusPlus: return make_unary(UnaryOp::kPreInc);
      case Tok::kMinusMinus: return make_unary(UnaryOp::kPreDec);
      case Tok::kLParen:
        // A cast: '(' type ')' unary — distinguished from parenthesised
        // expressions by the type keyword.
        if (ahead(1).kind == Tok::kKwInt || ahead(1).kind == Tok::kKwLong ||
            ahead(1).kind == Tok::kKwDouble ||
            ahead(1).kind == Tok::kKwVoid) {
          Token paren = take();
          CType type = parse_type();
          expect(Tok::kRParen);
          auto expr = std::make_unique<Expr>();
          expr->kind = ExprKind::kCast;
          expr->loc = paren.loc;
          expr->cast_type = type;
          expr->children.push_back(parse_unary());
          return expr;
        }
        return parse_postfix();
      default:
        return parse_postfix();
    }
  }

  std::unique_ptr<Expr> parse_postfix() {
    auto expr = parse_primary();
    for (;;) {
      if (at(Tok::kLBracket)) {
        Token token = take();
        auto index = std::make_unique<Expr>();
        index->kind = ExprKind::kIndex;
        index->loc = token.loc;
        index->children.push_back(std::move(expr));
        index->children.push_back(parse_expr());
        expect(Tok::kRBracket);
        expr = std::move(index);
      } else if (at(Tok::kPlusPlus) || at(Tok::kMinusMinus)) {
        Token token = take();
        auto post = std::make_unique<Expr>();
        post->kind = ExprKind::kPostfix;
        post->loc = token.loc;
        post->postfix_increment = token.kind == Tok::kPlusPlus;
        post->children.push_back(std::move(expr));
        expr = std::move(post);
      } else {
        return expr;
      }
    }
  }

  std::unique_ptr<Expr> parse_primary() {
    auto expr = std::make_unique<Expr>();
    expr->loc = cur().loc;
    switch (cur().kind) {
      case Tok::kIntLit: {
        Token lit = take();
        expr->kind = ExprKind::kIntLit;
        expr->int_value = lit.int_value;
        expr->is_long_literal = lit.text == "L";
        return expr;
      }
      case Tok::kFloatLit: {
        Token lit = take();
        expr->kind = ExprKind::kFloatLit;
        expr->float_value = lit.float_value;
        return expr;
      }
      case Tok::kIdent: {
        Token name = take();
        if (at(Tok::kLParen)) {
          take();
          expr->kind = ExprKind::kCall;
          expr->name = name.text;
          if (!at(Tok::kRParen)) {
            do {
              expr->children.push_back(parse_expr());
            } while (accept(Tok::kComma));
          }
          expect(Tok::kRParen);
          return expr;
        }
        expr->kind = ExprKind::kVarRef;
        expr->name = name.text;
        return expr;
      }
      case Tok::kLParen: {
        take();
        auto inner = parse_expr();
        expect(Tok::kRParen);
        return inner;
      }
      default:
        diags_.error(cur().loc, std::string("expected an expression, found '") +
                                    tok_name(cur().kind) + "'");
        take();
        expr->kind = ExprKind::kIntLit;
        return expr;
    }
  }

  std::vector<Token> tokens_;
  DiagEngine& diags_;
  std::size_t pos_ = 0;
};

}  // namespace

TranslationUnit parse(std::string_view source, DiagEngine& diags) {
  std::vector<Token> tokens = lex(source, diags);
  return Parser(std::move(tokens), diags).run();
}

}  // namespace ferrum::minic
