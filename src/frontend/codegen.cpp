#include "frontend/codegen.h"

#include <cstring>
#include <unordered_map>
#include <vector>

#include "frontend/parser.h"
#include "ir/builder.h"
#include "ir/verifier.h"

namespace ferrum::minic {

namespace {

using ir::BasicBlock;
using ir::Instruction;
using ir::IRBuilder;
using ir::Opcode;
using ir::Type;
using ir::TypeKind;
using ir::Value;

TypeKind scalar_kind_of(CType::Base base) {
  switch (base) {
    case CType::Base::kInt: return TypeKind::kI32;
    case CType::Base::kLong: return TypeKind::kI64;
    case CType::Base::kDouble: return TypeKind::kF64;
    case CType::Base::kVoid: return TypeKind::kVoid;
  }
  return TypeKind::kVoid;
}

Type ir_type_of(const CType& type) {
  if (type.is_pointer) return Type::ptr(scalar_kind_of(type.base));
  return Type{scalar_kind_of(type.base), TypeKind::kVoid};
}

/// Typed rvalue.
struct TypedValue {
  Value* value = nullptr;
  CType type;
};

/// What a name refers to.
struct VarInfo {
  enum class Kind { kScalarSlot, kArray, kPtrParam } kind = Kind::kScalarSlot;
  Value* value = nullptr;  // slot pointer / array pointer / argument
  CType type;              // scalar type, array element type, or pointer type
};

class CodeGen {
 public:
  CodeGen(const TranslationUnit& unit, DiagEngine& diags)
      : unit_(unit), diags_(diags), module_(std::make_unique<ir::Module>()),
        builder_(*module_) {}

  std::unique_ptr<ir::Module> run() {
    declare_globals();
    declare_functions();
    for (const FunctionDecl& fn : unit_.functions) gen_function(fn);
    return std::move(module_);
  }

 private:
  void error(SourceLoc loc, std::string message) {
    diags_.error(loc, std::move(message));
  }

  void declare_globals() {
    for (const GlobalDecl& decl : unit_.globals) {
      if (decl.type.is_pointer) {
        error(decl.loc, "global pointers are not supported");
        continue;
      }
      const std::int64_t count = decl.array_size > 0 ? decl.array_size : 1;
      ir::GlobalVar* global = module_->add_global(
          scalar_kind_of(decl.type.base), count, decl.name);
      if (decl.has_init) {
        for (std::size_t i = 0; i < decl.int_init.size(); ++i) {
          std::uint64_t raw = 0;
          if (decl.type.base == CType::Base::kDouble) {
            double value = decl.float_init[i] != 0.0
                               ? decl.float_init[i]
                               : static_cast<double>(decl.int_init[i]);
            std::memcpy(&raw, &value, sizeof(raw));
          } else {
            raw = static_cast<std::uint64_t>(
                decl.int_init[i] != 0
                    ? decl.int_init[i]
                    : static_cast<std::int64_t>(decl.float_init[i]));
          }
          global->init.push_back(raw);
        }
      }
      VarInfo info;
      info.kind = decl.array_size > 0 ? VarInfo::Kind::kArray
                                      : VarInfo::Kind::kScalarSlot;
      info.value = global;
      info.type = decl.type;
      global_scope_[decl.name] = info;
    }
  }

  void declare_functions() {
    for (const FunctionDecl& decl : unit_.functions) {
      if (module_->find_function(decl.name) != nullptr) {
        error(decl.loc, "redefinition of function '" + decl.name + "'");
        continue;
      }
      ir::Function* fn =
          module_->add_function(decl.name, ir_type_of(decl.return_type));
      for (const ParamDecl& param : decl.params) {
        fn->add_arg(ir_type_of(param.type), param.name);
      }
    }
    // Builtins are declared lazily on first call; see gen_call.
  }

  // ------------------------------------------------------------ function --

  void gen_function(const FunctionDecl& decl) {
    ir::Function* fn = module_->find_function(decl.name);
    if (fn == nullptr || fn->is_declaration() == false) {
      // Redefinition already reported, or body already generated.
      if (fn != nullptr && !fn->is_declaration()) return;
    }
    current_fn_ = fn;
    current_decl_ = &decl;
    entry_ = fn->add_block("entry");
    alloca_count_ = 0;
    builder_.set_insert_point(entry_);
    scopes_.clear();
    scopes_.emplace_back();
    loop_stack_.clear();

    // Scalar arguments are copied to addressable slots (the clang -O0
    // a.addr pattern from the paper's Fig 2); pointer arguments stay SSA.
    for (std::size_t i = 0; i < decl.params.size(); ++i) {
      const ParamDecl& param = decl.params[i];
      ir::Argument* arg = fn->args()[i].get();
      VarInfo info;
      info.type = param.type;
      if (param.type.is_pointer) {
        info.kind = VarInfo::Kind::kPtrParam;
        info.value = arg;
      } else {
        info.kind = VarInfo::Kind::kScalarSlot;
        Instruction* slot = make_alloca(scalar_kind_of(param.type.base), 1);
        builder_.create_store(arg, slot);
        info.value = slot;
      }
      if (!declare(param.name, info)) {
        error(param.loc, "duplicate parameter '" + param.name + "'");
      }
    }

    gen_stmt(*decl.body);

    // Close every open block with a default return, and give empty blocks
    // a terminator so the verifier's invariants hold.
    for (const auto& block : fn->blocks()) {
      if (block->terminator() == nullptr) {
        builder_.set_insert_point(block.get());
        emit_default_return();
      }
    }
    current_fn_ = nullptr;
    current_decl_ = nullptr;
  }

  void emit_default_return() {
    const Type ret = current_fn_->return_type();
    if (ret.is_void()) {
      builder_.create_ret_void();
    } else if (ret.is_float()) {
      builder_.create_ret(module_->const_f64(0.0));
    } else {
      builder_.create_ret(module_->const_int(ret, 0));
    }
  }

  /// Creates an alloca in the entry block, before any non-alloca code.
  Instruction* make_alloca(TypeKind elem, std::int64_t count) {
    auto inst = std::make_unique<Instruction>(Opcode::kAlloca,
                                              Type::ptr(elem));
    inst->alloca_elem = elem;
    inst->alloca_count = count;
    return entry_->insert(alloca_count_++, std::move(inst));
  }

  // --------------------------------------------------------------- scope --

  bool declare(const std::string& name, const VarInfo& info) {
    auto [it, inserted] = scopes_.back().emplace(name, info);
    (void)it;
    return inserted;
  }

  const VarInfo* lookup(const std::string& name) const {
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
      auto it = scope->find(name);
      if (it != scope->end()) return &it->second;
    }
    auto it = global_scope_.find(name);
    return it != global_scope_.end() ? &it->second : nullptr;
  }

  // ---------------------------------------------------------- statements --

  void gen_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kBlock: {
        scopes_.emplace_back();
        for (const auto& child : stmt.stmts) gen_stmt(*child);
        scopes_.pop_back();
        break;
      }
      case StmtKind::kDecl: gen_decl(stmt); break;
      case StmtKind::kExpr: gen_expr(*stmt.expr); break;
      case StmtKind::kIf: gen_if(stmt); break;
      case StmtKind::kWhile: gen_while(stmt); break;
      case StmtKind::kFor: gen_for(stmt); break;
      case StmtKind::kReturn: gen_return(stmt); break;
      case StmtKind::kBreak:
      case StmtKind::kContinue: {
        if (loop_stack_.empty()) {
          error(stmt.loc, stmt.kind == StmtKind::kBreak
                              ? "break outside a loop"
                              : "continue outside a loop");
          break;
        }
        BasicBlock* target = stmt.kind == StmtKind::kBreak
                                 ? loop_stack_.back().break_target
                                 : loop_stack_.back().continue_target;
        builder_.create_br(target);
        start_block(current_fn_->add_block("dead"));
        break;
      }
      case StmtKind::kEmpty: break;
    }
  }

  void start_block(BasicBlock* block) { builder_.set_insert_point(block); }

  void gen_decl(const Stmt& stmt) {
    if (stmt.decl_type.is_pointer) {
      error(stmt.loc, "pointer local variables are not supported; pass "
                      "pointers as parameters");
      return;
    }
    VarInfo info;
    info.type = stmt.decl_type;
    if (stmt.array_size > 0) {
      info.kind = VarInfo::Kind::kArray;
      info.value = make_alloca(scalar_kind_of(stmt.decl_type.base),
                               stmt.array_size);
    } else {
      info.kind = VarInfo::Kind::kScalarSlot;
      info.value = make_alloca(scalar_kind_of(stmt.decl_type.base), 1);
      if (stmt.decl_init != nullptr) {
        TypedValue init = gen_expr(*stmt.decl_init);
        if (init.value != nullptr) {
          init = convert(init, stmt.decl_type, stmt.loc);
          builder_.create_store(init.value, info.value);
        }
      }
    }
    if (!declare(stmt.decl_name, info)) {
      error(stmt.loc, "redeclaration of '" + stmt.decl_name + "'");
    }
  }

  void gen_if(const Stmt& stmt) {
    Value* cond = gen_condition(*stmt.cond);
    BasicBlock* then_bb = current_fn_->add_block("if.then");
    BasicBlock* merge_bb = current_fn_->add_block("if.end");
    BasicBlock* else_bb =
        stmt.else_body ? current_fn_->add_block("if.else") : merge_bb;
    builder_.create_cond_br(cond, then_bb, else_bb);

    start_block(then_bb);
    gen_stmt(*stmt.body);
    builder_.create_br(merge_bb);
    if (stmt.else_body) {
      start_block(else_bb);
      gen_stmt(*stmt.else_body);
      builder_.create_br(merge_bb);
    }
    start_block(merge_bb);
  }

  void gen_while(const Stmt& stmt) {
    BasicBlock* cond_bb = current_fn_->add_block("while.cond");
    BasicBlock* body_bb = current_fn_->add_block("while.body");
    BasicBlock* exit_bb = current_fn_->add_block("while.end");
    builder_.create_br(cond_bb);

    start_block(cond_bb);
    Value* cond = gen_condition(*stmt.cond);
    builder_.create_cond_br(cond, body_bb, exit_bb);

    loop_stack_.push_back({exit_bb, cond_bb});
    start_block(body_bb);
    gen_stmt(*stmt.body);
    builder_.create_br(cond_bb);
    loop_stack_.pop_back();

    start_block(exit_bb);
  }

  void gen_for(const Stmt& stmt) {
    scopes_.emplace_back();  // scope for the induction variable
    if (stmt.init_stmt) gen_stmt(*stmt.init_stmt);
    BasicBlock* cond_bb = current_fn_->add_block("for.cond");
    BasicBlock* body_bb = current_fn_->add_block("for.body");
    BasicBlock* step_bb = current_fn_->add_block("for.step");
    BasicBlock* exit_bb = current_fn_->add_block("for.end");
    builder_.create_br(cond_bb);

    start_block(cond_bb);
    if (stmt.cond) {
      Value* cond = gen_condition(*stmt.cond);
      builder_.create_cond_br(cond, body_bb, exit_bb);
    } else {
      builder_.create_br(body_bb);
    }

    loop_stack_.push_back({exit_bb, step_bb});
    start_block(body_bb);
    gen_stmt(*stmt.body);
    builder_.create_br(step_bb);
    loop_stack_.pop_back();

    start_block(step_bb);
    if (stmt.step) gen_expr(*stmt.step);
    builder_.create_br(cond_bb);

    start_block(exit_bb);
    scopes_.pop_back();
  }

  void gen_return(const Stmt& stmt) {
    const Type ret = current_fn_->return_type();
    if (stmt.expr == nullptr) {
      if (!ret.is_void()) {
        error(stmt.loc, "non-void function must return a value");
        emit_default_return();
      } else {
        builder_.create_ret_void();
      }
    } else {
      TypedValue value = gen_expr(*stmt.expr);
      if (ret.is_void()) {
        error(stmt.loc, "void function cannot return a value");
        builder_.create_ret_void();
      } else if (value.value != nullptr) {
        value = convert(value, current_decl_->return_type, stmt.loc);
        builder_.create_ret(value.value);
      } else {
        emit_default_return();
      }
    }
    start_block(current_fn_->add_block("dead"));
  }

  // --------------------------------------------------------- expressions --

  /// Evaluates an expression as a branch condition: != 0 as i1. Plain
  /// comparisons skip the zext-to-int round trip and yield their i1
  /// directly (the clang -O0 pattern that enables cmp+jcc fusion).
  Value* gen_condition(const Expr& expr) {
    if (expr.kind == ExprKind::kBinary) {
      switch (expr.binary_op) {
        case BinaryOp::kLt: case BinaryOp::kLe: case BinaryOp::kGt:
        case BinaryOp::kGe: case BinaryOp::kEq: case BinaryOp::kNe: {
          TypedValue lhs = gen_expr(*expr.children[0]);
          TypedValue rhs = gen_expr(*expr.children[1]);
          if (lhs.value != nullptr && rhs.value != nullptr &&
              lhs.type.is_arithmetic() && rhs.type.is_arithmetic()) {
            const CType common = common_type(lhs.type, rhs.type);
            lhs = convert(lhs, common, expr.loc);
            rhs = convert(rhs, common, expr.loc);
            ir::CmpPred pred;
            switch (expr.binary_op) {
              case BinaryOp::kLt: pred = ir::CmpPred::kLt; break;
              case BinaryOp::kLe: pred = ir::CmpPred::kLe; break;
              case BinaryOp::kGt: pred = ir::CmpPred::kGt; break;
              case BinaryOp::kGe: pred = ir::CmpPred::kGe; break;
              case BinaryOp::kEq: pred = ir::CmpPred::kEq; break;
              default: pred = ir::CmpPred::kNe; break;
            }
            return common.is_double()
                       ? builder_.create_fcmp(pred, lhs.value, rhs.value)
                       : builder_.create_icmp(pred, lhs.value, rhs.value);
          }
          // Fall through to the generic path on error.
          break;
        }
        default:
          break;
      }
    }
    TypedValue value = gen_expr(expr);
    if (value.value == nullptr) return module_->const_i1(false);
    if (value.type.is_double()) {
      return builder_.create_fcmp(ir::CmpPred::kNe, value.value,
                                  module_->const_f64(0.0));
    }
    if (value.type.is_pointer) {
      error(expr.loc, "pointer used as a condition");
      return module_->const_i1(false);
    }
    return builder_.create_icmp(
        ir::CmpPred::kNe, value.value,
        module_->const_int(value.value->type(), 0));
  }

  TypedValue gen_expr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kIntLit:
        if (expr.is_long_literal) {
          return {module_->const_i64(expr.int_value), CType::long_type()};
        }
        return {module_->const_i32(static_cast<std::int32_t>(expr.int_value)),
                CType::int_type()};
      case ExprKind::kFloatLit:
        return {module_->const_f64(expr.float_value), CType::double_type()};
      case ExprKind::kVarRef: return gen_var_ref(expr);
      case ExprKind::kUnary: return gen_unary(expr);
      case ExprKind::kPostfix: return gen_postfix(expr);
      case ExprKind::kBinary: return gen_binary(expr);
      case ExprKind::kAssign: return gen_assign(expr);
      case ExprKind::kIndex: {
        auto [ptr, elem_type] = gen_lvalue(expr);
        if (ptr == nullptr) return {};
        return {builder_.create_load(ptr), elem_type};
      }
      case ExprKind::kCall: return gen_call(expr);
      case ExprKind::kCast: {
        TypedValue value = gen_expr(*expr.children[0]);
        if (value.value == nullptr) return {};
        if (expr.cast_type.is_pointer ||
            expr.cast_type.base == CType::Base::kVoid) {
          error(expr.loc, "unsupported cast target " +
                              expr.cast_type.to_string());
          return {};
        }
        return convert(value, expr.cast_type, expr.loc);
      }
    }
    return {};
  }

  TypedValue gen_var_ref(const Expr& expr) {
    const VarInfo* info = lookup(expr.name);
    if (info == nullptr) {
      error(expr.loc, "use of undeclared identifier '" + expr.name + "'");
      return {};
    }
    switch (info->kind) {
      case VarInfo::Kind::kScalarSlot:
        return {builder_.create_load(info->value), info->type};
      case VarInfo::Kind::kArray:
        return {info->value, CType::pointer_to(info->type.base)};
      case VarInfo::Kind::kPtrParam:
        return {info->value, info->type};
    }
    return {};
  }

  /// Address of an assignable location: scalar variable or indexed element.
  std::pair<Value*, CType> gen_lvalue(const Expr& expr) {
    if (expr.kind == ExprKind::kVarRef) {
      const VarInfo* info = lookup(expr.name);
      if (info == nullptr) {
        error(expr.loc, "use of undeclared identifier '" + expr.name + "'");
        return {nullptr, {}};
      }
      if (info->kind != VarInfo::Kind::kScalarSlot) {
        error(expr.loc, "'" + expr.name + "' is not assignable");
        return {nullptr, {}};
      }
      return {info->value, info->type};
    }
    if (expr.kind == ExprKind::kIndex) {
      TypedValue base = gen_expr(*expr.children[0]);
      TypedValue index = gen_expr(*expr.children[1]);
      if (base.value == nullptr || index.value == nullptr) return {nullptr, {}};
      if (!base.type.is_pointer) {
        error(expr.loc, "subscripted value is not a pointer or array");
        return {nullptr, {}};
      }
      if (!index.type.is_integer()) {
        error(expr.loc, "array subscript is not an integer");
        return {nullptr, {}};
      }
      index = convert(index, CType::long_type(), expr.loc);
      Value* gep = builder_.create_gep(base.value, index.value);
      return {gep, CType{base.type.base, false}};
    }
    error(expr.loc, "expression is not assignable");
    return {nullptr, {}};
  }

  TypedValue gen_unary(const Expr& expr) {
    if (expr.unary_op == UnaryOp::kPreInc ||
        expr.unary_op == UnaryOp::kPreDec) {
      return gen_incdec(*expr.children[0], expr.unary_op == UnaryOp::kPreInc,
                        /*return_old=*/false, expr.loc);
    }
    TypedValue value = gen_expr(*expr.children[0]);
    if (value.value == nullptr) return {};
    switch (expr.unary_op) {
      case UnaryOp::kNeg:
        if (value.type.is_double()) {
          return {builder_.create_fsub(module_->const_f64(0.0), value.value),
                  value.type};
        }
        if (!value.type.is_integer()) break;
        return {builder_.create_sub(
                    module_->const_int(value.value->type(), 0), value.value),
                value.type};
      case UnaryOp::kNot: {
        Value* is_zero = nullptr;
        if (value.type.is_double()) {
          is_zero = builder_.create_fcmp(ir::CmpPred::kEq, value.value,
                                         module_->const_f64(0.0));
        } else if (value.type.is_integer()) {
          is_zero = builder_.create_icmp(
              ir::CmpPred::kEq, value.value,
              module_->const_int(value.value->type(), 0));
        } else {
          break;
        }
        return {builder_.create_zext(is_zero, Type::i32()),
                CType::int_type()};
      }
      case UnaryOp::kBitNot:
        if (!value.type.is_integer()) break;
        return {builder_.create_binary(
                    Opcode::kXor, value.value,
                    module_->const_int(value.value->type(), -1)),
                value.type};
      default: break;
    }
    error(expr.loc, "invalid operand to unary operator");
    return {};
  }

  TypedValue gen_postfix(const Expr& expr) {
    return gen_incdec(*expr.children[0], expr.postfix_increment,
                      /*return_old=*/true, expr.loc);
  }

  TypedValue gen_incdec(const Expr& target, bool increment, bool return_old,
                        SourceLoc loc) {
    auto [ptr, type] = gen_lvalue(target);
    if (ptr == nullptr) return {};
    if (!type.is_arithmetic()) {
      error(loc, "++/-- requires an arithmetic variable");
      return {};
    }
    Value* old_value = builder_.create_load(ptr);
    Value* new_value = nullptr;
    if (type.is_double()) {
      Value* one = module_->const_f64(1.0);
      new_value = increment ? builder_.create_fadd(old_value, one)
                            : builder_.create_fsub(old_value, one);
    } else {
      Value* one = module_->const_int(old_value->type(), 1);
      new_value = increment ? builder_.create_add(old_value, one)
                            : builder_.create_sub(old_value, one);
    }
    builder_.create_store(new_value, ptr);
    return {return_old ? old_value : new_value, type};
  }

  TypedValue gen_assign(const Expr& expr) {
    auto [ptr, type] = gen_lvalue(*expr.children[0]);
    TypedValue rhs = gen_expr(*expr.children[1]);
    if (ptr == nullptr || rhs.value == nullptr) return {};
    TypedValue result;
    if (expr.assign_op == AssignOp::kPlain) {
      result = convert(rhs, type, expr.loc);
    } else {
      TypedValue lhs{builder_.create_load(ptr), type};
      BinaryOp op = BinaryOp::kAdd;
      switch (expr.assign_op) {
        case AssignOp::kAdd: op = BinaryOp::kAdd; break;
        case AssignOp::kSub: op = BinaryOp::kSub; break;
        case AssignOp::kMul: op = BinaryOp::kMul; break;
        case AssignOp::kDiv: op = BinaryOp::kDiv; break;
        case AssignOp::kRem: op = BinaryOp::kRem; break;
        case AssignOp::kPlain: break;
      }
      TypedValue combined = gen_arith(op, lhs, rhs, expr.loc);
      if (combined.value == nullptr) return {};
      result = convert(combined, type, expr.loc);
    }
    if (result.value == nullptr) return {};
    builder_.create_store(result.value, ptr);
    return result;
  }

  TypedValue gen_binary(const Expr& expr) {
    if (expr.binary_op == BinaryOp::kLogicalAnd ||
        expr.binary_op == BinaryOp::kLogicalOr) {
      return gen_logical(expr);
    }
    TypedValue lhs = gen_expr(*expr.children[0]);
    TypedValue rhs = gen_expr(*expr.children[1]);
    if (lhs.value == nullptr || rhs.value == nullptr) return {};
    switch (expr.binary_op) {
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
      case BinaryOp::kEq:
      case BinaryOp::kNe:
        return gen_compare(expr.binary_op, lhs, rhs, expr.loc);
      default:
        return gen_arith(expr.binary_op, lhs, rhs, expr.loc);
    }
  }

  TypedValue gen_arith(BinaryOp op, TypedValue lhs, TypedValue rhs,
                       SourceLoc loc) {
    // Pointer arithmetic: ptr ± integer lowers to gep.
    if (lhs.type.is_pointer &&
        (op == BinaryOp::kAdd || op == BinaryOp::kSub)) {
      if (!rhs.type.is_integer()) {
        error(loc, "pointer arithmetic requires an integer offset");
        return {};
      }
      TypedValue index = convert(rhs, CType::long_type(), loc);
      Value* offset = index.value;
      if (op == BinaryOp::kSub) {
        offset = builder_.create_sub(module_->const_i64(0), offset);
      }
      return {builder_.create_gep(lhs.value, offset), lhs.type};
    }
    if (!lhs.type.is_arithmetic() || !rhs.type.is_arithmetic()) {
      error(loc, "invalid operands to binary operator");
      return {};
    }
    const CType common = common_type(lhs.type, rhs.type);
    const bool int_only = op == BinaryOp::kRem || op == BinaryOp::kShl ||
                          op == BinaryOp::kShr || op == BinaryOp::kAnd ||
                          op == BinaryOp::kOr || op == BinaryOp::kXor;
    if (int_only && common.is_double()) {
      error(loc, "operator requires integer operands");
      return {};
    }
    lhs = convert(lhs, common, loc);
    rhs = convert(rhs, common, loc);
    if (lhs.value == nullptr || rhs.value == nullptr) return {};
    Opcode opcode;
    if (common.is_double()) {
      switch (op) {
        case BinaryOp::kAdd: opcode = Opcode::kFAdd; break;
        case BinaryOp::kSub: opcode = Opcode::kFSub; break;
        case BinaryOp::kMul: opcode = Opcode::kFMul; break;
        case BinaryOp::kDiv: opcode = Opcode::kFDiv; break;
        default:
          error(loc, "invalid floating-point operator");
          return {};
      }
    } else {
      switch (op) {
        case BinaryOp::kAdd: opcode = Opcode::kAdd; break;
        case BinaryOp::kSub: opcode = Opcode::kSub; break;
        case BinaryOp::kMul: opcode = Opcode::kMul; break;
        case BinaryOp::kDiv: opcode = Opcode::kSDiv; break;
        case BinaryOp::kRem: opcode = Opcode::kSRem; break;
        case BinaryOp::kShl: opcode = Opcode::kShl; break;
        case BinaryOp::kShr: opcode = Opcode::kAShr; break;
        case BinaryOp::kAnd: opcode = Opcode::kAnd; break;
        case BinaryOp::kOr: opcode = Opcode::kOr; break;
        case BinaryOp::kXor: opcode = Opcode::kXor; break;
        default:
          error(loc, "invalid integer operator");
          return {};
      }
    }
    return {builder_.create_binary(opcode, lhs.value, rhs.value), common};
  }

  TypedValue gen_compare(BinaryOp op, TypedValue lhs, TypedValue rhs,
                         SourceLoc loc) {
    if (!lhs.type.is_arithmetic() || !rhs.type.is_arithmetic()) {
      error(loc, "invalid operands to comparison");
      return {};
    }
    const CType common = common_type(lhs.type, rhs.type);
    lhs = convert(lhs, common, loc);
    rhs = convert(rhs, common, loc);
    if (lhs.value == nullptr || rhs.value == nullptr) return {};
    ir::CmpPred pred;
    switch (op) {
      case BinaryOp::kLt: pred = ir::CmpPred::kLt; break;
      case BinaryOp::kLe: pred = ir::CmpPred::kLe; break;
      case BinaryOp::kGt: pred = ir::CmpPred::kGt; break;
      case BinaryOp::kGe: pred = ir::CmpPred::kGe; break;
      case BinaryOp::kEq: pred = ir::CmpPred::kEq; break;
      default: pred = ir::CmpPred::kNe; break;
    }
    Value* flag = common.is_double()
                      ? builder_.create_fcmp(pred, lhs.value, rhs.value)
                      : builder_.create_icmp(pred, lhs.value, rhs.value);
    // C comparisons produce int.
    return {builder_.create_zext(flag, Type::i32()), CType::int_type()};
  }

  TypedValue gen_logical(const Expr& expr) {
    // Short-circuit via a stack slot, keeping block-local SSA intact.
    const bool is_and = expr.binary_op == BinaryOp::kLogicalAnd;
    Instruction* slot = make_alloca(TypeKind::kI32, 1);
    builder_.create_store(module_->const_i32(is_and ? 0 : 1), slot);
    Value* lhs_cond = gen_condition(*expr.children[0]);
    BasicBlock* rhs_bb =
        current_fn_->add_block(is_and ? "land.rhs" : "lor.rhs");
    BasicBlock* merge_bb =
        current_fn_->add_block(is_and ? "land.end" : "lor.end");
    if (is_and) {
      builder_.create_cond_br(lhs_cond, rhs_bb, merge_bb);
    } else {
      builder_.create_cond_br(lhs_cond, merge_bb, rhs_bb);
    }
    start_block(rhs_bb);
    Value* rhs_cond = gen_condition(*expr.children[1]);
    Value* rhs_int = builder_.create_zext(rhs_cond, Type::i32());
    builder_.create_store(rhs_int, slot);
    builder_.create_br(merge_bb);
    start_block(merge_bb);
    return {builder_.create_load(slot), CType::int_type()};
  }

  TypedValue gen_call(const Expr& expr) {
    const FunctionDecl* decl = find_decl(expr.name);
    ir::Function* callee =
        decl != nullptr ? module_->find_function(expr.name) : nullptr;
    std::vector<CType> param_types;
    if (callee == nullptr) {
      // Runtime builtins.
      if (expr.name == "print_int") {
        callee = module_->builtin_print_int();
        param_types = {CType::long_type()};
      } else if (expr.name == "print_f64") {
        callee = module_->builtin_print_f64();
        param_types = {CType::double_type()};
      } else if (expr.name == "sqrt") {
        callee = module_->builtin_sqrt();
        param_types = {CType::double_type()};
      } else {
        error(expr.loc, "call to undeclared function '" + expr.name + "'");
        return {};
      }
    } else {
      for (const ParamDecl& param : decl->params) {
        param_types.push_back(param.type);
      }
    }
    if (expr.children.size() != param_types.size()) {
      error(expr.loc, "wrong number of arguments to '" + expr.name + "'");
      return {};
    }
    std::vector<Value*> args;
    for (std::size_t i = 0; i < expr.children.size(); ++i) {
      TypedValue arg = gen_expr(*expr.children[i]);
      if (arg.value == nullptr) return {};
      if (param_types[i].is_pointer) {
        if (arg.type != param_types[i]) {
          error(expr.loc, "pointer argument type mismatch in call to '" +
                              expr.name + "'");
          return {};
        }
      } else {
        arg = convert(arg, param_types[i], expr.loc);
        if (arg.value == nullptr) return {};
      }
      args.push_back(arg.value);
    }
    Instruction* call = builder_.create_call(callee, std::move(args));
    CType result_type = CType::void_type();
    if (callee->return_type() == Type::i32()) result_type = CType::int_type();
    if (callee->return_type() == Type::i64()) result_type = CType::long_type();
    if (callee->return_type() == Type::f64()) {
      result_type = CType::double_type();
    }
    return {call, result_type};
  }

  const FunctionDecl* find_decl(const std::string& name) const {
    for (const FunctionDecl& fn : unit_.functions) {
      if (fn.name == name) return &fn;
    }
    return nullptr;
  }

  static CType common_type(const CType& a, const CType& b) {
    if (a.is_double() || b.is_double()) return CType::double_type();
    if (a.base == CType::Base::kLong || b.base == CType::Base::kLong) {
      return CType::long_type();
    }
    return CType::int_type();
  }

  TypedValue convert(TypedValue value, const CType& to, SourceLoc loc) {
    if (value.type == to) return value;
    if (value.type.is_pointer || to.is_pointer) {
      error(loc, "cannot convert " + value.type.to_string() + " to " +
                     to.to_string());
      return {};
    }
    if (to.is_double()) {
      return {builder_.create_sitofp(value.value), to};
    }
    if (value.type.is_double()) {
      return {builder_.create_fptosi(value.value, ir_type_of(to)), to};
    }
    // Integer width change.
    const int from_size = ir::type_size(value.value->type());
    const int to_size = ir::type_size(ir_type_of(to));
    if (from_size < to_size) {
      return {builder_.create_sext(value.value, ir_type_of(to)), to};
    }
    if (from_size > to_size) {
      return {builder_.create_trunc(value.value, ir_type_of(to)), to};
    }
    return {value.value, to};
  }

  struct LoopTargets {
    BasicBlock* break_target;
    BasicBlock* continue_target;
  };

  const TranslationUnit& unit_;
  DiagEngine& diags_;
  std::unique_ptr<ir::Module> module_;
  IRBuilder builder_;
  ir::Function* current_fn_ = nullptr;
  const FunctionDecl* current_decl_ = nullptr;
  BasicBlock* entry_ = nullptr;
  std::size_t alloca_count_ = 0;
  std::vector<std::unordered_map<std::string, VarInfo>> scopes_;
  std::unordered_map<std::string, VarInfo> global_scope_;
  std::vector<LoopTargets> loop_stack_;
};

}  // namespace

std::unique_ptr<ir::Module> codegen(const TranslationUnit& unit,
                                    DiagEngine& diags) {
  return CodeGen(unit, diags).run();
}

std::unique_ptr<ir::Module> compile(std::string_view source,
                                    DiagEngine& diags) {
  TranslationUnit unit = parse(source, diags);
  if (diags.has_errors()) return nullptr;
  std::unique_ptr<ir::Module> module = codegen(unit, diags);
  if (diags.has_errors()) return nullptr;
  for (const std::string& problem : ir::verify(*module)) {
    diags.error({}, "verifier: " + problem);
  }
  if (diags.has_errors()) return nullptr;
  return module;
}

}  // namespace ferrum::minic
