// Recursive-descent parser for MiniC.
#pragma once

#include <string_view>

#include "frontend/ast.h"
#include "support/source_location.h"

namespace ferrum::minic {

/// Parses a whole translation unit. Errors are reported to `diags`; the
/// returned tree is only meaningful when diags has no errors.
TranslationUnit parse(std::string_view source, DiagEngine& diags);

}  // namespace ferrum::minic
