#include "frontend/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace ferrum::minic {

const char* tok_name(Tok tok) {
  switch (tok) {
    case Tok::kEof: return "<eof>";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kFloatLit: return "float literal";
    case Tok::kKwInt: return "int";
    case Tok::kKwLong: return "long";
    case Tok::kKwDouble: return "double";
    case Tok::kKwVoid: return "void";
    case Tok::kKwIf: return "if";
    case Tok::kKwElse: return "else";
    case Tok::kKwWhile: return "while";
    case Tok::kKwFor: return "for";
    case Tok::kKwReturn: return "return";
    case Tok::kKwBreak: return "break";
    case Tok::kKwContinue: return "continue";
    case Tok::kLParen: return "(";
    case Tok::kRParen: return ")";
    case Tok::kLBrace: return "{";
    case Tok::kRBrace: return "}";
    case Tok::kLBracket: return "[";
    case Tok::kRBracket: return "]";
    case Tok::kComma: return ",";
    case Tok::kSemi: return ";";
    case Tok::kAssign: return "=";
    case Tok::kPlus: return "+";
    case Tok::kMinus: return "-";
    case Tok::kStar: return "*";
    case Tok::kSlash: return "/";
    case Tok::kPercent: return "%";
    case Tok::kAmp: return "&";
    case Tok::kPipe: return "|";
    case Tok::kCaret: return "^";
    case Tok::kTilde: return "~";
    case Tok::kBang: return "!";
    case Tok::kShl: return "<<";
    case Tok::kShr: return ">>";
    case Tok::kEq: return "==";
    case Tok::kNe: return "!=";
    case Tok::kLt: return "<";
    case Tok::kLe: return "<=";
    case Tok::kGt: return ">";
    case Tok::kGe: return ">=";
    case Tok::kAndAnd: return "&&";
    case Tok::kOrOr: return "||";
    case Tok::kPlusAssign: return "+=";
    case Tok::kMinusAssign: return "-=";
    case Tok::kStarAssign: return "*=";
    case Tok::kSlashAssign: return "/=";
    case Tok::kPercentAssign: return "%=";
    case Tok::kPlusPlus: return "++";
    case Tok::kMinusMinus: return "--";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> table = {
      {"int", Tok::kKwInt},         {"long", Tok::kKwLong},
      {"double", Tok::kKwDouble},   {"void", Tok::kKwVoid},
      {"if", Tok::kKwIf},           {"else", Tok::kKwElse},
      {"while", Tok::kKwWhile},     {"for", Tok::kKwFor},
      {"return", Tok::kKwReturn},   {"break", Tok::kKwBreak},
      {"continue", Tok::kKwContinue},
  };
  return table;
}

class Lexer {
 public:
  Lexer(std::string_view source, DiagEngine& diags)
      : source_(source), diags_(diags) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    for (;;) {
      skip_trivia();
      Token token = next();
      tokens.push_back(token);
      if (token.kind == Tok::kEof) break;
    }
    return tokens;
  }

 private:
  bool at_end() const { return pos_ >= source_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char advance() {
    char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  SourceLoc here() const { return {line_, column_}; }

  void skip_trivia() {
    for (;;) {
      if (at_end()) return;
      char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        SourceLoc start = here();
        advance();
        advance();
        while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
        if (at_end()) {
          diags_.error(start, "unterminated block comment");
          return;
        }
        advance();
        advance();
      } else {
        return;
      }
    }
  }

  Token next() {
    Token token;
    token.loc = here();
    if (at_end()) {
      token.kind = Tok::kEof;
      return token;
    }
    char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return lex_word(token);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      return lex_number(token);
    }
    return lex_punct(token);
  }

  Token lex_word(Token token) {
    std::string word;
    while (!at_end() &&
           (std::isalnum(static_cast<unsigned char>(peek())) ||
            peek() == '_')) {
      word.push_back(advance());
    }
    auto it = keywords().find(word);
    if (it != keywords().end()) {
      token.kind = it->second;
    } else {
      token.kind = Tok::kIdent;
      token.text = std::move(word);
    }
    return token;
  }

  Token lex_number(Token token) {
    std::string digits;
    bool is_float = false;
    while (!at_end()) {
      char c = peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        digits.push_back(advance());
      } else if (c == '.' && !is_float) {
        is_float = true;
        digits.push_back(advance());
      } else if ((c == 'e' || c == 'E') &&
                 (std::isdigit(static_cast<unsigned char>(peek(1))) ||
                  ((peek(1) == '+' || peek(1) == '-') &&
                   std::isdigit(static_cast<unsigned char>(peek(2)))))) {
        is_float = true;
        digits.push_back(advance());
        if (peek() == '+' || peek() == '-') digits.push_back(advance());
      } else {
        break;
      }
    }
    if (is_float) {
      token.kind = Tok::kFloatLit;
      token.float_value = std::strtod(digits.c_str(), nullptr);
    } else if (!at_end() && (peek() == 'L' || peek() == 'l')) {
      advance();
      token.kind = Tok::kIntLit;
      token.int_value = std::strtoll(digits.c_str(), nullptr, 10);
      token.text = "L";  // marks a long literal
    } else {
      token.kind = Tok::kIntLit;
      token.int_value = std::strtoll(digits.c_str(), nullptr, 10);
    }
    return token;
  }

  Token lex_punct(Token token) {
    char c = advance();
    auto two = [&](char second, Tok with, Tok without) {
      if (peek() == second) {
        advance();
        token.kind = with;
      } else {
        token.kind = without;
      }
    };
    switch (c) {
      case '(': token.kind = Tok::kLParen; break;
      case ')': token.kind = Tok::kRParen; break;
      case '{': token.kind = Tok::kLBrace; break;
      case '}': token.kind = Tok::kRBrace; break;
      case '[': token.kind = Tok::kLBracket; break;
      case ']': token.kind = Tok::kRBracket; break;
      case ',': token.kind = Tok::kComma; break;
      case ';': token.kind = Tok::kSemi; break;
      case '~': token.kind = Tok::kTilde; break;
      case '^': token.kind = Tok::kCaret; break;
      case '=': two('=', Tok::kEq, Tok::kAssign); break;
      case '!': two('=', Tok::kNe, Tok::kBang); break;
      case '%': two('=', Tok::kPercentAssign, Tok::kPercent); break;
      case '*': two('=', Tok::kStarAssign, Tok::kStar); break;
      case '/': two('=', Tok::kSlashAssign, Tok::kSlash); break;
      case '+':
        if (peek() == '+') {
          advance();
          token.kind = Tok::kPlusPlus;
        } else {
          two('=', Tok::kPlusAssign, Tok::kPlus);
        }
        break;
      case '-':
        if (peek() == '-') {
          advance();
          token.kind = Tok::kMinusMinus;
        } else {
          two('=', Tok::kMinusAssign, Tok::kMinus);
        }
        break;
      case '&': two('&', Tok::kAndAnd, Tok::kAmp); break;
      case '|': two('|', Tok::kOrOr, Tok::kPipe); break;
      case '<':
        if (peek() == '<') {
          advance();
          token.kind = Tok::kShl;
        } else {
          two('=', Tok::kLe, Tok::kLt);
        }
        break;
      case '>':
        if (peek() == '>') {
          advance();
          token.kind = Tok::kShr;
        } else {
          two('=', Tok::kGe, Tok::kGt);
        }
        break;
      default:
        diags_.error(token.loc,
                     std::string("unexpected character '") + c + "'");
        token.kind = Tok::kEof;
        if (!at_end()) return next();
        break;
    }
    return token;
  }

  std::string_view source_;
  DiagEngine& diags_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source, DiagEngine& diags) {
  return Lexer(source, diags).run();
}

}  // namespace ferrum::minic
