// MiniC AST → MiniIR lowering, clang -O0 style: every variable lives in an
// alloca, values cross statements through memory, no phi nodes.
//
// Language restrictions enforced here (sufficient for all eight workloads):
//  * pointer types appear only as function parameters and are immutable;
//  * local arrays have constant size and no initialiser list;
//  * no address-of / dereference operators (indexing covers all access).
#pragma once

#include <memory>
#include <string_view>

#include "frontend/ast.h"
#include "ir/ir.h"
#include "support/source_location.h"

namespace ferrum::minic {

/// Lowers a parsed translation unit into a fresh MiniIR module. Type errors
/// are reported to `diags`; the module is meaningful only when clean.
std::unique_ptr<ir::Module> codegen(const TranslationUnit& unit,
                                    DiagEngine& diags);

/// Convenience: parse + codegen + verify in one call. Returns nullptr and
/// fills `diags` on any front-end or verifier error.
std::unique_ptr<ir::Module> compile(std::string_view source,
                                    DiagEngine& diags);

}  // namespace ferrum::minic
