// Lexer for MiniC, the C subset the workloads are written in.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/source_location.h"

namespace ferrum::minic {

enum class Tok : std::uint8_t {
  kEof,
  kIdent,
  kIntLit,
  kFloatLit,
  // Keywords.
  kKwInt,
  kKwLong,
  kKwDouble,
  kKwVoid,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwFor,
  kKwReturn,
  kKwBreak,
  kKwContinue,
  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemi,
  kAssign,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,
  kPipe,
  kCaret,
  kTilde,
  kBang,
  kShl,
  kShr,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAndAnd,
  kOrOr,
  kPlusAssign,
  kMinusAssign,
  kStarAssign,
  kSlashAssign,
  kPercentAssign,
  kPlusPlus,
  kMinusMinus,
};

const char* tok_name(Tok tok);

struct Token {
  Tok kind = Tok::kEof;
  SourceLoc loc;
  std::string text;       // identifier spelling
  std::int64_t int_value = 0;
  double float_value = 0.0;
};

/// Tokenises the whole input. Lexical errors are reported to `diags` and
/// the offending characters skipped, so parsing can still proceed.
std::vector<Token> lex(std::string_view source, DiagEngine& diags);

}  // namespace ferrum::minic
