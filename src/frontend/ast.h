// Abstract syntax tree for MiniC.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/source_location.h"

namespace ferrum::minic {

/// Surface-level type: a scalar base plus at most one pointer level.
/// Arrays are declaration forms, not first-class types (they decay).
struct CType {
  enum class Base : std::uint8_t { kVoid, kInt, kLong, kDouble };
  Base base = Base::kVoid;
  bool is_pointer = false;

  static CType void_type() { return {Base::kVoid, false}; }
  static CType int_type() { return {Base::kInt, false}; }
  static CType long_type() { return {Base::kLong, false}; }
  static CType double_type() { return {Base::kDouble, false}; }
  static CType pointer_to(Base base) { return {base, true}; }

  bool is_arithmetic() const { return !is_pointer && base != Base::kVoid; }
  bool is_integer() const {
    return !is_pointer && (base == Base::kInt || base == Base::kLong);
  }
  bool is_double() const { return !is_pointer && base == Base::kDouble; }

  friend bool operator==(const CType& a, const CType& b) {
    return a.base == b.base && a.is_pointer == b.is_pointer;
  }
  friend bool operator!=(const CType& a, const CType& b) { return !(a == b); }

  std::string to_string() const;
};

enum class ExprKind : std::uint8_t {
  kIntLit,
  kFloatLit,
  kVarRef,
  kUnary,    // - ! ~ and prefix ++/--
  kPostfix,  // postfix ++/--
  kBinary,
  kAssign,   // = += -= *= /= %=
  kIndex,    // a[i]
  kCall,
  kCast,
};

enum class UnaryOp : std::uint8_t { kNeg, kNot, kBitNot, kPreInc, kPreDec };
enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kRem,
  kShl, kShr, kAnd, kOr, kXor,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kLogicalAnd, kLogicalOr,
};
enum class AssignOp : std::uint8_t { kPlain, kAdd, kSub, kMul, kDiv, kRem };

struct Expr {
  ExprKind kind;
  SourceLoc loc;

  // kIntLit: value + whether the literal had an L suffix.
  std::int64_t int_value = 0;
  bool is_long_literal = false;
  // kFloatLit.
  double float_value = 0.0;
  // kVarRef / kCall: identifier.
  std::string name;
  // kUnary / kPostfix / kBinary / kAssign operator selectors.
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;
  AssignOp assign_op = AssignOp::kPlain;
  bool postfix_increment = false;  // kPostfix: ++ when true, -- when false
  // kCast target.
  CType cast_type;
  // Children: unary/cast/postfix use [0]; binary/assign/index use [0],[1];
  // call uses all as arguments.
  std::vector<std::unique_ptr<Expr>> children;
};

enum class StmtKind : std::uint8_t {
  kBlock,
  kDecl,
  kExpr,
  kIf,
  kWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
  kEmpty,
};

struct Stmt {
  StmtKind kind;
  SourceLoc loc;

  // kDecl.
  CType decl_type;
  std::string decl_name;
  std::int64_t array_size = 0;            // > 0 when an array declaration
  std::unique_ptr<Expr> decl_init;        // optional
  // kExpr / kReturn value.
  std::unique_ptr<Expr> expr;
  // kIf: cond + then_body + optional else_body.
  // kWhile: cond + body. kFor: init_stmt/cond/step/body.
  std::unique_ptr<Expr> cond;
  std::unique_ptr<Stmt> init_stmt;
  std::unique_ptr<Expr> step;
  std::unique_ptr<Stmt> body;
  std::unique_ptr<Stmt> else_body;
  // kBlock.
  std::vector<std::unique_ptr<Stmt>> stmts;
};

struct ParamDecl {
  CType type;
  std::string name;
  SourceLoc loc;
};

struct FunctionDecl {
  CType return_type;
  std::string name;
  SourceLoc loc;
  std::vector<ParamDecl> params;
  std::unique_ptr<Stmt> body;  // always a block
};

struct GlobalDecl {
  CType type;  // element type for arrays
  std::string name;
  SourceLoc loc;
  std::int64_t array_size = 0;  // > 0 when an array
  // Constant initialisers (literals, possibly negated).
  std::vector<double> float_init;
  std::vector<std::int64_t> int_init;
  bool has_init = false;
};

struct TranslationUnit {
  std::vector<GlobalDecl> globals;
  std::vector<FunctionDecl> functions;
};

}  // namespace ferrum::minic
