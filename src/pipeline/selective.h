// Analysis-guided selective protection: the ferrum-flow planner.
//
// plan_selective takes the *pre-protection* lowered program (kNone's
// output — identical to what kFerrum's protect pass sees), enumerates
// the protectable-site universe via eddi::enumerate_protectable_sites,
// and chooses which sites to spend a protection budget on:
//
//   kAnalysis  rank sites by the flow prediction of the fault sites they
//              guard (sdc-vulnerable > crash-prone > detected > masked;
//              program order breaks ties) and protect the top-k;
//   kRandom    seeded Fisher-Yates over the universe, protect the first
//              k — the baseline the pareto bench compares against.
//
// The uniform baseline (every k-th site via coverage_ratio error
// diffusion) needs no plan: it is AsmProtectOptions::coverage_ratio.
//
// Everything here is deterministic: same program + options -> the same
// plan, byte for byte, on every platform (the shuffle uses a local
// splitmix64, not std::shuffle, which is unspecified across standard
// libraries).
#pragma once

#include <cstdint>
#include <vector>

#include "check/flow.h"
#include "eddi/asm_protect.h"
#include "masm/masm.h"

namespace ferrum::pipeline {

struct SelectiveOptions {
  enum class Strategy : std::uint8_t {
    kOff,       // no plan: protect everything (or coverage_ratio)
    kAnalysis,  // flow-ranked top-k
    kRandom,    // seeded-shuffle k (baseline)
  };
  Strategy strategy = Strategy::kOff;
  /// Fraction of the protectable-site universe to protect, in [0, 1].
  double budget = 1.0;
  /// Shuffle seed for kRandom.
  std::uint64_t seed = 1;
};

const char* selective_strategy_name(SelectiveOptions::Strategy strategy);

struct SelectivePlan {
  /// The full protectable-site universe, in ordinal order.
  std::vector<eddi::ProtectSiteRef> universe;
  /// Chosen ordinals, sorted ascending. selected.size() == budget_sites.
  std::vector<int> selected;
  /// round(budget * universe size).
  int budget_sites = 0;
  /// The flow report the ranking was computed from (kAnalysis; also
  /// populated for kRandom so plan consumers can report predictions).
  check::flow::FlowReport flow;
};

/// Plans a protection-site selection for `program` (which must be the
/// pre-protection lowered program). `protect_options` supplies the knobs
/// that shape the site universe (protect_branches, ...); its selector and
/// coverage_ratio are ignored.
SelectivePlan plan_selective(const masm::AsmProgram& program,
                             const SelectiveOptions& options,
                             const eddi::AsmProtectOptions& protect_options);

/// A protect_asm selector enforcing the plan (ordinal membership). The
/// returned callable copies the selected set; the plan may be discarded.
eddi::ProtectSelector plan_selector(const SelectivePlan& plan);

}  // namespace ferrum::pipeline
