// End-to-end pipeline: MiniC source -> MiniIR -> (protection) -> MiniASM.
// This is the single entry point the examples, tests, benches and the
// fault-injection campaign all share.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "backend/backend.h"
#include "check/check.h"
#include "eddi/asm_protect.h"
#include "eddi/ir_eddi.h"
#include "ir/ir.h"
#include "masm/masm.h"
#include "pipeline/selective.h"

namespace ferrum::pipeline {

/// The protection configurations of the paper's Table I.
enum class Technique : std::uint8_t {
  kNone,     // unprotected baseline (SDC_raw)
  kIrEddi,   // IR-LEVEL-EDDI
  kHybrid,   // HYBRID-ASSEMBLY-LEVEL-EDDI (IR signatures + plain asm dup)
  kFerrum,   // FERRUM
};

const char* technique_name(Technique technique);

struct BuildOptions {
  backend::BackendOptions backend;
  /// FERRUM configuration knobs (used only for kFerrum), for ablations.
  eddi::AsmProtectOptions ferrum;
  /// Analysis-guided selective protection (kFerrum only). When the
  /// strategy is not kOff, a "flow-plan" pass plans the protection-site
  /// selection on the pre-protect program and overrides ferrum.selector.
  SelectiveOptions selective;
};

struct Build {
  std::unique_ptr<ir::Module> module;  // after any IR-level protection
  masm::AsmProgram program;
  eddi::IrEddiStats ir_stats;
  eddi::AsmProtectStats asm_stats;
  /// Wall-clock seconds spent in the assembly-level protection pass.
  double protect_seconds = 0.0;
  /// ferrum-check report from the protect-check pass (runs for every
  /// protected technique; empty/default for kNone). A violation here is
  /// a pipeline bug and build() throws, so a returned Build always
  /// carries a clean report — its value is the coverage classification.
  check::CheckReport check_report;
  /// Wall-clock seconds per pipeline pass, in execution order (stages
  /// that did not run for this technique are absent). Stage names:
  /// "frontend", "ir-protect", "ir-verify", "lower", "asm-verify",
  /// "flow-plan", "protect", "protect-verify", "protect-check".
  std::vector<std::pair<std::string, double>> pass_seconds;
  /// The selective-protection plan (populated only when
  /// BuildOptions::selective.strategy != kOff): site universe, chosen
  /// ordinals and the flow report the ranking came from.
  SelectivePlan selective_plan;
};

/// Compiles MiniC source under the chosen technique. Throws
/// std::runtime_error with rendered diagnostics on frontend errors.
Build build(std::string_view source, Technique technique,
            const BuildOptions& options = {});

}  // namespace ferrum::pipeline
