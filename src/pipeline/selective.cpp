#include "pipeline/selective.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>
#include <utility>

namespace ferrum::pipeline {

namespace {

using check::flow::FlowReport;
using check::flow::FlowSite;
using check::flow::Prediction;
using eddi::ProtectSiteRef;

/// splitmix64: tiny, platform-stable generator for the kRandom shuffle.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Ranking score of one protection site: the worst flow prediction among
/// the fault sites its original instructions register. A cluster guards
/// the flag producer and the following setcc/jcc, so both instructions
/// contribute.
int analysis_score(const FlowReport& flow, const ProtectSiteRef& ref) {
  int score = 0;
  const int span = ref.cluster ? 2 : 1;
  for (int d = 0; d < span; ++d) {
    const FlowSite* site = flow.find(ref.function, ref.block, ref.inst + d);
    if (site == nullptr) continue;
    switch (site->prediction) {
      case Prediction::kSdcVulnerable: score = std::max(score, 3); break;
      case Prediction::kCrashProne: score = std::max(score, 2); break;
      case Prediction::kDetected: score = std::max(score, 1); break;
      case Prediction::kMasked: break;
    }
  }
  return score;
}

}  // namespace

const char* selective_strategy_name(SelectiveOptions::Strategy strategy) {
  switch (strategy) {
    case SelectiveOptions::Strategy::kOff: return "off";
    case SelectiveOptions::Strategy::kAnalysis: return "analysis";
    case SelectiveOptions::Strategy::kRandom: return "random";
  }
  return "?";
}

SelectivePlan plan_selective(const masm::AsmProgram& program,
                             const SelectiveOptions& options,
                             const eddi::AsmProtectOptions& protect_options) {
  SelectivePlan plan;
  eddi::AsmProtectOptions shape = protect_options;
  shape.selector = nullptr;
  shape.coverage_ratio = 1.0;
  plan.universe = eddi::enumerate_protectable_sites(program, shape);

  check::flow::FlowOptions flow_options;
  flow_options.store_data_sites = protect_options.protect_store_data;
  plan.flow = check::flow::flow_program(program, flow_options);

  const int n = static_cast<int>(plan.universe.size());
  const double budget = std::clamp(options.budget, 0.0, 1.0);
  plan.budget_sites = static_cast<int>(std::lround(budget * n));

  std::vector<int> order(plan.universe.size());
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;

  switch (options.strategy) {
    case SelectiveOptions::Strategy::kOff:
      plan.budget_sites = n;
      break;
    case SelectiveOptions::Strategy::kAnalysis: {
      // Highest-scoring tier first. Inside a tier, order by bit-reversed
      // ordinal (a van der Corput sequence): any budget prefix of a tier
      // then spreads near-uniformly across the whole program instead of
      // clustering in the earliest blocks — a small budget still reaches
      // the compute loops, not just the setup code. Deterministic, no
      // seed involved.
      std::vector<std::pair<std::uint64_t, int>> keyed;
      keyed.reserve(plan.universe.size());
      for (int i = 0; i < n; ++i) {
        const int score = analysis_score(
            plan.flow, plan.universe[static_cast<std::size_t>(i)]);
        std::uint64_t rev = 0;
        for (int bit = 0; bit < 32; ++bit) {
          rev = (rev << 1) | ((static_cast<std::uint64_t>(i) >> bit) & 1);
        }
        // Key: higher score first, then bit-reversed position, then the
        // ordinal itself as the final total-order tie-break.
        keyed.emplace_back((static_cast<std::uint64_t>(3 - score) << 60) |
                               (rev << 28) |
                               static_cast<std::uint64_t>(i),
                           i);
      }
      std::sort(keyed.begin(), keyed.end());
      for (int i = 0; i < n; ++i) {
        order[static_cast<std::size_t>(i)] = keyed[static_cast<std::size_t>(i)].second;
      }
      break;
    }
    case SelectiveOptions::Strategy::kRandom: {
      std::uint64_t state = options.seed;
      for (int i = n - 1; i > 0; --i) {
        const int j = static_cast<int>(
            splitmix64(state) % static_cast<std::uint64_t>(i + 1));
        std::swap(order[static_cast<std::size_t>(i)],
                  order[static_cast<std::size_t>(j)]);
      }
      break;
    }
  }

  plan.selected.assign(
      order.begin(),
      order.begin() + static_cast<std::ptrdiff_t>(plan.budget_sites));
  std::sort(plan.selected.begin(), plan.selected.end());
  return plan;
}

eddi::ProtectSelector plan_selector(const SelectivePlan& plan) {
  auto chosen = std::make_shared<std::unordered_set<int>>(
      plan.selected.begin(), plan.selected.end());
  return [chosen](const ProtectSiteRef& ref) {
    return chosen->count(ref.ordinal) != 0;
  };
}

}  // namespace ferrum::pipeline
