#include "pipeline/pipeline.h"

#include <chrono>

#include "check/check.h"
#include "frontend/codegen.h"
#include "ir/verifier.h"
#include "masm/verifier.h"
#include "support/source_location.h"

namespace ferrum::pipeline {

namespace {

/// Appends ("name", elapsed) to Build::pass_seconds when destroyed — the
/// pipeline's per-pass timing scope.
class PassScope {
 public:
  PassScope(Build& build, const char* name)
      : build_(build), name_(name),
        start_(std::chrono::steady_clock::now()) {}
  ~PassScope() {
    build_.pass_seconds.emplace_back(
        name_, std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
                   .count());
  }
  PassScope(const PassScope&) = delete;
  PassScope& operator=(const PassScope&) = delete;

 private:
  Build& build_;
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

const char* technique_name(Technique technique) {
  switch (technique) {
    case Technique::kNone: return "none";
    case Technique::kIrEddi: return "ir-level-eddi";
    case Technique::kHybrid: return "hybrid-assembly-level-eddi";
    case Technique::kFerrum: return "ferrum";
  }
  return "?";
}

Build build(std::string_view source, Technique technique,
            const BuildOptions& options) {
  DiagEngine diags;
  Build result;
  {
    PassScope scope(result, "frontend");
    result.module = minic::compile(source, diags);
  }
  if (result.module == nullptr) {
    throw std::runtime_error("frontend:\n" + diags.render());
  }

  if (technique == Technique::kIrEddi) {
    PassScope scope(result, "ir-protect");
    result.ir_stats =
        eddi::apply_ir_eddi(*result.module, eddi::IrEddiMode::kClassic);
  } else if (technique == Technique::kHybrid) {
    PassScope scope(result, "ir-protect");
    result.ir_stats =
        eddi::apply_ir_eddi(*result.module, eddi::IrEddiMode::kSignatureOnly);
  }
  if (technique == Technique::kIrEddi || technique == Technique::kHybrid) {
    PassScope scope(result, "ir-verify");
    const std::string problems = ir::verify_to_string(*result.module);
    if (!problems.empty()) {
      throw std::runtime_error("IR protection broke the module:\n" + problems);
    }
  }

  {
    PassScope scope(result, "lower");
    result.program = backend::lower(*result.module, options.backend);
  }
  {
    PassScope scope(result, "asm-verify");
    const std::string problems = masm::verify_program_to_string(result.program);
    if (!problems.empty()) {
      throw std::runtime_error("backend produced malformed assembly:\n" +
                               problems);
    }
  }

  if (technique == Technique::kHybrid) {
    eddi::AsmProtectOptions asm_options;
    asm_options.use_simd = false;          // AS_1: plain duplication
    asm_options.protect_branches = false;  // comparisons/branches at IR
    // Extended-fault-model experiments toggle store verification for both
    // assembly-level techniques through the same knob.
    asm_options.protect_store_data = options.ferrum.protect_store_data;
    const auto start = std::chrono::steady_clock::now();
    {
      PassScope scope(result, "protect");
      result.asm_stats = eddi::protect_asm(result.program, asm_options);
    }
    result.protect_seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
  } else if (technique == Technique::kFerrum) {
    eddi::AsmProtectOptions ferrum_options = options.ferrum;
    if (options.selective.strategy != SelectiveOptions::Strategy::kOff) {
      // Plan on the pre-protect program (what the protect pass is about
      // to see); the plan's selector replaces any coverage_ratio.
      PassScope scope(result, "flow-plan");
      result.selective_plan =
          plan_selective(result.program, options.selective, options.ferrum);
      ferrum_options.selector = plan_selector(result.selective_plan);
      ferrum_options.coverage_ratio = 1.0;
    }
    const auto start = std::chrono::steady_clock::now();
    {
      PassScope scope(result, "protect");
      result.asm_stats = eddi::protect_asm(result.program, ferrum_options);
    }
    result.protect_seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
  }
  if (technique == Technique::kHybrid || technique == Technique::kFerrum) {
    PassScope scope(result, "protect-verify");
    const std::string problems = masm::verify_program_to_string(result.program);
    if (!problems.empty()) {
      throw std::runtime_error("protection produced malformed assembly:\n" +
                               problems);
    }
  }
  if (technique != Technique::kNone) {
    // Static protection lint: prove the emitted protection idioms are
    // well-formed (fresh check operands, guarded detects, balanced
    // requisitions, ...). Any violation means the protection pass
    // emitted a check that cannot detect what it claims to.
    PassScope scope(result, "protect-check");
    check::CheckOptions check_options;
    check_options.store_data_sites = options.ferrum.protect_store_data;
    result.check_report = check::check_program(result.program, check_options);
    if (!result.check_report.clean()) {
      std::string problems;
      for (const check::Violation& violation : result.check_report.violations) {
        problems += "  " + check::to_string(violation) + "\n";
      }
      throw std::runtime_error("protect-check found invariant violations:\n" +
                               problems);
    }
  }
  return result;
}

}  // namespace ferrum::pipeline
