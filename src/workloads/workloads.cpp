#include "workloads/workloads.h"

#include <stdexcept>

namespace ferrum::workloads {

namespace {

std::string replace_all(std::string text, const std::string& token,
                        const std::string& value) {
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    text.replace(pos, token.size(), value);
    pos += value.size();
  }
  return text;
}

// --------------------------------------------------------------------------
// Each kernel mirrors its Rodinia namesake's algorithmic core: same data
// flow, same loop structure, scaled down to fault-injection-friendly sizes.
// %REPS% is the outer repetition count substituted by scaled().

const char* kBackprop = R"MINIC(
// backprop: one-hidden-layer MLP, forward + delta-rule weight update.
double w1[48];   // 8 inputs x 6 hidden
double w2[6];    // 6 hidden -> 1 output
double hid[6];
double inp[8];
int seed = 17;

int rnd() {
  seed = (seed * 1103515245 + 12345) % 2147483647;
  if (seed < 0) seed = -seed;
  return seed % 1000;
}

double squash(double x) {
  double ax = x;
  if (ax < 0.0) ax = -ax;
  return x / (1.0 + ax);
}

int main() {
  for (int i = 0; i < 48; i++) w1[i] = (double)(rnd() - 500) / 500.0;
  for (int i = 0; i < 6; i++) w2[i] = (double)(rnd() - 500) / 500.0;
  for (int r = 0; r < %REPS%; r++) {
    for (int epoch = 0; epoch < 4; epoch++) {
      for (int s = 0; s < 4; s++) {
        for (int i = 0; i < 8; i++) inp[i] = (double)(rnd() % 100) / 100.0;
        double target = (double)(s % 2);
        for (int j = 0; j < 6; j++) {
          double acc = 0.0;
          for (int i = 0; i < 8; i++) acc += inp[i] * w1[i * 6 + j];
          hid[j] = squash(acc);
        }
        double out = 0.0;
        for (int j = 0; j < 6; j++) out += hid[j] * w2[j];
        out = squash(out);
        double delta = (target - out) * 0.25;
        for (int j = 0; j < 6; j++) {
          double dh = delta * w2[j] * 0.5;
          w2[j] += delta * hid[j];
          for (int i = 0; i < 8; i++) w1[i * 6 + j] += dh * inp[i];
        }
      }
    }
  }
  double check = 0.0;
  for (int i = 0; i < 48; i++) check += w1[i] * (double)(i % 5 + 1);
  for (int j = 0; j < 6; j++) check += w2[j] * 10.0;
  print_f64(check);
  return 0;
}
)MINIC";

const char* kBfs = R"MINIC(
// bfs: level-order traversal over a sparse ring + chord graph.
int dist[48];
int work[48];
int adj[96];

int main() {
  int n = 48;
  for (int i = 0; i < n; i++) {
    adj[2 * i] = (i + 1) % n;
    adj[2 * i + 1] = (i * 7 + 3) % n;
  }
  long total = 0L;
  for (int r = 0; r < %REPS%; r++) {
    for (int i = 0; i < n; i++) dist[i] = -1;
    int head = 0;
    int tail = 0;
    int src = (r * 11) % n;
    dist[src] = 0;
    work[tail] = src;
    tail++;
    while (head < tail) {
      int u = work[head];
      head++;
      for (int e = 0; e < 2; e++) {
        int v = adj[2 * u + e];
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          work[tail] = v;
          tail++;
        }
      }
    }
    for (int i = 0; i < n; i++) total += (long)(dist[i] * (i + 1));
  }
  print_int(total);
  return 0;
}
)MINIC";

const char* kPathfinder = R"MINIC(
// pathfinder: bottom-up dynamic programming over a weighted grid.
int wall[320];   // 20 rows x 16 cols
int result[16];
int prev[16];
int seed = 7;

int rnd() {
  seed = (seed * 1103515245 + 12345) % 2147483647;
  if (seed < 0) seed = -seed;
  return seed;
}

int main() {
  int rows = 20;
  int cols = 16;
  for (int i = 0; i < rows * cols; i++) wall[i] = rnd() % 10;
  long check = 0L;
  for (int r = 0; r < %REPS%; r++) {
    for (int j = 0; j < cols; j++) result[j] = wall[j];
    for (int i = 1; i < rows; i++) {
      for (int j = 0; j < cols; j++) prev[j] = result[j];
      for (int j = 0; j < cols; j++) {
        int best = prev[j];
        if (j > 0) {
          if (prev[j - 1] < best) best = prev[j - 1];
        }
        if (j < cols - 1) {
          if (prev[j + 1] < best) best = prev[j + 1];
        }
        result[j] = best + wall[i * cols + j];
      }
    }
    for (int j = 0; j < cols; j++) check += (long)(result[j] * (j + 1));
  }
  print_int(check);
  return 0;
}
)MINIC";

const char* kLud = R"MINIC(
// lud: in-place Doolittle LU decomposition of a diagonally dominant matrix.
double a[64];    // 8 x 8
int seed = 3;

int rnd() {
  seed = (seed * 1103515245 + 12345) % 2147483647;
  if (seed < 0) seed = -seed;
  return seed;
}

void init(int n) {
  for (int i = 0; i < n * n; i++) a[i] = (double)(rnd() % 100) / 10.0;
  for (int i = 0; i < n; i++) a[i * n + i] += 100.0;
}

int main() {
  int n = 8;
  double check = 0.0;
  for (int r = 0; r < %REPS%; r++) {
    init(n);
    for (int k = 0; k < n; k++) {
      for (int j = k + 1; j < n; j++) {
        a[j * n + k] /= a[k * n + k];
        for (int m = k + 1; m < n; m++) {
          a[j * n + m] -= a[j * n + k] * a[k * n + m];
        }
      }
    }
    for (int i = 0; i < n * n; i++) check += a[i] * (double)(i % 7 + 1);
  }
  print_f64(check);
  return 0;
}
)MINIC";

const char* kNeedle = R"MINIC(
// needle: Needleman-Wunsch global sequence alignment score matrix.
int score[289];  // 17 x 17
int seq1[16];
int seq2[16];
int seed = 11;

int rnd() {
  seed = (seed * 1103515245 + 12345) % 2147483647;
  if (seed < 0) seed = -seed;
  return seed;
}

int main() {
  int n = 16;
  int w = 17;
  for (int i = 0; i < n; i++) seq1[i] = rnd() % 4;
  for (int i = 0; i < n; i++) seq2[i] = rnd() % 4;
  long check = 0L;
  for (int r = 0; r < %REPS%; r++) {
    int gap = -2 - r % 2;
    for (int i = 0; i <= n; i++) score[i * w] = i * gap;
    for (int j = 0; j <= n; j++) score[j] = j * gap;
    for (int i = 1; i <= n; i++) {
      for (int j = 1; j <= n; j++) {
        int m = -1;
        if (seq1[i - 1] == seq2[j - 1]) m = 3;
        int diag = score[(i - 1) * w + (j - 1)] + m;
        int up = score[(i - 1) * w + j] + gap;
        int left = score[i * w + (j - 1)] + gap;
        int best = diag;
        if (up > best) best = up;
        if (left > best) best = left;
        score[i * w + j] = best;
      }
    }
    check += (long)score[n * w + n];
    for (int j = 0; j <= n; j++) check += (long)(score[n * w + j] * (j + 1));
  }
  print_int(check);
  return 0;
}
)MINIC";

const char* kKnn = R"MINIC(
// knn: k-nearest-neighbour search by repeated minimum selection.
double px[64];
double py[64];
int taken[64];
int seed = 5;

int rnd() {
  seed = (seed * 1103515245 + 12345) % 2147483647;
  if (seed < 0) seed = -seed;
  return seed;
}

int main() {
  int n = 64;
  int k = 5;
  for (int i = 0; i < n; i++) {
    px[i] = (double)(rnd() % 1000) / 10.0;
    py[i] = (double)(rnd() % 1000) / 10.0;
  }
  double acc = 0.0;
  long idxsum = 0L;
  for (int r = 0; r < %REPS%; r++) {
    double qx = (double)((r * 13) % 100);
    double qy = (double)((r * 29) % 100);
    for (int i = 0; i < n; i++) taken[i] = 0;
    for (int pick = 0; pick < k; pick++) {
      int best = -1;
      double bestd = 1.0e30;
      for (int i = 0; i < n; i++) {
        if (taken[i] == 0) {
          double dx = px[i] - qx;
          double dy = py[i] - qy;
          double d = sqrt(dx * dx + dy * dy);
          if (d < bestd) {
            bestd = d;
            best = i;
          }
        }
      }
      taken[best] = 1;
      acc += bestd;
      idxsum += (long)(best * (pick + 1));
    }
  }
  print_f64(acc);
  print_int(idxsum);
  return 0;
}
)MINIC";

const char* kKmeans = R"MINIC(
// kmeans: Lloyd iterations, 2-d points, 4 centroids.
double px[64];
double py[64];
double cx[4];
double cy[4];
double sx[4];
double sy[4];
int cnt[4];
int assign_of[64];
int seed = 23;

int rnd() {
  seed = (seed * 1103515245 + 12345) % 2147483647;
  if (seed < 0) seed = -seed;
  return seed;
}

int main() {
  int n = 64;
  int k = 4;
  for (int i = 0; i < n; i++) {
    px[i] = (double)(rnd() % 1000) / 10.0;
    py[i] = (double)(rnd() % 1000) / 10.0;
  }
  long moves = 0L;
  for (int r = 0; r < %REPS%; r++) {
    for (int c = 0; c < k; c++) {
      cx[c] = px[c * 16 % n];
      cy[c] = py[c * 16 % n];
    }
    for (int i = 0; i < n; i++) assign_of[i] = -1;
    for (int iter = 0; iter < 5; iter++) {
      for (int c = 0; c < k; c++) {
        sx[c] = 0.0;
        sy[c] = 0.0;
        cnt[c] = 0;
      }
      for (int i = 0; i < n; i++) {
        int best = 0;
        double bestd = 1.0e30;
        for (int c = 0; c < k; c++) {
          double dx = px[i] - cx[c];
          double dy = py[i] - cy[c];
          double d = dx * dx + dy * dy;
          if (d < bestd) {
            bestd = d;
            best = c;
          }
        }
        if (assign_of[i] != best) moves++;
        assign_of[i] = best;
        sx[best] += px[i];
        sy[best] += py[i];
        cnt[best]++;
      }
      for (int c = 0; c < k; c++) {
        if (cnt[c] > 0) {
          cx[c] = sx[c] / (double)cnt[c];
          cy[c] = sy[c] / (double)cnt[c];
        }
      }
    }
  }
  double check = 0.0;
  for (int c = 0; c < 4; c++) check += cx[c] * (double)(c + 1) + cy[c];
  print_f64(check);
  print_int(moves);
  return 0;
}
)MINIC";

const char* kParticlefilter = R"MINIC(
// particlefilter: 1-d state estimation with weighting and resampling.
double x[64];
double w[64];
double xnew[64];
double cumw[64];
int seed = 29;

int rnd() {
  seed = (seed * 1103515245 + 12345) % 2147483647;
  if (seed < 0) seed = -seed;
  return seed;
}

double noise() {
  return (double)(rnd() % 200 - 100) / 200.0;
}

int main() {
  int n = 64;
  double state = 4.0;
  for (int i = 0; i < n; i++) {
    x[i] = state + noise();
    w[i] = 1.0 / (double)n;
  }
  long checks = 0L;
  for (int step = 0; step < %REPS% * 6; step++) {
    state = state * 0.9 + 1.0 + noise() * 0.1;
    double z = state + noise() * 0.2;
    for (int i = 0; i < n; i++) {
      x[i] = x[i] * 0.9 + 1.0 + noise();
      double e = x[i] - z;
      w[i] = 1.0 / (1.0 + e * e);
    }
    double total = 0.0;
    for (int i = 0; i < n; i++) total += w[i];
    double est = 0.0;
    for (int i = 0; i < n; i++) {
      w[i] /= total;
      est += w[i] * x[i];
    }
    // systematic resampling
    double c = 0.0;
    for (int i = 0; i < n; i++) {
      c += w[i];
      cumw[i] = c;
    }
    double u0 = (double)(rnd() % 1000) / (double)(1000 * n);
    int j = 0;
    for (int i = 0; i < n; i++) {
      double u = u0 + (double)i / (double)n;
      while (j < n - 1 && cumw[j] < u) j++;
      xnew[i] = x[j];
    }
    for (int i = 0; i < n; i++) x[i] = xnew[i];
    checks += (long)(est * 1000.0);
  }
  print_int(checks);
  return 0;
}
)MINIC";

Workload make(const char* name, const char* domain, const char* text,
              int reps) {
  Workload w;
  w.name = name;
  w.suite = "rodinia-class";
  w.domain = domain;
  w.source = replace_all(text, "%REPS%", std::to_string(reps));
  return w;
}

}  // namespace

const std::vector<Workload>& all() {
  static const std::vector<Workload>* workloads = new std::vector<Workload>{
      make("backprop", "Machine Learning", kBackprop, 1),
      make("bfs", "Graph Algorithm", kBfs, 1),
      make("pathfinder", "Dynamic Programming", kPathfinder, 1),
      make("lud", "Linear Algebra", kLud, 1),
      make("needle", "Dynamic Programming", kNeedle, 1),
      make("knn", "Machine Learning", kKnn, 1),
      make("kmeans", "Data Mining", kKmeans, 1),
      make("particlefilter", "Noise estimator", kParticlefilter, 1),
  };
  return *workloads;
}

const Workload& by_name(const std::string& name) {
  for (const Workload& w : all()) {
    if (w.name == name) return w;
  }
  throw std::out_of_range("unknown workload: " + name);
}

Workload scaled(const std::string& name, int factor) {
  static const struct {
    const char* name;
    const char* domain;
    const char* text;
  } table[] = {
      {"backprop", "Machine Learning", kBackprop},
      {"bfs", "Graph Algorithm", kBfs},
      {"pathfinder", "Dynamic Programming", kPathfinder},
      {"lud", "Linear Algebra", kLud},
      {"needle", "Dynamic Programming", kNeedle},
      {"knn", "Machine Learning", kKnn},
      {"kmeans", "Data Mining", kKmeans},
      {"particlefilter", "Noise estimator", kParticlefilter},
  };
  for (const auto& entry : table) {
    if (name == entry.name) {
      return make(entry.name, entry.domain, entry.text,
                  factor < 1 ? 1 : factor);
    }
  }
  throw std::out_of_range("unknown workload: " + name);
}

}  // namespace ferrum::workloads
