// The eight Rodinia-class benchmarks of the paper's Table II, written in
// MiniC. Each program is deterministic (inputs synthesised by an inline
// LCG) and emits a small stream of checksums via print_int / print_f64 —
// that stream is the program output whose corruption defines an SDC.
#pragma once

#include <string>
#include <vector>

namespace ferrum::workloads {

struct Workload {
  std::string name;    // lower-case benchmark name (bfs, lud, ...)
  std::string suite;   // "rodinia-class"
  std::string domain;  // Table II domain label
  std::string source;  // MiniC program text
};

/// All eight benchmarks at the default (fault-injection) scale.
const std::vector<Workload>& all();

/// Lookup by name; throws std::out_of_range for unknown names.
const Workload& by_name(const std::string& name);

/// A benchmark scaled by an integer factor >= 1 (bigger inputs for the
/// performance experiments). Scaling substitutes the iteration counts,
/// not the data-structure sizes, so register pressure stays comparable.
Workload scaled(const std::string& name, int factor);

}  // namespace ferrum::workloads
