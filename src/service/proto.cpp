#include "service/proto.h"

#include <cstdint>
#include <cstring>
#include <limits>

namespace ferrum::service {

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kSubmit: return "submit";
    case MsgType::kStatus: return "status";
    case MsgType::kResults: return "results";
    case MsgType::kStats: return "stats";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kHelloReply: return "hello-reply";
    case MsgType::kJobAccepted: return "job-accepted";
    case MsgType::kStatusReply: return "status-reply";
    case MsgType::kCellResult: return "cell-result";
    case MsgType::kResultsDone: return "results-done";
    case MsgType::kStatsReply: return "stats-reply";
    case MsgType::kShutdownAck: return "shutdown-ack";
    case MsgType::kError: return "error";
  }
  return "?";
}

namespace {

bool known_type(std::uint8_t byte) {
  switch (static_cast<MsgType>(byte)) {
    case MsgType::kHello:
    case MsgType::kSubmit:
    case MsgType::kStatus:
    case MsgType::kResults:
    case MsgType::kStats:
    case MsgType::kShutdown:
    case MsgType::kHelloReply:
    case MsgType::kJobAccepted:
    case MsgType::kStatusReply:
    case MsgType::kCellResult:
    case MsgType::kResultsDone:
    case MsgType::kStatsReply:
    case MsgType::kShutdownAck:
    case MsgType::kError:
      return true;
  }
  return false;
}

}  // namespace

bool write_frame(Conn& conn, MsgType type, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  std::uint8_t header[5];
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<std::uint8_t>(length);
  header[1] = static_cast<std::uint8_t>(length >> 8);
  header[2] = static_cast<std::uint8_t>(length >> 16);
  header[3] = static_cast<std::uint8_t>(length >> 24);
  header[4] = static_cast<std::uint8_t>(type);
  if (!conn.write_all(header, sizeof(header))) return false;
  return payload.empty() || conn.write_all(payload.data(), payload.size());
}

bool write_frame(Conn& conn, MsgType type, const telemetry::Json& json) {
  return write_frame(conn, type, std::string_view(json.dump()));
}

bool read_frame(Conn& conn, Frame& frame) {
  std::uint8_t header[5];
  if (!conn.read_exact(header, sizeof(header))) return false;
  const std::uint32_t length =
      static_cast<std::uint32_t>(header[0]) |
      static_cast<std::uint32_t>(header[1]) << 8 |
      static_cast<std::uint32_t>(header[2]) << 16 |
      static_cast<std::uint32_t>(header[3]) << 24;
  if (length > kMaxFrameBytes || !known_type(header[4])) return false;
  frame.type = static_cast<MsgType>(header[4]);
  frame.payload.resize(length);
  return length == 0 || conn.read_exact(frame.payload.data(), length);
}

telemetry::Json cell_to_json(const fault::CampaignCell& cell) {
  telemetry::Json json = telemetry::Json::object();
  if (!cell.program.empty()) json["program"] = cell.program;
  if (!cell.workload.empty()) json["workload"] = cell.workload;
  if (cell.scale != 1) json["scale"] = cell.scale;
  json["technique"] = cell.technique;
  json["trials"] = cell.trials;
  json["seed"] = cell.seed;
  if (cell.faults_per_run != 1) json["faults_per_run"] = cell.faults_per_run;
  if (cell.burst != 1) json["burst"] = cell.burst;
  if (cell.store_data) json["store_data"] = true;
  if (cell.prune) json["prune"] = true;
  if (cell.max_half_width != 0.0) json["max_half_width"] = cell.max_half_width;
  if (cell.jobs != 1) json["jobs"] = cell.jobs;
  if (cell.ckpt_stride != 64) json["ckpt_stride"] = cell.ckpt_stride;
  if (cell.batch != 8) json["batch"] = cell.batch;
  if (cell.dispatch != "auto") json["dispatch"] = cell.dispatch;
  return json;
}

namespace {

bool take_string(const telemetry::Json& json, const char* key,
                 std::string& out, std::string& error) {
  const telemetry::Json* value = json.find(key);
  if (value == nullptr) return true;
  if (!value->is_string()) {
    error = std::string("cell field '") + key + "' must be a string";
    return false;
  }
  out = value->as_string();
  return true;
}

bool take_int(const telemetry::Json& json, const char* key, int& out,
              std::string& error) {
  const telemetry::Json* value = json.find(key);
  if (value == nullptr) return true;
  if (!value->is_number() ||
      value->kind() == telemetry::Json::Kind::kDouble) {
    error = std::string("cell field '") + key + "' must be an integer";
    return false;
  }
  // No silent coercion: a value outside int range would truncate in the
  // cast below, so the cell would execute (and cache) under a different
  // knob than the client wrote.
  constexpr std::int64_t kMax = std::numeric_limits<int>::max();
  constexpr std::int64_t kMin = std::numeric_limits<int>::min();
  const bool in_range =
      value->kind() == telemetry::Json::Kind::kUint
          ? value->as_uint() <= static_cast<std::uint64_t>(kMax)
          : value->as_int() >= kMin && value->as_int() <= kMax;
  if (!in_range) {
    error = std::string("cell field '") + key + "' is out of int range";
    return false;
  }
  out = static_cast<int>(value->as_int());
  return true;
}

bool take_double(const telemetry::Json& json, const char* key, double& out,
                 std::string& error) {
  const telemetry::Json* value = json.find(key);
  if (value == nullptr) return true;
  if (!value->is_number()) {
    error = std::string("cell field '") + key + "' must be a number";
    return false;
  }
  out = value->as_double();
  return true;
}

bool take_bool(const telemetry::Json& json, const char* key, bool& out,
               std::string& error) {
  const telemetry::Json* value = json.find(key);
  if (value == nullptr) return true;
  if (value->kind() != telemetry::Json::Kind::kBool) {
    error = std::string("cell field '") + key + "' must be a boolean";
    return false;
  }
  out = value->as_bool();
  return true;
}

}  // namespace

bool cell_from_json(const telemetry::Json& json, fault::CampaignCell& cell,
                    std::string& error) {
  if (!json.is_object()) {
    error = "cell must be a JSON object";
    return false;
  }
  cell = fault::CampaignCell{};  // absent keys mean the documented default
  static constexpr const char* kKnown[] = {
      "program", "workload",       "scale", "technique",  "trials",
      "seed",    "faults_per_run", "burst", "store_data", "prune",
      "jobs",    "ckpt_stride",    "batch", "dispatch",   "max_half_width"};
  for (const auto& [key, value] : json.fields()) {
    (void)value;
    bool known = false;
    for (const char* name : kKnown) known |= key == name;
    if (!known) {
      // Unknown knobs are rejected, not ignored: a typo'd field that
      // silently meant "default" would alias distinct cells in the cache.
      error = "unknown cell field '" + key + "'";
      return false;
    }
  }
  if (!take_string(json, "program", cell.program, error)) return false;
  if (!take_string(json, "workload", cell.workload, error)) return false;
  if (!take_int(json, "scale", cell.scale, error)) return false;
  if (!take_string(json, "technique", cell.technique, error)) return false;
  if (!take_int(json, "trials", cell.trials, error)) return false;
  if (const telemetry::Json* seed = json.find("seed"); seed != nullptr) {
    if (!seed->is_number() ||
        seed->kind() == telemetry::Json::Kind::kDouble) {
      error = "cell field 'seed' must be an integer";
      return false;
    }
    // as_uint would wrap a negative seed to a huge value — a silently
    // different cell than the client wrote.
    if (seed->kind() == telemetry::Json::Kind::kInt && seed->as_int() < 0) {
      error = "cell field 'seed' must be non-negative";
      return false;
    }
    cell.seed = seed->as_uint();
  }
  if (!take_int(json, "faults_per_run", cell.faults_per_run, error)) {
    return false;
  }
  if (!take_int(json, "burst", cell.burst, error)) return false;
  if (!take_bool(json, "store_data", cell.store_data, error)) return false;
  if (!take_bool(json, "prune", cell.prune, error)) return false;
  if (!take_double(json, "max_half_width", cell.max_half_width, error)) {
    return false;
  }
  if (!take_int(json, "jobs", cell.jobs, error)) return false;
  if (!take_int(json, "ckpt_stride", cell.ckpt_stride, error)) return false;
  if (!take_int(json, "batch", cell.batch, error)) return false;
  if (!take_string(json, "dispatch", cell.dispatch, error)) return false;
  return fault::validate_cell(cell, error);
}

}  // namespace ferrum::service
