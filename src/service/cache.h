// Content-addressed result store for the campaign service. Keys are
// SHA-256 hex digests of the canonical cell material (fault/cell.h); the
// value is the deterministic CampaignResult JSON exactly as the campaign
// produced it. Because the key covers every result-affecting knob and
// the value bytes come from the deterministic writer, a lookup either
// misses or returns bytes that are byte-identical to what a fresh
// execution would produce — the store can never serve a stale or
// divergent answer, only save work.
//
// Two tiers: an in-memory map (always on) and an optional directory
// (one "<key>.json" file per entry, written via temp-file + rename so a
// crashed daemon never leaves a torn entry). The directory makes cached
// cells survive daemon restarts and lets daemons share a store.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace ferrum::service {

class ResultCache {
 public:
  /// `dir` empty = memory-only. A non-empty directory is created if
  /// missing; failure to create it degrades to memory-only with a
  /// warning on stderr (the daemon keeps serving).
  explicit ResultCache(std::string dir);

  /// The stored bytes for `key`, or nullopt. A disk entry found on a
  /// memory miss is promoted into memory.
  std::optional<std::string> lookup(const std::string& key);

  /// Stores `bytes` under `key`. First writer wins; a concurrent or
  /// later store of the same key is a no-op (by the determinism
  /// contract its bytes are identical anyway). `replace` overrides
  /// that: the entry is rewritten even if present — needed by values
  /// whose *validation certificates* are context-dependent while their
  /// key deliberately is not (compose's ferrum-section-v1 summaries: an
  /// entry whose certificate went stale must give way to the freshly
  /// re-campaigned one, or its section would stay cold forever).
  void store(const std::string& key, const std::string& bytes,
             bool replace = false);

  /// In-memory entry count (diagnostics only).
  std::size_t entries() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string file_path(const std::string& key) const;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::string> memory_;
  std::string dir_;
};

}  // namespace ferrum::service
