// Blocking client for the campaign service protocol. Used by `ferrumc
// submit`, the service bench and the smoke/unit tests; the API mirrors
// the protocol one call per exchange (see proto.h for the frame spec).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fault/cell.h"
#include "service/proto.h"
#include "support/transport.h"
#include "telemetry/json.h"

namespace ferrum::service {

/// One streamed cell result. `result_bytes` is the deterministic
/// CampaignResult JSON exactly as the daemon stores it — byte-identical
/// across cold/warm queries, worker counts and submission orders.
struct CellResult {
  std::size_t cell = 0;
  std::string key;
  bool cached = false;
  std::string error;            // non-empty = the cell failed to build/run
  std::string result_bytes;     // "" iff error
  telemetry::Json result;       // parsed view of result_bytes
  telemetry::Json wallclock;    // null for cache hits (nothing executed)
};

class Client {
 public:
  /// Wraps an already-connected stream (e.g. one end of a socketpair).
  explicit Client(Conn conn) : conn_(std::move(conn)) {}

  /// Connects to a daemon socket and completes the hello exchange.
  /// Invalid client + description in `error` on failure.
  static Client connect(const std::string& socket_path, std::string& error);

  bool valid() const { return conn_.valid(); }

  /// Version handshake; false on transport failure or proto mismatch.
  bool hello(std::string& error);

  /// Submits a job; returns the job id.
  std::optional<std::uint64_t> submit(
      const std::vector<fault::CampaignCell>& cells, std::string& error);

  /// Point-in-time job snapshot (completed cells, outcome counts so far).
  std::optional<telemetry::Json> status(std::uint64_t job,
                                        std::string& error);

  /// Streams every cell result of `job` in cell order, blocking until
  /// the daemon finishes each; `on_cell` fires once per cell.
  bool results(std::uint64_t job,
               const std::function<void(const CellResult&)>& on_cell,
               std::string& error);

  /// Service counter snapshot ("service/..." registry JSON).
  std::optional<telemetry::Json> stats(std::string& error);

  /// Asks the daemon to stop serving (it acks, then stops accepting).
  bool shutdown_server(std::string& error);

 private:
  std::optional<telemetry::Json> round_trip(MsgType request,
                                            const telemetry::Json& payload,
                                            MsgType expected_reply,
                                            std::string& error);

  Conn conn_;
};

}  // namespace ferrum::service
