// Wire protocol of the campaign service: deterministic length-prefixed
// frames over a byte stream (unix socket or socketpair).
//
// Frame layout (little-endian, fixed — the full spec lives in DESIGN.md):
//
//   [u32 payload_length] [u8 msg_type] [payload_length bytes of payload]
//
// Payloads are JSON produced by the deterministic telemetry writer
// (sorted keys, fixed layout), so a given message value has exactly one
// wire encoding. Conversation:
//
//   client                          daemon
//   ------                          ------
//   kHello {"proto":1}         ->
//                              <-   kHelloReply {"proto":1,...}
//   kSubmit {"cells":[...]}    ->
//                              <-   kJobAccepted {"cells":N,"job":id}
//   kStatus {"job":id}         ->
//                              <-   kStatusReply {... so-far counts ...}
//   kResults {"job":id}        ->
//                              <-   kCellResult {"cell":0,...}   (streamed,
//                              <-   kCellResult {"cell":1,...}    cell order)
//                              <-   kResultsDone {"job":id}
//   kStats {}                  ->
//                              <-   kStatsReply {service registry JSON}
//   kShutdown {}               ->
//                              <-   kShutdownAck {}
//
// Any malformed or unanswerable request is answered with kError
// {"error":"..."} and the connection stays usable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "fault/cell.h"
#include "support/transport.h"
#include "telemetry/json.h"

namespace ferrum::service {

/// Protocol revision; bumped on any frame-layout or payload change.
constexpr std::uint32_t kProtoVersion = 1;

/// Frames larger than this are treated as protocol corruption.
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class MsgType : std::uint8_t {
  // client -> daemon
  kHello = 1,
  kSubmit = 2,
  kStatus = 3,
  kResults = 4,
  kStats = 5,
  kShutdown = 6,
  // daemon -> client
  kHelloReply = 64,
  kJobAccepted = 65,
  kStatusReply = 66,
  kCellResult = 67,
  kResultsDone = 68,
  kStatsReply = 69,
  kShutdownAck = 70,
  kError = 127,
};

const char* msg_type_name(MsgType type);

struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
};

/// Writes one frame; false on a broken stream.
bool write_frame(Conn& conn, MsgType type, std::string_view payload);
/// JSON convenience: payload = json.dump() (the deterministic writer).
bool write_frame(Conn& conn, MsgType type, const telemetry::Json& json);

/// Reads one frame; false on EOF, a broken stream, an unknown type byte
/// or a length above kMaxFrameBytes.
bool read_frame(Conn& conn, Frame& frame);

/// Wire form of a campaign cell. `cell_from_json` fills defaulted fields
/// for absent keys, rejects wrong-typed values and unknown keys (a typo'd
/// knob silently meaning "default" would poison cache keys), and runs
/// fault::validate_cell; false with a description in `error`.
telemetry::Json cell_to_json(const fault::CampaignCell& cell);
bool cell_from_json(const telemetry::Json& json, fault::CampaignCell& cell,
                    std::string& error);

}  // namespace ferrum::service
