#include "service/cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace ferrum::service {

namespace {

bool plausible_key(const std::string& key) {
  if (key.size() != 64) return false;
  for (char c : key) {
    const bool hex =
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return true;
}

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    std::fprintf(stderr,
                 "warning: cannot create cache dir %s (%s); "
                 "running memory-only\n",
                 dir_.c_str(), ec.message().c_str());
    dir_.clear();
  }
}

std::string ResultCache::file_path(const std::string& key) const {
  return dir_ + "/" + key + ".json";
}

std::optional<std::string> ResultCache::lookup(const std::string& key) {
  if (!plausible_key(key)) return std::nullopt;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = memory_.find(key);
    if (it != memory_.end()) return it->second;
  }
  if (dir_.empty()) return std::nullopt;
  std::ifstream in(file_path(key), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string bytes = buffer.str();
  if (!in.good() && !in.eof()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  return memory_.emplace(key, std::move(bytes)).first->second;
}

void ResultCache::store(const std::string& key, const std::string& bytes,
                        const bool replace) {
  if (!plausible_key(key)) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = memory_.emplace(key, bytes);
    if (!inserted) {
      if (!replace || it->second == bytes) return;  // first writer won
      it->second = bytes;
    }
  }
  if (dir_.empty()) return;
  // Temp-file + rename: readers (this daemon after a restart, or a
  // sibling daemon sharing the dir) never observe a torn entry. The
  // temp name is key-unique, so two daemons racing on one key just
  // rename twice — same bytes either way.
  const std::string tmp = dir_ + "/.tmp." + key;
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "warning: cannot write cache entry %s\n",
                 tmp.c_str());
    return;
  }
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  std::fclose(file);
  if (!ok) {
    std::remove(tmp.c_str());
    std::fprintf(stderr, "warning: short write to cache entry %s\n",
                 tmp.c_str());
    return;
  }
  if (std::rename(tmp.c_str(), file_path(key).c_str()) != 0) {
    std::remove(tmp.c_str());
  }
}

std::size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return memory_.size();
}

}  // namespace ferrum::service
