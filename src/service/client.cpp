#include "service/client.h"

namespace ferrum::service {

Client Client::connect(const std::string& socket_path, std::string& error) {
  Client client(connect_unix(socket_path, &error));
  if (client.valid() && !client.hello(error)) client.conn_.close();
  return client;
}

std::optional<telemetry::Json> Client::round_trip(
    MsgType request, const telemetry::Json& payload, MsgType expected_reply,
    std::string& error) {
  if (!write_frame(conn_, request, payload)) {
    error = std::string("cannot send ") + msg_type_name(request);
    return std::nullopt;
  }
  Frame reply;
  if (!read_frame(conn_, reply)) {
    error = std::string("connection lost awaiting ") +
            msg_type_name(expected_reply);
    return std::nullopt;
  }
  std::optional<telemetry::Json> json = telemetry::Json::parse(reply.payload);
  if (!json.has_value()) {
    error = "malformed reply payload";
    return std::nullopt;
  }
  if (reply.type == MsgType::kError) {
    const telemetry::Json* message = json->find("error");
    error = message != nullptr && message->is_string()
                ? message->as_string()
                : "unspecified daemon error";
    return std::nullopt;
  }
  if (reply.type != expected_reply) {
    error = std::string("expected ") + msg_type_name(expected_reply) +
            ", got " + msg_type_name(reply.type);
    return std::nullopt;
  }
  return json;
}

bool Client::hello(std::string& error) {
  telemetry::Json payload = telemetry::Json::object();
  payload["proto"] = static_cast<std::uint64_t>(kProtoVersion);
  const std::optional<telemetry::Json> reply =
      round_trip(MsgType::kHello, payload, MsgType::kHelloReply, error);
  if (!reply.has_value()) return false;
  const telemetry::Json* proto = reply->find("proto");
  if (proto == nullptr || !proto->is_number() ||
      proto->as_uint() != kProtoVersion) {
    error = "daemon speaks a different protocol version";
    return false;
  }
  return true;
}

std::optional<std::uint64_t> Client::submit(
    const std::vector<fault::CampaignCell>& cells, std::string& error) {
  telemetry::Json payload = telemetry::Json::object();
  telemetry::Json array = telemetry::Json::array();
  for (const fault::CampaignCell& cell : cells) {
    array.push_back(cell_to_json(cell));
  }
  payload["cells"] = array;
  const std::optional<telemetry::Json> reply =
      round_trip(MsgType::kSubmit, payload, MsgType::kJobAccepted, error);
  if (!reply.has_value()) return std::nullopt;
  const telemetry::Json* job = reply->find("job");
  if (job == nullptr || !job->is_number()) {
    error = "job-accepted reply carries no job id";
    return std::nullopt;
  }
  return job->as_uint();
}

std::optional<telemetry::Json> Client::status(std::uint64_t job,
                                              std::string& error) {
  telemetry::Json payload = telemetry::Json::object();
  payload["job"] = job;
  return round_trip(MsgType::kStatus, payload, MsgType::kStatusReply, error);
}

bool Client::results(std::uint64_t job,
                     const std::function<void(const CellResult&)>& on_cell,
                     std::string& error) {
  telemetry::Json payload = telemetry::Json::object();
  payload["job"] = job;
  if (!write_frame(conn_, MsgType::kResults, payload)) {
    error = "cannot send results request";
    return false;
  }
  Frame frame;
  while (read_frame(conn_, frame)) {
    std::optional<telemetry::Json> json =
        telemetry::Json::parse(frame.payload);
    if (!json.has_value()) {
      error = "malformed stream payload";
      return false;
    }
    if (frame.type == MsgType::kError) {
      const telemetry::Json* message = json->find("error");
      error = message != nullptr && message->is_string()
                  ? message->as_string()
                  : "unspecified daemon error";
      return false;
    }
    if (frame.type == MsgType::kResultsDone) return true;
    if (frame.type != MsgType::kCellResult) {
      error = std::string("unexpected ") + msg_type_name(frame.type) +
              " in result stream";
      return false;
    }
    CellResult cell;
    if (const telemetry::Json* index = json->find("cell");
        index != nullptr && index->is_number()) {
      cell.cell = static_cast<std::size_t>(index->as_uint());
    }
    if (const telemetry::Json* key = json->find("key");
        key != nullptr && key->is_string()) {
      cell.key = key->as_string();
    }
    if (const telemetry::Json* cached = json->find("cached");
        cached != nullptr) {
      cell.cached = cached->as_bool();
    }
    if (const telemetry::Json* err = json->find("error");
        err != nullptr && err->is_string()) {
      cell.error = err->as_string();
    }
    if (const telemetry::Json* result = json->find("result");
        result != nullptr) {
      cell.result = *result;
      // The dump of the embedded object IS the stored bytes: both sides
      // of the round trip use the deterministic writer.
      cell.result_bytes = result->dump();
    }
    if (const telemetry::Json* wallclock = json->find("wallclock");
        wallclock != nullptr) {
      cell.wallclock = *wallclock;
    }
    on_cell(cell);
  }
  error = "connection lost mid-stream";
  return false;
}

std::optional<telemetry::Json> Client::stats(std::string& error) {
  return round_trip(MsgType::kStats, telemetry::Json::object(),
                    MsgType::kStatsReply, error);
}

bool Client::shutdown_server(std::string& error) {
  return round_trip(MsgType::kShutdown, telemetry::Json::object(),
                    MsgType::kShutdownAck, error)
      .has_value();
}

}  // namespace ferrum::service
