#include "service/service.h"

#include <exception>
#include <utility>

#include "check/prune.h"
#include "fault/campaign.h"
#include "pipeline/pipeline.h"
#include "service/proto.h"
#include "support/hash.h"
#include "telemetry/export.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ferrum::service {

namespace {

/// Outcome counters of a stored result, re-read from its bytes (cache
/// hits never re-run the campaign, but status streaming still wants the
/// counts).
std::array<std::uint64_t, 4> counts_from_result(const std::string& bytes) {
  std::array<std::uint64_t, 4> counts{};
  const std::optional<telemetry::Json> json = telemetry::Json::parse(bytes);
  if (!json.has_value()) return counts;
  const telemetry::Json* outcomes = json->find("outcomes");
  if (outcomes == nullptr) return counts;
  static constexpr const char* kNames[] = {"benign", "sdc", "detected",
                                           "crash"};
  for (int i = 0; i < 4; ++i) {
    const telemetry::Json* value = outcomes->find(kNames[i]);
    if (value != nullptr && value->is_number()) {
      counts[static_cast<std::size_t>(i)] = value->as_uint();
    }
  }
  return counts;
}

telemetry::Json status_to_json(const JobStatus& status) {
  telemetry::Json json = telemetry::Json::object();
  json["job"] = status.job;
  json["cells"] = static_cast<std::uint64_t>(status.cells);
  json["completed"] = static_cast<std::uint64_t>(status.completed);
  json["failed"] = static_cast<std::uint64_t>(status.failed);
  json["done"] = status.done();
  telemetry::Json outcomes = telemetry::Json::object();
  outcomes["benign"] = status.outcomes_so_far[0];
  outcomes["sdc"] = status.outcomes_so_far[1];
  outcomes["detected"] = status.outcomes_so_far[2];
  outcomes["crash"] = status.outcomes_so_far[3];
  json["outcomes_so_far"] = outcomes;
  // Live interval half-widths over the same snapshot — wall-clock-
  // quarantined like every "so far" field (the deterministic intervals
  // ship in the result's adaptive section).
  json["half_widths"] =
      telemetry::outcome_half_widths_json(status.outcomes_so_far);
  return json;
}

}  // namespace

Daemon::Daemon(ServiceOptions options)
    : options_(std::move(options)), cache_(options_.cache_dir) {
  if (options_.workers < 1) options_.workers = 1;
  queues_.resize(static_cast<std::size_t>(options_.workers));
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back(&Daemon::worker_loop, this, w);
  }
}

Daemon::~Daemon() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_workers_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::uint64_t Daemon::submit(std::vector<fault::CampaignCell> cells) {
  auto job = std::make_unique<Job>();
  job->tasks.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    auto task = std::make_unique<Task>();
    task->cell = std::move(cells[i]);
    task->job = job.get();
    task->index = i;
    job->tasks.push_back(std::move(task));
  }
  metrics_.counter("service/jobs").add(1);
  metrics_.counter("service/cells/submitted").add(job->tasks.size());
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_job_++;
    job->id = id;
    for (const auto& task : job->tasks) {
      const std::size_t q =
          static_cast<std::size_t>(next_spread_++ % queues_.size());
      queues_[q].push_back(task.get());
    }
    const bool empty = job->tasks.empty();
    jobs_.emplace(id, std::move(job));
    if (empty) done_cv_.notify_all();  // an empty job is born done
  }
  work_cv_.notify_all();
  return id;
}

JobStatus Daemon::status(std::uint64_t job_id) const {
  JobStatus status;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return status;
  const Job& job = *it->second;
  status.known = true;
  status.job = job_id;
  status.cells = job.tasks.size();
  status.completed = job.completed;
  status.failed = job.failed;
  for (const auto& task : job.tasks) {
    if (task->outcome.done) {
      for (int i = 0; i < 4; ++i) {
        status.outcomes_so_far[static_cast<std::size_t>(i)] +=
            task->outcome.counts[static_cast<std::size_t>(i)];
      }
    } else {
      // Live counts of an executing cell (zero for still-queued ones).
      for (int i = 0; i < 4; ++i) {
        status.outcomes_so_far[static_cast<std::size_t>(i)] +=
            task->progress.count(static_cast<fault::Outcome>(i));
      }
    }
  }
  return status;
}

const CellOutcome* Daemon::wait_cell(std::uint64_t job_id,
                                     std::size_t index) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end() || index >= it->second->tasks.size()) return nullptr;
  Task& task = *it->second->tasks[index];
  done_cv_.wait(lock, [&] { return task.outcome.done; });
  return &task.outcome;
}

std::size_t Daemon::job_cells(std::uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job_id);
  return it == jobs_.end() ? 0 : it->second->tasks.size();
}

Daemon::Task* Daemon::claim_task(int worker) {
  const std::size_t own = static_cast<std::size_t>(worker);
  if (!queues_[own].empty()) {
    Task* task = queues_[own].front();
    queues_[own].pop_front();
    return task;
  }
  // Steal from the back of the busiest sibling — opposite end from the
  // owner's pops, classic deque discipline (here both ends are under the
  // same lock; the discipline just keeps stolen cells the freshest ones).
  std::size_t victim = own;
  std::size_t best = 0;
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    if (q != own && queues_[q].size() > best) {
      best = queues_[q].size();
      victim = q;
    }
  }
  if (best == 0) return nullptr;
  Task* task = queues_[victim].back();
  queues_[victim].pop_back();
  metrics_.counter("service/steals").add(1);
  return task;
}

void Daemon::worker_loop(int worker) {
  while (true) {
    Task* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_workers_ || (task = claim_task(worker)) != nullptr;
      });
      if (task == nullptr) return;  // stop_workers_
      task->running = true;
    }
    execute(*task);
  }
}

void Daemon::finish(Task& task, CellOutcome outcome) {
  outcome.done = true;
  metrics_.counter("service/cells/completed").add(1);
  if (!outcome.error.empty()) {
    metrics_.counter("service/cells/failed").add(1);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task.outcome = std::move(outcome);
    task.running = false;
    ++task.job->completed;
    if (!task.outcome.error.empty()) ++task.job->failed;
  }
  done_cv_.notify_all();
}

std::shared_ptr<const masm::AsmProgram> Daemon::build_program(
    const fault::CampaignCell& cell, const std::string& source) {
  const std::string memo_key =
      sha256_hex(cell.technique + "\n" + source);
  {
    std::lock_guard<std::mutex> lock(programs_mutex_);
    const auto it = programs_.find(memo_key);
    if (it != programs_.end()) {
      metrics_.counter("service/progcache/hits").add(1);
      return it->second;
    }
  }
  metrics_.counter("service/progcache/misses").add(1);
  pipeline::Technique technique = pipeline::Technique::kFerrum;
  if (cell.technique == "none") technique = pipeline::Technique::kNone;
  if (cell.technique == "ir-eddi") technique = pipeline::Technique::kIrEddi;
  if (cell.technique == "hybrid") technique = pipeline::Technique::kHybrid;
  // Built outside the lock: two racing builds of the same program both
  // succeed deterministically; the loser's copy is dropped.
  auto program = std::make_shared<masm::AsmProgram>(
      pipeline::build(source, technique).program);
  std::lock_guard<std::mutex> lock(programs_mutex_);
  return programs_.emplace(memo_key, std::move(program)).first->second;
}

std::shared_ptr<const SharedProgramState> Daemon::program_state(
    const std::shared_ptr<const masm::AsmProgram>& program,
    const std::string& program_sha256, bool store_data) {
  // The golden run depends on fault_store_data (it renumbers the dynamic
  // FI sites), so it shares only within the same setting. Engine knobs
  // (stride/dispatch) are result-invariant and deliberately absent.
  const std::string key = program_sha256 + (store_data ? "+sd" : "");
  {
    std::unique_lock<std::mutex> lock(prepared_mutex_);
    for (;;) {
      const auto it = prepared_.find(key);
      if (it != prepared_.end()) {
        metrics_.counter("service/golden/reused").add(1);
        return it->second;
      }
      if (preparing_.count(key) == 0) break;
      prepared_cv_.wait(lock);
    }
    preparing_.insert(key);
  }
  // The golden walk runs outside the lock; racing requests for the same
  // key wait on preparing_ above, so it still happens exactly once.
  std::shared_ptr<const SharedProgramState> state;
  try {
    vm::VmOptions vm;
    vm.fault_store_data = store_data;
    state = std::make_shared<const SharedProgramState>(program, vm,
                                                       /*ckpt_stride=*/64);
  } catch (...) {
    std::lock_guard<std::mutex> lock(prepared_mutex_);
    preparing_.erase(key);
    prepared_cv_.notify_all();
    throw;
  }
  metrics_.counter("service/golden/built").add(1);
  std::lock_guard<std::mutex> lock(prepared_mutex_);
  preparing_.erase(key);
  prepared_.emplace(key, state);
  prepared_cv_.notify_all();
  return state;
}

void Daemon::execute(Task& task) {
  CellOutcome outcome;
  try {
    const fault::CampaignCell& cell = task.cell;
    std::string validation_error;
    if (!fault::validate_cell(cell, validation_error)) {
      outcome.error = validation_error;
      finish(task, std::move(outcome));
      return;
    }
    if (cell.dispatch == "threaded" && !vm::threaded_dispatch_available()) {
      outcome.error = "this build has no threaded dispatch";
      finish(task, std::move(outcome));
      return;
    }
    const std::string source =
        cell.workload.empty()
            ? cell.program
            : workloads::scaled(cell.workload, cell.scale).source;
    const std::shared_ptr<const masm::AsmProgram> program =
        build_program(cell, source);
    const std::string program_sha = fault::program_hash(*program);
    const std::string key =
        sha256_hex(fault::cell_key_material(cell, program_sha));
    outcome.key = key;

    // Fast path, then in-flight coalescing, then execution. A second
    // identical cell arriving while the first executes waits on the
    // flight set and is answered from the store — never a duplicate run.
    std::optional<std::string> stored = cache_.lookup(key);
    bool coalesced = false;
    if (!stored.has_value()) {
      std::unique_lock<std::mutex> lock(flight_mutex_);
      while (in_flight_.count(key) != 0) {
        coalesced = true;
        flight_cv_.wait(lock);
      }
      stored = cache_.lookup(key);
      if (!stored.has_value()) in_flight_.insert(key);
    }
    if (stored.has_value()) {
      metrics_.counter("service/cache/hits").add(1);
      if (coalesced) metrics_.counter("service/cache/coalesced").add(1);
      outcome.result_json = std::move(*stored);
      outcome.counts = counts_from_result(outcome.result_json);
      outcome.cached = true;
      finish(task, std::move(outcome));
      return;
    }

    metrics_.counter("service/cache/misses").add(1);
    try {
      fault::CampaignOptions options = fault::to_campaign_options(cell);
      options.progress = &task.progress;
      check::prune::PruneReport prune_report;
      std::shared_ptr<const SharedProgramState> shared;
      if (cell.prune) {
        check::prune::PruneOptions prune_options;
        prune_options.store_data_sites = options.vm.fault_store_data;
        prune_report = check::prune::prune_program(*program, prune_options);
        options.prune = &prune_report;
      } else {
        // Cross-cell reuse: the golden walk for this program happened at
        // most once, no matter how many cells of it are in flight. The
        // pruned path keeps its own golden run (it needs the site-pc
        // instrumentation a shared capture cannot carry).
        shared = program_state(program, program_sha, cell.store_data);
        options.prepared = &shared->prepared;
      }
      const fault::CampaignResult result =
          fault::run_campaign(*program, options);
      outcome.result_json = telemetry::to_json(result).dump();
      outcome.wallclock_json = telemetry::wallclock_json(result).dump();
      for (int i = 0; i < 4; ++i) {
        outcome.counts[static_cast<std::size_t>(i)] = static_cast<
            std::uint64_t>(result.count(static_cast<fault::Outcome>(i)));
      }
      cache_.store(key, outcome.result_json);
      metrics_.counter("service/cells/executed").add(1);
      metrics_.counter("service/trials_executed")
          .add(result.prune.enabled
                   ? result.prune.pilot_runs
                   : static_cast<std::uint64_t>(result.trials()));
    } catch (...) {
      std::lock_guard<std::mutex> lock(flight_mutex_);
      in_flight_.erase(key);
      flight_cv_.notify_all();
      throw;
    }
    {
      std::lock_guard<std::mutex> lock(flight_mutex_);
      in_flight_.erase(key);
    }
    flight_cv_.notify_all();
  } catch (const std::exception& error) {
    outcome.error = error.what();
  } catch (...) {
    outcome.error = "unknown execution failure";
  }
  finish(task, std::move(outcome));
}

void Daemon::serve(Listener& listener) {
  {
    std::lock_guard<std::mutex> lock(serve_mutex_);
    serving_ = &listener;
    stop_serving_ = false;
  }
  std::vector<std::thread> handlers;
  while (true) {
    Conn conn = listener.accept();
    if (!conn.valid()) break;
    handlers.emplace_back(&Daemon::handle_connection, this,
                          std::move(conn));
  }
  for (std::thread& handler : handlers) handler.join();
  std::lock_guard<std::mutex> lock(serve_mutex_);
  serving_ = nullptr;
}

void Daemon::handle_connection(Conn conn) {
  Frame frame;
  const auto reply_error = [&](const std::string& message) {
    telemetry::Json json = telemetry::Json::object();
    json["error"] = message;
    return write_frame(conn, MsgType::kError, json);
  };
  while (read_frame(conn, frame)) {
    std::optional<telemetry::Json> payload;
    if (!frame.payload.empty()) {
      payload = telemetry::Json::parse(frame.payload);
      if (!payload.has_value()) {
        if (!reply_error("malformed JSON payload")) break;
        continue;
      }
    }
    const auto payload_job = [&]() -> std::optional<std::uint64_t> {
      if (!payload.has_value()) return std::nullopt;
      const telemetry::Json* job = payload->find("job");
      if (job == nullptr || !job->is_number()) return std::nullopt;
      return job->as_uint();
    };
    bool ok = true;
    switch (frame.type) {
      case MsgType::kHello: {
        telemetry::Json json = telemetry::Json::object();
        json["proto"] = static_cast<std::uint64_t>(kProtoVersion);
        json["service"] = "ferrumd";
        json["workers"] = options_.workers;
        json["cache_dir"] = cache_.dir();
        ok = write_frame(conn, MsgType::kHelloReply, json);
        break;
      }
      case MsgType::kSubmit: {
        const telemetry::Json* cells_json =
            payload.has_value() ? payload->find("cells") : nullptr;
        if (cells_json == nullptr || !cells_json->is_array() ||
            cells_json->size() == 0) {
          ok = reply_error("submit needs a non-empty 'cells' array");
          break;
        }
        std::vector<fault::CampaignCell> cells;
        cells.reserve(cells_json->size());
        std::string cell_error;
        bool valid = true;
        for (const telemetry::Json& item : cells_json->items()) {
          fault::CampaignCell cell;
          if (!cell_from_json(item, cell, cell_error)) {
            ok = reply_error("cell " + std::to_string(cells.size()) +
                             ": " + cell_error);
            valid = false;
            break;
          }
          cells.push_back(std::move(cell));
        }
        if (!valid) break;
        const std::size_t count = cells.size();
        const std::uint64_t job = submit(std::move(cells));
        telemetry::Json json = telemetry::Json::object();
        json["job"] = job;
        json["cells"] = static_cast<std::uint64_t>(count);
        ok = write_frame(conn, MsgType::kJobAccepted, json);
        break;
      }
      case MsgType::kStatus: {
        const std::optional<std::uint64_t> job = payload_job();
        if (!job.has_value()) {
          ok = reply_error("status needs a 'job' id");
          break;
        }
        const JobStatus snapshot = status(*job);
        if (!snapshot.known) {
          ok = reply_error("unknown job " + std::to_string(*job));
          break;
        }
        ok = write_frame(conn, MsgType::kStatusReply,
                         status_to_json(snapshot));
        break;
      }
      case MsgType::kResults: {
        const std::optional<std::uint64_t> job = payload_job();
        if (!job.has_value() || !status(*job).known) {
          ok = reply_error("results needs a known 'job' id");
          break;
        }
        const std::size_t cells = job_cells(*job);
        for (std::size_t i = 0; ok && i < cells; ++i) {
          const CellOutcome* outcome = wait_cell(*job, i);
          telemetry::Json json = telemetry::Json::object();
          json["cell"] = static_cast<std::uint64_t>(i);
          json["key"] = outcome->key;
          json["cached"] = outcome->cached;
          if (!outcome->error.empty()) {
            json["error"] = outcome->error;
          } else {
            // Parse-then-embed keeps the bytes canonical: the stored
            // value came from the deterministic writer, so re-dumping it
            // inside this frame reproduces it byte-for-byte.
            json["result"] =
                *telemetry::Json::parse(outcome->result_json);
            if (!outcome->wallclock_json.empty()) {
              json["wallclock"] =
                  *telemetry::Json::parse(outcome->wallclock_json);
            }
          }
          ok = write_frame(conn, MsgType::kCellResult, json);
        }
        if (ok) {
          telemetry::Json json = telemetry::Json::object();
          json["job"] = *job;
          ok = write_frame(conn, MsgType::kResultsDone, json);
        }
        break;
      }
      case MsgType::kStats: {
        ok = write_frame(conn, MsgType::kStatsReply,
                         metrics_.to_json(/*include_timers=*/true));
        break;
      }
      case MsgType::kShutdown: {
        write_frame(conn, MsgType::kShutdownAck, telemetry::Json::object());
        {
          std::lock_guard<std::mutex> lock(serve_mutex_);
          stop_serving_ = true;
          if (serving_ != nullptr) serving_->shutdown();
        }
        // Hang up after the ack: serve() joins every handler on its way
        // out, so a shutdown client that lingers on an open connection
        // must not keep this handler (and therefore serve()) alive.
        return;
      }
      default:
        ok = reply_error(std::string("unexpected message type '") +
                         msg_type_name(frame.type) + "'");
        break;
    }
    if (!ok) break;
  }
}

}  // namespace ferrum::service
