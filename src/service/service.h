// ferrumd — fault-injection-as-a-service. A long-running daemon that
// accepts *jobs* (lists of campaign cells, see fault/cell.h), executes
// them on a work-stealing pool of service workers (each cell reusing the
// predecode + checkpoint + batch campaign machinery underneath), and
// fronts everything with the content-addressed result cache: a cell
// whose key was already computed — by this job, an earlier job, or a
// daemon that shared the cache directory — is answered from the store
// byte-identically, without executing a single trial.
//
// Determinism contract: a cell's result bytes are a pure function of its
// spec. Worker count, submission order, stealing, cache state and the
// cold/warm distinction can never change them — only whether the bytes
// were recomputed or copied. tests/test_service.cpp and the
// service_smoke ctest assert this across worker counts and submission
// orders, and the TSan preset vets the pool.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fault/cell.h"
#include "masm/masm.h"
#include "service/cache.h"
#include "support/transport.h"
#include "telemetry/metrics.h"

namespace ferrum::service {

struct ServiceOptions {
  /// Service worker threads = campaign cells in flight at once. Each
  /// cell still fans out over its own inner `jobs` pool. Result-
  /// invariant by contract.
  int workers = 2;
  /// Content-addressed store directory; empty = in-memory only.
  std::string cache_dir;
};

/// Per-program engine state shared across cells: the predecode, golden
/// run and checkpoint set (fault::PreparedCampaign) plus shared ownership
/// of the program the predecode points into. Built once per
/// (program hash, store_data) under a program-hash lock and handed
/// read-only to every campaign of that program — N cells over different
/// seeds/trials/techniques-that-built-the-same-assembly no longer each
/// redo the golden walk. Refcounted: a cell holds its shared_ptr for the
/// duration of its run, so the state can never die under a campaign.
struct SharedProgramState {
  SharedProgramState(std::shared_ptr<const masm::AsmProgram> prog,
                     const vm::VmOptions& vm, int ckpt_stride)
      : program(std::move(prog)), prepared(*program, vm, ckpt_stride) {}

  std::shared_ptr<const masm::AsmProgram> program;  // keeps decode alive
  fault::PreparedCampaign prepared;
};

/// The finished state of one cell. `result_json` holds the deterministic
/// CampaignResult bytes (empty iff `error` is set); `wallclock_json` the
/// scheduling-dependent observability of the execution that produced
/// them (empty for cache hits — nothing ran).
struct CellOutcome {
  std::string key;             // content-address ("" until resolved)
  std::string result_json;
  std::string wallclock_json;
  std::string error;           // build/validation/engine failure
  std::array<std::uint64_t, 4> counts{};  // result outcome counters
  bool cached = false;         // answered by the store, zero trials run
  bool done = false;
};

/// A mid-flight snapshot of a job (wall-clock-quarantined: the completed
/// subset depends on scheduling, the per-cell bytes do not).
struct JobStatus {
  bool known = false;
  std::uint64_t job = 0;
  std::size_t cells = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  /// Outcome counts summed over completed cells plus the live
  /// CampaignProgress of cells still executing.
  std::array<std::uint64_t, 4> outcomes_so_far{};
  bool done() const { return completed == cells; }
};

class Daemon {
 public:
  explicit Daemon(ServiceOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Enqueues a job; cells are dealt round-robin to the worker deques
  /// (idle workers steal, so distribution only shapes wall-clock).
  /// Returns the job id (dense, starting at 1).
  std::uint64_t submit(std::vector<fault::CampaignCell> cells);

  /// Snapshot of a job in flight. `known == false` for unknown ids.
  JobStatus status(std::uint64_t job) const;

  /// Blocks until cell `index` of `job` completes; nullptr for unknown
  /// coordinates. The returned outcome stays valid for the daemon's
  /// lifetime.
  const CellOutcome* wait_cell(std::uint64_t job, std::size_t index);

  std::size_t job_cells(std::uint64_t job) const;

  /// Service counters (cache hits/misses/coalesced, cells executed,
  /// trials executed, steals, ...) under "service/...".
  telemetry::Registry& metrics() { return metrics_; }

  /// Serves the framing protocol on `listener` until a client sends
  /// kShutdown (or the listener is shut down externally). Blocks; run it
  /// on a dedicated thread to keep using the in-process API.
  void serve(Listener& listener);

  const ServiceOptions& options() const { return options_; }

 private:
  struct Job;
  struct Task {
    fault::CampaignCell cell;
    fault::CampaignProgress progress;
    CellOutcome outcome;
    Job* job = nullptr;
    std::size_t index = 0;
    bool running = false;
  };
  struct Job {
    std::uint64_t id = 0;
    std::vector<std::unique_ptr<Task>> tasks;
    std::size_t completed = 0;
    std::size_t failed = 0;
  };

  void worker_loop(int worker);
  Task* claim_task(int worker);  // under mutex_; nullptr = nothing queued
  void execute(Task& task);
  void finish(Task& task, CellOutcome outcome);
  void handle_connection(Conn conn);

  /// The built program for (technique, source), memoised so warm cells
  /// skip the pipeline too, not just the engine.
  std::shared_ptr<const masm::AsmProgram> build_program(
      const fault::CampaignCell& cell, const std::string& source);

  /// The shared golden state for (program hash, store_data). One caller
  /// builds it (counter "service/golden/built"); concurrent requests for
  /// the same key wait on the build instead of redoing the golden walk,
  /// and later cells reuse it ("service/golden/reused").
  std::shared_ptr<const SharedProgramState> program_state(
      const std::shared_ptr<const masm::AsmProgram>& program,
      const std::string& program_sha256, bool store_data);

  ServiceOptions options_;
  ResultCache cache_;
  telemetry::Registry metrics_;

  mutable std::mutex mutex_;            // jobs_, queues_, stop_workers_
  std::condition_variable work_cv_;     // workers: new task / shutdown
  std::condition_variable done_cv_;     // waiters: a task completed
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::vector<std::deque<Task*>> queues_;  // one per worker
  std::uint64_t next_job_ = 1;
  std::uint64_t next_spread_ = 0;       // round-robin cursor for submit
  bool stop_workers_ = false;
  std::vector<std::thread> workers_;

  std::mutex programs_mutex_;
  std::unordered_map<std::string, std::shared_ptr<const masm::AsmProgram>>
      programs_;

  // Cross-cell golden-state sharing (see SharedProgramState). The
  // building set plays the same role in_flight_ plays for results:
  // exactly one golden walk per key, ever.
  std::mutex prepared_mutex_;
  std::condition_variable prepared_cv_;
  std::unordered_map<std::string, std::shared_ptr<const SharedProgramState>>
      prepared_;
  std::unordered_set<std::string> preparing_;

  // In-flight coalescing: identical cells submitted concurrently execute
  // once; the second waits and is answered from the store.
  std::mutex flight_mutex_;
  std::condition_variable flight_cv_;
  std::unordered_set<std::string> in_flight_;

  std::mutex serve_mutex_;              // stop_serving_ + listener handle
  Listener* serving_ = nullptr;
  bool stop_serving_ = false;
};

}  // namespace ferrum::service
