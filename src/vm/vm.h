// MiniASM virtual machine: functional emulator + fault-injection hooks +
// a port/dependency timing model (see timing.h).
//
// Fault model (paper Sec II-A / IV-A2): a single bit flip in the
// destination of one dynamically sampled instruction. Each executed
// instruction contributes at most one fault-injection *site*, classified
// by what it writes:
//   kGprWrite        destination general-purpose register
//   kXmmWrite        destination SIMD register (written lane bits)
//   kFlagsWrite      RFLAGS producers (cmp / test / ucomisd / vptest)
//   kStoreData       value written to memory (mov-to-mem, push, call's
//                    return address)
//   kBranchDecision  conditional-jump resolution (the taken bit)
// A campaign first profiles the site count, then samples (site, bit)
// uniformly — one fault per run, exactly as in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "masm/fault_site.h"
#include "masm/masm.h"
#include "vm/profile.h"
#include "vm/timing.h"

namespace ferrum::vm {

enum class ExitStatus : std::uint8_t {
  kOk,
  kDetected,      // a protection checker fired (DetectTrap)
  kTrapMemory,    // out-of-bounds access or stack overflow
  kTrapDivide,    // integer divide by zero / overflow
  kTrapSteps,     // step budget exhausted (livelock)
  kTrapInvalid,   // invalid jump target / return address / opcode use
};

const char* exit_status_name(ExitStatus status);

/// The site taxonomy is shared with the static layers (check::SiteKind,
/// check::prune) via masm/fault_site.h so it cannot drift.
using FaultKind = masm::FaultSiteKind;

const char* fault_kind_name(FaultKind kind);

/// One planned fault: flip `burst` adjacent bits starting at `bit` of
/// dynamic FI site number `site`. burst=1 is the paper's single-bit
/// model; burst>1 models multi-bit upsets in one word (the paper's
/// stated future work).
struct FaultSpec {
  std::uint64_t site = 0;
  int bit = 0;
  int burst = 1;
};

/// Description of the site a fault actually landed on (for analysis).
struct FaultLanding {
  FaultKind kind = FaultKind::kGprWrite;
  masm::InstOrigin origin = masm::InstOrigin::kFromIR;
  masm::Op op = masm::Op::kMov;
  std::string function;
  /// Static coordinates of the instruction the fault landed on, so a
  /// dynamic escape can be keyed against the static coverage table
  /// (check::SiteRecord uses the same block/inst indices).
  int block = 0;
  int inst = 0;
};

/// Inner-loop dispatch strategy. kSwitch is the portable reference
/// interpreter (one big switch per step); kThreaded is the computed-goto
/// threaded loop with superinstruction fusion, available on GCC/Clang
/// builds unless FERRUM_DISPATCH=switch was set at configure time.
/// kAuto resolves to threaded when available, overridable at runtime via
/// the FERRUM_DISPATCH environment variable ("switch" | "threaded").
/// Dispatch never changes results — equivalence is asserted by
/// tests/test_engine.cpp down to byte-identical campaign/audit JSON —
/// only throughput.
enum class DispatchMode : std::uint8_t { kAuto, kSwitch, kThreaded };

/// True when this build carries the computed-goto threaded loop (GNU-
/// compatible compiler, not forced off via -DFERRUM_DISPATCH=switch).
bool threaded_dispatch_available();

struct VmOptions {
  std::uint64_t max_steps = 50'000'000;
  std::size_t memory_bytes = 1u << 24;
  /// Enumerate kStoreData fault sites. The paper's fault model injects
  /// into the *destination register* of instructions, and stores have
  /// none — so this is off by default; turning it on gives the extended
  /// fault model evaluated by bench/ablation_storedata.
  bool fault_store_data = false;
  /// Run the timing model alongside execution (adds ~2x cost).
  bool timing = false;
  TimingParams timing_params;
  /// Collect a VmProfile (instruction mix, site tallies, hot blocks)
  /// alongside execution — a few array increments per step.
  bool profile = false;
  /// Record the first `trace_limit` executed instructions (rendered text
  /// plus the value each wrote) into VmResult::trace — a debugging aid.
  std::size_t trace_limit = 0;
  /// Inner-loop dispatch strategy (see DispatchMode).
  DispatchMode dispatch = DispatchMode::kAuto;
  /// Golden rejoin: a checkpointed faulty trial that, after its last
  /// fault has fired, reaches a golden checkpoint boundary in *exactly*
  /// the golden state (registers, flags, memory, output, counters) has a
  /// provably golden tail — the engine adopts the golden final result
  /// instead of re-executing it. Result-exact by construction (the VM is
  /// deterministic), asserted byte-identical by tests; off only for
  /// engine-cost baselines. Ignored when no checkpoints are in play.
  bool golden_rejoin = true;
  /// Record which functions a trial's *post-fault* execution entered
  /// (VmResult::touched_functions) — the code a cached per-section
  /// summary depends on beyond the section itself. Off by default: the
  /// accounting costs a couple of branches on call/ret.
  bool track_touched_functions = false;
};

struct VmResult {
  ExitStatus status = ExitStatus::kOk;
  std::vector<std::uint64_t> output;
  std::int64_t return_value = 0;
  /// Dynamic instructions executed.
  std::uint64_t steps = 0;
  /// Dynamic fault-injection sites encountered.
  std::uint64_t fi_sites = 0;
  /// Estimated cycles (only when VmOptions::timing).
  std::uint64_t cycles = 0;
  /// Per-port/per-origin cycle attribution and stall breakdown (only
  /// when VmOptions::timing).
  std::optional<TimingStats> timing_stats;
  /// Dynamic profile (only when VmOptions::profile).
  std::optional<VmProfile> profile;
  /// Set when a FaultSpec was supplied and its site was reached.
  bool fault_injected = false;
  std::optional<FaultLanding> fault_landing;
  /// Dynamic instruction index at which the (first) fault was injected;
  /// with `steps` at detection this gives the detection latency.
  std::uint64_t fault_step = 0;
  /// Execution trace (when VmOptions::trace_limit > 0): one line per
  /// executed instruction, "function/block: rendered-instruction".
  std::vector<std::string> trace;
  /// Bitmask of functions entered after the (first) fault fired, plus
  /// the function the fault landed in (when
  /// VmOptions::track_touched_functions). Bit i = function index i;
  /// bit 63 is an overflow bucket meaning "function 63 or beyond" —
  /// consumers must treat it as "possibly every function".
  std::uint64_t touched_functions = 0;
  /// Golden rejoin outcome of this trial (engine runs only): whether the
  /// tail was adopted from the golden summary, and the fi_sites count of
  /// the checkpoint boundary where the state matched.
  bool rejoined = false;
  std::uint64_t rejoin_site = 0;

  bool ok() const { return status == ExitStatus::kOk; }
};

/// Executes `main` of the program. If `fault` is given, injects that
/// single fault when its site is reached.
VmResult run(const masm::AsmProgram& program, const VmOptions& options = {},
             const FaultSpec* fault = nullptr);

/// Multi-fault execution: every spec fires at its own dynamic site
/// (independent-site double/triple faults — beyond the paper's model).
/// `fault_injected` reports whether at least one site was reached;
/// `fault_landing` describes the first.
VmResult run_multi(const masm::AsmProgram& program, const VmOptions& options,
                   const std::vector<FaultSpec>& faults);

/// Span-style overload: reads `fault_count` specs starting at `faults`
/// without copying them — campaign trials point into the pre-drawn spec
/// pool instead of materialising a fresh vector per trial.
VmResult run_multi(const masm::AsmProgram& program, const VmOptions& options,
                   const FaultSpec* faults, std::size_t fault_count);

}  // namespace ferrum::vm
