#include "vm/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

// Threaded dispatch needs the GNU computed-goto extension (&&label).
// FERRUM_FORCE_SWITCH_DISPATCH (the CMake FERRUM_DISPATCH=switch option)
// forces the portable switch loop even on GNU-compatible compilers.
#if defined(__GNUC__) && !defined(FERRUM_FORCE_SWITCH_DISPATCH)
#define FERRUM_THREADED_DISPATCH 1
#else
#define FERRUM_THREADED_DISPATCH 0
#endif

namespace ferrum::vm {

bool threaded_dispatch_available() { return FERRUM_THREADED_DISPATCH != 0; }

using masm::AsmFunction;
using masm::AsmInst;
using masm::AsmProgram;
using masm::Cond;
using masm::Gpr;
using masm::MemRef;
using masm::Op;
using masm::Operand;

namespace {

struct Trap {
  ExitStatus status;
};

/// Return addresses are tagged so that corrupted data popped by `ret` is
/// recognisably invalid (-> crash, like a wild jump on real hardware).
/// The encoding is part of the fault model (return addresses live in
/// memory and are flippable), so it must match the historical VM exactly.
constexpr std::uint64_t kRetTag = 0x7e00'0000'0000'0000ULL;
constexpr std::uint64_t kExitSentinel = kRetTag | 0xffff'ffffULL;

struct Flags {
  bool zf = false, sf = false, of = false, cf = false;
};

/// Runtime default for VmOptions::dispatch == kAuto: the FERRUM_DISPATCH
/// environment knob, read once. Unset/empty means threaded-if-available.
DispatchMode default_dispatch_mode() {
  static const DispatchMode mode = [] {
    const char* value = std::getenv("FERRUM_DISPATCH");
    if (value == nullptr || *value == '\0') return DispatchMode::kThreaded;
    if (std::strcmp(value, "switch") == 0) return DispatchMode::kSwitch;
    if (std::strcmp(value, "threaded") == 0) return DispatchMode::kThreaded;
    std::fprintf(stderr,
                 "ferrum: ignoring FERRUM_DISPATCH=%s (want switch|threaded)\n",
                 value);
    return DispatchMode::kThreaded;
  }();
  return mode;
}

/// Reg/mem operand widths the VM defines. Anything else — notably the
/// 2-byte width no masm producer emits but hand-built programs could —
/// used to fall through width switches to a silent 64-bit access; the
/// decoder now rejects it (kTagBadWidth -> kTrapInvalid at execution).
bool operand_widths_ok(const AsmInst& inst) {
  for (int i = 0; i < inst.nops; ++i) {
    const Operand& op = inst.ops[i];
    if (op.kind != Operand::Kind::kReg && op.kind != Operand::Kind::kMem) {
      continue;
    }
    if (op.width != 1 && op.width != 4 && op.width != 8) return false;
  }
  return true;
}

bool is_fusable_alu(Op op) {
  switch (op) {
    case Op::kAdd: case Op::kSub: case Op::kImul: case Op::kAnd:
    case Op::kOr: case Op::kXor: case Op::kShl: case Op::kSar:
    case Op::kIdiv: case Op::kIrem:
      return true;
    default:
      return false;
  }
}

}  // namespace

// ----------------------------------------------------------- predecode --

PredecodedProgram::PredecodedProgram(const AsmProgram& program)
    : program_(&program) {
  std::unordered_map<std::string, int> function_by_name;
  for (std::size_t f = 0; f < program.functions.size(); ++f) {
    // operator[] (not emplace): duplicate names resolve to the last
    // definition, as in the historical resolve().
    function_by_name[program.functions[f].name] = static_cast<int>(f);
  }
  auto main_it = function_by_name.find("main");
  main_index_ = main_it == function_by_name.end() ? -1 : main_it->second;

  code_.reserve(program.inst_count() + program.functions.size());
  func_entry_pc_.reserve(program.functions.size());
  block_base_pc_.reserve(program.functions.size());
  for (std::size_t f = 0; f < program.functions.size(); ++f) {
    const AsmFunction& fn = program.functions[f];
    std::unordered_map<std::string, int> labels;
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      labels[fn.blocks[b].label] = static_cast<int>(b);
    }
    auto& bases = block_base_pc_.emplace_back();
    bases.reserve(fn.blocks.size() + 1);
    // First pass: lay out block start pcs (blocks are contiguous, so the
    // old interpreter's fall-through-to-next-block is just pc + 1).
    std::int32_t pc = static_cast<std::int32_t>(code_.size());
    for (const auto& block : fn.blocks) {
      bases.push_back(pc);
      pc += static_cast<std::int32_t>(block.insts.size());
    }
    bases.push_back(pc);  // sentinel position
    func_entry_pc_.push_back(bases.front());
    // Second pass: emit decoded instructions with resolved targets.
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      const auto& block = fn.blocks[b];
      for (std::size_t i = 0; i < block.insts.size(); ++i) {
        const AsmInst& inst = block.insts[i];
        DecodedInst d;
        d.inst = &inst;
        d.fidx = static_cast<std::int32_t>(f);
        d.bidx = static_cast<std::int32_t>(b);
        d.iidx = static_cast<std::int32_t>(i);
        if (inst.op == Op::kJmp || inst.op == Op::kJcc) {
          auto it = labels.find(inst.ops[0].label);
          d.target_pc = it == labels.end()
                            ? -1
                            : bases[static_cast<std::size_t>(it->second)];
        } else if (inst.op == Op::kCall) {
          const std::string& callee = inst.ops[0].label;
          // Builtin check precedes function lookup, matching exec_call's
          // historical order (a user function named print_int is
          // unreachable, exactly as before).
          if (callee == "print_int") {
            d.callee = kCalleePrintInt;
          } else if (callee == "print_f64") {
            d.callee = kCalleePrintF64;
          } else {
            auto it = function_by_name.find(callee);
            d.callee = it == function_by_name.end() ? -1 : it->second;
          }
        }
        code_.push_back(d);
      }
    }
    // End-of-function sentinel: executing it means control fell past the
    // function's last block -> kTrapInvalid without counting a step.
    DecodedInst sentinel;
    sentinel.fidx = static_cast<std::int32_t>(f);
    sentinel.bidx = static_cast<std::int32_t>(fn.blocks.size());
    code_.push_back(sentinel);
  }
  if (code_.empty()) {
    // Degenerate programs (no functions) still need a pc to sit on.
    code_.push_back(DecodedInst{});
    func_entry_pc_.push_back(0);
    block_base_pc_.push_back({0});
  }
  // Dispatch tags. First every instruction individually: its own Op, or
  // kTagBadWidth when an operand carries a width the VM does not define.
  for (DecodedInst& d : code_) {
    if (d.inst == nullptr) {
      d.tag = kTagSentinel;
    } else {
      d.tag = operand_widths_ok(*d.inst)
                  ? static_cast<std::uint8_t>(d.inst->op)
                  : static_cast<std::uint8_t>(kTagBadWidth);
    }
  }
  // Superinstruction fusion for the dominant adjacent pairs (the PR 2
  // profiler's cmp+jcc and load+op). Only the *first* instruction of a
  // pair changes tag; the second keeps its own, so a branch targeting it
  // still dispatches it singly. Neither half may be a sentinel or a
  // rejected-width instruction, and since every function ends in a
  // sentinel a pair can never straddle a function boundary. The fused
  // handlers execute both halves with full per-instruction bookkeeping
  // (step counting, FI-site numbering, trap order), so fusion is
  // invisible to everything but the dispatch count.
  for (std::size_t i = 0; i + 1 < code_.size(); ++i) {
    DecodedInst& a = code_[i];
    const DecodedInst& b = code_[i + 1];
    if (a.tag >= kTagSentinel || b.tag >= kTagSentinel) continue;
    const Op first = a.inst->op;
    const Op second = b.inst->op;
    if (first == Op::kCmp && second == Op::kJcc) {
      a.tag = kTagCmpJcc;
    } else if (first == Op::kMov && is_fusable_alu(second)) {
      a.tag = kTagMovAlu;
    }
  }
}

// --------------------------------------------------------- checkpoints --

CheckpointSet::CheckpointSet()
    : live_page_bytes_(std::make_shared<std::atomic<std::uint64_t>>(0)) {}

void CheckpointSet::begin(std::uint64_t stride) {
  checkpoints_.clear();
  table_entries_ = 0;
  stride_ = stride == 0 ? 1 : stride;
}

std::shared_ptr<const PageImage> CheckpointSet::make_page(
    const std::uint8_t* bytes, std::size_t size) {
  auto* image = new PageImage;
  std::memcpy(image->bytes, bytes, size);
  if (size < kCkptPageSize) {
    std::memset(image->bytes + size, 0, kCkptPageSize - size);
  }
  auto counter = live_page_bytes_;
  counter->fetch_add(kCkptPageSize, std::memory_order_relaxed);
  return std::shared_ptr<const PageImage>(
      image, [counter](const PageImage* p) {
        counter->fetch_sub(kCkptPageSize, std::memory_order_relaxed);
        delete p;
      });
}

void CheckpointSet::add(Checkpoint checkpoint) {
  table_entries_ += checkpoint.pages.size();
  checkpoints_.push_back(std::move(checkpoint));
  // Adaptive thinning: drop every other checkpoint and double the stride
  // when the set grows past the count cap or the page budget. The
  // trigger depends only on the golden instruction stream, so the
  // surviving set — and therefore which checkpoint any trial restores —
  // is deterministic.
  while (checkpoints_.size() > 2 &&
         (checkpoints_.size() > kMaxLiveCheckpoints ||
          live_page_bytes_->load(std::memory_order_relaxed) >
              kPageBudgetBytes)) {
    thin();
  }
}

void CheckpointSet::thin() {
  std::vector<Checkpoint> kept;
  kept.reserve(checkpoints_.size() / 2 + 1);
  table_entries_ = 0;
  for (std::size_t i = 0; i < checkpoints_.size(); i += 2) {
    table_entries_ += checkpoints_[i].pages.size();
    kept.push_back(std::move(checkpoints_[i]));
  }
  checkpoints_ = std::move(kept);
  stride_ *= 2;
}

std::uint64_t CheckpointSet::snapshot_bytes() const {
  return live_page_bytes_->load(std::memory_order_relaxed) +
         static_cast<std::uint64_t>(table_entries_) *
             sizeof(std::shared_ptr<const PageImage>);
}

const Checkpoint& CheckpointSet::nearest_at_or_before(
    std::uint64_t site) const {
  // First checkpoint with fi_sites > site, then step back one. Capture
  // always records a checkpoint at site 0, so the predecessor exists.
  auto it = std::upper_bound(
      checkpoints_.begin(), checkpoints_.end(), site,
      [](std::uint64_t s, const Checkpoint& c) { return s < c.fi_sites; });
  return *(it - 1);
}

const Checkpoint* CheckpointSet::next_after(std::uint64_t site) const {
  auto it = std::upper_bound(
      checkpoints_.begin(), checkpoints_.end(), site,
      [](std::uint64_t s, const Checkpoint& c) { return s < c.fi_sites; });
  return it == checkpoints_.end() ? nullptr : &*it;
}

// -------------------------------------------------------------- engine --

class Engine::Impl {
 public:
  Impl(const PredecodedProgram& program, const VmOptions& options)
      : program_(program),
        code_(program.code().data()),
        memory_(options.memory_bytes),
        npages_((options.memory_bytes + kCkptPageSize - 1) / kCkptPageSize),
        current_page_(npages_),
        dirty_(npages_, 0),
        journaled_(npages_, 0) {
    compute_layout();
  }

  VmResult run(const VmOptions& options, const FaultSpec* faults,
               std::size_t fault_count, FastForwardStats& stats) {
    return execute(options, faults, fault_count, nullptr, nullptr, stats,
                   nullptr);
  }

  VmResult run_capturing(const VmOptions& options, std::uint64_t stride,
                         CheckpointSet& out, FastForwardStats& stats) {
    out.begin(stride);
    VmResult result = execute(options, nullptr, 0, nullptr, &out, stats,
                              nullptr);
    // A clean golden run also defines the golden final state; faulty
    // trials that re-converge to a checkpoint adopt it (golden rejoin).
    if (result.ok()) {
      GoldenSummary summary;
      summary.valid = true;
      summary.steps = result.steps;
      summary.fi_sites = result.fi_sites;
      summary.return_value = result.return_value;
      summary.output = result.output;
      out.set_summary(std::move(summary));
    }
    return result;
  }

  VmResult run_from(const CheckpointSet& checkpoints, const VmOptions& options,
                    const FaultSpec* faults, std::size_t fault_count,
                    FastForwardStats& stats) {
    if (checkpoints.empty()) {
      return execute(options, faults, fault_count, nullptr, nullptr, stats,
                     nullptr);
    }
    std::uint64_t min_site = ~std::uint64_t{0};
    for (std::size_t i = 0; i < fault_count; ++i) {
      min_site = std::min(min_site, faults[i].site);
    }
    if (fault_count == 0) min_site = 0;
    const Checkpoint& resume = checkpoints.nearest_at_or_before(min_site);
    if (is_start_state(resume)) {
      // The first fault site precedes the first post-start checkpoint, so
      // the nearest snapshot is checkpoint 0 — whose state IS the cold
      // start state (captured before any step ran). Fall through to the
      // golden prefix directly: start_cold undoes only the previous
      // trial's dirty pages, instead of the full register + flags +
      // output + page-table restore (the restore-bound `none` case —
      // short trials whose faults all land below the capture stride).
      // Byte-identical by the determinism argument above; only the
      // wallclock-quarantined restore counter can tell the difference.
      return execute(options, faults, fault_count, nullptr, nullptr, stats,
                     &checkpoints);
    }
    return execute(options, faults, fault_count, &resume, nullptr, stats,
                   &checkpoints);
  }

  /// Whether `c` is checkpoint 0, the snapshot taken at site 0 / step 0
  /// immediately after start_cold — restoring it is equivalent to a cold
  /// start.
  static bool is_start_state(const Checkpoint& c) {
    return c.fi_sites == 0 && c.steps == 0;
  }

  void run_batch(const CheckpointSet* checkpoints, const VmOptions& options,
                 const Engine::BatchTrial* trials, std::size_t count,
                 VmResult* results, FastForwardStats& stats) {
    if (count == 0) return;
    // Per-trial introspection (profile/timing/trace) cannot ride a
    // shared walk; fall back to scalar execution — results identical.
    if (options.timing || options.profile || options.trace_limit != 0) {
      const bool ff = checkpoints != nullptr && !checkpoints->empty();
      for (std::size_t i = 0; i < count; ++i) {
        results[i] = ff ? run_from(*checkpoints, options, trials[i].faults,
                                   trials[i].fault_count, stats)
                        : run(options, trials[i].faults,
                              trials[i].fault_count, stats);
      }
      return;
    }

    // Lane order: ascending first-fault site, ties in input order, so
    // the shared walk only ever moves forward through the golden stream.
    struct Lane {
      std::uint64_t site;
      std::size_t idx;
    };
    std::vector<Lane> lanes(count);
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t min_site = ~std::uint64_t{0};
      for (std::size_t k = 0; k < trials[i].fault_count; ++k) {
        min_site = std::min(min_site, trials[i].faults[k].site);
      }
      if (trials[i].fault_count == 0) min_site = 0;
      lanes[i] = Lane{min_site, i};
    }
    std::stable_sort(lanes.begin(), lanes.end(),
                     [](const Lane& a, const Lane& b) {
                       return a.site < b.site;
                     });

    options_ = &options;
    faults_ = nullptr;
    fault_count_ = 0;
    site_observers_ = options.profile || site_pc_sink_ != nullptr ||
                      state_digest_sink_ != nullptr;
    touch_track_ = options.track_touched_functions;
    steps_ = 0;
    fi_sites_ = 0;
    fault_step_ = 0;
    fault_injected_ = false;
    fault_landing_.reset();
    output_.clear();
    trace_.clear();
    touched_addr_ = 0;
    store_chain_ = 0;
    output_chain_ = 0;
    halted_ = false;
    timing_.reset();
    profile_ = VmProfile{};
    rejoin_ = checkpoints;

    const bool have_ckpts = checkpoints != nullptr && !checkpoints->empty();
    // Once the golden walk halts (or traps) before a lane's site, that
    // lane's fault can never fire: its result is the walk's end state.
    bool walk_over = false;
    ExitStatus walk_status = ExitStatus::kOk;

    stats.batches += 1;
    stats.lanes += count;

    try {
      if (have_ckpts &&
          !is_start_state(checkpoints->nearest_at_or_before(lanes[0].site))) {
        restore_checkpoint(checkpoints->nearest_at_or_before(lanes[0].site));
      } else {
        // No checkpoints, or the nearest one is checkpoint 0 — whose
        // state equals the cold start (see run_from): skip the full
        // restore and walk the golden prefix directly.
        start_cold();
      }
    } catch (const Trap& trap) {
      walk_over = true;
      walk_status = trap.status;
    }

    ForkPoint fork;
    for (const Lane& lane : lanes) {
      if (!walk_over) {
        // Hop forward through a checkpoint when one sits closer to the
        // lane's site than the current walk position.
        if (have_ckpts) {
          const Checkpoint& c = checkpoints->nearest_at_or_before(lane.site);
          if (c.fi_sites > fi_sites_) restore_checkpoint(c);
        }
        const std::uint64_t walk_start_steps = steps_;
        try {
          if (loop(nullptr, lane.site) == LoopExit::kHalted) walk_over = true;
        } catch (const Trap& trap) {
          walk_over = true;
          walk_status = trap.status;
        }
        stats.walk_steps += steps_ - walk_start_steps;
      }
      VmResult& result = results[lane.idx];
      if (walk_over) {
        result = VmResult{};
        result.status = walk_status;
        if (walk_status == ExitStatus::kOk) {
          result.return_value =
              static_cast<std::int64_t>(gpr_[static_cast<int>(Gpr::kRax)]);
        }
        result.output = output_;
        result.steps = steps_;
        result.fi_sites = fi_sites_;
        stats.trials += 1;
        stats.steps_skipped += steps_;
        continue;
      }
      save_fork(fork);
      run_suffix(trials[lane.idx], result, stats);
      restore_fork(fork);
    }
    options_ = nullptr;
    rejoin_ = nullptr;
  }

  void set_site_pc_sink(std::vector<std::int32_t>* sink) {
    site_pc_sink_ = sink;
  }

  void set_state_digest_sink(std::vector<std::uint64_t>* sink,
                             const std::vector<std::uint64_t>* live_masks) {
    state_digest_sink_ = sink;
    digest_live_masks_ = sink != nullptr ? live_masks : nullptr;
  }

 private:
  // ----------------------------------------------------------- layout --

  /// Global addresses and the heap bound depend only on the program and
  /// the arena size, so they are computed once per Engine. The historical
  /// kTrapMemory for oversized globals is deferred to run time.
  void compute_layout() {
    std::size_t cursor = 0x1000;
    for (const auto& global : program_.source().globals) {
      cursor = (cursor + 15) & ~std::size_t{15};
      global_addr_.push_back(cursor);
      if (cursor + static_cast<std::size_t>(global.size_bytes) >
          memory_.size() / 2) {
        layout_ok_ = false;
        return;
      }
      cursor += static_cast<std::size_t>(global.size_bytes);
    }
    heap_end_ = cursor;
  }

  /// Writes global initialisers into the (all-zero) arena, marking the
  /// touched pages dirty so the next prepare can undo them.
  void write_globals() {
    const auto& globals = program_.source().globals;
    for (std::size_t g = 0; g < globals.size(); ++g) {
      const auto& global = globals[g];
      const std::size_t size =
          std::min<std::size_t>(global.init.size(),
                                static_cast<std::size_t>(global.size_bytes));
      if (size == 0) continue;
      const std::size_t addr = static_cast<std::size_t>(global_addr_[g]);
      std::memcpy(memory_.data() + addr, global.init.data(), size);
      mark_dirty_range(addr, size);
      if (state_digest_sink_ != nullptr) {
        // Globals bypass store(); fold their placement and initial bytes
        // into the store chain so state digests see them.
        store_chain_ = mix64(store_chain_ ^ addr ^
                             (static_cast<std::uint64_t>(size) << 32));
        for (std::size_t i = 0; i < size; i += 8) {
          std::uint64_t word = 0;
          std::memcpy(&word, global.init.data() + i, std::min<std::size_t>(8, size - i));
          store_chain_ = mix64(store_chain_ ^ word);
        }
      }
    }
  }

  // --------------------------------------------------- page bookkeeping --

  void mark_dirty_range(std::size_t addr, std::size_t size) {
    const std::size_t first = addr >> kCkptPageBits;
    const std::size_t last = (addr + size - 1) >> kCkptPageBits;
    for (std::size_t p = first; p <= last; ++p) dirty_[p] = 1;
  }

  std::size_t page_bytes(std::size_t page) const {
    const std::size_t start = page << kCkptPageBits;
    return std::min(kCkptPageSize, memory_.size() - start);
  }

  /// Resets the arena to all-zero by undoing only pages known to differ.
  void prepare_cold() {
    for (std::size_t p = 0; p < npages_; ++p) {
      if (!dirty_[p] && current_page_[p] == nullptr) continue;
      std::memset(memory_.data() + (p << kCkptPageBits), 0, page_bytes(p));
      current_page_[p].reset();
      dirty_[p] = 0;
    }
  }

  /// Resets the arena to a checkpoint's memory image. Pages whose current
  /// content provably equals the target (same PageImage, not dirtied) are
  /// skipped — the per-trial cost is the *diff*, not the arena size.
  void prepare_from(const Checkpoint& checkpoint) {
    for (std::size_t p = 0; p < npages_; ++p) {
      const auto& desired = checkpoint.pages[p];
      if (!dirty_[p] && current_page_[p].get() == desired.get()) continue;
      if (desired == nullptr) {
        std::memset(memory_.data() + (p << kCkptPageBits), 0, page_bytes(p));
      } else {
        std::memcpy(memory_.data() + (p << kCkptPageBits), desired->bytes,
                    page_bytes(p));
      }
      current_page_[p] = desired;
      dirty_[p] = 0;
    }
  }

  void do_capture(CheckpointSet& out) {
    for (std::size_t p = 0; p < npages_; ++p) {
      if (!dirty_[p]) continue;
      current_page_[p] =
          out.make_page(memory_.data() + (p << kCkptPageBits), page_bytes(p));
      dirty_[p] = 0;
    }
    Checkpoint ck;
    ck.pc = pc_;
    ck.steps = steps_;
    ck.fi_sites = fi_sites_;
    std::memcpy(ck.gpr, gpr_, sizeof(gpr_));
    std::memcpy(ck.xmm, xmm_, sizeof(xmm_));
    ck.zf = flags_.zf;
    ck.sf = flags_.sf;
    ck.of = flags_.of;
    ck.cf = flags_.cf;
    ck.output = output_;
    ck.pages = current_page_;
    out.add(std::move(ck));
    // Thinning inside add() may have doubled the stride and dropped the
    // freshly added checkpoint; follow whatever survived.
    next_capture_at_ = last_site(out) + out.stride();
    while (next_capture_at_ <= fi_sites_) next_capture_at_ += out.stride();
  }

  static std::uint64_t last_site(const CheckpointSet& out) {
    return out.nearest_at_or_before(~std::uint64_t{0}).fi_sites;
  }

  // ------------------------------------------- lockstep batch forking --

  /// Walk state saved at a lane's fork point. Memory is not copied:
  /// suffix writes are journalled copy-on-first-write (see store()) and
  /// undone page-by-page on unfork. The output log is append-only, so
  /// its length suffices to restore it.
  struct ForkPoint {
    std::int32_t pc = 0;
    std::uint64_t steps = 0;
    std::uint64_t fi_sites = 0;
    std::uint64_t gpr[masm::kGprCount];
    std::uint64_t xmm[masm::kXmmCount][4];
    Flags flags;
    std::size_t output_size = 0;
  };

  void save_fork(ForkPoint& fork) const {
    fork.pc = pc_;
    fork.steps = steps_;
    fork.fi_sites = fi_sites_;
    std::memcpy(fork.gpr, gpr_, sizeof(gpr_));
    std::memcpy(fork.xmm, xmm_, sizeof(xmm_));
    fork.flags = flags_;
    fork.output_size = output_.size();
  }

  void restore_fork(const ForkPoint& fork) {
    pc_ = fork.pc;
    steps_ = fork.steps;
    fi_sites_ = fork.fi_sites;
    std::memcpy(gpr_, fork.gpr, sizeof(gpr_));
    std::memcpy(xmm_, fork.xmm, sizeof(xmm_));
    flags_ = fork.flags;
    output_.resize(fork.output_size);
    halted_ = false;
  }

  /// Saves page `p`'s pre-image on its first suffix write. Buffers are
  /// pooled so steady-state batching allocates nothing.
  void journal_page(std::size_t p) {
    if (journaled_[p]) return;
    journaled_[p] = 1;
    std::unique_ptr<PageImage> image;
    if (!journal_pool_.empty()) {
      image = std::move(journal_pool_.back());
      journal_pool_.pop_back();
    } else {
      image = std::make_unique<PageImage>();
    }
    std::memcpy(image->bytes, memory_.data() + (p << kCkptPageBits),
                page_bytes(p));
    journal_.emplace_back(p, std::move(image));
  }

  /// Undoes every journalled page, returning memory to the fork point.
  /// dirty_ bits stay set — conservative but correct: a later prepare
  /// simply restores those pages from provenance again.
  void journal_restore() {
    for (auto& entry : journal_) {
      std::memcpy(memory_.data() + (entry.first << kCkptPageBits),
                  entry.second->bytes, page_bytes(entry.first));
      journaled_[entry.first] = 0;
      journal_pool_.push_back(std::move(entry.second));
    }
    journal_.clear();
  }

  /// Runs one lane's faulty suffix from the current (forked) walk state
  /// to completion and assembles its VmResult, then undoes its memory
  /// writes. Register/counter state is the caller's to restore.
  void run_suffix(const Engine::BatchTrial& trial, VmResult& result,
                  FastForwardStats& stats) {
    faults_ = trial.faults;
    fault_count_ = trial.fault_count;
    fault_injected_ = false;
    fault_landing_.reset();
    fault_step_ = 0;
    rejoined_ = false;
    rejoin_skipped_ = 0;
    rejoin_site_ = 0;
    touched_fns_ = 0;
    const std::uint64_t fork_steps = steps_;
    journaling_ = true;
    result = VmResult{};
    try {
      run_loop_to_completion(*options_, nullptr);
      result.return_value =
          static_cast<std::int64_t>(gpr_[static_cast<int>(Gpr::kRax)]);
    } catch (const Trap& trap) {
      result.status = trap.status;
    }
    journaling_ = false;
    journal_restore();
    result.output = output_;
    result.steps = steps_;
    result.fi_sites = fi_sites_;
    result.fault_injected = fault_injected_;
    result.fault_landing = fault_landing_;
    result.fault_step = fault_step_;
    result.touched_functions = touched_fns_;
    result.rejoined = rejoined_;
    result.rejoin_site = rejoin_site_;
    faults_ = nullptr;
    fault_count_ = 0;
    stats.trials += 1;
    stats.restores += 1;
    if (rejoined_) stats.rejoins += 1;
    stats.steps_skipped += fork_steps + rejoin_skipped_;
    stats.steps_executed += result.steps - fork_steps - rejoin_skipped_;
  }

  // ------------------------------------------------------------- run --

  /// Restores architectural state, counters and memory to a checkpoint.
  void restore_checkpoint(const Checkpoint& resume) {
    prepare_from(resume);
    std::memcpy(gpr_, resume.gpr, sizeof(gpr_));
    std::memcpy(xmm_, resume.xmm, sizeof(xmm_));
    flags_.zf = resume.zf;
    flags_.sf = resume.sf;
    flags_.of = resume.of;
    flags_.cf = resume.cf;
    output_ = resume.output;
    steps_ = resume.steps;
    fi_sites_ = resume.fi_sites;
    pc_ = resume.pc;
  }

  /// Cold start: zeroed arena/registers, globals written, stack + exit
  /// sentinel set up, pc at main's entry. Throws the historical traps
  /// for oversized globals and missing main.
  void start_cold() {
    prepare_cold();
    std::memset(gpr_, 0, sizeof(gpr_));
    std::memset(xmm_, 0, sizeof(xmm_));
    flags_ = Flags{};
    if (!layout_ok_) throw Trap{ExitStatus::kTrapMemory};
    write_globals();
    if (program_.main_index() < 0) throw Trap{ExitStatus::kTrapInvalid};
    gpr_[static_cast<int>(Gpr::kRsp)] = memory_.size() - 64;
    push64(kExitSentinel);
    pc_ = program_.entry_pc(program_.main_index());
  }

  /// Whether this run wants the threaded loop at all (build + mode).
  bool want_threaded(const VmOptions& options) const {
#if FERRUM_THREADED_DISPATCH
    DispatchMode mode = options.dispatch;
    if (mode == DispatchMode::kAuto) mode = default_dispatch_mode();
    return mode == DispatchMode::kThreaded;
#else
    (void)options;
    return false;
#endif
  }

  /// The threaded loop carries no per-step introspection (profiling,
  /// timing, tracing) and no capture hook; runs needing those stay on
  /// the reference switch loop.
  bool use_threaded_loop(const VmOptions& options,
                         const CheckpointSet* capture) const {
    return want_threaded(options) && capture == nullptr && !options.timing &&
           !options.profile && options.trace_limit == 0;
  }

  static constexpr std::uint64_t kNoPause = ~std::uint64_t{0};

  enum class LoopExit : std::uint8_t { kHalted, kPaused };

  /// Whether this run can attempt golden rejoin: checkpoints with a
  /// clean golden summary are in play, no per-step introspection wants
  /// the real instruction stream, and the golden run itself fits the
  /// trial's step budget (so the adopted tail provably contains no
  /// kTrapSteps the trial would have hit).
  bool can_rejoin(const VmOptions& options) const {
    return rejoin_ != nullptr && options.golden_rejoin &&
           rejoin_->summary().valid && !site_observers_ && !options.timing &&
           !options.profile && options.trace_limit == 0 &&
           rejoin_->summary().steps <= options.max_steps;
  }

  /// Exact state comparison against a golden checkpoint, taken at the
  /// same inter-instruction position capture used. Memory is compared as
  /// a diff: pages whose provenance pointer already equals the golden
  /// page (and were not dirtied since) are skipped without touching
  /// their bytes — consecutive checkpoints share unchanged PageImages,
  /// so the byte-compared set is roughly the trial's write footprint.
  bool state_matches(const Checkpoint& b) const {
    if (pc_ != b.pc || steps_ != b.steps || fi_sites_ != b.fi_sites) {
      return false;
    }
    if (flags_.zf != b.zf || flags_.sf != b.sf || flags_.of != b.of ||
        flags_.cf != b.cf) {
      return false;
    }
    if (std::memcmp(gpr_, b.gpr, sizeof(gpr_)) != 0) return false;
    if (std::memcmp(xmm_, b.xmm, sizeof(xmm_)) != 0) return false;
    if (output_ != b.output) return false;
    static const PageImage kZeroPage = {};
    for (std::size_t p = 0; p < npages_; ++p) {
      const PageImage* golden = b.pages[p].get();
      if (!dirty_[p] && current_page_[p].get() == golden) continue;
      const std::uint8_t* want = golden ? golden->bytes : kZeroPage.bytes;
      if (std::memcmp(memory_.data() + (p << kCkptPageBits), want,
                      page_bytes(p)) != 0) {
        return false;
      }
    }
    return true;
  }

  /// The tail from a matched boundary is the golden tail; skip straight
  /// to the golden final state. Only rax (the return value), the output
  /// log and the counters are observable past this point — memory and
  /// the other registers are dead on halt.
  void adopt_golden_tail(const GoldenSummary& summary) {
    rejoin_skipped_ = summary.steps - steps_;
    rejoined_ = true;
    steps_ = summary.steps;
    fi_sites_ = summary.fi_sites;
    output_ = summary.output;
    gpr_[static_cast<int>(Gpr::kRax)] =
        static_cast<std::uint64_t>(summary.return_value);
    halted_ = true;
  }

  /// One inner-loop run on the selected dispatch path.
  LoopExit run_loop(CheckpointSet* capture, std::uint64_t stop_at_sites,
                    bool threaded) {
#if FERRUM_THREADED_DISPATCH
    if (threaded) return loop_threaded(stop_at_sites);
#else
    (void)threaded;
#endif
    return loop(capture, stop_at_sites);
  }

  void run_loop_to_completion(const VmOptions& options,
                              CheckpointSet* capture) {
    const bool threaded = use_threaded_loop(options, capture);
    if (can_rejoin(options)) {
      // Once every sampled fault has fired (fi_sites_ has passed the
      // largest spec site) the trial is deterministic again; pause at
      // each golden checkpoint boundary ahead and compare. An exact
      // match proves the remaining tail golden — adopt it. A mismatch
      // (fault still propagating) just moves on to the next boundary.
      std::uint64_t last_site = 0;
      for (std::size_t i = 0; i < fault_count_; ++i) {
        last_site = std::max(last_site, faults_[i].site);
      }
      for (;;) {
        const Checkpoint* b =
            rejoin_->next_after(std::max(fi_sites_, last_site));
        if (b == nullptr) break;  // past the last boundary — run it out
        if (run_loop(capture, b->fi_sites, threaded) == LoopExit::kHalted) {
          return;
        }
        if (state_matches(*b)) {
          rejoin_site_ = b->fi_sites;
          adopt_golden_tail(rejoin_->summary());
          return;
        }
      }
    }
    run_loop(capture, kNoPause, threaded);
  }

  VmResult execute(const VmOptions& options, const FaultSpec* faults,
                   std::size_t fault_count, const Checkpoint* resume,
                   CheckpointSet* capture, FastForwardStats& stats,
                   const CheckpointSet* rejoin) {
    options_ = &options;
    faults_ = faults;
    fault_count_ = fault_count;
    site_observers_ = options.profile || site_pc_sink_ != nullptr ||
                      state_digest_sink_ != nullptr;
    touch_track_ = options.track_touched_functions;
    touched_fns_ = 0;
    steps_ = 0;
    fi_sites_ = 0;
    fault_step_ = 0;
    fault_injected_ = false;
    fault_landing_.reset();
    rejoin_ = rejoin;
    rejoined_ = false;
    rejoin_skipped_ = 0;
    rejoin_site_ = 0;
    output_.clear();
    trace_.clear();
    touched_addr_ = 0;
    store_chain_ = 0;
    output_chain_ = 0;
    halted_ = false;
    timing_.reset();
    if (options.timing) timing_.emplace(options.timing_params);
    profile_ = VmProfile{};
    if (options.profile) {
      block_hits_.assign(program_.source().functions.size(), {});
      for (std::size_t f = 0; f < block_hits_.size(); ++f) {
        block_hits_[f].assign(program_.source().functions[f].blocks.size(), 0);
      }
    }

    VmResult result;
    try {
      if (resume != nullptr) {
        restore_checkpoint(*resume);
      } else {
        start_cold();
        if (capture != nullptr) {
          next_capture_at_ = 0;  // checkpoint 0 right at the start
          do_capture(*capture);
        }
      }
      run_loop_to_completion(options, capture);
      result.return_value =
          static_cast<std::int64_t>(gpr_[static_cast<int>(Gpr::kRax)]);
    } catch (const Trap& trap) {
      result.status = trap.status;
    }
    result.output = std::move(output_);
    result.trace = std::move(trace_);
    result.steps = steps_;
    result.fi_sites = fi_sites_;
    result.fault_injected = fault_injected_;
    result.fault_landing = fault_landing_;
    result.fault_step = fault_step_;
    result.touched_functions = touched_fns_;
    result.rejoined = rejoined_;
    result.rejoin_site = rejoin_site_;
    if (options.timing) {
      result.cycles = timing_->cycles();
      result.timing_stats = timing_->stats();
    }
    if (options.profile) {
      finalize_hot_blocks();
      result.profile = std::move(profile_);
    }
    stats.trials += 1;
    if (rejoined_) stats.rejoins += 1;
    if (resume != nullptr) {
      stats.restores += 1;
      stats.steps_skipped += resume->steps + rejoin_skipped_;
      stats.steps_executed += result.steps - resume->steps - rejoin_skipped_;
    } else {
      stats.steps_skipped += rejoin_skipped_;
      stats.steps_executed += result.steps - rejoin_skipped_;
    }
    options_ = nullptr;
    faults_ = nullptr;
    fault_count_ = 0;
    rejoin_ = nullptr;
    return result;
  }

  /// Reference interpreter loop (one switch per step), also the only
  /// loop carrying per-step introspection. `stop_at_sites` pauses the
  /// run at the first instruction boundary where fi_sites_ has reached
  /// that count — the lockstep batch walk's fork points; kNoPause runs
  /// to halt/trap.
  LoopExit loop(CheckpointSet* capture, std::uint64_t stop_at_sites) {
    const bool profiling = options_->profile;
    const bool timing_on = options_->timing;
    const std::size_t trace_limit = options_->trace_limit;
    const std::uint64_t max_steps = options_->max_steps;
    for (;;) {
      if (fi_sites_ >= stop_at_sites) return LoopExit::kPaused;
      const DecodedInst& d = code_[pc_];
      if (d.inst == nullptr) throw Trap{ExitStatus::kTrapInvalid};
      const AsmInst& inst = *d.inst;
      if (++steps_ > max_steps) throw Trap{ExitStatus::kTrapSteps};
      if (profiling) {
        ++profile_.op_counts[static_cast<int>(inst.op)];
        ++profile_.origin_counts[static_cast<int>(inst.origin)];
        ++block_hits_[static_cast<std::size_t>(d.fidx)]
                     [static_cast<std::size_t>(d.bidx)];
      }
      if (trace_.size() < trace_limit) {
        const auto& fn = program_.source().functions[d.fidx];
        trace_.push_back(fn.name + "/" + fn.blocks[d.bidx].label + ": " +
                         inst.to_string());
      }
      touched_addr_ = 0;
      next_pc_ = pc_ + 1;
      exec(inst, d);
      if (timing_on) timing_->step(inst, touched_addr_);
      pc_ = next_pc_;
      if (halted_) return LoopExit::kHalted;
      if (capture != nullptr && fi_sites_ >= next_capture_at_) {
        do_capture(*capture);
      }
    }
  }

  // ------------------------------------------------------------ memory --

  void check_range(std::uint64_t addr, int size) {
    if (addr < 0x1000 ||
        addr + static_cast<std::uint64_t>(size) > memory_.size()) {
      throw Trap{ExitStatus::kTrapMemory};
    }
  }

  std::uint64_t load(std::uint64_t addr, int size) {
    check_range(addr, size);
    std::uint64_t value = 0;
    std::memcpy(&value, memory_.data() + addr, static_cast<std::size_t>(size));
    return value;
  }

  void store(std::uint64_t addr, int size, std::uint64_t value) {
    check_range(addr, size);
    // Single choke point for all program writes: record which pages have
    // diverged from the provenance table (writes can straddle a page),
    // and — inside a batched lane's faulty suffix — save each page's
    // pre-image before its first modification so the unfork can undo it.
    const std::size_t first = static_cast<std::size_t>(addr) >> kCkptPageBits;
    const std::size_t last =
        (static_cast<std::size_t>(addr) + static_cast<std::size_t>(size) - 1) >>
        kCkptPageBits;
    if (journaling_) {
      journal_page(first);
      if (last != first) journal_page(last);
    }
    if (state_digest_sink_ != nullptr) {
      store_chain_ = mix64(store_chain_ ^ addr);
      store_chain_ = mix64(store_chain_ ^
                           (static_cast<std::uint64_t>(size) << 56) ^ value);
    }
    std::memcpy(memory_.data() + addr, &value, static_cast<std::size_t>(size));
    dirty_[first] = 1;
    if (last != first) dirty_[last] = 1;
  }

  void push64(std::uint64_t value) {
    std::uint64_t& rsp = gpr_[static_cast<int>(Gpr::kRsp)];
    rsp -= 8;
    if (rsp <= heap_end_) throw Trap{ExitStatus::kTrapMemory};
    store(rsp, 8, value);
  }

  std::uint64_t pop64() {
    std::uint64_t& rsp = gpr_[static_cast<int>(Gpr::kRsp)];
    const std::uint64_t value = load(rsp, 8);
    rsp += 8;
    return value;
  }

  // ----------------------------------------------------------- operands --

  std::uint64_t effective_address(const MemRef& mem) {
    std::uint64_t addr = 0;
    if (mem.global_id >= 0) {
      if (mem.global_id >= static_cast<int>(global_addr_.size())) {
        throw Trap{ExitStatus::kTrapInvalid};
      }
      addr = global_addr_[mem.global_id];
    } else if (mem.base != Gpr::kNone) {
      addr = gpr_[static_cast<int>(mem.base)];
    }
    addr += static_cast<std::uint64_t>(mem.disp);
    if (mem.index != Gpr::kNone) {
      addr += gpr_[static_cast<int>(mem.index)] *
              static_cast<std::uint64_t>(mem.scale);
    }
    return addr;
  }

  // Width switches below enumerate the supported widths explicitly and
  // trap on anything else; the decoder already rejects unsupported
  // widths (kTagBadWidth), so the default arms are belt-and-braces
  // against a width the decode pass missed — never a silent 64-bit
  // access.

  std::uint64_t read_gpr(Gpr reg, int width) {
    const std::uint64_t raw = gpr_[static_cast<int>(reg)];
    switch (width) {
      case 1: return raw & 0xff;
      case 4: return raw & 0xffff'ffffULL;
      case 8: return raw;
      default: throw Trap{ExitStatus::kTrapInvalid};
    }
  }

  /// x86 merge semantics: 32-bit writes zero-extend, 8-bit writes merge.
  std::uint64_t merged_gpr_value(Gpr reg, int width, std::uint64_t value) {
    switch (width) {
      case 1:
        return (gpr_[static_cast<int>(reg)] & ~0xffULL) | (value & 0xff);
      case 4:
        return value & 0xffff'ffffULL;
      case 8:
        return value;
      default:
        throw Trap{ExitStatus::kTrapInvalid};
    }
  }

  std::uint64_t read_operand(const Operand& op) {
    switch (op.kind) {
      case Operand::Kind::kReg:
        return read_gpr(op.reg, op.width);
      case Operand::Kind::kImm:
        return static_cast<std::uint64_t>(op.imm);
      case Operand::Kind::kMem: {
        const std::uint64_t addr = effective_address(op.mem);
        touched_addr_ = addr;
        return load(addr, op.width);
      }
      case Operand::Kind::kXmm:
        return xmm_[op.xmm][0];
      default:
        throw Trap{ExitStatus::kTrapInvalid};
    }
  }

  std::int64_t read_signed(const Operand& op) {
    const std::uint64_t raw = read_operand(op);
    switch (op.width) {
      case 1: return static_cast<std::int8_t>(raw & 0xff);
      case 4: return static_cast<std::int32_t>(raw & 0xffff'ffffULL);
      case 8: return static_cast<std::int64_t>(raw);
      default: throw Trap{ExitStatus::kTrapInvalid};
    }
  }

  // ----------------------------------------------- fault machinery --

  /// Off-hot-path site observers: the prune mode's pc sink and the
  /// profiler's per-kind tallies. Both sit behind the single
  /// site_observers_ flag so the common case (neither active) pays one
  /// predictable branch per site instead of two.
  void observe_site(FaultKind kind) {
    if (site_pc_sink_ != nullptr) site_pc_sink_->push_back(pc_);
    if (state_digest_sink_ != nullptr) {
      state_digest_sink_->push_back(state_digest());
    }
    if (options_->profile) ++profile_.site_counts[static_cast<int>(kind)];
  }

  /// splitmix64 finaliser — the same avalanche the prune layer's
  /// detail::mix64 uses, duplicated here to keep vm free of fault
  /// headers.
  static std::uint64_t mix64(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  /// Digest of the machine state at the current FI site, masked down to
  /// the registers/flags *live* before the instruction at pc_ (see
  /// Engine::set_state_digest_sink). Memory and output enter through the
  /// running store/output chains rather than a full-arena hash: the
  /// chains cover every byte that can differ from the zeroed cold-start
  /// state (globals folded at start_cold, every later write passes
  /// store()), and dead stack noise cannot arise because *stores* are
  /// architecturally visible effects, not dead register garbage.
  std::uint64_t state_digest() const {
    std::uint64_t mask = ~std::uint64_t{0};
    if (digest_live_masks_ != nullptr &&
        static_cast<std::size_t>(pc_) < digest_live_masks_->size()) {
      mask = (*digest_live_masks_)[static_cast<std::size_t>(pc_)];
    }
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (int r = 0; r < masm::kGprCount; ++r) {
      if ((mask >> r) & 1) h = mix64(h ^ gpr_[r]);
    }
    for (int x = 0; x < masm::kXmmCount; ++x) {
      if ((mask >> (16 + x)) & 1) {
        for (int lane = 0; lane < 4; ++lane) {
          h = mix64(h ^ xmm_[x][lane]);
        }
      }
    }
    if ((mask >> 32) & 1) {
      h = mix64(h ^ (static_cast<std::uint64_t>(flags_.zf) |
                     (static_cast<std::uint64_t>(flags_.sf) << 1) |
                     (static_cast<std::uint64_t>(flags_.of) << 2) |
                     (static_cast<std::uint64_t>(flags_.cf) << 3)));
    }
    h = mix64(h ^ steps_);
    h = mix64(h ^ store_chain_);
    h = mix64(h ^ output_chain_);
    return h;
  }

  /// Function bit for VmResult::touched_functions; indexes >= 63 share
  /// the overflow bucket (bit 63).
  static std::uint64_t fn_bit(std::int32_t fidx) {
    return std::uint64_t{1} << (fidx < 63 ? fidx : 63);
  }

  /// Registers one FI site; returns the matching fault spec when this
  /// site is one of the sampled ones, or nullptr.
  const FaultSpec* fi_site(FaultKind kind, const AsmInst& inst,
                           const DecodedInst& d) {
    const std::uint64_t id = fi_sites_++;
    if (site_observers_) observe_site(kind);
    for (std::size_t i = 0; i < fault_count_; ++i) {
      const FaultSpec& spec = faults_[i];
      if (id != spec.site) continue;
      if (!fault_injected_) {
        FaultLanding landing;
        landing.kind = kind;
        landing.origin = inst.origin;
        landing.op = inst.op;
        landing.function = program_.source().functions[d.fidx].name;
        landing.block = d.bidx;
        landing.inst = d.iidx;
        fault_landing_ = landing;
        fault_step_ = steps_;
        if (touch_track_) touched_fns_ |= fn_bit(d.fidx);
      }
      fault_injected_ = true;
      return &spec;
    }
    return nullptr;
  }

  /// Mask of `burst` adjacent bits, wrapping within `width` bits.
  static std::uint64_t burst_mask(const FaultSpec& spec, int width) {
    std::uint64_t mask = 0;
    for (int i = 0; i < spec.burst; ++i) {
      mask |= std::uint64_t{1} << ((spec.bit + i) % width);
    }
    return mask;
  }

  /// Writes a GPR (with merge semantics), applying a fault if sampled.
  void write_gpr_faultable(Gpr reg, int width, std::uint64_t value,
                           const AsmInst& inst, const DecodedInst& d) {
    std::uint64_t merged = merged_gpr_value(reg, width, value);
    if (const FaultSpec* spec = fi_site(FaultKind::kGprWrite, inst, d)) {
      merged ^= burst_mask(*spec, 64);
    }
    gpr_[static_cast<int>(reg)] = merged;
  }

  void write_flags_faultable(Flags flags, const AsmInst& inst,
                             const DecodedInst& d) {
    if (const FaultSpec* spec = fi_site(FaultKind::kFlagsWrite, inst, d)) {
      const std::uint64_t mask = burst_mask(*spec, 4);
      if (mask & 1) flags.zf = !flags.zf;
      if (mask & 2) flags.sf = !flags.sf;
      if (mask & 4) flags.of = !flags.of;
      if (mask & 8) flags.cf = !flags.cf;
    }
    flags_ = flags;
  }

  void store_faultable(std::uint64_t addr, int size, std::uint64_t value,
                       const AsmInst& inst, const DecodedInst& d) {
    if (options_->fault_store_data) {
      if (const FaultSpec* spec = fi_site(FaultKind::kStoreData, inst, d)) {
        value ^= burst_mask(*spec, size * 8);
      }
    }
    touched_addr_ = addr;
    store(addr, size, value);
  }

  /// Writes xmm lane(s); `lane_count` 64-bit lanes starting at `lane`.
  void write_xmm_faultable(int reg, int lane, int lane_count,
                           const std::uint64_t* values, const AsmInst& inst,
                           const DecodedInst& d) {
    std::uint64_t lanes[4];
    std::memcpy(lanes, values,
                static_cast<std::size_t>(lane_count) * sizeof(std::uint64_t));
    if (const FaultSpec* spec = fi_site(FaultKind::kXmmWrite, inst, d)) {
      const int total_bits = lane_count * 64;
      for (int i = 0; i < spec->burst; ++i) {
        const int target = (spec->bit + i) % total_bits;
        lanes[target / 64] ^= std::uint64_t{1} << (target % 64);
      }
    }
    for (int i = 0; i < lane_count; ++i) xmm_[reg][lane + i] = lanes[i];
  }

  // ---------------------------------------------------------- execution --

  bool eval_cond(Cond cc) const {
    switch (cc) {
      case Cond::kE: return flags_.zf;
      case Cond::kNe: return !flags_.zf;
      case Cond::kL: return flags_.sf != flags_.of;
      case Cond::kLe: return flags_.zf || flags_.sf != flags_.of;
      case Cond::kG: return !flags_.zf && flags_.sf == flags_.of;
      case Cond::kGe: return flags_.sf == flags_.of;
      case Cond::kA: return !flags_.cf && !flags_.zf;
      case Cond::kAe: return !flags_.cf;
      case Cond::kB: return flags_.cf;
      case Cond::kBe: return flags_.cf || flags_.zf;
    }
    return false;
  }

  static std::int64_t sign_at(std::uint64_t value, int width) {
    switch (width) {
      case 1: return static_cast<std::int8_t>(value & 0xff);
      case 4: return static_cast<std::int32_t>(value & 0xffff'ffffULL);
      case 8: return static_cast<std::int64_t>(value);
      default: throw Trap{ExitStatus::kTrapInvalid};
    }
  }

  Flags flags_of_sub(std::uint64_t a, std::uint64_t b, int width) {
    // a - b at the given width.
    const std::uint64_t mask =
        width == 8 ? ~0ULL : (std::uint64_t{1} << (width * 8)) - 1;
    const std::uint64_t result = (a - b) & mask;
    Flags flags;
    flags.zf = result == 0;
    flags.sf = sign_at(result, width) < 0;
    flags.cf = (a & mask) < (b & mask);
    const std::int64_t sa = sign_at(a, width);
    const std::int64_t sb = sign_at(b, width);
    const std::int64_t sr = sign_at(result, width);
    flags.of = ((sa < 0) != (sb < 0)) && ((sr < 0) != (sa < 0));
    return flags;
  }

  Flags flags_of_result(std::uint64_t result, int width) {
    Flags flags;
    const std::uint64_t mask =
        width == 8 ? ~0ULL : (std::uint64_t{1} << (width * 8)) - 1;
    flags.zf = (result & mask) == 0;
    flags.sf = sign_at(result, width) < 0;
    return flags;
  }

  double as_f64(std::uint64_t raw) const {
    double value;
    std::memcpy(&value, &raw, sizeof(value));
    return value;
  }
  std::uint64_t from_f64(double value) const {
    std::uint64_t raw;
    std::memcpy(&raw, &value, sizeof(raw));
    return raw;
  }

  // Per-opcode bodies, shared verbatim by the switch loop's exec() and
  // the threaded loop's computed-goto handlers — the two dispatch modes
  // can only differ in how they reach these, never in what they do.
  // Control transfers set next_pc_; the default next_pc_ = pc_ + 1
  // covers both straight-line flow and the old interpreter's free
  // fall-through into the next block.

  void exec_mov(const AsmInst& inst, const DecodedInst& d) {
    const std::uint64_t value = read_operand(inst.ops[0]);
    if (inst.ops[1].is_mem()) {
      store_faultable(effective_address(inst.ops[1].mem), inst.ops[1].width,
                      value, inst, d);
    } else {
      write_gpr_faultable(inst.ops[1].reg, inst.ops[1].width, value, inst, d);
    }
  }

  void exec_movsx(const AsmInst& inst, const DecodedInst& d) {
    const std::int64_t value = read_signed(inst.ops[0]);
    write_gpr_faultable(inst.ops[1].reg, inst.ops[1].width,
                        static_cast<std::uint64_t>(value), inst, d);
  }

  void exec_movzx(const AsmInst& inst, const DecodedInst& d) {
    const std::uint64_t value = read_operand(inst.ops[0]);
    write_gpr_faultable(inst.ops[1].reg, inst.ops[1].width, value, inst, d);
  }

  void exec_lea(const AsmInst& inst, const DecodedInst& d) {
    const std::uint64_t addr = effective_address(inst.ops[0].mem);
    write_gpr_faultable(inst.ops[1].reg, 8, addr, inst, d);
  }

  void exec_push(const AsmInst& inst, const DecodedInst& d) {
    std::uint64_t& rsp = gpr_[static_cast<int>(Gpr::kRsp)];
    rsp -= 8;
    if (rsp <= heap_end_) throw Trap{ExitStatus::kTrapMemory};
    store_faultable(rsp, 8, read_operand(inst.ops[0]), inst, d);
  }

  void exec_pop(const AsmInst& inst, const DecodedInst& d) {
    const std::uint64_t value = pop64();
    write_gpr_faultable(inst.ops[0].reg, 8, value, inst, d);
  }

  void exec_cmp(const AsmInst& inst, const DecodedInst& d) {
    const std::uint64_t b = read_operand(inst.ops[0]);
    const std::uint64_t a = read_operand(inst.ops[1]);
    write_flags_faultable(flags_of_sub(a, b, inst.ops[1].width), inst, d);
  }

  void exec_test(const AsmInst& inst, const DecodedInst& d) {
    const std::uint64_t b = read_operand(inst.ops[0]);
    const std::uint64_t a = read_operand(inst.ops[1]);
    Flags flags = flags_of_result(a & b, inst.ops[1].width);
    write_flags_faultable(flags, inst, d);
  }

  void exec_setcc(const AsmInst& inst, const DecodedInst& d) {
    const std::uint64_t value = eval_cond(inst.cc) ? 1 : 0;
    if (inst.ops[0].is_mem()) {
      store_faultable(effective_address(inst.ops[0].mem), 1, value, inst, d);
    } else {
      write_gpr_faultable(inst.ops[0].reg, 1, value, inst, d);
    }
  }

  void exec_jcc(const AsmInst& inst, const DecodedInst& d) {
    bool taken = eval_cond(inst.cc);
    if (fi_site(FaultKind::kBranchDecision, inst, d) != nullptr) {
      taken = !taken;
    }
    if (taken) {
      if (d.target_pc < 0) throw Trap{ExitStatus::kTrapInvalid};
      next_pc_ = d.target_pc;
    }
  }

  void exec_jmp(const AsmInst&, const DecodedInst& d) {
    if (d.target_pc < 0) throw Trap{ExitStatus::kTrapInvalid};
    next_pc_ = d.target_pc;
  }

  void exec_ret(const AsmInst&, const DecodedInst&) {
    const std::uint64_t addr = pop64();
    if (addr == kExitSentinel) {
      halted_ = true;
      return;
    }
    if ((addr & 0xff00'0000'0000'0000ULL) != kRetTag) {
      throw Trap{ExitStatus::kTrapInvalid};
    }
    const int fidx = static_cast<int>((addr >> 40) & 0xffff);
    const int bidx = static_cast<int>((addr >> 20) & 0xfffff);
    const int iidx = static_cast<int>(addr & 0xfffff);
    if (fidx >= program_.function_count() ||
        bidx >= program_.block_count(fidx)) {
      throw Trap{ExitStatus::kTrapInvalid};
    }
    if (touch_track_ && fault_injected_) touched_fns_ |= fn_bit(fidx);
    // An iidx past the block's end fell through to the next block in
    // the old interpreter; the clamp to the next block's base pc (the
    // sentinel when bidx is the last block) reproduces that exactly.
    next_pc_ = std::min(program_.block_pc(fidx, bidx) + iidx,
                        program_.block_pc(fidx, bidx + 1));
  }

  void exec_movsd(const AsmInst& inst, const DecodedInst& d) {
    if (inst.ops[0].is_xmm() && inst.ops[1].is_xmm()) {
      std::uint64_t lane = xmm_[inst.ops[0].xmm][0];
      write_xmm_faultable(inst.ops[1].xmm, 0, 1, &lane, inst, d);
    } else if (inst.ops[1].is_xmm()) {
      std::uint64_t lane = read_operand(inst.ops[0]);
      write_xmm_faultable(inst.ops[1].xmm, 0, 1, &lane, inst, d);
    } else {
      store_faultable(effective_address(inst.ops[1].mem), 8,
                      xmm_[inst.ops[0].xmm][0], inst, d);
    }
  }

  void exec_sse_arith(const AsmInst& inst, const DecodedInst& d) {
    const double b = as_f64(inst.ops[0].is_xmm() ? xmm_[inst.ops[0].xmm][0]
                                                 : read_operand(inst.ops[0]));
    const double a = as_f64(xmm_[inst.ops[1].xmm][0]);
    double result = 0.0;
    switch (inst.op) {
      case Op::kAddsd: result = a + b; break;
      case Op::kSubsd: result = a - b; break;
      case Op::kMulsd: result = a * b; break;
      default: result = a / b; break;
    }
    std::uint64_t lane = from_f64(result);
    write_xmm_faultable(inst.ops[1].xmm, 0, 1, &lane, inst, d);
  }

  void exec_sqrtsd(const AsmInst& inst, const DecodedInst& d) {
    const double a = as_f64(inst.ops[0].is_xmm() ? xmm_[inst.ops[0].xmm][0]
                                                 : read_operand(inst.ops[0]));
    std::uint64_t lane = from_f64(std::sqrt(a));
    write_xmm_faultable(inst.ops[1].xmm, 0, 1, &lane, inst, d);
  }

  void exec_ucomisd(const AsmInst& inst, const DecodedInst& d) {
    const double b = as_f64(inst.ops[0].is_xmm() ? xmm_[inst.ops[0].xmm][0]
                                                 : read_operand(inst.ops[0]));
    const double a = as_f64(xmm_[inst.ops[1].xmm][0]);
    Flags flags;
    if (a != a || b != b) {
      flags.zf = flags.cf = true;  // unordered
    } else {
      flags.zf = a == b;
      flags.cf = a < b;
    }
    write_flags_faultable(flags, inst, d);
  }

  void exec_cvtsi2sd(const AsmInst& inst, const DecodedInst& d) {
    const std::int64_t value = read_signed(inst.ops[0]);
    std::uint64_t lane = from_f64(static_cast<double>(value));
    write_xmm_faultable(inst.ops[1].xmm, 0, 1, &lane, inst, d);
  }

  void exec_cvttsd2si(const AsmInst& inst, const DecodedInst& d) {
    const double value = as_f64(xmm_[inst.ops[0].xmm][0]);
    std::int64_t result;
    if (value != value || value < -9.3e18 || value > 9.3e18) {
      result = INT64_MIN;  // x86 integer-indefinite
    } else {
      result = static_cast<std::int64_t>(value);
    }
    write_gpr_faultable(inst.ops[1].reg, inst.ops[1].width,
                        static_cast<std::uint64_t>(result), inst, d);
  }

  void exec_movq(const AsmInst& inst, const DecodedInst& d) {
    if (inst.ops[1].is_xmm()) {
      // gpr/mem -> xmm low lane; lane1 zeroed (SSE movq semantics).
      std::uint64_t lanes[2] = {read_operand(inst.ops[0]), 0};
      write_xmm_faultable(inst.ops[1].xmm, 0, 2, lanes, inst, d);
    } else {
      const std::uint64_t value = xmm_[inst.ops[0].xmm][0];
      if (inst.ops[1].is_mem()) {
        store_faultable(effective_address(inst.ops[1].mem), inst.ops[1].width,
                        value, inst, d);
      } else {
        write_gpr_faultable(inst.ops[1].reg, inst.ops[1].width, value, inst,
                            d);
      }
    }
  }

  void exec_pinsrq(const AsmInst& inst, const DecodedInst& d) {
    const int lane = static_cast<int>(inst.ops[0].imm) & 1;
    std::uint64_t value = read_operand(inst.ops[1]);
    write_xmm_faultable(inst.ops[2].xmm, lane, 1, &value, inst, d);
  }

  void exec_vinserti128(const AsmInst& inst, const DecodedInst& d) {
    const int lane = static_cast<int>(inst.ops[0].imm) & 1;
    std::uint64_t lanes[2] = {xmm_[inst.ops[1].xmm][0],
                              xmm_[inst.ops[1].xmm][1]};
    write_xmm_faultable(inst.ops[2].xmm, lane * 2, 2, lanes, inst, d);
  }

  void exec_vpxor(const AsmInst& inst, const DecodedInst& d) {
    // XMM form (VEX semantics): lanes 0-1 computed, upper lanes zeroed.
    const int active = inst.ops[0].ymm ? 4 : 2;
    std::uint64_t lanes[4] = {0, 0, 0, 0};
    for (int i = 0; i < active; ++i) {
      lanes[i] = xmm_[inst.ops[0].xmm][i] ^ xmm_[inst.ops[1].xmm][i];
    }
    write_xmm_faultable(inst.ops[2].xmm, 0, 4, lanes, inst, d);
  }

  void exec_vptest(const AsmInst& inst, const DecodedInst& d) {
    const int active = inst.ops[0].ymm ? 4 : 2;
    std::uint64_t accum = 0;
    for (int i = 0; i < active; ++i) {
      accum |= xmm_[inst.ops[0].xmm][i] & xmm_[inst.ops[1].xmm][i];
    }
    Flags flags;
    flags.zf = accum == 0;
    write_flags_faultable(flags, inst, d);
  }

  /// Executes one instruction (reference switch dispatch).
  void exec(const AsmInst& inst, const DecodedInst& d) {
    if (d.tag == kTagBadWidth) throw Trap{ExitStatus::kTrapInvalid};
    switch (inst.op) {
      case Op::kMov: exec_mov(inst, d); return;
      case Op::kMovsx: exec_movsx(inst, d); return;
      case Op::kMovzx: exec_movzx(inst, d); return;
      case Op::kLea: exec_lea(inst, d); return;
      case Op::kPush: exec_push(inst, d); return;
      case Op::kPop: exec_pop(inst, d); return;
      case Op::kAdd: case Op::kSub: case Op::kImul: case Op::kAnd:
      case Op::kOr: case Op::kXor: case Op::kShl: case Op::kSar:
      case Op::kIdiv: case Op::kIrem:
        exec_alu(inst, d);
        return;
      case Op::kCmp: exec_cmp(inst, d); return;
      case Op::kTest: exec_test(inst, d); return;
      case Op::kSetcc: exec_setcc(inst, d); return;
      case Op::kJcc: exec_jcc(inst, d); return;
      case Op::kJmp: exec_jmp(inst, d); return;
      case Op::kCall: exec_call(inst, d); return;
      case Op::kRet: exec_ret(inst, d); return;
      case Op::kDetectTrap: throw Trap{ExitStatus::kDetected};
      case Op::kMovsd: exec_movsd(inst, d); return;
      case Op::kAddsd: case Op::kSubsd: case Op::kMulsd: case Op::kDivsd:
        exec_sse_arith(inst, d);
        return;
      case Op::kSqrtsd: exec_sqrtsd(inst, d); return;
      case Op::kUcomisd: exec_ucomisd(inst, d); return;
      case Op::kCvtsi2sd: exec_cvtsi2sd(inst, d); return;
      case Op::kCvttsd2si: exec_cvttsd2si(inst, d); return;
      case Op::kMovq: exec_movq(inst, d); return;
      case Op::kPinsrq: exec_pinsrq(inst, d); return;
      case Op::kVinserti128: exec_vinserti128(inst, d); return;
      case Op::kVpxor: exec_vpxor(inst, d); return;
      case Op::kVptest: exec_vptest(inst, d); return;
    }
    throw Trap{ExitStatus::kTrapInvalid};
  }

#if FERRUM_THREADED_DISPATCH
  /// Threaded dispatch: one computed goto per decoded tag, so every
  /// handler ends in its own indirect jump (per-site branch prediction
  /// instead of the switch's single hot jump) and none of the reference
  /// loop's per-step introspection checks are on the path. Fused tags
  /// (cmp+jcc, mov+alu) execute both halves under one dispatch with full
  /// per-instruction bookkeeping: the step counter is bumped and checked
  /// per half, and pc_ is advanced between halves so FI-site pc sinks
  /// and fault landings see exactly the unfused stream. Used only for
  /// runs without profiling/timing/tracing/capture. `stop_at_sites`
  /// pauses at the first instruction boundary where fi_sites_ reaches
  /// that count — the same positions loop() pauses at, including between
  /// the halves of a fused pair (resuming there dispatches the second
  /// half singly via its own tag) — so golden-rejoin comparisons see
  /// identical machine positions under either dispatch mode. kNoPause
  /// runs to halt or trap.
  LoopExit loop_threaded(std::uint64_t stop_at_sites) {
    static const void* const kJump[kTagCount] = {
        &&lbl_mov,         // kMov
        &&lbl_movsx,       // kMovsx
        &&lbl_movzx,       // kMovzx
        &&lbl_lea,         // kLea
        &&lbl_push,        // kPush
        &&lbl_pop,         // kPop
        &&lbl_alu,         // kAdd
        &&lbl_alu,         // kSub
        &&lbl_alu,         // kImul
        &&lbl_alu,         // kAnd
        &&lbl_alu,         // kOr
        &&lbl_alu,         // kXor
        &&lbl_alu,         // kShl
        &&lbl_alu,         // kSar
        &&lbl_alu,         // kIdiv
        &&lbl_alu,         // kIrem
        &&lbl_cmp,         // kCmp
        &&lbl_test,        // kTest
        &&lbl_setcc,       // kSetcc
        &&lbl_jcc,         // kJcc
        &&lbl_jmp,         // kJmp
        &&lbl_call,        // kCall
        &&lbl_ret,         // kRet
        &&lbl_movsd,       // kMovsd
        &&lbl_sse_arith,   // kAddsd
        &&lbl_sse_arith,   // kSubsd
        &&lbl_sse_arith,   // kMulsd
        &&lbl_sse_arith,   // kDivsd
        &&lbl_sqrtsd,      // kSqrtsd
        &&lbl_ucomisd,     // kUcomisd
        &&lbl_cvtsi2sd,    // kCvtsi2sd
        &&lbl_cvttsd2si,   // kCvttsd2si
        &&lbl_movq,        // kMovq
        &&lbl_pinsrq,      // kPinsrq
        &&lbl_vinserti128, // kVinserti128
        &&lbl_vpxor,       // kVpxor
        &&lbl_vptest,      // kVptest
        &&lbl_detect,      // kDetectTrap
        &&lbl_sentinel,    // kTagSentinel
        &&lbl_bad_width,   // kTagBadWidth
        &&lbl_cmp_jcc,     // kTagCmpJcc
        &&lbl_mov_alu,     // kTagMovAlu
    };
    const DecodedInst* const code = code_;
    const std::uint64_t max_steps = options_->max_steps;
    const DecodedInst* d;

// Fetch + per-instruction bookkeeping, in the reference loop's order:
// the sentinel/bad-width tags dispatch *before* FERRUM_STEP so a
// sentinel still traps without counting a step, exactly like the null-
// inst check preceding the step increment in loop(). FERRUM_PAUSE is
// the instruction-boundary pause check, mirroring the one at the top of
// loop()'s iteration — one predictable compare per instruction
// (stop_at_sites is kNoPause on non-rejoin runs, so it never fires).
#define FERRUM_PAUSE() \
  if (fi_sites_ >= stop_at_sites) return LoopExit::kPaused
#define FERRUM_STEP()                                             \
  d = code + pc_;                                                 \
  if (++steps_ > max_steps) throw Trap{ExitStatus::kTrapSteps};   \
  next_pc_ = pc_ + 1
#define FERRUM_NEXT() \
  pc_ = next_pc_;     \
  FERRUM_PAUSE();     \
  goto* kJump[code[pc_].tag]

    FERRUM_PAUSE();
    goto* kJump[code[pc_].tag];

  lbl_mov:
    FERRUM_STEP();
    exec_mov(*d->inst, *d);
    FERRUM_NEXT();
  lbl_movsx:
    FERRUM_STEP();
    exec_movsx(*d->inst, *d);
    FERRUM_NEXT();
  lbl_movzx:
    FERRUM_STEP();
    exec_movzx(*d->inst, *d);
    FERRUM_NEXT();
  lbl_lea:
    FERRUM_STEP();
    exec_lea(*d->inst, *d);
    FERRUM_NEXT();
  lbl_push:
    FERRUM_STEP();
    exec_push(*d->inst, *d);
    FERRUM_NEXT();
  lbl_pop:
    FERRUM_STEP();
    exec_pop(*d->inst, *d);
    FERRUM_NEXT();
  lbl_alu:
    FERRUM_STEP();
    exec_alu(*d->inst, *d);
    FERRUM_NEXT();
  lbl_cmp:
    FERRUM_STEP();
    exec_cmp(*d->inst, *d);
    FERRUM_NEXT();
  lbl_test:
    FERRUM_STEP();
    exec_test(*d->inst, *d);
    FERRUM_NEXT();
  lbl_setcc:
    FERRUM_STEP();
    exec_setcc(*d->inst, *d);
    FERRUM_NEXT();
  lbl_jcc:
    FERRUM_STEP();
    exec_jcc(*d->inst, *d);
    FERRUM_NEXT();
  lbl_jmp:
    FERRUM_STEP();
    exec_jmp(*d->inst, *d);
    FERRUM_NEXT();
  lbl_call:
    FERRUM_STEP();
    exec_call(*d->inst, *d);
    FERRUM_NEXT();
  lbl_ret:
    FERRUM_STEP();
    exec_ret(*d->inst, *d);
    if (halted_) {
      pc_ = next_pc_;
      return LoopExit::kHalted;
    }
    FERRUM_NEXT();
  lbl_movsd:
    FERRUM_STEP();
    exec_movsd(*d->inst, *d);
    FERRUM_NEXT();
  lbl_sse_arith:
    FERRUM_STEP();
    exec_sse_arith(*d->inst, *d);
    FERRUM_NEXT();
  lbl_sqrtsd:
    FERRUM_STEP();
    exec_sqrtsd(*d->inst, *d);
    FERRUM_NEXT();
  lbl_ucomisd:
    FERRUM_STEP();
    exec_ucomisd(*d->inst, *d);
    FERRUM_NEXT();
  lbl_cvtsi2sd:
    FERRUM_STEP();
    exec_cvtsi2sd(*d->inst, *d);
    FERRUM_NEXT();
  lbl_cvttsd2si:
    FERRUM_STEP();
    exec_cvttsd2si(*d->inst, *d);
    FERRUM_NEXT();
  lbl_movq:
    FERRUM_STEP();
    exec_movq(*d->inst, *d);
    FERRUM_NEXT();
  lbl_pinsrq:
    FERRUM_STEP();
    exec_pinsrq(*d->inst, *d);
    FERRUM_NEXT();
  lbl_vinserti128:
    FERRUM_STEP();
    exec_vinserti128(*d->inst, *d);
    FERRUM_NEXT();
  lbl_vpxor:
    FERRUM_STEP();
    exec_vpxor(*d->inst, *d);
    FERRUM_NEXT();
  lbl_vptest:
    FERRUM_STEP();
    exec_vptest(*d->inst, *d);
    FERRUM_NEXT();
  lbl_detect:
    FERRUM_STEP();
    throw Trap{ExitStatus::kDetected};
  lbl_sentinel:
    // End-of-function sentinel: trap without counting a step.
    throw Trap{ExitStatus::kTrapInvalid};
  lbl_bad_width:
    FERRUM_STEP();
    throw Trap{ExitStatus::kTrapInvalid};
  lbl_cmp_jcc:
    // Fused pair: both halves with full bookkeeping, one dispatch. The
    // mid-pair pause check keeps pause positions identical to loop()'s
    // (the first half may register the FI site that reaches the stop
    // count).
    FERRUM_STEP();
    exec_cmp(*d->inst, *d);
    pc_ = next_pc_;
    FERRUM_PAUSE();
    FERRUM_STEP();
    exec_jcc(*d->inst, *d);
    FERRUM_NEXT();
  lbl_mov_alu:
    FERRUM_STEP();
    exec_mov(*d->inst, *d);
    pc_ = next_pc_;
    FERRUM_PAUSE();
    FERRUM_STEP();
    exec_alu(*d->inst, *d);
    FERRUM_NEXT();

#undef FERRUM_PAUSE
#undef FERRUM_STEP
#undef FERRUM_NEXT
  }
#endif  // FERRUM_THREADED_DISPATCH

  void exec_alu(const AsmInst& inst, const DecodedInst& d) {
    const int width = inst.ops[1].width;
    const std::uint64_t mask =
        width == 8 ? ~0ULL : (std::uint64_t{1} << (width * 8)) - 1;
    const std::uint64_t b = read_operand(inst.ops[0]) & mask;
    const bool to_mem = inst.ops[1].is_mem();
    const std::uint64_t a =
        (to_mem ? load(effective_address(inst.ops[1].mem), width)
                : read_gpr(inst.ops[1].reg, width)) & mask;
    std::uint64_t result = 0;
    Flags flags;
    switch (inst.op) {
      case Op::kAdd: {
        result = (a + b) & mask;
        flags = flags_of_result(result, width);
        flags.cf = result < a;
        const std::int64_t sa = sign_at(a, width), sb = sign_at(b, width),
                           sr = sign_at(result, width);
        flags.of = ((sa < 0) == (sb < 0)) && ((sr < 0) != (sa < 0));
        break;
      }
      case Op::kSub: {
        flags = flags_of_sub(a, b, width);
        result = (a - b) & mask;
        break;
      }
      case Op::kImul: {
        const std::int64_t product = sign_at(a, width) * sign_at(b, width);
        result = static_cast<std::uint64_t>(product) & mask;
        flags = flags_of_result(result, width);
        break;
      }
      case Op::kAnd: result = a & b; flags = flags_of_result(result, width); break;
      case Op::kOr: result = a | b; flags = flags_of_result(result, width); break;
      case Op::kXor: result = a ^ b; flags = flags_of_result(result, width); break;
      case Op::kShl: {
        const int count = static_cast<int>(b) & (width == 8 ? 63 : 31);
        result = (a << count) & mask;
        flags = flags_of_result(result, width);
        break;
      }
      case Op::kSar: {
        const int count = static_cast<int>(b) & (width == 8 ? 63 : 31);
        result = static_cast<std::uint64_t>(sign_at(a, width) >> count) & mask;
        flags = flags_of_result(result, width);
        break;
      }
      case Op::kIdiv:
      case Op::kIrem: {
        const std::int64_t sa = sign_at(a, width);
        const std::int64_t sb = sign_at(b, width);
        if (sb == 0 || (sa == INT64_MIN && sb == -1)) {
          throw Trap{ExitStatus::kTrapDivide};
        }
        const std::int64_t value = inst.op == Op::kIdiv ? sa / sb : sa % sb;
        result = static_cast<std::uint64_t>(value) & mask;
        flags = flags_of_result(result, width);
        break;
      }
      default:
        throw Trap{ExitStatus::kTrapInvalid};
    }
    // Order matters: flags site first, then the destination write site —
    // each ALU instruction still registers only the destination-register
    // (or store) site; flags changes ride along un-sampled to keep one
    // site per instruction, as in the paper's injector.
    flags_ = flags;
    if (to_mem) {
      store_faultable(effective_address(inst.ops[1].mem), width, result, inst,
                      d);
    } else {
      write_gpr_faultable(inst.ops[1].reg, width, result, inst, d);
    }
  }

  void exec_call(const AsmInst& inst, const DecodedInst& d) {
    if (d.callee == kCalleePrintInt) {
      output_.push_back(gpr_[static_cast<int>(Gpr::kRdi)]);
      if (state_digest_sink_ != nullptr) {
        output_chain_ = mix64(output_chain_ ^ output_.back());
      }
      return;
    }
    if (d.callee == kCalleePrintF64) {
      output_.push_back(xmm_[0][0]);
      if (state_digest_sink_ != nullptr) {
        output_chain_ = mix64(output_chain_ ^ output_.back());
      }
      return;
    }
    if (d.callee < 0) throw Trap{ExitStatus::kTrapInvalid};
    const std::uint64_t ret_addr =
        kRetTag | (static_cast<std::uint64_t>(d.fidx) << 40) |
        (static_cast<std::uint64_t>(d.bidx) << 20) |
        static_cast<std::uint64_t>(d.iidx + 1);
    std::uint64_t& rsp = gpr_[static_cast<int>(Gpr::kRsp)];
    rsp -= 8;
    if (rsp <= heap_end_) throw Trap{ExitStatus::kTrapMemory};
    store_faultable(rsp, 8, ret_addr, inst, d);
    if (touch_track_ && fault_injected_) touched_fns_ |= fn_bit(d.callee);
    next_pc_ = program_.entry_pc(d.callee);
  }

  /// Converts the raw per-block instruction tallies into the profile's
  /// sorted, capped hot-block list (deterministic tie-break by name).
  void finalize_hot_blocks() {
    std::vector<VmProfile::BlockCount> blocks;
    for (std::size_t f = 0; f < block_hits_.size(); ++f) {
      for (std::size_t b = 0; b < block_hits_[f].size(); ++b) {
        if (block_hits_[f][b] == 0) continue;
        VmProfile::BlockCount entry;
        entry.function = program_.source().functions[f].name;
        entry.label = program_.source().functions[f].blocks[b].label;
        entry.instructions = block_hits_[f][b];
        blocks.push_back(std::move(entry));
      }
    }
    std::sort(blocks.begin(), blocks.end(),
              [](const VmProfile::BlockCount& a,
                 const VmProfile::BlockCount& b) {
                if (a.instructions != b.instructions) {
                  return a.instructions > b.instructions;
                }
                if (a.function != b.function) return a.function < b.function;
                return a.label < b.label;
              });
    if (blocks.size() > VmProfile::kMaxHotBlocks) {
      blocks.resize(VmProfile::kMaxHotBlocks);
    }
    profile_.hot_blocks = std::move(blocks);
  }

  // ------------------------------------------------------------- state --

  const PredecodedProgram& program_;
  const DecodedInst* code_;

  std::vector<std::uint8_t> memory_;
  const std::size_t npages_;
  /// Provenance per page: the checkpoint PageImage the page's content
  /// last equalled (null = all-zero), valid when dirty_ is clear. Held
  /// as shared_ptr so thinned-away checkpoints cannot dangle it.
  std::vector<std::shared_ptr<const PageImage>> current_page_;
  std::vector<std::uint8_t> dirty_;
  /// Copy-on-first-write journal of a batched lane's suffix (see
  /// run_suffix): per-page saved flag, saved pre-images, and a buffer
  /// pool so steady-state batching allocates nothing.
  bool journaling_ = false;
  std::vector<std::uint8_t> journaled_;
  std::vector<std::pair<std::size_t, std::unique_ptr<PageImage>>> journal_;
  std::vector<std::unique_ptr<PageImage>> journal_pool_;

  std::uint64_t gpr_[masm::kGprCount] = {};
  std::uint64_t xmm_[masm::kXmmCount][4] = {};
  Flags flags_;
  std::vector<std::uint64_t> global_addr_;
  std::uint64_t heap_end_ = 0;
  bool layout_ok_ = true;

  std::int32_t pc_ = 0;
  std::int32_t next_pc_ = 0;
  bool halted_ = false;
  std::uint64_t next_capture_at_ = 0;

  const VmOptions* options_ = nullptr;
  const FaultSpec* faults_ = nullptr;
  std::size_t fault_count_ = 0;
  /// Checkpoints eligible as golden-rejoin boundaries for the current
  /// run (null = no rejoin), plus this run's rejoin outcome: whether the
  /// tail was adopted, and how many golden-tail steps were elided.
  const CheckpointSet* rejoin_ = nullptr;
  bool rejoined_ = false;
  std::uint64_t rejoin_skipped_ = 0;
  std::uint64_t rejoin_site_ = 0;

  std::vector<std::int32_t>* site_pc_sink_ = nullptr;
  /// State-digest observer (see Engine::set_state_digest_sink): per-site
  /// digests land in the sink; the masks select the live registers per
  /// flat pc; the chains accumulate the store stream and output log.
  std::vector<std::uint64_t>* state_digest_sink_ = nullptr;
  const std::vector<std::uint64_t>* digest_live_masks_ = nullptr;
  std::uint64_t store_chain_ = 0;
  std::uint64_t output_chain_ = 0;
  /// Post-fault touched-function accounting (VmOptions::
  /// track_touched_functions).
  bool touch_track_ = false;
  std::uint64_t touched_fns_ = 0;
  /// True when any per-site observer (pc sink, digest sink, profiler
  /// tallies) is active this run; recomputed at every run entry.
  bool site_observers_ = false;

  std::uint64_t steps_ = 0;
  std::uint64_t fi_sites_ = 0;
  std::uint64_t fault_step_ = 0;
  bool fault_injected_ = false;
  std::optional<FaultLanding> fault_landing_;
  std::vector<std::uint64_t> output_;
  std::vector<std::string> trace_;
  std::uint64_t touched_addr_ = 0;
  std::optional<TimingModel> timing_;
  VmProfile profile_;
  // Dynamic instructions per [function][block] (profiling only).
  std::vector<std::vector<std::uint64_t>> block_hits_;
};

Engine::Engine(const PredecodedProgram& program, const VmOptions& options)
    : impl_(std::make_unique<Impl>(program, options)) {}

Engine::~Engine() = default;

VmResult Engine::run(const VmOptions& options, const FaultSpec* faults,
                     std::size_t fault_count) {
  return impl_->run(options, faults, fault_count, stats_);
}

VmResult Engine::run_capturing(const VmOptions& options, std::uint64_t stride,
                               CheckpointSet& out) {
  return impl_->run_capturing(options, stride, out, stats_);
}

VmResult Engine::run_from(const CheckpointSet& checkpoints,
                          const VmOptions& options, const FaultSpec* faults,
                          std::size_t fault_count) {
  return impl_->run_from(checkpoints, options, faults, fault_count, stats_);
}

void Engine::run_batch(const CheckpointSet* checkpoints,
                       const VmOptions& options, const BatchTrial* trials,
                       std::size_t count, VmResult* results) {
  impl_->run_batch(checkpoints, options, trials, count, results, stats_);
}

void Engine::set_site_pc_sink(std::vector<std::int32_t>* sink) {
  impl_->set_site_pc_sink(sink);
}

void Engine::set_state_digest_sink(std::vector<std::uint64_t>* sink,
                                   const std::vector<std::uint64_t>* live_masks) {
  impl_->set_state_digest_sink(sink, live_masks);
}

}  // namespace ferrum::vm
