#include "vm/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <unordered_map>

namespace ferrum::vm {

using masm::AsmFunction;
using masm::AsmInst;
using masm::AsmProgram;
using masm::Cond;
using masm::Gpr;
using masm::MemRef;
using masm::Op;
using masm::Operand;

namespace {

struct Trap {
  ExitStatus status;
};

/// Return addresses are tagged so that corrupted data popped by `ret` is
/// recognisably invalid (-> crash, like a wild jump on real hardware).
/// The encoding is part of the fault model (return addresses live in
/// memory and are flippable), so it must match the historical VM exactly.
constexpr std::uint64_t kRetTag = 0x7e00'0000'0000'0000ULL;
constexpr std::uint64_t kExitSentinel = kRetTag | 0xffff'ffffULL;

struct Flags {
  bool zf = false, sf = false, of = false, cf = false;
};

}  // namespace

// ----------------------------------------------------------- predecode --

PredecodedProgram::PredecodedProgram(const AsmProgram& program)
    : program_(&program) {
  std::unordered_map<std::string, int> function_by_name;
  for (std::size_t f = 0; f < program.functions.size(); ++f) {
    // operator[] (not emplace): duplicate names resolve to the last
    // definition, as in the historical resolve().
    function_by_name[program.functions[f].name] = static_cast<int>(f);
  }
  auto main_it = function_by_name.find("main");
  main_index_ = main_it == function_by_name.end() ? -1 : main_it->second;

  code_.reserve(program.inst_count() + program.functions.size());
  func_entry_pc_.reserve(program.functions.size());
  block_base_pc_.reserve(program.functions.size());
  for (std::size_t f = 0; f < program.functions.size(); ++f) {
    const AsmFunction& fn = program.functions[f];
    std::unordered_map<std::string, int> labels;
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      labels[fn.blocks[b].label] = static_cast<int>(b);
    }
    auto& bases = block_base_pc_.emplace_back();
    bases.reserve(fn.blocks.size() + 1);
    // First pass: lay out block start pcs (blocks are contiguous, so the
    // old interpreter's fall-through-to-next-block is just pc + 1).
    std::int32_t pc = static_cast<std::int32_t>(code_.size());
    for (const auto& block : fn.blocks) {
      bases.push_back(pc);
      pc += static_cast<std::int32_t>(block.insts.size());
    }
    bases.push_back(pc);  // sentinel position
    func_entry_pc_.push_back(bases.front());
    // Second pass: emit decoded instructions with resolved targets.
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      const auto& block = fn.blocks[b];
      for (std::size_t i = 0; i < block.insts.size(); ++i) {
        const AsmInst& inst = block.insts[i];
        DecodedInst d;
        d.inst = &inst;
        d.fidx = static_cast<std::int32_t>(f);
        d.bidx = static_cast<std::int32_t>(b);
        d.iidx = static_cast<std::int32_t>(i);
        if (inst.op == Op::kJmp || inst.op == Op::kJcc) {
          auto it = labels.find(inst.ops[0].label);
          d.target_pc = it == labels.end()
                            ? -1
                            : bases[static_cast<std::size_t>(it->second)];
        } else if (inst.op == Op::kCall) {
          const std::string& callee = inst.ops[0].label;
          // Builtin check precedes function lookup, matching exec_call's
          // historical order (a user function named print_int is
          // unreachable, exactly as before).
          if (callee == "print_int") {
            d.callee = kCalleePrintInt;
          } else if (callee == "print_f64") {
            d.callee = kCalleePrintF64;
          } else {
            auto it = function_by_name.find(callee);
            d.callee = it == function_by_name.end() ? -1 : it->second;
          }
        }
        code_.push_back(d);
      }
    }
    // End-of-function sentinel: executing it means control fell past the
    // function's last block -> kTrapInvalid without counting a step.
    DecodedInst sentinel;
    sentinel.fidx = static_cast<std::int32_t>(f);
    sentinel.bidx = static_cast<std::int32_t>(fn.blocks.size());
    code_.push_back(sentinel);
  }
  if (code_.empty()) {
    // Degenerate programs (no functions) still need a pc to sit on.
    code_.push_back(DecodedInst{});
    func_entry_pc_.push_back(0);
    block_base_pc_.push_back({0});
  }
}

// --------------------------------------------------------- checkpoints --

CheckpointSet::CheckpointSet()
    : live_page_bytes_(std::make_shared<std::atomic<std::uint64_t>>(0)) {}

void CheckpointSet::begin(std::uint64_t stride) {
  checkpoints_.clear();
  table_entries_ = 0;
  stride_ = stride == 0 ? 1 : stride;
}

std::shared_ptr<const PageImage> CheckpointSet::make_page(
    const std::uint8_t* bytes, std::size_t size) {
  auto* image = new PageImage;
  std::memcpy(image->bytes, bytes, size);
  if (size < kCkptPageSize) {
    std::memset(image->bytes + size, 0, kCkptPageSize - size);
  }
  auto counter = live_page_bytes_;
  counter->fetch_add(kCkptPageSize, std::memory_order_relaxed);
  return std::shared_ptr<const PageImage>(
      image, [counter](const PageImage* p) {
        counter->fetch_sub(kCkptPageSize, std::memory_order_relaxed);
        delete p;
      });
}

void CheckpointSet::add(Checkpoint checkpoint) {
  table_entries_ += checkpoint.pages.size();
  checkpoints_.push_back(std::move(checkpoint));
  // Adaptive thinning: drop every other checkpoint and double the stride
  // when the set grows past the count cap or the page budget. The
  // trigger depends only on the golden instruction stream, so the
  // surviving set — and therefore which checkpoint any trial restores —
  // is deterministic.
  while (checkpoints_.size() > 2 &&
         (checkpoints_.size() > kMaxLiveCheckpoints ||
          live_page_bytes_->load(std::memory_order_relaxed) >
              kPageBudgetBytes)) {
    thin();
  }
}

void CheckpointSet::thin() {
  std::vector<Checkpoint> kept;
  kept.reserve(checkpoints_.size() / 2 + 1);
  table_entries_ = 0;
  for (std::size_t i = 0; i < checkpoints_.size(); i += 2) {
    table_entries_ += checkpoints_[i].pages.size();
    kept.push_back(std::move(checkpoints_[i]));
  }
  checkpoints_ = std::move(kept);
  stride_ *= 2;
}

std::uint64_t CheckpointSet::snapshot_bytes() const {
  return live_page_bytes_->load(std::memory_order_relaxed) +
         static_cast<std::uint64_t>(table_entries_) *
             sizeof(std::shared_ptr<const PageImage>);
}

const Checkpoint& CheckpointSet::nearest_at_or_before(
    std::uint64_t site) const {
  // First checkpoint with fi_sites > site, then step back one. Capture
  // always records a checkpoint at site 0, so the predecessor exists.
  auto it = std::upper_bound(
      checkpoints_.begin(), checkpoints_.end(), site,
      [](std::uint64_t s, const Checkpoint& c) { return s < c.fi_sites; });
  return *(it - 1);
}

// -------------------------------------------------------------- engine --

class Engine::Impl {
 public:
  Impl(const PredecodedProgram& program, const VmOptions& options)
      : program_(program),
        code_(program.code().data()),
        memory_(options.memory_bytes),
        npages_((options.memory_bytes + kCkptPageSize - 1) / kCkptPageSize),
        current_page_(npages_),
        dirty_(npages_, 0) {
    compute_layout();
  }

  VmResult run(const VmOptions& options, const FaultSpec* faults,
               std::size_t fault_count, FastForwardStats& stats) {
    return execute(options, faults, fault_count, nullptr, nullptr, stats);
  }

  VmResult run_capturing(const VmOptions& options, std::uint64_t stride,
                         CheckpointSet& out, FastForwardStats& stats) {
    out.begin(stride);
    return execute(options, nullptr, 0, nullptr, &out, stats);
  }

  VmResult run_from(const CheckpointSet& checkpoints, const VmOptions& options,
                    const FaultSpec* faults, std::size_t fault_count,
                    FastForwardStats& stats) {
    if (checkpoints.empty()) {
      return execute(options, faults, fault_count, nullptr, nullptr, stats);
    }
    std::uint64_t min_site = ~std::uint64_t{0};
    for (std::size_t i = 0; i < fault_count; ++i) {
      min_site = std::min(min_site, faults[i].site);
    }
    if (fault_count == 0) min_site = 0;
    const Checkpoint& resume = checkpoints.nearest_at_or_before(min_site);
    return execute(options, faults, fault_count, &resume, nullptr, stats);
  }

  void set_site_pc_sink(std::vector<std::int32_t>* sink) {
    site_pc_sink_ = sink;
  }

 private:
  // ----------------------------------------------------------- layout --

  /// Global addresses and the heap bound depend only on the program and
  /// the arena size, so they are computed once per Engine. The historical
  /// kTrapMemory for oversized globals is deferred to run time.
  void compute_layout() {
    std::size_t cursor = 0x1000;
    for (const auto& global : program_.source().globals) {
      cursor = (cursor + 15) & ~std::size_t{15};
      global_addr_.push_back(cursor);
      if (cursor + static_cast<std::size_t>(global.size_bytes) >
          memory_.size() / 2) {
        layout_ok_ = false;
        return;
      }
      cursor += static_cast<std::size_t>(global.size_bytes);
    }
    heap_end_ = cursor;
  }

  /// Writes global initialisers into the (all-zero) arena, marking the
  /// touched pages dirty so the next prepare can undo them.
  void write_globals() {
    const auto& globals = program_.source().globals;
    for (std::size_t g = 0; g < globals.size(); ++g) {
      const auto& global = globals[g];
      const std::size_t size =
          std::min<std::size_t>(global.init.size(),
                                static_cast<std::size_t>(global.size_bytes));
      if (size == 0) continue;
      const std::size_t addr = static_cast<std::size_t>(global_addr_[g]);
      std::memcpy(memory_.data() + addr, global.init.data(), size);
      mark_dirty_range(addr, size);
    }
  }

  // --------------------------------------------------- page bookkeeping --

  void mark_dirty_range(std::size_t addr, std::size_t size) {
    const std::size_t first = addr >> kCkptPageBits;
    const std::size_t last = (addr + size - 1) >> kCkptPageBits;
    for (std::size_t p = first; p <= last; ++p) dirty_[p] = 1;
  }

  std::size_t page_bytes(std::size_t page) const {
    const std::size_t start = page << kCkptPageBits;
    return std::min(kCkptPageSize, memory_.size() - start);
  }

  /// Resets the arena to all-zero by undoing only pages known to differ.
  void prepare_cold() {
    for (std::size_t p = 0; p < npages_; ++p) {
      if (!dirty_[p] && current_page_[p] == nullptr) continue;
      std::memset(memory_.data() + (p << kCkptPageBits), 0, page_bytes(p));
      current_page_[p].reset();
      dirty_[p] = 0;
    }
  }

  /// Resets the arena to a checkpoint's memory image. Pages whose current
  /// content provably equals the target (same PageImage, not dirtied) are
  /// skipped — the per-trial cost is the *diff*, not the arena size.
  void prepare_from(const Checkpoint& checkpoint) {
    for (std::size_t p = 0; p < npages_; ++p) {
      const auto& desired = checkpoint.pages[p];
      if (!dirty_[p] && current_page_[p].get() == desired.get()) continue;
      if (desired == nullptr) {
        std::memset(memory_.data() + (p << kCkptPageBits), 0, page_bytes(p));
      } else {
        std::memcpy(memory_.data() + (p << kCkptPageBits), desired->bytes,
                    page_bytes(p));
      }
      current_page_[p] = desired;
      dirty_[p] = 0;
    }
  }

  void do_capture(CheckpointSet& out) {
    for (std::size_t p = 0; p < npages_; ++p) {
      if (!dirty_[p]) continue;
      current_page_[p] =
          out.make_page(memory_.data() + (p << kCkptPageBits), page_bytes(p));
      dirty_[p] = 0;
    }
    Checkpoint ck;
    ck.pc = pc_;
    ck.steps = steps_;
    ck.fi_sites = fi_sites_;
    std::memcpy(ck.gpr, gpr_, sizeof(gpr_));
    std::memcpy(ck.xmm, xmm_, sizeof(xmm_));
    ck.zf = flags_.zf;
    ck.sf = flags_.sf;
    ck.of = flags_.of;
    ck.cf = flags_.cf;
    ck.output = output_;
    ck.pages = current_page_;
    out.add(std::move(ck));
    // Thinning inside add() may have doubled the stride and dropped the
    // freshly added checkpoint; follow whatever survived.
    next_capture_at_ = last_site(out) + out.stride();
    while (next_capture_at_ <= fi_sites_) next_capture_at_ += out.stride();
  }

  static std::uint64_t last_site(const CheckpointSet& out) {
    return out.nearest_at_or_before(~std::uint64_t{0}).fi_sites;
  }

  // ------------------------------------------------------------- run --

  VmResult execute(const VmOptions& options, const FaultSpec* faults,
                   std::size_t fault_count, const Checkpoint* resume,
                   CheckpointSet* capture, FastForwardStats& stats) {
    options_ = &options;
    faults_ = faults;
    fault_count_ = fault_count;
    steps_ = 0;
    fi_sites_ = 0;
    fault_step_ = 0;
    fault_injected_ = false;
    fault_landing_.reset();
    output_.clear();
    trace_.clear();
    touched_addr_ = 0;
    halted_ = false;
    timing_.reset();
    if (options.timing) timing_.emplace(options.timing_params);
    profile_ = VmProfile{};
    if (options.profile) {
      block_hits_.assign(program_.source().functions.size(), {});
      for (std::size_t f = 0; f < block_hits_.size(); ++f) {
        block_hits_[f].assign(program_.source().functions[f].blocks.size(), 0);
      }
    }

    VmResult result;
    try {
      if (resume != nullptr) {
        prepare_from(*resume);
        std::memcpy(gpr_, resume->gpr, sizeof(gpr_));
        std::memcpy(xmm_, resume->xmm, sizeof(xmm_));
        flags_.zf = resume->zf;
        flags_.sf = resume->sf;
        flags_.of = resume->of;
        flags_.cf = resume->cf;
        output_ = resume->output;
        steps_ = resume->steps;
        fi_sites_ = resume->fi_sites;
        pc_ = resume->pc;
      } else {
        prepare_cold();
        std::memset(gpr_, 0, sizeof(gpr_));
        std::memset(xmm_, 0, sizeof(xmm_));
        flags_ = Flags{};
        if (!layout_ok_) throw Trap{ExitStatus::kTrapMemory};
        write_globals();
        if (program_.main_index() < 0) throw Trap{ExitStatus::kTrapInvalid};
        // Set up the stack and the exit sentinel.
        gpr_[static_cast<int>(Gpr::kRsp)] = memory_.size() - 64;
        push64(kExitSentinel);
        pc_ = program_.entry_pc(program_.main_index());
        if (capture != nullptr) {
          next_capture_at_ = 0;  // checkpoint 0 right at the start
          do_capture(*capture);
        }
      }
      loop(capture);
      result.return_value =
          static_cast<std::int64_t>(gpr_[static_cast<int>(Gpr::kRax)]);
    } catch (const Trap& trap) {
      result.status = trap.status;
    }
    result.output = std::move(output_);
    result.trace = std::move(trace_);
    result.steps = steps_;
    result.fi_sites = fi_sites_;
    result.fault_injected = fault_injected_;
    result.fault_landing = fault_landing_;
    result.fault_step = fault_step_;
    if (options.timing) {
      result.cycles = timing_->cycles();
      result.timing_stats = timing_->stats();
    }
    if (options.profile) {
      finalize_hot_blocks();
      result.profile = std::move(profile_);
    }
    stats.trials += 1;
    if (resume != nullptr) {
      stats.restores += 1;
      stats.steps_skipped += resume->steps;
      stats.steps_executed += result.steps - resume->steps;
    } else {
      stats.steps_executed += result.steps;
    }
    options_ = nullptr;
    faults_ = nullptr;
    fault_count_ = 0;
    return result;
  }

  void loop(CheckpointSet* capture) {
    const bool profiling = options_->profile;
    const bool timing_on = options_->timing;
    const std::size_t trace_limit = options_->trace_limit;
    const std::uint64_t max_steps = options_->max_steps;
    for (;;) {
      const DecodedInst& d = code_[pc_];
      if (d.inst == nullptr) throw Trap{ExitStatus::kTrapInvalid};
      const AsmInst& inst = *d.inst;
      if (++steps_ > max_steps) throw Trap{ExitStatus::kTrapSteps};
      if (profiling) {
        ++profile_.op_counts[static_cast<int>(inst.op)];
        ++profile_.origin_counts[static_cast<int>(inst.origin)];
        ++block_hits_[static_cast<std::size_t>(d.fidx)]
                     [static_cast<std::size_t>(d.bidx)];
      }
      if (trace_.size() < trace_limit) {
        const auto& fn = program_.source().functions[d.fidx];
        trace_.push_back(fn.name + "/" + fn.blocks[d.bidx].label + ": " +
                         inst.to_string());
      }
      touched_addr_ = 0;
      next_pc_ = pc_ + 1;
      exec(inst, d);
      if (timing_on) timing_->step(inst, touched_addr_);
      pc_ = next_pc_;
      if (halted_) return;
      if (capture != nullptr && fi_sites_ >= next_capture_at_) {
        do_capture(*capture);
      }
    }
  }

  // ------------------------------------------------------------ memory --

  void check_range(std::uint64_t addr, int size) {
    if (addr < 0x1000 ||
        addr + static_cast<std::uint64_t>(size) > memory_.size()) {
      throw Trap{ExitStatus::kTrapMemory};
    }
  }

  std::uint64_t load(std::uint64_t addr, int size) {
    check_range(addr, size);
    std::uint64_t value = 0;
    std::memcpy(&value, memory_.data() + addr, static_cast<std::size_t>(size));
    return value;
  }

  void store(std::uint64_t addr, int size, std::uint64_t value) {
    check_range(addr, size);
    std::memcpy(memory_.data() + addr, &value, static_cast<std::size_t>(size));
    // Single choke point for all program writes: record which pages have
    // diverged from the provenance table (writes can straddle a page).
    const std::size_t first = static_cast<std::size_t>(addr) >> kCkptPageBits;
    const std::size_t last =
        (static_cast<std::size_t>(addr) + static_cast<std::size_t>(size) - 1) >>
        kCkptPageBits;
    dirty_[first] = 1;
    if (last != first) dirty_[last] = 1;
  }

  void push64(std::uint64_t value) {
    std::uint64_t& rsp = gpr_[static_cast<int>(Gpr::kRsp)];
    rsp -= 8;
    if (rsp <= heap_end_) throw Trap{ExitStatus::kTrapMemory};
    store(rsp, 8, value);
  }

  std::uint64_t pop64() {
    std::uint64_t& rsp = gpr_[static_cast<int>(Gpr::kRsp)];
    const std::uint64_t value = load(rsp, 8);
    rsp += 8;
    return value;
  }

  // ----------------------------------------------------------- operands --

  std::uint64_t effective_address(const MemRef& mem) {
    std::uint64_t addr = 0;
    if (mem.global_id >= 0) {
      if (mem.global_id >= static_cast<int>(global_addr_.size())) {
        throw Trap{ExitStatus::kTrapInvalid};
      }
      addr = global_addr_[mem.global_id];
    } else if (mem.base != Gpr::kNone) {
      addr = gpr_[static_cast<int>(mem.base)];
    }
    addr += static_cast<std::uint64_t>(mem.disp);
    if (mem.index != Gpr::kNone) {
      addr += gpr_[static_cast<int>(mem.index)] *
              static_cast<std::uint64_t>(mem.scale);
    }
    return addr;
  }

  std::uint64_t read_gpr(Gpr reg, int width) {
    const std::uint64_t raw = gpr_[static_cast<int>(reg)];
    switch (width) {
      case 1: return raw & 0xff;
      case 4: return raw & 0xffff'ffffULL;
      default: return raw;
    }
  }

  /// x86 merge semantics: 32-bit writes zero-extend, 8-bit writes merge.
  std::uint64_t merged_gpr_value(Gpr reg, int width, std::uint64_t value) {
    switch (width) {
      case 1:
        return (gpr_[static_cast<int>(reg)] & ~0xffULL) | (value & 0xff);
      case 4:
        return value & 0xffff'ffffULL;
      default:
        return value;
    }
  }

  std::uint64_t read_operand(const Operand& op) {
    switch (op.kind) {
      case Operand::Kind::kReg:
        return read_gpr(op.reg, op.width);
      case Operand::Kind::kImm:
        return static_cast<std::uint64_t>(op.imm);
      case Operand::Kind::kMem: {
        const std::uint64_t addr = effective_address(op.mem);
        touched_addr_ = addr;
        return load(addr, op.width);
      }
      case Operand::Kind::kXmm:
        return xmm_[op.xmm][0];
      default:
        throw Trap{ExitStatus::kTrapInvalid};
    }
  }

  std::int64_t read_signed(const Operand& op) {
    const std::uint64_t raw = read_operand(op);
    switch (op.width) {
      case 1: return static_cast<std::int8_t>(raw & 0xff);
      case 4: return static_cast<std::int32_t>(raw & 0xffff'ffffULL);
      default: return static_cast<std::int64_t>(raw);
    }
  }

  // ----------------------------------------------- fault machinery --

  /// Registers one FI site; returns the matching fault spec when this
  /// site is one of the sampled ones, or nullptr.
  const FaultSpec* fi_site(FaultKind kind, const AsmInst& inst,
                           const DecodedInst& d) {
    const std::uint64_t id = fi_sites_++;
    if (site_pc_sink_ != nullptr) site_pc_sink_->push_back(pc_);
    if (options_->profile) ++profile_.site_counts[static_cast<int>(kind)];
    for (std::size_t i = 0; i < fault_count_; ++i) {
      const FaultSpec& spec = faults_[i];
      if (id != spec.site) continue;
      if (!fault_injected_) {
        FaultLanding landing;
        landing.kind = kind;
        landing.origin = inst.origin;
        landing.op = inst.op;
        landing.function = program_.source().functions[d.fidx].name;
        landing.block = d.bidx;
        landing.inst = d.iidx;
        fault_landing_ = landing;
        fault_step_ = steps_;
      }
      fault_injected_ = true;
      return &spec;
    }
    return nullptr;
  }

  /// Mask of `burst` adjacent bits, wrapping within `width` bits.
  static std::uint64_t burst_mask(const FaultSpec& spec, int width) {
    std::uint64_t mask = 0;
    for (int i = 0; i < spec.burst; ++i) {
      mask |= std::uint64_t{1} << ((spec.bit + i) % width);
    }
    return mask;
  }

  /// Writes a GPR (with merge semantics), applying a fault if sampled.
  void write_gpr_faultable(Gpr reg, int width, std::uint64_t value,
                           const AsmInst& inst, const DecodedInst& d) {
    std::uint64_t merged = merged_gpr_value(reg, width, value);
    if (const FaultSpec* spec = fi_site(FaultKind::kGprWrite, inst, d)) {
      merged ^= burst_mask(*spec, 64);
    }
    gpr_[static_cast<int>(reg)] = merged;
  }

  void write_flags_faultable(Flags flags, const AsmInst& inst,
                             const DecodedInst& d) {
    if (const FaultSpec* spec = fi_site(FaultKind::kFlagsWrite, inst, d)) {
      const std::uint64_t mask = burst_mask(*spec, 4);
      if (mask & 1) flags.zf = !flags.zf;
      if (mask & 2) flags.sf = !flags.sf;
      if (mask & 4) flags.of = !flags.of;
      if (mask & 8) flags.cf = !flags.cf;
    }
    flags_ = flags;
  }

  void store_faultable(std::uint64_t addr, int size, std::uint64_t value,
                       const AsmInst& inst, const DecodedInst& d) {
    if (options_->fault_store_data) {
      if (const FaultSpec* spec = fi_site(FaultKind::kStoreData, inst, d)) {
        value ^= burst_mask(*spec, size * 8);
      }
    }
    touched_addr_ = addr;
    store(addr, size, value);
  }

  /// Writes xmm lane(s); `lane_count` 64-bit lanes starting at `lane`.
  void write_xmm_faultable(int reg, int lane, int lane_count,
                           const std::uint64_t* values, const AsmInst& inst,
                           const DecodedInst& d) {
    std::uint64_t lanes[4];
    std::memcpy(lanes, values,
                static_cast<std::size_t>(lane_count) * sizeof(std::uint64_t));
    if (const FaultSpec* spec = fi_site(FaultKind::kXmmWrite, inst, d)) {
      const int total_bits = lane_count * 64;
      for (int i = 0; i < spec->burst; ++i) {
        const int target = (spec->bit + i) % total_bits;
        lanes[target / 64] ^= std::uint64_t{1} << (target % 64);
      }
    }
    for (int i = 0; i < lane_count; ++i) xmm_[reg][lane + i] = lanes[i];
  }

  // ---------------------------------------------------------- execution --

  bool eval_cond(Cond cc) const {
    switch (cc) {
      case Cond::kE: return flags_.zf;
      case Cond::kNe: return !flags_.zf;
      case Cond::kL: return flags_.sf != flags_.of;
      case Cond::kLe: return flags_.zf || flags_.sf != flags_.of;
      case Cond::kG: return !flags_.zf && flags_.sf == flags_.of;
      case Cond::kGe: return flags_.sf == flags_.of;
      case Cond::kA: return !flags_.cf && !flags_.zf;
      case Cond::kAe: return !flags_.cf;
      case Cond::kB: return flags_.cf;
      case Cond::kBe: return flags_.cf || flags_.zf;
    }
    return false;
  }

  static std::int64_t sign_at(std::uint64_t value, int width) {
    switch (width) {
      case 1: return static_cast<std::int8_t>(value & 0xff);
      case 4: return static_cast<std::int32_t>(value & 0xffff'ffffULL);
      default: return static_cast<std::int64_t>(value);
    }
  }

  Flags flags_of_sub(std::uint64_t a, std::uint64_t b, int width) {
    // a - b at the given width.
    const std::uint64_t mask =
        width == 8 ? ~0ULL : (std::uint64_t{1} << (width * 8)) - 1;
    const std::uint64_t result = (a - b) & mask;
    Flags flags;
    flags.zf = result == 0;
    flags.sf = sign_at(result, width) < 0;
    flags.cf = (a & mask) < (b & mask);
    const std::int64_t sa = sign_at(a, width);
    const std::int64_t sb = sign_at(b, width);
    const std::int64_t sr = sign_at(result, width);
    flags.of = ((sa < 0) != (sb < 0)) && ((sr < 0) != (sa < 0));
    return flags;
  }

  Flags flags_of_result(std::uint64_t result, int width) {
    Flags flags;
    const std::uint64_t mask =
        width == 8 ? ~0ULL : (std::uint64_t{1} << (width * 8)) - 1;
    flags.zf = (result & mask) == 0;
    flags.sf = sign_at(result, width) < 0;
    return flags;
  }

  double as_f64(std::uint64_t raw) const {
    double value;
    std::memcpy(&value, &raw, sizeof(value));
    return value;
  }
  std::uint64_t from_f64(double value) const {
    std::uint64_t raw;
    std::memcpy(&raw, &value, sizeof(raw));
    return raw;
  }

  /// Executes one instruction. Control transfers set next_pc_; the
  /// default next_pc_ = pc_ + 1 covers both straight-line flow and the
  /// old interpreter's free fall-through into the next block.
  void exec(const AsmInst& inst, const DecodedInst& d) {
    switch (inst.op) {
      case Op::kMov: {
        const std::uint64_t value = read_operand(inst.ops[0]);
        if (inst.ops[1].is_mem()) {
          store_faultable(effective_address(inst.ops[1].mem),
                          inst.ops[1].width, value, inst, d);
        } else {
          write_gpr_faultable(inst.ops[1].reg, inst.ops[1].width, value, inst,
                              d);
        }
        return;
      }
      case Op::kMovsx: {
        const std::int64_t value = read_signed(inst.ops[0]);
        write_gpr_faultable(inst.ops[1].reg, inst.ops[1].width,
                            static_cast<std::uint64_t>(value), inst, d);
        return;
      }
      case Op::kMovzx: {
        const std::uint64_t value = read_operand(inst.ops[0]);
        write_gpr_faultable(inst.ops[1].reg, inst.ops[1].width, value, inst,
                            d);
        return;
      }
      case Op::kLea: {
        const std::uint64_t addr = effective_address(inst.ops[0].mem);
        write_gpr_faultable(inst.ops[1].reg, 8, addr, inst, d);
        return;
      }
      case Op::kPush: {
        std::uint64_t& rsp = gpr_[static_cast<int>(Gpr::kRsp)];
        rsp -= 8;
        if (rsp <= heap_end_) throw Trap{ExitStatus::kTrapMemory};
        store_faultable(rsp, 8, read_operand(inst.ops[0]), inst, d);
        return;
      }
      case Op::kPop: {
        const std::uint64_t value = pop64();
        write_gpr_faultable(inst.ops[0].reg, 8, value, inst, d);
        return;
      }
      case Op::kAdd: case Op::kSub: case Op::kImul: case Op::kAnd:
      case Op::kOr: case Op::kXor: case Op::kShl: case Op::kSar:
      case Op::kIdiv: case Op::kIrem:
        exec_alu(inst, d);
        return;
      case Op::kCmp: {
        const std::uint64_t b = read_operand(inst.ops[0]);
        const std::uint64_t a = read_operand(inst.ops[1]);
        write_flags_faultable(flags_of_sub(a, b, inst.ops[1].width), inst, d);
        return;
      }
      case Op::kTest: {
        const std::uint64_t b = read_operand(inst.ops[0]);
        const std::uint64_t a = read_operand(inst.ops[1]);
        Flags flags = flags_of_result(a & b, inst.ops[1].width);
        write_flags_faultable(flags, inst, d);
        return;
      }
      case Op::kSetcc: {
        const std::uint64_t value = eval_cond(inst.cc) ? 1 : 0;
        if (inst.ops[0].is_mem()) {
          store_faultable(effective_address(inst.ops[0].mem), 1, value, inst,
                          d);
        } else {
          write_gpr_faultable(inst.ops[0].reg, 1, value, inst, d);
        }
        return;
      }
      case Op::kJcc: {
        bool taken = eval_cond(inst.cc);
        if (fi_site(FaultKind::kBranchDecision, inst, d) != nullptr) {
          taken = !taken;
        }
        if (taken) {
          if (d.target_pc < 0) throw Trap{ExitStatus::kTrapInvalid};
          next_pc_ = d.target_pc;
        }
        return;
      }
      case Op::kJmp:
        if (d.target_pc < 0) throw Trap{ExitStatus::kTrapInvalid};
        next_pc_ = d.target_pc;
        return;
      case Op::kCall:
        exec_call(inst, d);
        return;
      case Op::kRet: {
        const std::uint64_t addr = pop64();
        if (addr == kExitSentinel) {
          halted_ = true;
          return;
        }
        if ((addr & 0xff00'0000'0000'0000ULL) != kRetTag) {
          throw Trap{ExitStatus::kTrapInvalid};
        }
        const int fidx = static_cast<int>((addr >> 40) & 0xffff);
        const int bidx = static_cast<int>((addr >> 20) & 0xfffff);
        const int iidx = static_cast<int>(addr & 0xfffff);
        if (fidx >= program_.function_count() ||
            bidx >= program_.block_count(fidx)) {
          throw Trap{ExitStatus::kTrapInvalid};
        }
        // An iidx past the block's end fell through to the next block in
        // the old interpreter; the clamp to the next block's base pc (the
        // sentinel when bidx is the last block) reproduces that exactly.
        next_pc_ = std::min(program_.block_pc(fidx, bidx) + iidx,
                            program_.block_pc(fidx, bidx + 1));
        return;
      }
      case Op::kDetectTrap:
        throw Trap{ExitStatus::kDetected};
      case Op::kMovsd: {
        if (inst.ops[0].is_xmm() && inst.ops[1].is_xmm()) {
          std::uint64_t lane = xmm_[inst.ops[0].xmm][0];
          write_xmm_faultable(inst.ops[1].xmm, 0, 1, &lane, inst, d);
        } else if (inst.ops[1].is_xmm()) {
          std::uint64_t lane = read_operand(inst.ops[0]);
          write_xmm_faultable(inst.ops[1].xmm, 0, 1, &lane, inst, d);
        } else {
          store_faultable(effective_address(inst.ops[1].mem), 8,
                          xmm_[inst.ops[0].xmm][0], inst, d);
        }
        return;
      }
      case Op::kAddsd: case Op::kSubsd: case Op::kMulsd: case Op::kDivsd: {
        const double b = as_f64(inst.ops[0].is_xmm()
                                    ? xmm_[inst.ops[0].xmm][0]
                                    : read_operand(inst.ops[0]));
        const double a = as_f64(xmm_[inst.ops[1].xmm][0]);
        double result = 0.0;
        switch (inst.op) {
          case Op::kAddsd: result = a + b; break;
          case Op::kSubsd: result = a - b; break;
          case Op::kMulsd: result = a * b; break;
          default: result = a / b; break;
        }
        std::uint64_t lane = from_f64(result);
        write_xmm_faultable(inst.ops[1].xmm, 0, 1, &lane, inst, d);
        return;
      }
      case Op::kSqrtsd: {
        const double a = as_f64(inst.ops[0].is_xmm()
                                    ? xmm_[inst.ops[0].xmm][0]
                                    : read_operand(inst.ops[0]));
        std::uint64_t lane = from_f64(std::sqrt(a));
        write_xmm_faultable(inst.ops[1].xmm, 0, 1, &lane, inst, d);
        return;
      }
      case Op::kUcomisd: {
        const double b = as_f64(inst.ops[0].is_xmm()
                                    ? xmm_[inst.ops[0].xmm][0]
                                    : read_operand(inst.ops[0]));
        const double a = as_f64(xmm_[inst.ops[1].xmm][0]);
        Flags flags;
        if (a != a || b != b) {
          flags.zf = flags.cf = true;  // unordered
        } else {
          flags.zf = a == b;
          flags.cf = a < b;
        }
        write_flags_faultable(flags, inst, d);
        return;
      }
      case Op::kCvtsi2sd: {
        const std::int64_t value = read_signed(inst.ops[0]);
        std::uint64_t lane = from_f64(static_cast<double>(value));
        write_xmm_faultable(inst.ops[1].xmm, 0, 1, &lane, inst, d);
        return;
      }
      case Op::kCvttsd2si: {
        const double value = as_f64(xmm_[inst.ops[0].xmm][0]);
        std::int64_t result;
        if (value != value || value < -9.3e18 || value > 9.3e18) {
          result = INT64_MIN;  // x86 integer-indefinite
        } else {
          result = static_cast<std::int64_t>(value);
        }
        write_gpr_faultable(inst.ops[1].reg, inst.ops[1].width,
                            static_cast<std::uint64_t>(result), inst, d);
        return;
      }
      case Op::kMovq: {
        if (inst.ops[1].is_xmm()) {
          // gpr/mem -> xmm low lane; lane1 zeroed (SSE movq semantics).
          std::uint64_t lanes[2] = {read_operand(inst.ops[0]), 0};
          write_xmm_faultable(inst.ops[1].xmm, 0, 2, lanes, inst, d);
        } else {
          const std::uint64_t value = xmm_[inst.ops[0].xmm][0];
          if (inst.ops[1].is_mem()) {
            store_faultable(effective_address(inst.ops[1].mem),
                            inst.ops[1].width, value, inst, d);
          } else {
            write_gpr_faultable(inst.ops[1].reg, inst.ops[1].width, value,
                                inst, d);
          }
        }
        return;
      }
      case Op::kPinsrq: {
        const int lane = static_cast<int>(inst.ops[0].imm) & 1;
        std::uint64_t value = read_operand(inst.ops[1]);
        write_xmm_faultable(inst.ops[2].xmm, lane, 1, &value, inst, d);
        return;
      }
      case Op::kVinserti128: {
        const int lane = static_cast<int>(inst.ops[0].imm) & 1;
        std::uint64_t lanes[2] = {xmm_[inst.ops[1].xmm][0],
                                  xmm_[inst.ops[1].xmm][1]};
        write_xmm_faultable(inst.ops[2].xmm, lane * 2, 2, lanes, inst, d);
        return;
      }
      case Op::kVpxor: {
        // XMM form (VEX semantics): lanes 0-1 computed, upper lanes zeroed.
        const int active = inst.ops[0].ymm ? 4 : 2;
        std::uint64_t lanes[4] = {0, 0, 0, 0};
        for (int i = 0; i < active; ++i) {
          lanes[i] = xmm_[inst.ops[0].xmm][i] ^ xmm_[inst.ops[1].xmm][i];
        }
        write_xmm_faultable(inst.ops[2].xmm, 0, 4, lanes, inst, d);
        return;
      }
      case Op::kVptest: {
        const int active = inst.ops[0].ymm ? 4 : 2;
        std::uint64_t accum = 0;
        for (int i = 0; i < active; ++i) {
          accum |= xmm_[inst.ops[0].xmm][i] & xmm_[inst.ops[1].xmm][i];
        }
        Flags flags;
        flags.zf = accum == 0;
        write_flags_faultable(flags, inst, d);
        return;
      }
    }
    throw Trap{ExitStatus::kTrapInvalid};
  }

  void exec_alu(const AsmInst& inst, const DecodedInst& d) {
    const int width = inst.ops[1].width;
    const std::uint64_t mask =
        width == 8 ? ~0ULL : (std::uint64_t{1} << (width * 8)) - 1;
    const std::uint64_t b = read_operand(inst.ops[0]) & mask;
    const bool to_mem = inst.ops[1].is_mem();
    const std::uint64_t a =
        (to_mem ? load(effective_address(inst.ops[1].mem), width)
                : read_gpr(inst.ops[1].reg, width)) & mask;
    std::uint64_t result = 0;
    Flags flags;
    switch (inst.op) {
      case Op::kAdd: {
        result = (a + b) & mask;
        flags = flags_of_result(result, width);
        flags.cf = result < a;
        const std::int64_t sa = sign_at(a, width), sb = sign_at(b, width),
                           sr = sign_at(result, width);
        flags.of = ((sa < 0) == (sb < 0)) && ((sr < 0) != (sa < 0));
        break;
      }
      case Op::kSub: {
        flags = flags_of_sub(a, b, width);
        result = (a - b) & mask;
        break;
      }
      case Op::kImul: {
        const std::int64_t product = sign_at(a, width) * sign_at(b, width);
        result = static_cast<std::uint64_t>(product) & mask;
        flags = flags_of_result(result, width);
        break;
      }
      case Op::kAnd: result = a & b; flags = flags_of_result(result, width); break;
      case Op::kOr: result = a | b; flags = flags_of_result(result, width); break;
      case Op::kXor: result = a ^ b; flags = flags_of_result(result, width); break;
      case Op::kShl: {
        const int count = static_cast<int>(b) & (width == 8 ? 63 : 31);
        result = (a << count) & mask;
        flags = flags_of_result(result, width);
        break;
      }
      case Op::kSar: {
        const int count = static_cast<int>(b) & (width == 8 ? 63 : 31);
        result = static_cast<std::uint64_t>(sign_at(a, width) >> count) & mask;
        flags = flags_of_result(result, width);
        break;
      }
      case Op::kIdiv:
      case Op::kIrem: {
        const std::int64_t sa = sign_at(a, width);
        const std::int64_t sb = sign_at(b, width);
        if (sb == 0 || (sa == INT64_MIN && sb == -1)) {
          throw Trap{ExitStatus::kTrapDivide};
        }
        const std::int64_t value = inst.op == Op::kIdiv ? sa / sb : sa % sb;
        result = static_cast<std::uint64_t>(value) & mask;
        flags = flags_of_result(result, width);
        break;
      }
      default:
        throw Trap{ExitStatus::kTrapInvalid};
    }
    // Order matters: flags site first, then the destination write site —
    // each ALU instruction still registers only the destination-register
    // (or store) site; flags changes ride along un-sampled to keep one
    // site per instruction, as in the paper's injector.
    flags_ = flags;
    if (to_mem) {
      store_faultable(effective_address(inst.ops[1].mem), width, result, inst,
                      d);
    } else {
      write_gpr_faultable(inst.ops[1].reg, width, result, inst, d);
    }
  }

  void exec_call(const AsmInst& inst, const DecodedInst& d) {
    if (d.callee == kCalleePrintInt) {
      output_.push_back(gpr_[static_cast<int>(Gpr::kRdi)]);
      return;
    }
    if (d.callee == kCalleePrintF64) {
      output_.push_back(xmm_[0][0]);
      return;
    }
    if (d.callee < 0) throw Trap{ExitStatus::kTrapInvalid};
    const std::uint64_t ret_addr =
        kRetTag | (static_cast<std::uint64_t>(d.fidx) << 40) |
        (static_cast<std::uint64_t>(d.bidx) << 20) |
        static_cast<std::uint64_t>(d.iidx + 1);
    std::uint64_t& rsp = gpr_[static_cast<int>(Gpr::kRsp)];
    rsp -= 8;
    if (rsp <= heap_end_) throw Trap{ExitStatus::kTrapMemory};
    store_faultable(rsp, 8, ret_addr, inst, d);
    next_pc_ = program_.entry_pc(d.callee);
  }

  /// Converts the raw per-block instruction tallies into the profile's
  /// sorted, capped hot-block list (deterministic tie-break by name).
  void finalize_hot_blocks() {
    std::vector<VmProfile::BlockCount> blocks;
    for (std::size_t f = 0; f < block_hits_.size(); ++f) {
      for (std::size_t b = 0; b < block_hits_[f].size(); ++b) {
        if (block_hits_[f][b] == 0) continue;
        VmProfile::BlockCount entry;
        entry.function = program_.source().functions[f].name;
        entry.label = program_.source().functions[f].blocks[b].label;
        entry.instructions = block_hits_[f][b];
        blocks.push_back(std::move(entry));
      }
    }
    std::sort(blocks.begin(), blocks.end(),
              [](const VmProfile::BlockCount& a,
                 const VmProfile::BlockCount& b) {
                if (a.instructions != b.instructions) {
                  return a.instructions > b.instructions;
                }
                if (a.function != b.function) return a.function < b.function;
                return a.label < b.label;
              });
    if (blocks.size() > VmProfile::kMaxHotBlocks) {
      blocks.resize(VmProfile::kMaxHotBlocks);
    }
    profile_.hot_blocks = std::move(blocks);
  }

  // ------------------------------------------------------------- state --

  const PredecodedProgram& program_;
  const DecodedInst* code_;

  std::vector<std::uint8_t> memory_;
  const std::size_t npages_;
  /// Provenance per page: the checkpoint PageImage the page's content
  /// last equalled (null = all-zero), valid when dirty_ is clear. Held
  /// as shared_ptr so thinned-away checkpoints cannot dangle it.
  std::vector<std::shared_ptr<const PageImage>> current_page_;
  std::vector<std::uint8_t> dirty_;

  std::uint64_t gpr_[masm::kGprCount] = {};
  std::uint64_t xmm_[masm::kXmmCount][4] = {};
  Flags flags_;
  std::vector<std::uint64_t> global_addr_;
  std::uint64_t heap_end_ = 0;
  bool layout_ok_ = true;

  std::int32_t pc_ = 0;
  std::int32_t next_pc_ = 0;
  bool halted_ = false;
  std::uint64_t next_capture_at_ = 0;

  const VmOptions* options_ = nullptr;
  const FaultSpec* faults_ = nullptr;
  std::size_t fault_count_ = 0;

  std::vector<std::int32_t>* site_pc_sink_ = nullptr;

  std::uint64_t steps_ = 0;
  std::uint64_t fi_sites_ = 0;
  std::uint64_t fault_step_ = 0;
  bool fault_injected_ = false;
  std::optional<FaultLanding> fault_landing_;
  std::vector<std::uint64_t> output_;
  std::vector<std::string> trace_;
  std::uint64_t touched_addr_ = 0;
  std::optional<TimingModel> timing_;
  VmProfile profile_;
  // Dynamic instructions per [function][block] (profiling only).
  std::vector<std::vector<std::uint64_t>> block_hits_;
};

Engine::Engine(const PredecodedProgram& program, const VmOptions& options)
    : impl_(std::make_unique<Impl>(program, options)) {}

Engine::~Engine() = default;

VmResult Engine::run(const VmOptions& options, const FaultSpec* faults,
                     std::size_t fault_count) {
  return impl_->run(options, faults, fault_count, stats_);
}

VmResult Engine::run_capturing(const VmOptions& options, std::uint64_t stride,
                               CheckpointSet& out) {
  return impl_->run_capturing(options, stride, out, stats_);
}

VmResult Engine::run_from(const CheckpointSet& checkpoints,
                          const VmOptions& options, const FaultSpec* faults,
                          std::size_t fault_count) {
  return impl_->run_from(checkpoints, options, faults, fault_count, stats_);
}

void Engine::set_site_pc_sink(std::vector<std::int32_t>* sink) {
  impl_->set_site_pc_sink(sink);
}

}  // namespace ferrum::vm
