// Thin single-run entry points. The interpreter itself lives in
// vm/engine.cpp; these wrappers predecode and run once, which matches the
// historical per-run cost profile. Campaign-scale callers construct a
// PredecodedProgram + per-worker Engines directly and amortise both the
// decode and the arena across trials.
#include "vm/vm.h"

#include "vm/engine.h"

namespace ferrum::vm {

const char* exit_status_name(ExitStatus status) {
  switch (status) {
    case ExitStatus::kOk: return "ok";
    case ExitStatus::kDetected: return "detected";
    case ExitStatus::kTrapMemory: return "trap:memory";
    case ExitStatus::kTrapDivide: return "trap:divide";
    case ExitStatus::kTrapSteps: return "trap:steps";
    case ExitStatus::kTrapInvalid: return "trap:invalid";
  }
  return "?";
}

const char* fault_kind_name(FaultKind kind) {
  return masm::fault_site_kind_name(kind);
}

VmResult run(const masm::AsmProgram& program, const VmOptions& options,
             const FaultSpec* fault) {
  PredecodedProgram decoded(program);
  Engine engine(decoded, options);
  return engine.run(options, fault, fault != nullptr ? 1 : 0);
}

VmResult run_multi(const masm::AsmProgram& program, const VmOptions& options,
                   const FaultSpec* faults, std::size_t fault_count) {
  PredecodedProgram decoded(program);
  Engine engine(decoded, options);
  return engine.run(options, faults, fault_count);
}

VmResult run_multi(const masm::AsmProgram& program, const VmOptions& options,
                   const std::vector<FaultSpec>& faults) {
  return run_multi(program, options, faults.data(), faults.size());
}

}  // namespace ferrum::vm
