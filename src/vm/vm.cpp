#include "vm/vm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

namespace ferrum::vm {

using masm::AsmBlock;
using masm::AsmFunction;
using masm::AsmInst;
using masm::AsmProgram;
using masm::Cond;
using masm::Gpr;
using masm::MemRef;
using masm::Op;
using masm::Operand;

const char* exit_status_name(ExitStatus status) {
  switch (status) {
    case ExitStatus::kOk: return "ok";
    case ExitStatus::kDetected: return "detected";
    case ExitStatus::kTrapMemory: return "trap:memory";
    case ExitStatus::kTrapDivide: return "trap:divide";
    case ExitStatus::kTrapSteps: return "trap:steps";
    case ExitStatus::kTrapInvalid: return "trap:invalid";
  }
  return "?";
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kGprWrite: return "gpr-write";
    case FaultKind::kXmmWrite: return "xmm-write";
    case FaultKind::kFlagsWrite: return "flags-write";
    case FaultKind::kStoreData: return "store-data";
    case FaultKind::kBranchDecision: return "branch-decision";
  }
  return "?";
}

namespace {

struct Trap {
  ExitStatus status;
};

/// Return addresses are tagged so that corrupted data popped by `ret` is
/// recognisably invalid (-> crash, like a wild jump on real hardware).
constexpr std::uint64_t kRetTag = 0x7e00'0000'0000'0000ULL;
constexpr std::uint64_t kExitSentinel = kRetTag | 0xffff'ffffULL;

struct Flags {
  bool zf = false, sf = false, of = false, cf = false;
};

class Machine {
 public:
  Machine(const AsmProgram& program, const VmOptions& options,
          std::vector<FaultSpec> faults)
      : program_(program),
        options_(options),
        faults_(std::move(faults)),
        memory_(options.memory_bytes),
        timing_(options.timing_params) {}

  VmResult run() {
    VmResult result;
    try {
      resolve();
      layout_globals();
      const int main_index = function_index("main");
      if (main_index < 0) throw Trap{ExitStatus::kTrapInvalid};
      // Set up the stack and the exit sentinel.
      gpr_[static_cast<int>(Gpr::kRsp)] = memory_.size() - 64;
      push64(kExitSentinel);
      fidx_ = main_index;
      bidx_ = 0;
      iidx_ = 0;
      loop();
      result.return_value =
          static_cast<std::int64_t>(gpr_[static_cast<int>(Gpr::kRax)]);
    } catch (const Trap& trap) {
      result.status = trap.status;
    }
    result.output = std::move(output_);
    result.trace = std::move(trace_);
    result.steps = steps_;
    result.fi_sites = fi_sites_;
    result.fault_injected = fault_injected_;
    result.fault_landing = fault_landing_;
    result.fault_step = fault_step_;
    if (options_.timing) {
      result.cycles = timing_.cycles();
      result.timing_stats = timing_.stats();
    }
    if (options_.profile) {
      finalize_hot_blocks();
      result.profile = std::move(profile_);
    }
    return result;
  }

 private:
  // ------------------------------------------------------------- loading --

  void resolve() {
    for (std::size_t f = 0; f < program_.functions.size(); ++f) {
      function_by_name_[program_.functions[f].name] = static_cast<int>(f);
      const AsmFunction& fn = program_.functions[f];
      auto& labels = labels_by_fn_.emplace_back();
      for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        labels[fn.blocks[b].label] = static_cast<int>(b);
      }
      if (options_.profile) block_hits_.emplace_back(fn.blocks.size(), 0);
    }
  }

  /// Converts the raw per-block instruction tallies into the profile's
  /// sorted, capped hot-block list (deterministic tie-break by name).
  void finalize_hot_blocks() {
    std::vector<VmProfile::BlockCount> blocks;
    for (std::size_t f = 0; f < block_hits_.size(); ++f) {
      for (std::size_t b = 0; b < block_hits_[f].size(); ++b) {
        if (block_hits_[f][b] == 0) continue;
        VmProfile::BlockCount entry;
        entry.function = program_.functions[f].name;
        entry.label = program_.functions[f].blocks[b].label;
        entry.instructions = block_hits_[f][b];
        blocks.push_back(std::move(entry));
      }
    }
    std::sort(blocks.begin(), blocks.end(),
              [](const VmProfile::BlockCount& a,
                 const VmProfile::BlockCount& b) {
                if (a.instructions != b.instructions) {
                  return a.instructions > b.instructions;
                }
                if (a.function != b.function) return a.function < b.function;
                return a.label < b.label;
              });
    if (blocks.size() > VmProfile::kMaxHotBlocks) {
      blocks.resize(VmProfile::kMaxHotBlocks);
    }
    profile_.hot_blocks = std::move(blocks);
  }

  int function_index(const std::string& name) const {
    auto it = function_by_name_.find(name);
    return it == function_by_name_.end() ? -1 : it->second;
  }

  void layout_globals() {
    std::size_t cursor = 0x1000;
    for (const auto& global : program_.globals) {
      cursor = (cursor + 15) & ~std::size_t{15};
      global_addr_.push_back(cursor);
      if (cursor + global.size_bytes > memory_.size() / 2) {
        throw Trap{ExitStatus::kTrapMemory};
      }
      std::memcpy(memory_.data() + cursor, global.init.data(),
                  std::min<std::size_t>(global.init.size(),
                                        static_cast<std::size_t>(
                                            global.size_bytes)));
      cursor += static_cast<std::size_t>(global.size_bytes);
    }
    heap_end_ = cursor;
  }

  // -------------------------------------------------------------- memory --

  void check_range(std::uint64_t addr, int size) {
    if (addr < 0x1000 ||
        addr + static_cast<std::uint64_t>(size) > memory_.size()) {
      throw Trap{ExitStatus::kTrapMemory};
    }
  }

  std::uint64_t load(std::uint64_t addr, int size) {
    check_range(addr, size);
    std::uint64_t value = 0;
    std::memcpy(&value, memory_.data() + addr, static_cast<std::size_t>(size));
    return value;
  }

  void store(std::uint64_t addr, int size, std::uint64_t value) {
    check_range(addr, size);
    std::memcpy(memory_.data() + addr, &value, static_cast<std::size_t>(size));
  }

  void push64(std::uint64_t value) {
    std::uint64_t& rsp = gpr_[static_cast<int>(Gpr::kRsp)];
    rsp -= 8;
    if (rsp <= heap_end_) throw Trap{ExitStatus::kTrapMemory};
    store(rsp, 8, value);
  }

  std::uint64_t pop64() {
    std::uint64_t& rsp = gpr_[static_cast<int>(Gpr::kRsp)];
    const std::uint64_t value = load(rsp, 8);
    rsp += 8;
    return value;
  }

  // ----------------------------------------------------------- operands --

  std::uint64_t effective_address(const MemRef& mem) {
    std::uint64_t addr = 0;
    if (mem.global_id >= 0) {
      if (mem.global_id >= static_cast<int>(global_addr_.size())) {
        throw Trap{ExitStatus::kTrapInvalid};
      }
      addr = global_addr_[mem.global_id];
    } else if (mem.base != Gpr::kNone) {
      addr = gpr_[static_cast<int>(mem.base)];
    }
    addr += static_cast<std::uint64_t>(mem.disp);
    if (mem.index != Gpr::kNone) {
      addr += gpr_[static_cast<int>(mem.index)] *
              static_cast<std::uint64_t>(mem.scale);
    }
    return addr;
  }

  std::uint64_t read_gpr(Gpr reg, int width) {
    const std::uint64_t raw = gpr_[static_cast<int>(reg)];
    switch (width) {
      case 1: return raw & 0xff;
      case 4: return raw & 0xffff'ffffULL;
      default: return raw;
    }
  }

  /// x86 merge semantics: 32-bit writes zero-extend, 8-bit writes merge.
  std::uint64_t merged_gpr_value(Gpr reg, int width, std::uint64_t value) {
    switch (width) {
      case 1:
        return (gpr_[static_cast<int>(reg)] & ~0xffULL) | (value & 0xff);
      case 4:
        return value & 0xffff'ffffULL;
      default:
        return value;
    }
  }

  std::uint64_t read_operand(const Operand& op) {
    switch (op.kind) {
      case Operand::Kind::kReg:
        return read_gpr(op.reg, op.width);
      case Operand::Kind::kImm:
        return static_cast<std::uint64_t>(op.imm);
      case Operand::Kind::kMem: {
        const std::uint64_t addr = effective_address(op.mem);
        touched_addr_ = addr;
        return load(addr, op.width);
      }
      case Operand::Kind::kXmm:
        return xmm_[op.xmm][0];
      default:
        throw Trap{ExitStatus::kTrapInvalid};
    }
  }

  std::int64_t read_signed(const Operand& op) {
    const std::uint64_t raw = read_operand(op);
    switch (op.width) {
      case 1: return static_cast<std::int8_t>(raw & 0xff);
      case 4: return static_cast<std::int32_t>(raw & 0xffff'ffffULL);
      default: return static_cast<std::int64_t>(raw);
    }
  }

  // ------------------------------------------------------ fault machinery --

  /// Registers one FI site; returns the matching fault spec when this
  /// site is one of the sampled ones, or nullptr.
  const FaultSpec* fi_site(FaultKind kind, const AsmInst& inst) {
    const std::uint64_t id = fi_sites_++;
    if (options_.profile) ++profile_.site_counts[static_cast<int>(kind)];
    for (const FaultSpec& spec : faults_) {
      if (id != spec.site) continue;
      if (!fault_injected_) {
        FaultLanding landing;
        landing.kind = kind;
        landing.origin = inst.origin;
        landing.op = inst.op;
        landing.function = program_.functions[fidx_].name;
        landing.block = bidx_;
        landing.inst = iidx_;
        fault_landing_ = landing;
        fault_step_ = steps_;
      }
      fault_injected_ = true;
      return &spec;
    }
    return nullptr;
  }

  /// Mask of `burst` adjacent bits, wrapping within `width` bits.
  static std::uint64_t burst_mask(const FaultSpec& spec, int width) {
    std::uint64_t mask = 0;
    for (int i = 0; i < spec.burst; ++i) {
      mask |= std::uint64_t{1} << ((spec.bit + i) % width);
    }
    return mask;
  }

  /// Writes a GPR (with merge semantics), applying a fault if sampled.
  void write_gpr_faultable(Gpr reg, int width, std::uint64_t value,
                           const AsmInst& inst) {
    std::uint64_t merged = merged_gpr_value(reg, width, value);
    if (const FaultSpec* spec = fi_site(FaultKind::kGprWrite, inst)) {
      merged ^= burst_mask(*spec, 64);
    }
    gpr_[static_cast<int>(reg)] = merged;
  }

  void write_flags_faultable(Flags flags, const AsmInst& inst) {
    if (const FaultSpec* spec = fi_site(FaultKind::kFlagsWrite, inst)) {
      const std::uint64_t mask = burst_mask(*spec, 4);
      if (mask & 1) flags.zf = !flags.zf;
      if (mask & 2) flags.sf = !flags.sf;
      if (mask & 4) flags.of = !flags.of;
      if (mask & 8) flags.cf = !flags.cf;
    }
    flags_ = flags;
  }

  void store_faultable(std::uint64_t addr, int size, std::uint64_t value,
                       const AsmInst& inst) {
    if (options_.fault_store_data) {
      if (const FaultSpec* spec = fi_site(FaultKind::kStoreData, inst)) {
        value ^= burst_mask(*spec, size * 8);
      }
    }
    touched_addr_ = addr;
    store(addr, size, value);
  }

  /// Writes xmm lane(s); `lane_count` 64-bit lanes starting at `lane`.
  void write_xmm_faultable(int reg, int lane, int lane_count,
                           const std::uint64_t* values, const AsmInst& inst) {
    std::uint64_t lanes[4];
    std::memcpy(lanes, values,
                static_cast<std::size_t>(lane_count) * sizeof(std::uint64_t));
    if (const FaultSpec* spec = fi_site(FaultKind::kXmmWrite, inst)) {
      const int total_bits = lane_count * 64;
      for (int i = 0; i < spec->burst; ++i) {
        const int target = (spec->bit + i) % total_bits;
        lanes[target / 64] ^= std::uint64_t{1} << (target % 64);
      }
    }
    for (int i = 0; i < lane_count; ++i) xmm_[reg][lane + i] = lanes[i];
  }

  // ----------------------------------------------------------- execution --

  void loop() {
    for (;;) {
      if (fidx_ < 0 ||
          fidx_ >= static_cast<int>(program_.functions.size())) {
        throw Trap{ExitStatus::kTrapInvalid};
      }
      const AsmFunction& fn = program_.functions[fidx_];
      if (bidx_ >= static_cast<int>(fn.blocks.size())) {
        throw Trap{ExitStatus::kTrapInvalid};
      }
      const AsmBlock& block = fn.blocks[bidx_];
      if (iidx_ >= static_cast<int>(block.insts.size())) {
        // Fall through to the next block.
        ++bidx_;
        iidx_ = 0;
        if (bidx_ >= static_cast<int>(fn.blocks.size())) {
          throw Trap{ExitStatus::kTrapInvalid};
        }
        continue;
      }
      const AsmInst& inst = block.insts[iidx_];
      if (++steps_ > options_.max_steps) throw Trap{ExitStatus::kTrapSteps};
      if (options_.profile) {
        ++profile_.op_counts[static_cast<int>(inst.op)];
        ++profile_.origin_counts[static_cast<int>(inst.origin)];
        ++block_hits_[static_cast<std::size_t>(fidx_)]
                     [static_cast<std::size_t>(bidx_)];
      }
      if (trace_.size() < options_.trace_limit) {
        trace_.push_back(fn.name + "/" + block.label + ": " +
                         inst.to_string());
      }
      touched_addr_ = 0;
      const bool jumped = exec(inst);
      if (options_.timing) timing_.step(inst, touched_addr_);
      if (!jumped) ++iidx_;
      if (halted_) return;
    }
  }

  void jump_to_label(const std::string& label) {
    const auto& labels = labels_by_fn_[fidx_];
    auto it = labels.find(label);
    if (it == labels.end()) throw Trap{ExitStatus::kTrapInvalid};
    bidx_ = it->second;
    iidx_ = 0;
  }

  bool eval_cond(Cond cc) const {
    switch (cc) {
      case Cond::kE: return flags_.zf;
      case Cond::kNe: return !flags_.zf;
      case Cond::kL: return flags_.sf != flags_.of;
      case Cond::kLe: return flags_.zf || flags_.sf != flags_.of;
      case Cond::kG: return !flags_.zf && flags_.sf == flags_.of;
      case Cond::kGe: return flags_.sf == flags_.of;
      case Cond::kA: return !flags_.cf && !flags_.zf;
      case Cond::kAe: return !flags_.cf;
      case Cond::kB: return flags_.cf;
      case Cond::kBe: return flags_.cf || flags_.zf;
    }
    return false;
  }

  static std::int64_t sign_at(std::uint64_t value, int width) {
    switch (width) {
      case 1: return static_cast<std::int8_t>(value & 0xff);
      case 4: return static_cast<std::int32_t>(value & 0xffff'ffffULL);
      default: return static_cast<std::int64_t>(value);
    }
  }

  Flags flags_of_sub(std::uint64_t a, std::uint64_t b, int width) {
    // a - b at the given width.
    const std::uint64_t mask =
        width == 8 ? ~0ULL : (std::uint64_t{1} << (width * 8)) - 1;
    const std::uint64_t result = (a - b) & mask;
    Flags flags;
    flags.zf = result == 0;
    flags.sf = sign_at(result, width) < 0;
    flags.cf = (a & mask) < (b & mask);
    const std::int64_t sa = sign_at(a, width);
    const std::int64_t sb = sign_at(b, width);
    const std::int64_t sr = sign_at(result, width);
    flags.of = ((sa < 0) != (sb < 0)) && ((sr < 0) != (sa < 0));
    return flags;
  }

  Flags flags_of_result(std::uint64_t result, int width) {
    Flags flags;
    const std::uint64_t mask =
        width == 8 ? ~0ULL : (std::uint64_t{1} << (width * 8)) - 1;
    flags.zf = (result & mask) == 0;
    flags.sf = sign_at(result, width) < 0;
    return flags;
  }

  double as_f64(std::uint64_t raw) const {
    double value;
    std::memcpy(&value, &raw, sizeof(value));
    return value;
  }
  std::uint64_t from_f64(double value) const {
    std::uint64_t raw;
    std::memcpy(&raw, &value, sizeof(raw));
    return raw;
  }

  /// Executes one instruction; returns true when control transferred.
  bool exec(const AsmInst& inst) {
    switch (inst.op) {
      case Op::kMov: {
        const std::uint64_t value = read_operand(inst.ops[0]);
        if (inst.ops[1].is_mem()) {
          store_faultable(effective_address(inst.ops[1].mem),
                          inst.ops[1].width, value, inst);
        } else {
          write_gpr_faultable(inst.ops[1].reg, inst.ops[1].width, value, inst);
        }
        return false;
      }
      case Op::kMovsx: {
        const std::int64_t value = read_signed(inst.ops[0]);
        write_gpr_faultable(inst.ops[1].reg, inst.ops[1].width,
                            static_cast<std::uint64_t>(value), inst);
        return false;
      }
      case Op::kMovzx: {
        const std::uint64_t value = read_operand(inst.ops[0]);
        write_gpr_faultable(inst.ops[1].reg, inst.ops[1].width, value, inst);
        return false;
      }
      case Op::kLea: {
        const std::uint64_t addr = effective_address(inst.ops[0].mem);
        write_gpr_faultable(inst.ops[1].reg, 8, addr, inst);
        return false;
      }
      case Op::kPush: {
        std::uint64_t& rsp = gpr_[static_cast<int>(Gpr::kRsp)];
        rsp -= 8;
        if (rsp <= heap_end_) throw Trap{ExitStatus::kTrapMemory};
        store_faultable(rsp, 8, read_operand(inst.ops[0]), inst);
        return false;
      }
      case Op::kPop: {
        const std::uint64_t value = pop64();
        write_gpr_faultable(inst.ops[0].reg, 8, value, inst);
        return false;
      }
      case Op::kAdd: case Op::kSub: case Op::kImul: case Op::kAnd:
      case Op::kOr: case Op::kXor: case Op::kShl: case Op::kSar:
      case Op::kIdiv: case Op::kIrem:
        return exec_alu(inst);
      case Op::kCmp: {
        const std::uint64_t b = read_operand(inst.ops[0]);
        const std::uint64_t a = read_operand(inst.ops[1]);
        write_flags_faultable(flags_of_sub(a, b, inst.ops[1].width), inst);
        return false;
      }
      case Op::kTest: {
        const std::uint64_t b = read_operand(inst.ops[0]);
        const std::uint64_t a = read_operand(inst.ops[1]);
        Flags flags = flags_of_result(a & b, inst.ops[1].width);
        write_flags_faultable(flags, inst);
        return false;
      }
      case Op::kSetcc: {
        const std::uint64_t value = eval_cond(inst.cc) ? 1 : 0;
        if (inst.ops[0].is_mem()) {
          store_faultable(effective_address(inst.ops[0].mem), 1, value, inst);
        } else {
          write_gpr_faultable(inst.ops[0].reg, 1, value, inst);
        }
        return false;
      }
      case Op::kJcc: {
        bool taken = eval_cond(inst.cc);
        if (fi_site(FaultKind::kBranchDecision, inst) != nullptr) {
          taken = !taken;
        }
        if (taken) {
          jump_to_label(inst.ops[0].label);
          return true;
        }
        return false;
      }
      case Op::kJmp:
        jump_to_label(inst.ops[0].label);
        return true;
      case Op::kCall:
        return exec_call(inst);
      case Op::kRet: {
        const std::uint64_t addr = pop64();
        if (addr == kExitSentinel) {
          halted_ = true;
          return true;
        }
        if ((addr & 0xff00'0000'0000'0000ULL) != kRetTag) {
          throw Trap{ExitStatus::kTrapInvalid};
        }
        fidx_ = static_cast<int>((addr >> 40) & 0xffff);
        bidx_ = static_cast<int>((addr >> 20) & 0xfffff);
        iidx_ = static_cast<int>(addr & 0xfffff);
        if (fidx_ >= static_cast<int>(program_.functions.size()) ||
            bidx_ >= static_cast<int>(program_.functions[fidx_].blocks.size())) {
          throw Trap{ExitStatus::kTrapInvalid};
        }
        return true;
      }
      case Op::kDetectTrap:
        throw Trap{ExitStatus::kDetected};
      case Op::kMovsd: {
        if (inst.ops[0].is_xmm() && inst.ops[1].is_xmm()) {
          std::uint64_t lane = xmm_[inst.ops[0].xmm][0];
          write_xmm_faultable(inst.ops[1].xmm, 0, 1, &lane, inst);
        } else if (inst.ops[1].is_xmm()) {
          std::uint64_t lane = read_operand(inst.ops[0]);
          write_xmm_faultable(inst.ops[1].xmm, 0, 1, &lane, inst);
        } else {
          store_faultable(effective_address(inst.ops[1].mem), 8,
                          xmm_[inst.ops[0].xmm][0], inst);
        }
        return false;
      }
      case Op::kAddsd: case Op::kSubsd: case Op::kMulsd: case Op::kDivsd: {
        const double b = as_f64(inst.ops[0].is_xmm()
                                    ? xmm_[inst.ops[0].xmm][0]
                                    : read_operand(inst.ops[0]));
        const double a = as_f64(xmm_[inst.ops[1].xmm][0]);
        double result = 0.0;
        switch (inst.op) {
          case Op::kAddsd: result = a + b; break;
          case Op::kSubsd: result = a - b; break;
          case Op::kMulsd: result = a * b; break;
          default: result = a / b; break;
        }
        std::uint64_t lane = from_f64(result);
        write_xmm_faultable(inst.ops[1].xmm, 0, 1, &lane, inst);
        return false;
      }
      case Op::kSqrtsd: {
        const double a = as_f64(inst.ops[0].is_xmm()
                                    ? xmm_[inst.ops[0].xmm][0]
                                    : read_operand(inst.ops[0]));
        std::uint64_t lane = from_f64(std::sqrt(a));
        write_xmm_faultable(inst.ops[1].xmm, 0, 1, &lane, inst);
        return false;
      }
      case Op::kUcomisd: {
        const double b = as_f64(inst.ops[0].is_xmm()
                                    ? xmm_[inst.ops[0].xmm][0]
                                    : read_operand(inst.ops[0]));
        const double a = as_f64(xmm_[inst.ops[1].xmm][0]);
        Flags flags;
        if (a != a || b != b) {
          flags.zf = flags.cf = true;  // unordered
        } else {
          flags.zf = a == b;
          flags.cf = a < b;
        }
        write_flags_faultable(flags, inst);
        return false;
      }
      case Op::kCvtsi2sd: {
        const std::int64_t value = read_signed(inst.ops[0]);
        std::uint64_t lane = from_f64(static_cast<double>(value));
        write_xmm_faultable(inst.ops[1].xmm, 0, 1, &lane, inst);
        return false;
      }
      case Op::kCvttsd2si: {
        const double value = as_f64(xmm_[inst.ops[0].xmm][0]);
        std::int64_t result;
        if (value != value || value < -9.3e18 || value > 9.3e18) {
          result = INT64_MIN;  // x86 integer-indefinite
        } else {
          result = static_cast<std::int64_t>(value);
        }
        write_gpr_faultable(inst.ops[1].reg, inst.ops[1].width,
                            static_cast<std::uint64_t>(result), inst);
        return false;
      }
      case Op::kMovq: {
        if (inst.ops[1].is_xmm()) {
          // gpr/mem -> xmm low lane; lane1 zeroed (SSE movq semantics).
          std::uint64_t lanes[2] = {read_operand(inst.ops[0]), 0};
          write_xmm_faultable(inst.ops[1].xmm, 0, 2, lanes, inst);
        } else {
          const std::uint64_t value = xmm_[inst.ops[0].xmm][0];
          if (inst.ops[1].is_mem()) {
            store_faultable(effective_address(inst.ops[1].mem),
                            inst.ops[1].width, value, inst);
          } else {
            write_gpr_faultable(inst.ops[1].reg, inst.ops[1].width, value,
                                inst);
          }
        }
        return false;
      }
      case Op::kPinsrq: {
        const int lane = static_cast<int>(inst.ops[0].imm) & 1;
        std::uint64_t value = read_operand(inst.ops[1]);
        write_xmm_faultable(inst.ops[2].xmm, lane, 1, &value, inst);
        return false;
      }
      case Op::kVinserti128: {
        const int lane = static_cast<int>(inst.ops[0].imm) & 1;
        std::uint64_t lanes[2] = {xmm_[inst.ops[1].xmm][0],
                                  xmm_[inst.ops[1].xmm][1]};
        write_xmm_faultable(inst.ops[2].xmm, lane * 2, 2, lanes, inst);
        return false;
      }
      case Op::kVpxor: {
        // XMM form (VEX semantics): lanes 0-1 computed, upper lanes zeroed.
        const int active = inst.ops[0].ymm ? 4 : 2;
        std::uint64_t lanes[4] = {0, 0, 0, 0};
        for (int i = 0; i < active; ++i) {
          lanes[i] = xmm_[inst.ops[0].xmm][i] ^ xmm_[inst.ops[1].xmm][i];
        }
        write_xmm_faultable(inst.ops[2].xmm, 0, 4, lanes, inst);
        return false;
      }
      case Op::kVptest: {
        const int active = inst.ops[0].ymm ? 4 : 2;
        std::uint64_t accum = 0;
        for (int i = 0; i < active; ++i) {
          accum |= xmm_[inst.ops[0].xmm][i] & xmm_[inst.ops[1].xmm][i];
        }
        Flags flags;
        flags.zf = accum == 0;
        write_flags_faultable(flags, inst);
        return false;
      }
    }
    throw Trap{ExitStatus::kTrapInvalid};
  }

  bool exec_alu(const AsmInst& inst) {
    const int width = inst.ops[1].width;
    const std::uint64_t mask =
        width == 8 ? ~0ULL : (std::uint64_t{1} << (width * 8)) - 1;
    const std::uint64_t b = read_operand(inst.ops[0]) & mask;
    const bool to_mem = inst.ops[1].is_mem();
    const std::uint64_t a =
        (to_mem ? load(effective_address(inst.ops[1].mem), width)
                : read_gpr(inst.ops[1].reg, width)) & mask;
    std::uint64_t result = 0;
    Flags flags;
    switch (inst.op) {
      case Op::kAdd: {
        result = (a + b) & mask;
        flags = flags_of_result(result, width);
        flags.cf = result < a;
        const std::int64_t sa = sign_at(a, width), sb = sign_at(b, width),
                           sr = sign_at(result, width);
        flags.of = ((sa < 0) == (sb < 0)) && ((sr < 0) != (sa < 0));
        break;
      }
      case Op::kSub: {
        flags = flags_of_sub(a, b, width);
        result = (a - b) & mask;
        break;
      }
      case Op::kImul: {
        const std::int64_t product = sign_at(a, width) * sign_at(b, width);
        result = static_cast<std::uint64_t>(product) & mask;
        flags = flags_of_result(result, width);
        break;
      }
      case Op::kAnd: result = a & b; flags = flags_of_result(result, width); break;
      case Op::kOr: result = a | b; flags = flags_of_result(result, width); break;
      case Op::kXor: result = a ^ b; flags = flags_of_result(result, width); break;
      case Op::kShl: {
        const int count = static_cast<int>(b) & (width == 8 ? 63 : 31);
        result = (a << count) & mask;
        flags = flags_of_result(result, width);
        break;
      }
      case Op::kSar: {
        const int count = static_cast<int>(b) & (width == 8 ? 63 : 31);
        result = static_cast<std::uint64_t>(sign_at(a, width) >> count) & mask;
        flags = flags_of_result(result, width);
        break;
      }
      case Op::kIdiv:
      case Op::kIrem: {
        const std::int64_t sa = sign_at(a, width);
        const std::int64_t sb = sign_at(b, width);
        if (sb == 0 || (sa == INT64_MIN && sb == -1)) {
          throw Trap{ExitStatus::kTrapDivide};
        }
        const std::int64_t value = inst.op == Op::kIdiv ? sa / sb : sa % sb;
        result = static_cast<std::uint64_t>(value) & mask;
        flags = flags_of_result(result, width);
        break;
      }
      default:
        throw Trap{ExitStatus::kTrapInvalid};
    }
    // Order matters: flags site first, then the destination write site —
    // each ALU instruction still registers only the destination-register
    // (or store) site; flags changes ride along un-sampled to keep one
    // site per instruction, as in the paper's injector.
    flags_ = flags;
    if (to_mem) {
      store_faultable(effective_address(inst.ops[1].mem), width, result, inst);
    } else {
      write_gpr_faultable(inst.ops[1].reg, width, result, inst);
    }
    return false;
  }

  bool exec_call(const AsmInst& inst) {
    const std::string& callee = inst.ops[0].label;
    if (callee == "print_int") {
      output_.push_back(gpr_[static_cast<int>(Gpr::kRdi)]);
      return false;
    }
    if (callee == "print_f64") {
      output_.push_back(xmm_[0][0]);
      return false;
    }
    const int target = function_index(callee);
    if (target < 0) throw Trap{ExitStatus::kTrapInvalid};
    const std::uint64_t ret_addr =
        kRetTag | (static_cast<std::uint64_t>(fidx_) << 40) |
        (static_cast<std::uint64_t>(bidx_) << 20) |
        static_cast<std::uint64_t>(iidx_ + 1);
    std::uint64_t& rsp = gpr_[static_cast<int>(Gpr::kRsp)];
    rsp -= 8;
    if (rsp <= heap_end_) throw Trap{ExitStatus::kTrapMemory};
    store_faultable(rsp, 8, ret_addr, inst);
    fidx_ = target;
    bidx_ = 0;
    iidx_ = 0;
    return true;
  }

  const AsmProgram& program_;
  const VmOptions& options_;
  std::vector<FaultSpec> faults_;

  std::vector<std::uint8_t> memory_;
  std::uint64_t gpr_[masm::kGprCount] = {};
  std::uint64_t xmm_[masm::kXmmCount][4] = {};
  Flags flags_;
  std::vector<std::uint64_t> global_addr_;
  std::uint64_t heap_end_ = 0;

  int fidx_ = 0, bidx_ = 0, iidx_ = 0;
  bool halted_ = false;

  std::unordered_map<std::string, int> function_by_name_;
  std::vector<std::unordered_map<std::string, int>> labels_by_fn_;

  std::uint64_t steps_ = 0;
  std::uint64_t fi_sites_ = 0;
  std::uint64_t fault_step_ = 0;
  bool fault_injected_ = false;
  std::optional<FaultLanding> fault_landing_;
  std::vector<std::uint64_t> output_;
  std::vector<std::string> trace_;
  std::uint64_t touched_addr_ = 0;
  TimingModel timing_;
  VmProfile profile_;
  // Dynamic instructions per [function][block] (profiling only).
  std::vector<std::vector<std::uint64_t>> block_hits_;
};

}  // namespace

VmResult run(const masm::AsmProgram& program, const VmOptions& options,
             const FaultSpec* fault) {
  std::vector<FaultSpec> faults;
  if (fault != nullptr) faults.push_back(*fault);
  Machine machine(program, options, std::move(faults));
  return machine.run();
}

VmResult run_multi(const masm::AsmProgram& program, const VmOptions& options,
                   const std::vector<FaultSpec>& faults) {
  Machine machine(program, options, faults);
  return machine.run();
}

}  // namespace ferrum::vm
