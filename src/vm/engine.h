// Snapshot/fast-forward execution engine.
//
// Two pieces, both shared across every trial of a fault-injection
// campaign:
//
//  * PredecodedProgram — a flat, dense decoding of an AsmProgram with
//    pre-resolved branch/call targets, so the interpreter's inner loop
//    does zero hash lookups (`labels.find` per jump in the old VM) and
//    the decode work is paid once per campaign instead of per run.
//
//  * CheckpointSet — VM snapshots captured during the golden profiling
//    run every `stride` dynamic fault-injection sites: registers, flags,
//    control position, steps/site counters, output prefix, and memory as
//    copy-on-write 16 KiB pages (only pages dirtied since the previous
//    checkpoint are copied, never the full arena). A faulty trial
//    restores the nearest checkpoint at-or-before its first fault site
//    and executes only the suffix.
//
// Determinism contract (asserted by tests/test_engine.cpp, not just
// claimed): a fast-forwarded trial is bit-identical to cold execution —
// status, output, return_value, steps, fi_sites, fault_step and
// fault_landing all match, for every stride and worker count. The
// argument: the VM is deterministic and a fault at site F leaves the
// prefix before F untouched, so the golden-run state at any site S <= F
// equals the cold trial's state at S; restoring it and running the
// suffix replays exactly the cold instruction stream.
//
// Thread-safety: PredecodedProgram and CheckpointSet are immutable after
// construction/capture and may be shared read-only across ThreadPool
// workers. Engine holds the mutable scratch (arena, registers, dirty
// tracking) and must be per-worker.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "masm/masm.h"
#include "vm/vm.h"

namespace ferrum::vm {

/// Dispatch tag of one predecoded instruction. Values below
/// masm::kOpCount are the instruction's own Op, executed singly; the
/// remaining tags mark the end-of-function sentinel, decode-rejected
/// operand widths, and the fused superinstruction pairs used by the
/// threaded dispatch loop. Tags are part of the decode, so the fusion
/// decision is paid once per campaign, never per trial.
enum : std::uint8_t {
  kTagSentinel = static_cast<std::uint8_t>(masm::kOpCount),
  /// An operand carries a width the VM does not define (anything other
  /// than 1, 4 or 8 bytes on a reg/mem operand — notably the 2-byte
  /// width the decoder rejects loudly instead of silently reading the
  /// full 64-bit register). Executing it traps kTrapInvalid after
  /// counting the step, like any other invalid opcode use.
  kTagBadWidth,
  /// Fused cmp+jcc: the dominant decode pair (flags producer feeding the
  /// conditional jump one instruction later). One dispatch executes
  /// both; FI-site numbering, step counting and trap order are exactly
  /// those of the unfused pair.
  kTagCmpJcc,
  /// Fused mov+alu (the profiler's load+op pair): a mov whose successor
  /// is a two-address integer ALU op. Same exactness contract.
  kTagMovAlu,
  kTagCount,
};

/// One predecoded instruction. `inst` points into the source AsmProgram,
/// which must outlive the PredecodedProgram.
struct DecodedInst {
  /// Null marks the end-of-function sentinel: control falling past the
  /// last block of a function traps (kTrapInvalid) without counting a
  /// step, exactly like the old per-block interpreter.
  const masm::AsmInst* inst = nullptr;
  /// kJmp/kJcc: flat index of the target block's first instruction;
  /// -1 when the label does not resolve (traps at execution).
  std::int32_t target_pc = -1;
  /// kCall: callee function index, kCalleePrintInt/kCalleePrintF64 for
  /// the output builtins, or -1 for an unknown callee (traps).
  std::int32_t callee = -1;
  /// Static coordinates (function / block / instruction-in-block), used
  /// for fault landings, trace rendering and return-address encoding.
  std::int32_t fidx = 0;
  std::int32_t bidx = 0;
  std::int32_t iidx = 0;
  /// Dispatch tag (see the enum above). The switch loop dispatches on
  /// inst->op and only consults the tag for kTagBadWidth; the threaded
  /// loop dispatches on the tag alone.
  std::uint8_t tag = kTagSentinel;
};

constexpr std::int32_t kCalleePrintInt = -2;
constexpr std::int32_t kCalleePrintF64 = -3;

class PredecodedProgram {
 public:
  explicit PredecodedProgram(const masm::AsmProgram& program);

  const masm::AsmProgram& source() const { return *program_; }
  const std::vector<DecodedInst>& code() const { return code_; }
  /// Flat pc of function `f`'s entry (its first block, or its sentinel
  /// when the function has no blocks).
  std::int32_t entry_pc(int f) const { return func_entry_pc_[static_cast<std::size_t>(f)]; }
  /// Flat pc of block `b`'s first instruction in function `f`. Index
  /// `blocks.size()` is valid and names the function's sentinel.
  std::int32_t block_pc(int f, int b) const {
    return block_base_pc_[static_cast<std::size_t>(f)][static_cast<std::size_t>(b)];
  }
  int function_count() const { return static_cast<int>(func_entry_pc_.size()); }
  int block_count(int f) const {
    return static_cast<int>(block_base_pc_[static_cast<std::size_t>(f)].size()) - 1;
  }
  /// Index of `main`, -1 when absent (running such a program traps).
  int main_index() const { return main_index_; }

 private:
  const masm::AsmProgram* program_;
  std::vector<DecodedInst> code_;
  std::vector<std::int32_t> func_entry_pc_;
  /// Per function: block start pcs plus one trailing entry for the
  /// end-of-function sentinel.
  std::vector<std::vector<std::int32_t>> block_base_pc_;
  int main_index_ = -1;
};

// ---------------------------------------------------------------- pages --

/// Copy-on-write page granularity. 16 KiB keeps the per-checkpoint page
/// table small (memory_bytes / 16 KiB entries) while page copies stay a
/// single cheap memcpy.
constexpr int kCkptPageBits = 14;
constexpr std::size_t kCkptPageSize = std::size_t{1} << kCkptPageBits;

struct PageImage {
  std::uint8_t bytes[kCkptPageSize];
};

/// One golden-run snapshot. Everything the VM needs to resume from an
/// instruction boundary: architectural state, control position, counters
/// and the output prefix. Memory is a full page table where entry p is
/// the page's content at capture time (null = still all-zero); pages not
/// dirtied between checkpoints share the same PageImage.
struct Checkpoint {
  std::int32_t pc = 0;
  std::uint64_t steps = 0;
  std::uint64_t fi_sites = 0;
  std::uint64_t gpr[masm::kGprCount] = {};
  std::uint64_t xmm[masm::kXmmCount][4] = {};
  bool zf = false, sf = false, of = false, cf = false;
  std::vector<std::uint64_t> output;
  std::vector<std::shared_ptr<const PageImage>> pages;
};

/// Final state of the golden (fault-free) run, recorded by
/// run_capturing alongside the checkpoints. Lets a faulty trial whose
/// state re-converges to a golden checkpoint skip the provably-identical
/// tail and adopt this result directly (see Engine's golden rejoin).
struct GoldenSummary {
  bool valid = false;
  std::uint64_t steps = 0;
  std::uint64_t fi_sites = 0;
  std::int64_t return_value = 0;
  std::vector<std::uint64_t> output;
};

class CheckpointSet {
 public:
  /// Live checkpoints are capped: when the count exceeds this, every
  /// other checkpoint is dropped and the stride doubles (deterministic —
  /// the decision depends only on the golden instruction stream).
  static constexpr std::size_t kMaxLiveCheckpoints = 512;
  /// Page-copy budget; crossing it also triggers thinning.
  static constexpr std::uint64_t kPageBudgetBytes = 48ull << 20;

  CheckpointSet();

  bool empty() const { return checkpoints_.empty(); }
  std::size_t size() const { return checkpoints_.size(); }
  /// Effective stride after thinning (>= the requested stride).
  std::uint64_t stride() const { return stride_; }
  /// Bytes held by live page copies plus the page tables themselves.
  std::uint64_t snapshot_bytes() const;
  /// The latest checkpoint with fi_sites <= site (always defined once
  /// capture ran: checkpoint 0 sits at site 0).
  const Checkpoint& nearest_at_or_before(std::uint64_t site) const;
  /// The earliest checkpoint with fi_sites > site, or null when none —
  /// the next golden boundary ahead of a running trial, where the rejoin
  /// comparison happens.
  const Checkpoint* next_after(std::uint64_t site) const;
  /// Golden final state (valid only after a clean run_capturing).
  const GoldenSummary& summary() const { return summary_; }

  // Capture-side interface (Engine::run_capturing only).
  void begin(std::uint64_t stride);
  void add(Checkpoint checkpoint);
  void set_summary(GoldenSummary summary) { summary_ = std::move(summary); }
  std::shared_ptr<const PageImage> make_page(const std::uint8_t* bytes,
                                             std::size_t size);

 private:
  void thin();

  std::vector<Checkpoint> checkpoints_;
  GoldenSummary summary_;
  std::uint64_t stride_ = 0;
  std::size_t table_entries_ = 0;
  /// Owned by page deleters so frees during thinning are accounted even
  /// after this set is gone.
  std::shared_ptr<std::atomic<std::uint64_t>> live_page_bytes_;
};

/// Fast-forward accounting, summed across a campaign's worker engines.
/// Deterministic for a fixed program/seed/stride (which checkpoint each
/// trial restores does not depend on scheduling), but stride-dependent —
/// so it is reported under the wallclock/observability section of the
/// bench artifacts, keeping the metrics sections byte-identical across
/// FERRUM_CKPT_STRIDE values.
struct FastForwardStats {
  std::uint64_t trials = 0;         // runs executed by this engine
  std::uint64_t restores = 0;       // trials that restored a checkpoint
  std::uint64_t steps_skipped = 0;  // golden-prefix steps not re-executed
  std::uint64_t steps_executed = 0; // suffix steps actually interpreted
  // Lockstep batch accounting (run_batch only). walk_steps counts the
  // shared golden-walk instructions each batch interpreted once on
  // behalf of all its lanes — the amortised replay cost.
  std::uint64_t batches = 0;
  std::uint64_t lanes = 0;
  std::uint64_t walk_steps = 0;
  // Trials whose state re-converged to a golden checkpoint after the
  // last fault fired, so the remaining tail was adopted from the golden
  // summary instead of re-executed. Those elided steps count under
  // steps_skipped.
  std::uint64_t rejoins = 0;

  void merge(const FastForwardStats& other) {
    trials += other.trials;
    restores += other.restores;
    steps_skipped += other.steps_skipped;
    steps_executed += other.steps_executed;
    batches += other.batches;
    lanes += other.lanes;
    walk_steps += other.walk_steps;
    rejoins += other.rejoins;
  }
  /// Fraction of would-be-cold work skipped: skipped / (skipped + executed).
  double ratio() const {
    const double total =
        static_cast<double>(steps_skipped) + static_cast<double>(steps_executed);
    return total > 0.0 ? static_cast<double>(steps_skipped) / total : 0.0;
  }
};

/// Checkpoint telemetry surfaced by campaigns/audits in the BENCH
/// artifacts' wallclock (observability) section.
struct CheckpointTelemetry {
  /// Effective capture stride after thinning; 0 = cold execution (knob
  /// disabled or the run needed the full prefix for timing/profiling).
  int stride = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t snapshot_bytes = 0;
  FastForwardStats ff;
};

/// Reusable interpreter scratch: one arena + register file, reset between
/// runs by dirty-page restore instead of a fresh 16 MB allocation per
/// trial. One Engine per thread; the decoded program and checkpoint set
/// it reads are shared.
class Engine {
 public:
  /// `options.memory_bytes` fixes the arena size for the Engine's whole
  /// lifetime; later run calls reuse it (their memory_bytes is ignored).
  Engine(const PredecodedProgram& program, const VmOptions& options);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Cold run from the initial state (equivalent to vm::run_multi).
  VmResult run(const VmOptions& options, const FaultSpec* faults,
               std::size_t fault_count);

  /// Golden run that captures a checkpoint every `stride` dynamic FI
  /// sites (plus one at site 0). Must be fault-free usage: pass no
  /// faults to the subsequent run_from calls that predate the capture
  /// options — i.e. capture and trials must agree on fault_store_data.
  VmResult run_capturing(const VmOptions& options, std::uint64_t stride,
                         CheckpointSet& out);

  /// Faulty trial fast-forwarded from the nearest checkpoint at-or-
  /// before the first fault site. `checkpoints` must come from a
  /// run_capturing on the same program with the same fault_store_data
  /// setting; options must not enable profile/timing/trace (those need
  /// the prefix — callers fall back to run()).
  VmResult run_from(const CheckpointSet& checkpoints, const VmOptions& options,
                    const FaultSpec* faults, std::size_t fault_count);

  /// One lane of a lockstep batch: the fault set of a single trial.
  struct BatchTrial {
    const FaultSpec* faults = nullptr;
    std::size_t fault_count = 0;
  };

  /// Lockstep batched trials: all `count` lanes share one golden walk
  /// through the decode stream. Lanes are ordered by first fault site;
  /// the walk advances fault-free to each lane's site (hopping through
  /// `checkpoints` when one is nearer than the current position), forks
  /// the lane there — registers saved, memory writes journalled
  /// copy-on-first-write — runs the faulty suffix to completion, then
  /// unforks and continues. Each result is bit-identical to the scalar
  /// run()/run_from() outcome: the walk state at site S is the cold
  /// trial's state at S (same determinism argument as checkpoints).
  /// `checkpoints` may be null/empty (cold walk). Options requiring the
  /// full per-trial prefix (profile/timing/trace) fall back to scalar
  /// execution per lane.
  void run_batch(const CheckpointSet* checkpoints, const VmOptions& options,
                 const BatchTrial* trials, std::size_t count,
                 VmResult* results);

  /// While `sink` is non-null, every dynamic FI site registered by
  /// subsequent runs appends the flat pc of its instruction — the
  /// golden-run site map that lets the prune mode resolve dynamic site
  /// ids to static instructions (code()[pc]). Pass nullptr to stop.
  void set_site_pc_sink(std::vector<std::int32_t>* sink);

  /// While `sink` is non-null, every dynamic FI site additionally appends
  /// a 64-bit digest of the machine state at that site: the *live*
  /// registers/flags (per `live_masks`, indexed by flat pc in
  /// masm::LiveSet encoding — bits 0-15 GPRs, 16-31 XMMs, bit 32 FLAGS;
  /// null or out-of-range folds everything), the step counter, and
  /// running hashes of the store stream (every store() since the cold
  /// start, globals included) and the output log. Liveness masking makes
  /// the digest insensitive to dead register/stack noise, so an upstream
  /// edit that preserves behaviour keeps downstream digests — the
  /// foundation of compose's incremental cache keys. A run with this
  /// sink never golden-rejoins (site observers need the real stream);
  /// intended for one cold golden run per program. Pass nullptr to stop.
  void set_state_digest_sink(std::vector<std::uint64_t>* sink,
                             const std::vector<std::uint64_t>* live_masks);

  const FastForwardStats& stats() const { return stats_; }

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
  FastForwardStats stats_;
};

}  // namespace ferrum::vm
