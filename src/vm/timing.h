// Port-and-dependency timing model.
//
// The paper measures wall-clock overhead on a Xeon; we substitute a small
// in-order-issue, out-of-order-completion model that captures the two
// microarchitectural effects FERRUM's design exploits:
//   1. *check amortisation* — hybrid EDDI pays one flag-writing xor and
//      one conditional branch per protected instruction, FERRUM pays one
//      vpxor+vptest+jne per four protected instructions;
//   2. *idle vector ports* — FERRUM's duplicate captures (movq/pinsrq to
//      XMM) issue on vector ports that scalar Rodinia-style code leaves
//      mostly idle, so they rarely compete with program instructions.
//
// Mechanics: each dynamic instruction becomes ready when its input
// registers/flags/memory cell are ready, issues at the first cycle with a
// free slot (issue width) and a free unit of its port class, and completes
// after a class latency. Absolute cycle counts are not comparable to real
// hardware; relative overheads are the experiment's output.
#pragma once

#include <cstdint>

#include "masm/masm.h"

namespace ferrum::vm {

/// Execution port classes.
enum class PortClass : std::uint8_t {
  kAlu,     // scalar integer ALU / lea / setcc / moves
  kLoad,
  kStore,
  kBranch,  // taken and not-taken jumps, call/ret
  kVec,     // SIMD integer (movq/pinsr/vinsert/vpxor/vptest)
  kFp,      // scalar double add/sub/mul/cvt
  kDiv,     // integer & fp division, sqrt
};

constexpr int kPortClassCount = 7;

/// Stable lower-case name ("alu", "load", ...), used by telemetry.
const char* port_class_name(PortClass port);

/// Hard capacity of the per-class unit arrays below. TimingParams unit
/// counts are clamped into [1, kMaxUnitsPerClass] at TimingModel
/// construction — a params struct with e.g. alu_units = 9 must not index
/// past port_free_[.][8].
constexpr int kMaxUnitsPerClass = 8;

struct TimingParams {
  int issue_width = 4;
  // Units per port class (Skylake-like proportions).
  int alu_units = 4;
  int load_units = 2;
  int store_units = 1;
  int branch_units = 1;
  int vec_units = 2;
  int fp_units = 2;
  int div_units = 1;
  // Latencies in cycles.
  int lat_alu = 1;
  int lat_load = 4;
  int lat_store = 1;       // commit; forwarding latency applies to readers
  int lat_store_forward = 4;
  int lat_branch = 1;
  int lat_imul = 3;
  int lat_idiv = 24;
  int lat_fp = 4;
  int lat_fpdiv = 14;
  int lat_sqrt = 16;
  int lat_cvt = 4;
  int lat_vec_mov = 2;   // gpr<->xmm transfers, pinsrq
  int lat_vec_alu = 1;   // vpxor
  int lat_vptest = 3;
  int lat_call = 2;
};

/// Microarchitectural telemetry accumulated by the timing model: where
/// cycles went (per port class, split by instruction provenance) and why
/// instructions waited. This is what makes the paper's Sec IV mechanism
/// — FERRUM's checks riding idle vector ports while hybrid's scalar
/// checks contend for ALU/branch — measurable instead of asserted.
struct TimingStats {
  /// Dynamic instructions issued, by [port class][InstOrigin].
  std::uint64_t issues[kPortClassCount][masm::kInstOriginCount] = {};
  /// Execution latency cycles attributed, by [port class][InstOrigin].
  std::uint64_t latency_cycles[kPortClassCount][masm::kInstOriginCount] = {};
  /// Unit-busy cycles per class (1 per issue at unit throughput 1/cycle);
  /// divide by cycles() * units for average occupancy.
  std::uint64_t busy_cycles[kPortClassCount] = {};
  /// Stall attribution: cycles an instruction's issue slipped past its
  /// in-order fetch cycle, split by the binding constraint. Dependence
  /// waits are charged first; any further slip is a port wait. Issue-width
  /// waits count cycles the frontend (not the backend) was the limiter.
  std::uint64_t stall_dependence = 0;
  std::uint64_t stall_port = 0;
  std::uint64_t stall_issue_width = 0;
  /// Total instructions accounted (sum of issues).
  std::uint64_t instructions = 0;
};

/// Incremental cycle estimator fed one executed instruction at a time by
/// the VM (with the registers it read/wrote and the memory cell touched).
class TimingModel {
 public:
  /// Unit counts are clamped into [1, kMaxUnitsPerClass] and issue_width
  /// to >= 1; params() reports the values actually used.
  explicit TimingModel(const TimingParams& params);

  /// Accounts one dynamic instruction. `addr` is the 8-byte-aligned
  /// address of a memory access (0 when none).
  void step(const masm::AsmInst& inst, std::uint64_t addr);

  std::uint64_t cycles() const { return last_completion_; }
  const TimingStats& stats() const { return stats_; }
  const TimingParams& params() const { return params_; }

 private:
  PortClass classify(const masm::AsmInst& inst) const;
  int latency(const masm::AsmInst& inst) const;

  TimingParams params_;
  // Ready cycle per architectural register.
  std::uint64_t gpr_ready_[masm::kGprCount] = {};
  std::uint64_t xmm_ready_[masm::kXmmCount] = {};
  std::uint64_t flags_ready_ = 0;
  // Frontend fetch counter (program order, issue_width per cycle).
  std::uint64_t fetched_ = 0;
  // Next-free cycle per execution unit, per port class.
  std::uint64_t port_free_[kPortClassCount][kMaxUnitsPerClass] = {};
  std::uint64_t last_completion_ = 0;
  TimingStats stats_;
  // Store-to-load forwarding: completion cycle per 8-byte cell (small
  // direct-mapped table to bound memory).
  static constexpr int kMemTableSize = 4096;
  std::uint64_t mem_ready_[kMemTableSize] = {};
  std::uint64_t mem_tag_[kMemTableSize] = {};
};

}  // namespace ferrum::vm
