// Dynamic execution profile collected by the VM (VmOptions::profile):
// instruction mix per opcode and per InstOrigin provenance tag, dynamic
// fault-site tallies per fault class, and hot-block counts. Everything
// here is a function of the executed instruction stream only, so profiles
// are bit-identical across runs and across campaign worker counts.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "masm/fault_site.h"
#include "masm/masm.h"

namespace ferrum::vm {

struct VmProfile {
  /// Dynamic instructions by opcode (index = static_cast<int>(masm::Op)).
  std::array<std::uint64_t, masm::kOpCount> op_counts{};
  /// Dynamic instructions by provenance (from-IR / backend-glue /
  /// protection) — the paper's Sec IV-B1 instruction-mix argument.
  std::array<std::uint64_t, masm::kInstOriginCount> origin_counts{};
  /// Dynamic fault-injection sites registered, by FaultKind index.
  /// (Store-data sites appear only under VmOptions::fault_store_data,
  /// mirroring what the injector can actually sample.)
  std::array<std::uint64_t, masm::kFaultSiteKindCount> site_counts{};

  struct BlockCount {
    std::string function;
    std::string label;
    std::uint64_t instructions = 0;
  };
  /// Hottest blocks by dynamic instruction count, sorted descending
  /// (ties broken by function then label name for determinism), capped
  /// at kMaxHotBlocks.
  static constexpr int kMaxHotBlocks = 32;
  std::vector<BlockCount> hot_blocks;

  /// Total dynamic instructions — equals VmResult::steps by construction
  /// (asserted by tests/test_telemetry.cpp).
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (std::uint64_t count : op_counts) sum += count;
    return sum;
  }
};

}  // namespace ferrum::vm
