#include "vm/timing.h"

#include <algorithm>

#include "masm/cfg.h"

namespace ferrum::vm {

using masm::AsmInst;
using masm::Op;

const char* port_class_name(PortClass port) {
  switch (port) {
    case PortClass::kAlu: return "alu";
    case PortClass::kLoad: return "load";
    case PortClass::kStore: return "store";
    case PortClass::kBranch: return "branch";
    case PortClass::kVec: return "vec";
    case PortClass::kFp: return "fp";
    case PortClass::kDiv: return "div";
  }
  return "?";
}

namespace {

int clamp_units(int units) {
  if (units < 1) return 1;
  if (units > kMaxUnitsPerClass) return kMaxUnitsPerClass;
  return units;
}

}  // namespace

TimingModel::TimingModel(const TimingParams& params) : params_(params) {
  // The unit arrays are fixed at kMaxUnitsPerClass entries; out-of-range
  // params would otherwise index past them (see timing.h).
  params_.issue_width = params_.issue_width < 1 ? 1 : params_.issue_width;
  params_.alu_units = clamp_units(params_.alu_units);
  params_.load_units = clamp_units(params_.load_units);
  params_.store_units = clamp_units(params_.store_units);
  params_.branch_units = clamp_units(params_.branch_units);
  params_.vec_units = clamp_units(params_.vec_units);
  params_.fp_units = clamp_units(params_.fp_units);
  params_.div_units = clamp_units(params_.div_units);
}

PortClass TimingModel::classify(const AsmInst& inst) const {
  switch (inst.op) {
    case Op::kMov:
    case Op::kMovsx:
    case Op::kMovzx:
      if (inst.nops >= 1 && inst.ops[0].is_mem()) return PortClass::kLoad;
      if (inst.nops >= 2 && inst.ops[1].is_mem()) return PortClass::kStore;
      return PortClass::kAlu;
    case Op::kLea:
    case Op::kAdd:
    case Op::kSub:
    case Op::kImul:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kSar:
    case Op::kCmp:
    case Op::kTest:
    case Op::kSetcc:
      if (inst.nops >= 1 && inst.ops[0].is_mem()) return PortClass::kLoad;
      if (inst.nops >= 2 && inst.ops[1].is_mem()) return PortClass::kLoad;
      return PortClass::kAlu;
    case Op::kIdiv:
    case Op::kIrem:
    case Op::kDivsd:
    case Op::kSqrtsd:
      return PortClass::kDiv;
    case Op::kPush:
      return PortClass::kStore;
    case Op::kPop:
      return PortClass::kLoad;
    case Op::kJcc:
    case Op::kJmp:
    case Op::kCall:
    case Op::kRet:
    case Op::kDetectTrap:
      return PortClass::kBranch;
    case Op::kMovsd:
      if (inst.ops[0].is_mem()) return PortClass::kLoad;
      if (inst.ops[1].is_mem()) return PortClass::kStore;
      return PortClass::kFp;
    case Op::kAddsd:
    case Op::kSubsd:
    case Op::kMulsd:
    case Op::kUcomisd:
    case Op::kCvtsi2sd:
    case Op::kCvttsd2si:
      return PortClass::kFp;
    case Op::kMovq:
      if (inst.nops >= 1 && inst.ops[0].is_mem()) return PortClass::kLoad;
      return PortClass::kVec;
    case Op::kPinsrq:
      if (inst.nops >= 2 && inst.ops[1].is_mem()) return PortClass::kLoad;
      return PortClass::kVec;
    case Op::kVinserti128:
    case Op::kVpxor:
    case Op::kVptest:
      return PortClass::kVec;
  }
  return PortClass::kAlu;
}

int TimingModel::latency(const AsmInst& inst) const {
  switch (inst.op) {
    case Op::kMov:
    case Op::kMovsx:
    case Op::kMovzx:
      if (inst.nops >= 1 && inst.ops[0].is_mem()) return params_.lat_load;
      if (inst.nops >= 2 && inst.ops[1].is_mem()) return params_.lat_store;
      return params_.lat_alu;
    case Op::kPop:
    case Op::kPush:
      return params_.lat_load;
    case Op::kImul:
      return params_.lat_imul;
    case Op::kIdiv:
    case Op::kIrem:
      return params_.lat_idiv;
    case Op::kJcc:
    case Op::kJmp:
    case Op::kRet:
    case Op::kDetectTrap:
      return params_.lat_branch;
    case Op::kCall:
      return params_.lat_call;
    case Op::kMovsd:
      if (inst.ops[0].is_mem()) return params_.lat_load;
      if (inst.ops[1].is_mem()) return params_.lat_store;
      return params_.lat_alu;
    case Op::kAddsd:
    case Op::kSubsd:
    case Op::kMulsd:
    case Op::kUcomisd:
      return params_.lat_fp;
    case Op::kDivsd:
      return params_.lat_fpdiv;
    case Op::kSqrtsd:
      return params_.lat_sqrt;
    case Op::kCvtsi2sd:
    case Op::kCvttsd2si:
      return params_.lat_cvt;
    case Op::kMovq:
    case Op::kPinsrq:
    case Op::kVinserti128:
      return params_.lat_vec_mov;
    case Op::kVpxor:
      return params_.lat_vec_alu;
    case Op::kVptest:
      return params_.lat_vptest;
    default:
      return params_.lat_alu;
  }
}

void TimingModel::step(const AsmInst& inst, std::uint64_t addr) {
  const masm::UseDef ud = masm::use_def_of(inst);

  // Data dependences: ready when every read register/flag is ready.
  std::uint64_t ready = 0;
  for (int i = 0; i < masm::kGprCount; ++i) {
    if (ud.use & masm::gpr_bit(static_cast<masm::Gpr>(i))) {
      ready = std::max(ready, gpr_ready_[i]);
    }
  }
  for (int i = 0; i < masm::kXmmCount; ++i) {
    if (ud.use & masm::xmm_bit(i)) ready = std::max(ready, xmm_ready_[i]);
  }
  if (ud.use & masm::kFlagsBit) ready = std::max(ready, flags_ready_);

  const masm::RegEffects fx = masm::effects_of(inst);
  const int mem_slot = static_cast<int>((addr >> 3) % kMemTableSize);
  if (fx.reads_mem && addr != 0 && mem_tag_[mem_slot] == (addr >> 3)) {
    // Store-to-load forwarding from the last store to the same cell.
    ready = std::max(ready,
                     mem_ready_[mem_slot] + params_.lat_store_forward - 1);
  }

  // Frontend: instructions are fetched in program order at issue_width per
  // cycle; execution is out of order beyond that (dependences and port
  // throughput decide), approximating the paper's OoO Xeon.
  const std::uint64_t fetch_cycle =
      fetched_ / static_cast<std::uint64_t>(params_.issue_width);
  ++fetched_;

  const PortClass port = classify(inst);
  int units = 0;
  switch (port) {
    case PortClass::kAlu: units = params_.alu_units; break;
    case PortClass::kLoad: units = params_.load_units; break;
    case PortClass::kStore: units = params_.store_units; break;
    case PortClass::kBranch: units = params_.branch_units; break;
    case PortClass::kVec: units = params_.vec_units; break;
    case PortClass::kFp: units = params_.fp_units; break;
    case PortClass::kDiv: units = params_.div_units; break;
  }
  // Pick the earliest-free unit of this port class.
  std::uint64_t* unit_free = &port_free_[static_cast<int>(port)][0];
  int best_unit = 0;
  for (int u = 1; u < units; ++u) {
    if (unit_free[u] < unit_free[best_unit]) best_unit = u;
  }
  const std::uint64_t port_ready = unit_free[best_unit];
  const std::uint64_t cycle = std::max({ready, fetch_cycle, port_ready});
  unit_free[best_unit] = cycle + 1;  // throughput: 1 op/unit/cycle

  const int lat = latency(inst);
  const std::uint64_t completion = cycle + static_cast<std::uint64_t>(lat);
  last_completion_ = std::max(last_completion_, completion);

  // Telemetry: cycle attribution and stall breakdown.
  {
    const int p = static_cast<int>(port);
    const int origin = static_cast<int>(inst.origin);
    ++stats_.issues[p][origin];
    stats_.latency_cycles[p][origin] += static_cast<std::uint64_t>(lat);
    ++stats_.busy_cycles[p];
    ++stats_.instructions;
    // The instruction slipped `cycle - fetch_cycle` past its in-order
    // fetch slot. Dependences are charged first (they gate execution
    // fundamentally); any further slip means every unit of the port class
    // was still busy. When fetch itself was the binding maximum, the
    // frontend's issue width held the instruction back.
    const std::uint64_t slipped = cycle - fetch_cycle;
    const std::uint64_t dep_wait =
        ready > fetch_cycle ? ready - fetch_cycle : 0;
    const std::uint64_t dep_part = dep_wait < slipped ? dep_wait : slipped;
    stats_.stall_dependence += dep_part;
    stats_.stall_port += slipped - dep_part;
    const std::uint64_t backend_ready = std::max(ready, port_ready);
    if (fetch_cycle > backend_ready) {
      stats_.stall_issue_width += fetch_cycle - backend_ready;
    }
  }

  for (int i = 0; i < masm::kGprCount; ++i) {
    if (ud.def & masm::gpr_bit(static_cast<masm::Gpr>(i))) {
      gpr_ready_[i] = completion;
    }
  }
  for (int i = 0; i < masm::kXmmCount; ++i) {
    if (ud.def & masm::xmm_bit(i)) xmm_ready_[i] = completion;
  }
  if (ud.def & masm::kFlagsBit) flags_ready_ = completion;
  if (fx.writes_mem && addr != 0) {
    mem_tag_[mem_slot] = addr >> 3;
    mem_ready_[mem_slot] = completion;
  }
}

}  // namespace ferrum::vm
