// MiniIR -> MiniASM backend: instruction selection, local register
// allocation with spilling, frame lowering, System-V-flavoured calling
// convention.
//
// The backend intentionally mirrors clang -O0 x86 output, because the
// paper's coverage-gap argument (Sec IV-B1) rests on backend-introduced
// instructions that IR-level protection cannot see:
//  * comparison results are materialised with setcc and re-tested with
//    `testb $1, %reg` before conditional jumps whenever the compare is not
//    immediately adjacent to the branch (Fig 8/9 in the paper);
//  * register pressure causes spill stores/reloads;
//  * address arithmetic (lea), argument shuffling and constant
//    materialisation all appear only at this level.
// Every emitted instruction carries an InstOrigin tag (kFromIR vs
// kBackendGlue) so experiments can attribute coverage loss.
#pragma once

#include <string>

#include "ir/ir.h"
#include "masm/masm.h"

namespace ferrum::backend {

struct BackendOptions {
  /// Upper bound on the number of allocatable scratch GPRs (callee-saved
  /// ones included); lowering it increases register pressure and spills,
  /// and starves the protection passes of spare registers (exercising
  /// FERRUM's stack requisition). Range [4, 14].
  int max_scratch_gprs = 14;
  /// Same for XMM registers. Range [2, 16].
  int max_scratch_xmms = 16;
};

/// Lowers a verified module. Throws std::runtime_error on unsupported
/// constructs (which the frontend cannot produce).
masm::AsmProgram lower(const ir::Module& module,
                       const BackendOptions& options = {});

}  // namespace ferrum::backend
