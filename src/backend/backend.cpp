#include "backend/backend.h"

#include <cstring>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace ferrum::backend {

namespace {

using ir::Opcode;
using ir::TypeKind;
using masm::AsmBlock;
using masm::AsmFunction;
using masm::AsmInst;
using masm::AsmProgram;
using masm::Cond;
using masm::Gpr;
using masm::InstOrigin;
using masm::MemRef;
using masm::Op;
using masm::Operand;

[[noreturn]] void unsupported(const std::string& message) {
  throw std::runtime_error("backend: " + message);
}

int width_of(const ir::Type& type) {
  if (type.is_ptr()) return 8;
  switch (type.kind) {
    case TypeKind::kI1:
    case TypeKind::kI8:
      return 1;
    case TypeKind::kI32:
      return 4;
    default:
      return 8;
  }
}

/// Integer-argument registers, System V order.
constexpr Gpr kIntArgRegs[] = {Gpr::kRdi, Gpr::kRsi, Gpr::kRdx,
                               Gpr::kRcx, Gpr::kR8,  Gpr::kR9};
constexpr int kMaxIntArgs = 6;
constexpr int kMaxFpArgs = 8;

/// Scratch allocation order. Caller-saved first so small functions leave
/// callee-saved registers untouched; the deep end is reached only under
/// pressure, which is what makes spare registers scarce in hot functions.
constexpr Gpr kScratchOrder[] = {
    Gpr::kRax, Gpr::kRcx, Gpr::kRdx, Gpr::kRsi, Gpr::kRdi,
    Gpr::kR8,  Gpr::kR9,  Gpr::kR10, Gpr::kR11, Gpr::kRbx,
    Gpr::kR12, Gpr::kR13, Gpr::kR14, Gpr::kR15};

bool is_callee_saved(Gpr reg) {
  switch (reg) {
    case Gpr::kRbx:
    case Gpr::kR12:
    case Gpr::kR13:
    case Gpr::kR14:
    case Gpr::kR15:
      return true;
    default:
      return false;
  }
}

bool is_caller_saved_gpr(Gpr reg) {
  return !is_callee_saved(reg) && reg != Gpr::kRsp && reg != Gpr::kRbp;
}

Cond cond_of_icmp(ir::CmpPred pred) {
  switch (pred) {
    case ir::CmpPred::kEq: return Cond::kE;
    case ir::CmpPred::kNe: return Cond::kNe;
    case ir::CmpPred::kLt: return Cond::kL;
    case ir::CmpPred::kLe: return Cond::kLe;
    case ir::CmpPred::kGt: return Cond::kG;
    case ir::CmpPred::kGe: return Cond::kGe;
  }
  return Cond::kE;
}

/// ucomisd sets CF/ZF like an unsigned compare.
Cond cond_of_fcmp(ir::CmpPred pred) {
  switch (pred) {
    case ir::CmpPred::kEq: return Cond::kE;
    case ir::CmpPred::kNe: return Cond::kNe;
    case ir::CmpPred::kLt: return Cond::kB;
    case ir::CmpPred::kLe: return Cond::kBe;
    case ir::CmpPred::kGt: return Cond::kA;
    case ir::CmpPred::kGe: return Cond::kAe;
  }
  return Cond::kE;
}

/// Where a value currently lives.
struct Loc {
  enum class Kind : std::uint8_t { kNone, kGpr, kXmm, kSlot } kind = Kind::kNone;
  Gpr gpr = Gpr::kNone;
  int xmm = -1;
  std::int64_t slot = 0;  // rbp-relative displacement (negative)
  int width = 8;
};

class FunctionLowering {
 public:
  FunctionLowering(const ir::Function& fn, AsmProgram& program,
                   const ir::Module& module, const BackendOptions& options)
      : fn_(fn), program_(program), module_(module), options_(options) {}

  void run() {
    AsmFunction out;
    out.name = fn_.name();
    for (const auto& arg : fn_.args()) {
      if (arg->type().is_float()) {
        ++out.fp_args;
      } else {
        ++out.int_args;
      }
    }
    asm_fn_ = &out;

    analyze();
    emit_prologue();
    for (const auto& block : fn_.blocks()) {
      start_asm_block("L" + block->name());
      reset_block_state();
      lower_block(*block);
    }
    emit_epilogue_block();
    patch_frame_size();
    program_.functions.push_back(std::move(out));
  }

 private:
  // ------------------------------------------------------------ analysis --

  void analyze() {
    int next_id = 0;
    for (const auto& block : fn_.blocks()) {
      for (const auto& inst : block->instructions()) {
        inst_block_[inst.get()] = block.get();
        inst_index_[inst.get()] = next_id++;
      }
    }
    // Use counts and escaping values.
    for (const auto& block : fn_.blocks()) {
      for (const auto& inst : block->instructions()) {
        for (const ir::Value* operand : inst->operands) {
          if (operand->kind() != ir::ValueKind::kInstruction) continue;
          const auto* def = static_cast<const ir::Instruction*>(operand);
          use_count_[def]++;
          if (inst_block_[def] != block.get() &&
              def->op() != Opcode::kAlloca) {
            escaping_.insert(def);
          }
        }
      }
    }
    // Frame layout: allocas first, then hidden argument slots, then slots
    // for escaping values. Spill slots are appended on demand.
    for (const auto& block : fn_.blocks()) {
      for (const auto& inst : block->instructions()) {
        if (inst->op() == Opcode::kAlloca) {
          const std::int64_t bytes =
              inst->alloca_count * ir::scalar_size(inst->alloca_elem);
          alloca_offset_[inst.get()] = allocate_frame(bytes);
        }
      }
    }
    for (const auto& arg : fn_.args()) {
      arg_slot_[arg.get()] = allocate_frame(8);
    }
    for (const ir::Instruction* value : escaping_) {
      escape_slot_[value] = allocate_frame(8);
    }
  }

  std::int64_t allocate_frame(std::int64_t bytes) {
    bytes = (bytes + 7) & ~std::int64_t{7};
    frame_size_ += bytes;
    return -frame_size_;
  }

  // ------------------------------------------------------------ emission --

  void start_asm_block(std::string label) {
    asm_fn_->blocks.push_back({std::move(label), {}});
    cur_ = &asm_fn_->blocks.back();
  }

  AsmInst& emit(AsmInst inst, InstOrigin origin) {
    inst.origin = origin;
    cur_->insts.push_back(inst);
    return cur_->insts.back();
  }
  AsmInst& emit_ir(AsmInst inst) { return emit(inst, InstOrigin::kFromIR); }
  AsmInst& emit_glue(AsmInst inst) {
    return emit(inst, InstOrigin::kBackendGlue);
  }

  void emit_prologue() {
    start_asm_block("prologue");
    emit_glue({Op::kPush, {Operand::make_reg(Gpr::kRbp)}});
    emit_glue({Op::kMov, {Operand::make_reg(Gpr::kRsp),
                          Operand::make_reg(Gpr::kRbp)}});
    frame_sub_block_ = static_cast<int>(asm_fn_->blocks.size() - 1);
    frame_sub_index_ = static_cast<int>(cur_->insts.size());
    emit_glue({Op::kSub, {Operand::make_imm(0, 8),
                          Operand::make_reg(Gpr::kRsp)}});
    // Callee-saved homes are patched in at the end (we only know the used
    // set after lowering); reserve the instruction positions now by
    // remembering where to insert.
    callee_save_block_ = frame_sub_block_;
    // Spill incoming arguments to their hidden slots.
    int int_seen = 0;
    int fp_seen = 0;
    for (const auto& arg : fn_.args()) {
      const std::int64_t slot = arg_slot_[arg.get()];
      if (arg->type().is_float()) {
        if (fp_seen >= kMaxFpArgs) unsupported("too many fp args");
        emit_glue({Op::kMovsd, {Operand::make_xmm(fp_seen++),
                                frame_mem(slot, 8)}});
      } else {
        if (int_seen >= kMaxIntArgs) unsupported("too many int args");
        emit_glue({Op::kMov, {Operand::make_reg(kIntArgRegs[int_seen++]),
                              frame_mem(slot, 8)}});
      }
    }
  }

  void emit_epilogue_block() {
    start_asm_block("epilogue");
    // Restore callee-saved registers from their frame homes.
    for (Gpr reg : used_callee_saved_in_order()) {
      emit_glue({Op::kMov, {frame_mem(callee_home_[reg], 8),
                            Operand::make_reg(reg)}});
    }
    emit_glue({Op::kMov, {Operand::make_reg(Gpr::kRbp),
                          Operand::make_reg(Gpr::kRsp)}});
    emit_glue({Op::kPop, {Operand::make_reg(Gpr::kRbp)}});
    emit_glue({Op::kRet, {}});
  }

  std::vector<Gpr> used_callee_saved_in_order() {
    std::vector<Gpr> result;
    for (Gpr reg : {Gpr::kRbx, Gpr::kR12, Gpr::kR13, Gpr::kR14, Gpr::kR15}) {
      if (callee_home_.count(reg) != 0) result.push_back(reg);
    }
    return result;
  }

  void patch_frame_size() {
    // Insert callee-saved saves right after the frame sub.
    std::vector<AsmInst> saves;
    for (Gpr reg : used_callee_saved_in_order()) {
      AsmInst save(Op::kMov,
                   {Operand::make_reg(reg), frame_mem(callee_home_[reg], 8)});
      save.origin = InstOrigin::kBackendGlue;
      saves.push_back(save);
    }
    auto& prologue = asm_fn_->blocks[frame_sub_block_].insts;
    prologue.insert(prologue.begin() + frame_sub_index_ + 1, saves.begin(),
                    saves.end());
    const std::int64_t frame = (frame_size_ + 15) & ~std::int64_t{15};
    prologue[frame_sub_index_].ops[0].imm = frame;
  }

  Operand frame_mem(std::int64_t disp, int width) {
    MemRef mem;
    mem.base = Gpr::kRbp;
    mem.disp = disp;
    return Operand::make_mem(mem, width);
  }

  // -------------------------------------------------- register allocator --

  void reset_block_state() {
    loc_.clear();
    gpr_holder_.clear();
    xmm_holder_.clear();
  }

  /// Marks callee-saved registers the first time they are touched so the
  /// prologue/epilogue can preserve them.
  void note_gpr_use(Gpr reg) {
    if (is_callee_saved(reg) && callee_home_.count(reg) == 0) {
      callee_home_[reg] = allocate_frame(8);
    }
  }

  /// Returns a free register and RESERVES it (sentinel entry) so that a
  /// second allocation before bind_gpr cannot hand the same register out.
  /// bind_gpr replaces the sentinel; a caller that never binds must erase
  /// the entry itself.
  Gpr alloc_gpr() {
    const int budget = options_.max_scratch_gprs;
    int considered = 0;
    for (Gpr reg : kScratchOrder) {
      if (considered++ >= budget) break;
      if (gpr_holder_.count(reg) == 0) {
        note_gpr_use(reg);
        gpr_holder_[reg] = nullptr;
        return reg;
      }
    }
    // All scratch registers busy: spill the least-recently-assigned one.
    evict_gpr(oldest_gpr_holder());
    return alloc_gpr();
  }

  Gpr oldest_gpr_holder() {
    const ir::Value* oldest = nullptr;
    Gpr reg = Gpr::kNone;
    for (const auto& [r, value] : gpr_holder_) {
      if (value == nullptr) continue;  // reserved, not evictable
      if (oldest == nullptr || loc_order_[value] < loc_order_[oldest]) {
        oldest = value;
        reg = r;
      }
    }
    if (reg == Gpr::kNone) unsupported("register allocator deadlock");
    return reg;
  }

  void evict_gpr(Gpr reg) {
    auto it = gpr_holder_.find(reg);
    if (it == gpr_holder_.end()) return;
    const ir::Value* value = it->second;
    if (value == nullptr) unsupported("evicting a reserved register");
    Loc& loc = loc_[value];
    const std::int64_t slot = allocate_frame(8);
    emit_glue({Op::kMov, {Operand::make_reg(reg, 8), frame_mem(slot, 8)}});
    loc.kind = Loc::Kind::kSlot;
    loc.slot = slot;
    gpr_holder_.erase(it);
  }

  int alloc_xmm() {
    const int budget = options_.max_scratch_xmms;
    for (int i = 0; i < budget && i < masm::kXmmCount; ++i) {
      if (xmm_holder_.count(i) == 0) {
        xmm_holder_[i] = nullptr;  // reserve until bind_xmm
        return i;
      }
    }
    // Spill the least-recently-assigned xmm value.
    const ir::Value* oldest = nullptr;
    int reg = -1;
    for (const auto& [r, value] : xmm_holder_) {
      if (value == nullptr) continue;  // reserved, not evictable
      if (oldest == nullptr || loc_order_[value] < loc_order_[oldest]) {
        oldest = value;
        reg = r;
      }
    }
    if (reg < 0) unsupported("xmm allocator deadlock");
    evict_xmm(reg);
    return alloc_xmm();
  }

  void evict_xmm(int reg) {
    auto it = xmm_holder_.find(reg);
    if (it == xmm_holder_.end()) return;
    const ir::Value* value = it->second;
    if (value == nullptr) unsupported("evicting a reserved xmm register");
    Loc& loc = loc_[value];
    const std::int64_t slot = allocate_frame(8);
    emit_glue({Op::kMovsd, {Operand::make_xmm(reg), frame_mem(slot, 8)}});
    loc.kind = Loc::Kind::kSlot;
    loc.slot = slot;
    xmm_holder_.erase(it);
  }

  void bind_gpr(const ir::Value* value, Gpr reg, int width) {
    Loc loc;
    loc.kind = Loc::Kind::kGpr;
    loc.gpr = reg;
    loc.width = width;
    loc_[value] = loc;
    loc_order_[value] = order_counter_++;
    gpr_holder_[reg] = value;
  }

  void bind_xmm(const ir::Value* value, int reg) {
    Loc loc;
    loc.kind = Loc::Kind::kXmm;
    loc.xmm = reg;
    loc.width = 8;
    loc_[value] = loc;
    loc_order_[value] = order_counter_++;
    xmm_holder_[reg] = value;
  }

  void release(const ir::Value* value) {
    auto it = loc_.find(value);
    if (it == loc_.end()) return;
    if (it->second.kind == Loc::Kind::kGpr) gpr_holder_.erase(it->second.gpr);
    if (it->second.kind == Loc::Kind::kXmm) xmm_holder_.erase(it->second.xmm);
    loc_.erase(it);
  }

  /// Releases operand values whose last use is the given instruction.
  void release_dead_operands(const ir::Instruction& inst) {
    for (const ir::Value* operand : inst.operands) {
      if (operand->kind() != ir::ValueKind::kInstruction) continue;
      auto it = remaining_uses_.find(operand);
      if (it != remaining_uses_.end() && --it->second == 0) {
        release(operand);
      }
    }
  }

  // ------------------------------------------------------ value access --

  /// Current register of a value if it already sits in a GPR.
  std::optional<Gpr> lookup_gpr(const ir::Value* value) const {
    auto it = loc_.find(value);
    if (it != loc_.end() && it->second.kind == Loc::Kind::kGpr) {
      return it->second.gpr;
    }
    return std::nullopt;
  }

  /// Puts an integer/pointer value into a GPR and returns it. Every
  /// materialised temporary is bound to its value so that subsequent
  /// allocations cannot hand the same register out again while the value
  /// is still needed.
  Gpr value_to_gpr(const ir::Value* value) {
    switch (value->kind()) {
      case ir::ValueKind::kConstant: {
        const auto* c = static_cast<const ir::Constant*>(value);
        if (auto existing = lookup_gpr(value)) return *existing;
        const Gpr reg = alloc_gpr();
        std::int64_t imm = c->i;
        if (c->type().is_float()) std::memcpy(&imm, &c->f, sizeof(imm));
        emit_glue({Op::kMov, {Operand::make_imm(imm, 8),
                              Operand::make_reg(reg, 8)}});
        bind_gpr(value, reg, 8);
        return reg;
      }
      case ir::ValueKind::kArgument: {
        const auto* arg = static_cast<const ir::Argument*>(value);
        if (auto existing = lookup_gpr(value)) return *existing;
        const Gpr reg = alloc_gpr();
        emit_glue({Op::kMov, {frame_mem(arg_slot_[arg], 8),
                              Operand::make_reg(reg, 8)}});
        bind_gpr(value, reg, 8);
        return reg;
      }
      case ir::ValueKind::kGlobal: {
        const auto* global = static_cast<const ir::GlobalVar*>(value);
        if (auto existing = lookup_gpr(value)) return *existing;
        const Gpr reg = alloc_gpr();
        MemRef mem;
        mem.global_id = program_.global_index(global->name());
        emit_glue({Op::kLea, {Operand::make_mem(mem, 8),
                              Operand::make_reg(reg, 8)}});
        bind_gpr(value, reg, 8);
        return reg;
      }
      case ir::ValueKind::kInstruction: {
        const auto* inst = static_cast<const ir::Instruction*>(value);
        if (inst->op() == Opcode::kAlloca) {
          if (auto existing = lookup_gpr(value)) return *existing;
          const Gpr reg = alloc_gpr();
          emit_glue({Op::kLea, {frame_mem(alloca_offset_[inst], 8),
                                Operand::make_reg(reg, 8)}});
          bind_gpr(value, reg, 8);
          return reg;
        }
        auto it = loc_.find(value);
        if (it == loc_.end()) {
          // Escaping value defined in another block: reload from its slot.
          auto slot_it = escape_slot_.find(inst);
          if (slot_it == escape_slot_.end()) {
            unsupported("value has no location");
          }
          const Gpr reg = alloc_gpr();
          emit_glue({Op::kMov, {frame_mem(slot_it->second, 8),
                                Operand::make_reg(reg, 8)}});
          bind_gpr(value, reg, 8);
          return reg;
        }
        Loc& loc = it->second;
        if (loc.kind == Loc::Kind::kGpr) return loc.gpr;
        if (loc.kind == Loc::Kind::kSlot) {
          const Gpr reg = alloc_gpr();
          emit_glue({Op::kMov, {frame_mem(loc.slot, 8),
                                Operand::make_reg(reg, 8)}});
          loc.kind = Loc::Kind::kGpr;
          loc.gpr = reg;
          gpr_holder_[reg] = value;
          loc_order_[value] = order_counter_++;
          return reg;
        }
        unsupported("integer value in xmm");
      }
    }
    unsupported("unreachable value kind");
  }

  /// Puts an f64 value into an XMM register and returns its index.
  int value_to_xmm(const ir::Value* value) {
    switch (value->kind()) {
      case ir::ValueKind::kConstant: {
        const auto* c = static_cast<const ir::Constant*>(value);
        std::int64_t bits = 0;
        std::memcpy(&bits, &c->f, sizeof(bits));
        const Gpr tmp = alloc_gpr();
        emit_glue({Op::kMov, {Operand::make_imm(bits, 8),
                              Operand::make_reg(tmp, 8)}});
        const int reg = alloc_xmm();
        emit_glue({Op::kMovq, {Operand::make_reg(tmp, 8),
                               Operand::make_xmm(reg)}});
        gpr_holder_.erase(tmp);  // tmp was reserved by alloc, never bound
        bind_xmm(value, reg);
        return reg;
      }
      case ir::ValueKind::kArgument: {
        const auto* arg = static_cast<const ir::Argument*>(value);
        const int reg = alloc_xmm();
        emit_glue({Op::kMovsd, {frame_mem(arg_slot_[arg], 8),
                                Operand::make_xmm(reg)}});
        bind_xmm(value, reg);
        return reg;
      }
      case ir::ValueKind::kInstruction: {
        auto it = loc_.find(value);
        if (it == loc_.end()) {
          const auto* inst = static_cast<const ir::Instruction*>(value);
          auto slot_it = escape_slot_.find(inst);
          if (slot_it == escape_slot_.end()) {
            unsupported("fp value has no location");
          }
          const int reg = alloc_xmm();
          emit_glue({Op::kMovsd, {frame_mem(slot_it->second, 8),
                                  Operand::make_xmm(reg)}});
          bind_xmm(value, reg);
          return reg;
        }
        Loc& loc = it->second;
        if (loc.kind == Loc::Kind::kXmm) return loc.xmm;
        if (loc.kind == Loc::Kind::kSlot) {
          const int reg = alloc_xmm();
          emit_glue({Op::kMovsd, {frame_mem(loc.slot, 8),
                                  Operand::make_xmm(reg)}});
          loc.kind = Loc::Kind::kXmm;
          loc.xmm = reg;
          xmm_holder_[reg] = value;
          loc_order_[value] = order_counter_++;
          return reg;
        }
        unsupported("fp value in gpr");
      }
      default:
        unsupported("bad fp value kind");
    }
  }

  /// Operand for an integer value: an immediate when possible, else a GPR.
  Operand value_operand(const ir::Value* value, int width) {
    if (value->kind() == ir::ValueKind::kConstant &&
        !value->type().is_float()) {
      const auto* c = static_cast<const ir::Constant*>(value);
      if (c->i >= INT32_MIN && c->i <= INT32_MAX) {
        return Operand::make_imm(c->i, width);
      }
    }
    return Operand::make_reg(value_to_gpr(value), width);
  }

  /// Memory operand addressing the pointee of an IR pointer value.
  Operand pointer_mem(const ir::Value* ptr, int width) {
    if (ptr->kind() == ir::ValueKind::kInstruction) {
      const auto* inst = static_cast<const ir::Instruction*>(ptr);
      if (inst->op() == Opcode::kAlloca) {
        return frame_mem(alloca_offset_[inst], width);
      }
    }
    if (ptr->kind() == ir::ValueKind::kGlobal) {
      const auto* global = static_cast<const ir::GlobalVar*>(ptr);
      MemRef mem;
      mem.global_id = program_.global_index(global->name());
      return Operand::make_mem(mem, width);
    }
    MemRef mem;
    mem.base = value_to_gpr(ptr);
    return Operand::make_mem(mem, width);
  }

  /// Stores a freshly defined value to its escape slot if it crosses
  /// blocks.
  void store_if_escaping(const ir::Instruction* inst) {
    auto it = escape_slot_.find(inst);
    if (it == escape_slot_.end()) return;
    if (inst->type().is_float()) {
      const int reg = value_to_xmm(inst);
      emit_glue({Op::kMovsd, {Operand::make_xmm(reg),
                              frame_mem(it->second, 8)}});
    } else {
      const Gpr reg = value_to_gpr(inst);
      emit_glue({Op::kMov, {Operand::make_reg(reg, 8),
                            frame_mem(it->second, 8)}});
    }
  }

  // ------------------------------------------------------------ lowering --

  void lower_block(const ir::BasicBlock& block) {
    // Count uses of each locally defined value so registers free up at the
    // last use (escaping values keep their slot regardless).
    remaining_uses_.clear();
    for (const auto& inst : block.instructions()) {
      for (const ir::Value* operand : inst->operands) {
        if (operand->kind() == ir::ValueKind::kInstruction) {
          remaining_uses_[operand]++;
        }
      }
    }

    const std::size_t count = block.size();
    for (std::size_t i = 0; i < count; ++i) {
      const ir::Instruction* inst = block.at(i);
      // cmp+jcc fusion: an icmp/fcmp immediately followed by the condbr
      // that is its only use lowers as part of the branch.
      if ((inst->op() == Opcode::kICmp || inst->op() == Opcode::kFCmp) &&
          i + 1 < count) {
        const ir::Instruction* next = block.at(i + 1);
        if (next->op() == Opcode::kCondBr && next->operands[0] == inst &&
            use_count_[inst] == 1) {
          lower_fused_branch(*inst, *next);
          return;
        }
      }
      lower_inst(*inst);
      if (!inst->type().is_void()) store_if_escaping(inst);
      release_dead_operands(*inst);
    }
  }

  void lower_fused_branch(const ir::Instruction& cmp,
                          const ir::Instruction& br) {
    Cond cc;
    if (cmp.op() == Opcode::kICmp) {
      const int width = width_of(cmp.operands[0]->type());
      const Gpr lhs = value_to_gpr(cmp.operands[0]);
      const Operand rhs = value_operand(cmp.operands[1], width);
      emit_ir({Op::kCmp, {rhs, Operand::make_reg(lhs, width)}});
      cc = cond_of_icmp(cmp.pred);
    } else {
      const int lhs = value_to_xmm(cmp.operands[0]);
      const int rhs = value_to_xmm(cmp.operands[1]);
      emit_ir({Op::kUcomisd, {Operand::make_xmm(rhs),
                              Operand::make_xmm(lhs)}});
      cc = cond_of_fcmp(cmp.pred);
    }
    release_dead_operands(cmp);
    emit_ir({Op::kJcc, cc,
             {Operand::make_label("L" + br.targets[0]->name())}});
    emit_ir({Op::kJmp, {Operand::make_label("L" + br.targets[1]->name())}});
  }

  void lower_inst(const ir::Instruction& inst) {
    switch (inst.op()) {
      case Opcode::kAlloca:
        break;  // frame slot assigned during analysis
      case Opcode::kLoad: lower_load(inst); break;
      case Opcode::kStore: lower_store(inst); break;
      case Opcode::kGep: lower_gep(inst); break;
      case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
      case Opcode::kSDiv: case Opcode::kSRem: case Opcode::kAnd:
      case Opcode::kOr: case Opcode::kXor:
        lower_int_binary(inst);
        break;
      case Opcode::kShl: case Opcode::kAShr:
        lower_shift(inst);
        break;
      case Opcode::kFAdd: case Opcode::kFSub: case Opcode::kFMul:
      case Opcode::kFDiv:
        lower_fp_binary(inst);
        break;
      case Opcode::kICmp: lower_icmp(inst); break;
      case Opcode::kFCmp: lower_fcmp(inst); break;
      case Opcode::kSext: case Opcode::kZext: case Opcode::kTrunc:
        lower_int_cast(inst);
        break;
      case Opcode::kSiToFp: {
        const Gpr src = value_to_gpr(inst.operands[0]);
        const int dst = alloc_xmm();
        emit_ir({Op::kCvtsi2sd,
                 {Operand::make_reg(src, width_of(inst.operands[0]->type()) == 4
                                             ? 4 : 8),
                  Operand::make_xmm(dst)}});
        bind_xmm(&inst, dst);
        break;
      }
      case Opcode::kFpToSi: {
        const int src = value_to_xmm(inst.operands[0]);
        const Gpr dst = alloc_gpr();
        const int width = width_of(inst.type()) == 4 ? 4 : 8;
        emit_ir({Op::kCvttsd2si, {Operand::make_xmm(src),
                                  Operand::make_reg(dst, width)}});
        bind_gpr(&inst, dst, width);
        break;
      }
      case Opcode::kCall: lower_call(inst); break;
      case Opcode::kBr:
        emit_ir({Op::kJmp,
                 {Operand::make_label("L" + inst.targets[0]->name())}});
        break;
      case Opcode::kCondBr: lower_condbr(inst); break;
      case Opcode::kRet: lower_ret(inst); break;

    }
  }

  void lower_load(const ir::Instruction& inst) {
    const int width = width_of(inst.type());
    if (inst.type().is_float()) {
      const Operand src = pointer_mem(inst.operands[0], 8);
      const int dst = alloc_xmm();
      emit_ir({Op::kMovsd, {src, Operand::make_xmm(dst)}});
      bind_xmm(&inst, dst);
      return;
    }
    const Operand src = pointer_mem(inst.operands[0], width);
    const Gpr dst = alloc_gpr();
    if (width == 1) {
      emit_ir({Op::kMovzx, {src, Operand::make_reg(dst, 4)}});
      bind_gpr(&inst, dst, 1);
    } else {
      emit_ir({Op::kMov, {src, Operand::make_reg(dst, width)}});
      bind_gpr(&inst, dst, width);
    }
  }

  void lower_store(const ir::Instruction& inst) {
    const ir::Value* value = inst.operands[0];
    const int width = width_of(value->type());
    if (value->type().is_float()) {
      const int src = value_to_xmm(value);
      const Operand dst = pointer_mem(inst.operands[1], 8);
      emit_ir({Op::kMovsd, {Operand::make_xmm(src), dst}});
      return;
    }
    const Operand src = value_operand(value, width);
    const Operand dst = pointer_mem(inst.operands[1], width);
    emit_ir({Op::kMov, {src, dst}});
  }

  void lower_gep(const ir::Instruction& inst) {
    const int scale = ir::scalar_size(inst.type().elem);
    const Gpr index = value_to_gpr(inst.operands[1]);
    const ir::Value* base = inst.operands[0];
    const Gpr dst = alloc_gpr();
    MemRef mem;
    if (base->kind() == ir::ValueKind::kInstruction &&
        static_cast<const ir::Instruction*>(base)->op() == Opcode::kAlloca) {
      mem.base = Gpr::kRbp;
      mem.disp =
          alloca_offset_[static_cast<const ir::Instruction*>(base)];
    } else if (base->kind() == ir::ValueKind::kGlobal) {
      mem.global_id = program_.global_index(
          static_cast<const ir::GlobalVar*>(base)->name());
    } else {
      mem.base = value_to_gpr(base);
    }
    mem.index = index;
    mem.scale = scale;
    emit_ir({Op::kLea, {Operand::make_mem(mem, 8),
                        Operand::make_reg(dst, 8)}});
    bind_gpr(&inst, dst, 8);
  }

  void lower_int_binary(const ir::Instruction& inst) {
    const int width = width_of(inst.type()) == 8 ? 8 : 4;
    const Gpr lhs = value_to_gpr(inst.operands[0]);
    const Gpr dst = alloc_gpr();
    emit_glue({Op::kMov, {Operand::make_reg(lhs, width),
                          Operand::make_reg(dst, width)}});
    bind_gpr(&inst, dst, width);
    const Operand rhs = value_operand(inst.operands[1], width);
    Op op;
    switch (inst.op()) {
      case Opcode::kAdd: op = Op::kAdd; break;
      case Opcode::kSub: op = Op::kSub; break;
      case Opcode::kMul: op = Op::kImul; break;
      case Opcode::kSDiv: op = Op::kIdiv; break;
      case Opcode::kSRem: op = Op::kIrem; break;
      case Opcode::kAnd: op = Op::kAnd; break;
      case Opcode::kOr: op = Op::kOr; break;
      default: op = Op::kXor; break;
    }
    emit_ir({op, {rhs, Operand::make_reg(dst, width)}});
  }

  void lower_shift(const ir::Instruction& inst) {
    const int width = width_of(inst.type()) == 8 ? 8 : 4;
    const Op op = inst.op() == Opcode::kShl ? Op::kShl : Op::kSar;
    if (inst.operands[1]->kind() == ir::ValueKind::kConstant) {
      const auto* c = static_cast<const ir::Constant*>(inst.operands[1]);
      const Gpr lhs = value_to_gpr(inst.operands[0]);
      const Gpr dst = alloc_gpr();
      emit_glue({Op::kMov, {Operand::make_reg(lhs, width),
                            Operand::make_reg(dst, width)}});
      emit_ir({op, {Operand::make_imm(c->i & 63, 1),
                    Operand::make_reg(dst, width)}});
      bind_gpr(&inst, dst, width);
      return;
    }
    // Variable shift count goes through %cl. Evict and reserve rcx first:
    // materialising the other operands must not be handed rcx, and the
    // lhs register fetched above may itself have been evicted.
    evict_gpr(Gpr::kRcx);
    gpr_holder_[Gpr::kRcx] = nullptr;  // reserve rcx while shifting
    const Gpr count = value_to_gpr(inst.operands[1]);
    if (count != Gpr::kRcx) {
      emit_glue({Op::kMov, {Operand::make_reg(count, 8),
                            Operand::make_reg(Gpr::kRcx, 8)}});
    }
    const Gpr dst = alloc_gpr();
    const Gpr lhs_now = value_to_gpr(inst.operands[0]);
    emit_glue({Op::kMov, {Operand::make_reg(lhs_now, width),
                          Operand::make_reg(dst, width)}});
    emit_ir({op, {Operand::make_reg(Gpr::kRcx, 1),
                  Operand::make_reg(dst, width)}});
    gpr_holder_.erase(Gpr::kRcx);
    bind_gpr(&inst, dst, width);
  }

  void lower_fp_binary(const ir::Instruction& inst) {
    const int lhs = value_to_xmm(inst.operands[0]);
    const int dst = alloc_xmm();
    emit_glue({Op::kMovsd, {Operand::make_xmm(lhs), Operand::make_xmm(dst)}});
    bind_xmm(&inst, dst);
    const int rhs = value_to_xmm(inst.operands[1]);
    Op op;
    switch (inst.op()) {
      case Opcode::kFAdd: op = Op::kAddsd; break;
      case Opcode::kFSub: op = Op::kSubsd; break;
      case Opcode::kFMul: op = Op::kMulsd; break;
      default: op = Op::kDivsd; break;
    }
    emit_ir({op, {Operand::make_xmm(rhs), Operand::make_xmm(dst)}});
  }

  void lower_icmp(const ir::Instruction& inst) {
    const int width = width_of(inst.operands[0]->type());
    const Gpr lhs = value_to_gpr(inst.operands[0]);
    const Operand rhs = value_operand(inst.operands[1], width);
    emit_ir({Op::kCmp, {rhs, Operand::make_reg(lhs, width)}});
    const Gpr dst = alloc_gpr();
    // Materialised comparison result: the setcc itself is invisible at IR
    // level — a key coverage-gap site (paper Sec IV-B1).
    emit_glue({AsmInst(Op::kSetcc, cond_of_icmp(inst.pred),
                       {Operand::make_reg(dst, 1)})});
    bind_gpr(&inst, dst, 1);
  }

  void lower_fcmp(const ir::Instruction& inst) {
    const int lhs = value_to_xmm(inst.operands[0]);
    const int rhs = value_to_xmm(inst.operands[1]);
    emit_ir({Op::kUcomisd, {Operand::make_xmm(rhs), Operand::make_xmm(lhs)}});
    const Gpr dst = alloc_gpr();
    emit_glue({AsmInst(Op::kSetcc, cond_of_fcmp(inst.pred),
                       {Operand::make_reg(dst, 1)})});
    bind_gpr(&inst, dst, 1);
  }

  void lower_int_cast(const ir::Instruction& inst) {
    const int from = width_of(inst.operands[0]->type());
    const int to = width_of(inst.type());
    const Gpr src = value_to_gpr(inst.operands[0]);
    const Gpr dst = alloc_gpr();
    if (inst.op() == Opcode::kSext && from < to) {
      emit_ir({Op::kMovsx, {Operand::make_reg(src, from),
                            Operand::make_reg(dst, to)}});
    } else if (inst.op() == Opcode::kZext && from < to) {
      if (from == 1) {
        emit_ir({Op::kMovzx, {Operand::make_reg(src, 1),
                              Operand::make_reg(dst, to == 8 ? 8 : 4)}});
      } else {
        // 32 -> 64 zero extension is an implicit property of 32-bit moves.
        emit_ir({Op::kMov, {Operand::make_reg(src, 4),
                            Operand::make_reg(dst, 4)}});
      }
    } else {
      // Truncation or same-width rename: a plain move at target width.
      emit_ir({Op::kMov, {Operand::make_reg(src, to),
                          Operand::make_reg(dst, to)}});
    }
    bind_gpr(&inst, dst, to);
  }

  void lower_condbr(const ir::Instruction& inst) {
    // Unfused path: re-test the materialised i1 — the `testb` writes flags
    // and is exactly the unprotected site of the paper's Fig 9.
    const Gpr cond = value_to_gpr(inst.operands[0]);
    emit_glue({Op::kTest, {Operand::make_imm(1, 1),
                           Operand::make_reg(cond, 1)}});
    emit_ir({AsmInst(Op::kJcc, Cond::kNe,
                     {Operand::make_label("L" + inst.targets[0]->name())})});
    emit_ir({Op::kJmp, {Operand::make_label("L" + inst.targets[1]->name())}});
  }

  void lower_ret(const ir::Instruction& inst) {
    if (!inst.operands.empty()) {
      const ir::Value* value = inst.operands[0];
      if (value->type().is_float()) {
        const int src = value_to_xmm(value);
        if (src != 0) {
          evict_xmm(0);
          emit_glue({Op::kMovsd, {Operand::make_xmm(src),
                                  Operand::make_xmm(0)}});
        }
      } else {
        const Gpr src = value_to_gpr(value);
        if (src != Gpr::kRax) {
          evict_gpr(Gpr::kRax);
          emit_glue({Op::kMov, {Operand::make_reg(src, 8),
                                Operand::make_reg(Gpr::kRax, 8)}});
        }
      }
    }
    emit_ir({Op::kJmp, {Operand::make_label("epilogue")}});
  }

  void lower_call(const ir::Instruction& inst) {
    // The EDDI detector entry point lowers to the VM's detect trap.
    if (inst.callee->is_builtin && inst.callee->name() == "__eddi_detect") {
      emit_ir({Op::kDetectTrap, {}});
      return;
    }
    // sqrt lowers to the SSE instruction directly.
    if (inst.callee->is_builtin && inst.callee->name() == "sqrt") {
      const int src = value_to_xmm(inst.operands[0]);
      const int dst = alloc_xmm();
      emit_ir({Op::kSqrtsd, {Operand::make_xmm(src), Operand::make_xmm(dst)}});
      bind_xmm(&inst, dst);
      return;
    }

    // Spill every live value held in a caller-saved register.
    std::vector<Gpr> to_spill_gpr;
    for (const auto& [reg, value] : gpr_holder_) {
      if (value != nullptr && is_caller_saved_gpr(reg)) {
        to_spill_gpr.push_back(reg);
      }
    }
    for (Gpr reg : to_spill_gpr) evict_gpr(reg);
    std::vector<int> to_spill_xmm;
    for (const auto& [reg, value] : xmm_holder_) {
      if (value != nullptr) to_spill_xmm.push_back(reg);
    }
    for (int reg : to_spill_xmm) evict_xmm(reg);

    // Marshal arguments.
    int int_seen = 0;
    int fp_seen = 0;
    for (const ir::Value* arg : inst.operands) {
      if (arg->type().is_float()) {
        if (fp_seen >= kMaxFpArgs) unsupported("too many fp args");
        const int src = value_to_xmm(arg);
        if (src != fp_seen) {
          emit_glue({Op::kMovsd, {Operand::make_xmm(src),
                                  Operand::make_xmm(fp_seen)}});
        }
        ++fp_seen;
      } else {
        if (int_seen >= kMaxIntArgs) unsupported("too many int args");
        const Gpr target = kIntArgRegs[int_seen];
        const Gpr src = value_to_gpr(arg);
        if (src != target) {
          evict_gpr(target);
          emit_glue({Op::kMov, {Operand::make_reg(src, 8),
                                Operand::make_reg(target, 8)}});
        }
        // Reserve the marshalled register: materialising later arguments
        // must not be handed an ABI register that already carries one.
        if (gpr_holder_.count(target) == 0) gpr_holder_[target] = nullptr;
        ++int_seen;
      }
    }
    // Argument registers may still be "held" by the marshalled values
    // themselves; the call clobbers caller-saved state, so clear them.
    for (Gpr reg : {Gpr::kRax, Gpr::kRcx, Gpr::kRdx, Gpr::kRsi, Gpr::kRdi,
                    Gpr::kR8, Gpr::kR9, Gpr::kR10, Gpr::kR11}) {
      auto it = gpr_holder_.find(reg);
      if (it != gpr_holder_.end()) {
        if (it->second != nullptr) loc_[it->second].kind = Loc::Kind::kNone;
        gpr_holder_.erase(it);
      }
    }
    for (int reg = 0; reg < masm::kXmmCount; ++reg) {
      auto it = xmm_holder_.find(reg);
      if (it != xmm_holder_.end()) {
        if (it->second != nullptr) loc_[it->second].kind = Loc::Kind::kNone;
        xmm_holder_.erase(it);
      }
    }

    emit_ir({Op::kCall, {Operand::make_func(inst.callee->name())}});

    if (inst.type().is_void()) return;
    if (inst.type().is_float()) {
      const int dst = alloc_xmm();
      if (dst != 0) {
        emit_glue({Op::kMovsd, {Operand::make_xmm(0),
                                Operand::make_xmm(dst)}});
      }
      bind_xmm(&inst, dst);
    } else {
      const Gpr dst = alloc_gpr();
      if (dst != Gpr::kRax) {
        emit_glue({Op::kMov, {Operand::make_reg(Gpr::kRax, 8),
                              Operand::make_reg(dst, 8)}});
      }
      bind_gpr(&inst, dst, width_of(inst.type()));
    }
  }

  const ir::Function& fn_;
  AsmProgram& program_;
  const ir::Module& module_;
  const BackendOptions& options_;
  AsmFunction* asm_fn_ = nullptr;
  AsmBlock* cur_ = nullptr;

  std::unordered_map<const ir::Instruction*, const ir::BasicBlock*>
      inst_block_;
  std::unordered_map<const ir::Instruction*, int> inst_index_;
  std::unordered_map<const ir::Value*, int> use_count_;
  std::unordered_set<const ir::Instruction*> escaping_;
  std::unordered_map<const ir::Instruction*, std::int64_t> alloca_offset_;
  std::unordered_map<const ir::Argument*, std::int64_t> arg_slot_;
  std::unordered_map<const ir::Instruction*, std::int64_t> escape_slot_;
  std::unordered_map<Gpr, std::int64_t> callee_home_;

  std::int64_t frame_size_ = 0;
  int frame_sub_block_ = 0;
  int frame_sub_index_ = 0;
  int callee_save_block_ = 0;

  // Per-block allocator state.
  std::unordered_map<const ir::Value*, Loc> loc_;
  std::unordered_map<const ir::Value*, std::uint64_t> loc_order_;
  std::unordered_map<Gpr, const ir::Value*> gpr_holder_;
  std::unordered_map<int, const ir::Value*> xmm_holder_;
  std::unordered_map<const ir::Value*, int> remaining_uses_;
  std::uint64_t order_counter_ = 0;
};

}  // namespace

masm::AsmProgram lower(const ir::Module& module,
                       const BackendOptions& options) {
  AsmProgram program;
  // Globals first so symbol ids are stable for the whole lowering.
  for (const auto& global : module.globals()) {
    masm::AsmGlobal out;
    out.name = global->name();
    const int elem = ir::scalar_size(global->element());
    out.size_bytes = global->count() * elem;
    for (std::size_t i = 0; i < global->init.size(); ++i) {
      std::uint8_t bytes[8];
      std::memcpy(bytes, &global->init[i], 8);
      for (int b = 0; b < elem; ++b) out.init.push_back(bytes[b]);
    }
    program.globals.push_back(std::move(out));
  }
  for (const auto& fn : module.functions()) {
    if (fn->is_declaration()) continue;
    FunctionLowering lowering(*fn, program, module, options);
    lowering.run();
  }
  return program;
}

}  // namespace ferrum::backend
