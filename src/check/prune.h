// ferrum-prune: static fault-site liveness & equivalence analysis that
// collapses the injection space (FastFlip-style, see PAPERS.md).
//
// Two results per VM fault site:
//
//  1. A *dead-bit mask* from a backward, bit-granular register/flag
//     liveness analysis. Bit b of a site is dead when flipping it in the
//     value the instruction writes provably cannot change architectural
//     outcome (status, output, return value, steps, fi_sites). Dead
//     probes are counted as benign without ever being injected. The
//     soundness argument (DESIGN.md "prune") rests on three pillars:
//     every architectural observation (memory address, store value,
//     branch flag, print argument, main's %rax) is a *use*; stores
//     conservatively keep their full source live (memory round trips are
//     captured at the store, so kills by later loads are sound); and
//     interprocedural flow is summarised per callee (may-read gen set +
//     may-pass-through set) over a bottom-up fixpoint, with a top-down
//     return-liveness pass seeding main's exit with {%rax}.
//
//  2. An *equivalence class* for the remaining live sites: sites whose
//     corrupted value reaches the same consumer chain — same relative
//     dataflow slice up to the first sync point (store, branch, call,
//     ret, detect trap) — with the same kind, bit space and dead mask
//     share a class. fault::audit_program / run_campaign in prune mode
//     inject one *pilot* per (class, effective bit[, temporal stratum])
//     and extrapolate the rest with exact cardinality accounting;
//     bench/analysis_prune_accuracy cross-validates against the
//     exhaustive audit.
//
// Contract vs. the PR 3 verifier: check_program over-approximates
// *unprotectedness* (one-directional: every dynamic SDC lies in its
// kUnprotected set); prune over-approximates *liveness* — a bit it calls
// dead is dead, a bit it calls live may still be harmless. The two do not
// consume each other's results.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "masm/fault_site.h"
#include "masm/masm.h"
#include "telemetry/json.h"

namespace ferrum::check::prune {

/// class_id of a site whose every injectable bit is dead: it needs no
/// pilot at all.
constexpr std::uint32_t kDeadClass = 0xffff'ffffu;

struct PruneSite {
  /// Static coordinates (function / block / instruction index), matching
  /// vm::DecodedInst and check::SiteRecord.
  int function = 0;
  int block = 0;
  int inst = 0;
  masm::FaultSiteKind kind = masm::FaultSiteKind::kGprWrite;
  /// Distinct injectable bit positions (see masm::StaticSiteInfo); a
  /// sampled FaultSpec::bit lands on effective position bit % bit_space.
  int bit_space = 64;
  /// Bit b (over [0, bit_space)) set => flipping effective position b is
  /// provably outcome-neutral. 4 words cover the ymm maximum (256 bits).
  std::array<std::uint64_t, 4> dead_mask{};
  /// Live-site equivalence class, or kDeadClass when fully dead.
  std::uint32_t class_id = kDeadClass;

  bool bit_dead(int bit) const {
    const int eff = bit % bit_space;
    return (dead_mask[eff >> 6] >> (eff & 63)) & 1;
  }
  /// A burst flip is dead only when every covered position is dead
  /// (positions wrap within bit_space, mirroring vm burst_mask).
  bool flip_dead(int bit, int burst) const {
    for (int i = 0; i < burst; ++i) {
      if (!bit_dead(bit + i)) return false;
    }
    return true;
  }
  bool fully_dead() const { return class_id == kDeadClass; }
  int dead_bits() const {
    int count = 0;
    for (int b = 0; b < bit_space; ++b) count += bit_dead(b) ? 1 : 0;
    return count;
  }
};

struct PruneClass {
  std::uint32_t id = 0;
  /// Propagation signature the class was keyed on (kind, bit space, dead
  /// mask, relative consumer slice up to the sync point).
  std::string signature;
  /// Static sites in the class.
  std::uint32_t static_members = 0;
  /// Index into PruneReport::sites of the first member (program order).
  std::uint32_t representative = 0;
};

struct PruneOptions {
  /// Enumerate kStoreData sites. Must mirror VmOptions::fault_store_data
  /// of the campaign/audit consuming the report, or site indices drift.
  bool store_data_sites = false;
};

struct PruneReport {
  /// Program order: functions in order, blocks in order, instructions in
  /// order — exactly the order the VM would first meet them statically.
  std::vector<PruneSite> sites;
  std::vector<PruneClass> classes;  // indexed by class id

  bool store_data_sites = false;
  std::uint64_t fully_dead_sites = 0;
  std::uint64_t dead_bits = 0;   // summed over sites' bit spaces
  std::uint64_t total_bits = 0;  // summed bit spaces

  /// sites index for static coordinates, -1 when that instruction
  /// registers no fault site. Indexed [function][block][inst]; inline so
  /// fault::audit/campaign can consume the report without linking
  /// ferrum_check (the telemetry layer links fault back into check).
  int site_index(int function, int block, int inst) const {
    const auto& blocks = site_at_[static_cast<std::size_t>(function)];
    return blocks[static_cast<std::size_t>(block)]
                 [static_cast<std::size_t>(inst)];
  }
  const PruneSite* find(int function, int block, int inst) const {
    const int index = site_index(function, block, inst);
    return index < 0 ? nullptr : &sites[static_cast<std::size_t>(index)];
  }

  double dead_fraction() const {
    return total_bits == 0
               ? 0.0
               : static_cast<double>(dead_bits) / static_cast<double>(total_bits);
  }

  std::vector<std::vector<std::vector<std::int32_t>>> site_at_;
};

/// Runs the liveness + equivalence analysis. Deterministic: depends only
/// on the program and options.
PruneReport prune_program(const masm::AsmProgram& program,
                          const PruneOptions& options = {});

/// Deterministic JSON view: summary counters, class table, and the full
/// site table (function/block/inst, kind, bit space, dead mask, class).
telemetry::Json to_json(const PruneReport& report,
                        const masm::AsmProgram& program);

}  // namespace ferrum::check::prune
