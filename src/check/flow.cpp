#include "check/flow.h"

#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "check/check.h"
#include "check/prune.h"
#include "check/sections.h"

namespace ferrum::check::flow {
namespace {

using masm::AsmFunction;
using masm::AsmInst;
using masm::AsmProgram;
using masm::FaultSiteKind;
using masm::Gpr;
using masm::MemRef;
using masm::Op;
using masm::Operand;

// ---------------------------------------------------------- flow state --

// Tracked locations: 16 GPRs, 16 XMM registers x 4 64-bit lanes (the
// full YMM backing store, matching prune's granularity), RFLAGS.
constexpr int kGprLocBase = 0;
constexpr int kXmmLocBase = masm::kGprCount;                      // 16
constexpr int kFlagsLoc = kXmmLocBase + masm::kXmmCount * 4;      // 80
constexpr int kLocCount = kFlagsLoc + 1;                          // 81

constexpr int gpr_loc(Gpr reg) {
  return kGprLocBase + static_cast<int>(reg);
}
constexpr int xmm_loc(int xmm, int lane) {
  return kXmmLocBase + xmm * 4 + lane;
}

/// One location's flow fact: the sinks its current value can still reach,
/// plus the exit locations it can flow into by function return (the exit
/// mask is populated only during summary construction — concrete passes
/// seed rets with sink-only contexts, so it stays empty there).
struct Cell {
  std::uint64_t exit_lo = 0;  // exit locations 0..63
  std::uint32_t exit_hi = 0;  // exit locations 64..80
  std::uint16_t sinks = 0;

  bool operator==(const Cell& o) const {
    return exit_lo == o.exit_lo && exit_hi == o.exit_hi && sinks == o.sinks;
  }
  bool empty() const { return exit_lo == 0 && exit_hi == 0 && sinks == 0; }
  void merge(const Cell& o) {
    exit_lo |= o.exit_lo;
    exit_hi |= o.exit_hi;
    sinks |= o.sinks;
  }
  static Cell sink(std::uint16_t mask) {
    Cell c;
    c.sinks = mask;
    return c;
  }
  static Cell exit_of(int loc) {
    Cell c;
    if (loc < 64) {
      c.exit_lo = std::uint64_t{1} << loc;
    } else {
      c.exit_hi = std::uint32_t{1} << (loc - 64);
    }
    return c;
  }
};

/// Per-program-point state: loc -> where its current value can flow.
struct FlowState {
  std::array<Cell, kLocCount> loc{};

  bool operator==(const FlowState& o) const { return loc == o.loc; }
  void join(const FlowState& o) {
    for (int l = 0; l < kLocCount; ++l) loc[l].merge(o.loc[l]);
  }
  /// The summary-pass exit seed: every location flows to itself at ret.
  static FlowState identity_exits() {
    FlowState s;
    for (int l = 0; l < kLocCount; ++l) s.loc[l] = Cell::exit_of(l);
    return s;
  }
};

/// Expands a summary cell against the caller's after-call state: the
/// callee's intrinsic sinks plus, for every exit location the value can
/// reach, whatever the caller lets flow from there.
Cell expand(const Cell& summary, const FlowState& after) {
  Cell out = Cell::sink(summary.sinks);
  std::uint64_t lo = summary.exit_lo;
  while (lo != 0) {
    const int e = __builtin_ctzll(lo);
    lo &= lo - 1;
    out.merge(after.loc[e]);
  }
  std::uint32_t hi = summary.exit_hi;
  while (hi != 0) {
    const int e = 64 + __builtin_ctz(hi);
    hi &= hi - 1;
    out.merge(after.loc[e]);
  }
  return out;
}

// ----------------------------------------------------- transfer helpers --

void read_gpr(FlowState& s, Gpr reg, const Cell& gen) {
  if (reg != Gpr::kNone) s.loc[gpr_loc(reg)].merge(gen);
}

void read_xmm_lane(FlowState& s, int xmm, int lane, const Cell& gen) {
  s.loc[xmm_loc(xmm, lane)].merge(gen);
}

/// Memory address registers: the address value both selects the accessed
/// cell (gen flows through a load's result / a store's destination) and
/// can trap — callers fold kSinkAddress into gen.
void read_mem(FlowState& s, const MemRef& mem, const Cell& gen) {
  read_gpr(s, mem.base, gen);
  read_gpr(s, mem.index, gen);
}

/// Generic operand read (GPR at any width — a corrupted narrow value
/// still flows — memory addresses with the address sink, XMM operands
/// whole-register). Immediates and labels read nothing.
void read_operand(FlowState& s, const Operand& op, const Cell& gen) {
  switch (op.kind) {
    case Operand::Kind::kReg:
      read_gpr(s, op.reg, gen);
      return;
    case Operand::Kind::kMem: {
      Cell addr = gen;
      addr.sinks |= kSinkAddress;
      read_mem(s, op.mem, addr);
      return;
    }
    case Operand::Kind::kXmm:
      for (int l = 0; l < 4; ++l) read_xmm_lane(s, op.xmm, l, gen);
      return;
    default:
      return;
  }
}

/// Scalar-double source: xmm low lane or a memory/GPR operand.
void read_scalar_src(FlowState& s, const Operand& op, const Cell& gen) {
  if (op.is_xmm()) {
    read_xmm_lane(s, op.xmm, 0, gen);
  } else {
    read_operand(s, op, gen);
  }
}

/// Mirrors merged_gpr_value: 32/64-bit writes replace the whole register
/// (a kill), 8-bit writes merge (the old upper bits survive — no kill).
void kill_gpr(FlowState& s, Gpr reg, int width) {
  if (reg == Gpr::kNone || width == 1) return;
  s.loc[gpr_loc(reg)] = Cell{};
}

/// The destination-flow generator of a GPR write: whatever the post-state
/// lets the written value reach, plus the stack-pointer sink when the
/// destination steers the frame.
Cell gpr_write_gen(const FlowState& s, Gpr reg) {
  Cell gen = s.loc[gpr_loc(reg)];
  if (reg == Gpr::kRsp || reg == Gpr::kRbp) gen.sinks |= kSinkStackPtr;
  return gen;
}

// ------------------------------------------------------------- analyzer --

constexpr int kCalleePrintInt = -2;
constexpr int kCalleePrintF64 = -3;
constexpr int kCalleeUnknown = -1;

class Analyzer {
 public:
  Analyzer(const AsmProgram& program, const FlowOptions& options)
      : prog_(program), opts_(options) {
    const int nfuncs = static_cast<int>(prog_.functions.size());
    std::unordered_map<std::string, int> by_name;
    for (int f = 0; f < nfuncs; ++f) by_name.emplace(prog_.functions[f].name, f);
    tables_.resize(static_cast<std::size_t>(nfuncs));
    for (int f = 0; f < nfuncs; ++f) {
      const AsmFunction& fn = prog_.functions[f];
      std::unordered_map<std::string, int> block_by_label;
      for (int b = 0; b < static_cast<int>(fn.blocks.size()); ++b) {
        block_by_label.emplace(fn.blocks[b].label, b);
      }
      auto& t = tables_[static_cast<std::size_t>(f)];
      t.target.resize(fn.blocks.size());
      t.callee.resize(fn.blocks.size());
      t.detect_block.assign(fn.blocks.size(), false);
      for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        const auto& insts = fn.blocks[b].insts;
        t.detect_block[b] =
            !insts.empty() && insts.front().op == Op::kDetectTrap;
        t.target[b].assign(insts.size(), -1);
        t.callee[b].assign(insts.size(), kCalleeUnknown);
        for (std::size_t i = 0; i < insts.size(); ++i) {
          const AsmInst& inst = insts[i];
          if (inst.op == Op::kJmp || inst.op == Op::kJcc) {
            auto it = block_by_label.find(inst.ops[0].label);
            if (it != block_by_label.end()) t.target[b][i] = it->second;
          } else if (inst.op == Op::kCall) {
            const std::string& callee = inst.ops[0].label;
            if (callee == "print_int") {
              t.callee[b][i] = kCalleePrintInt;
            } else if (callee == "print_f64") {
              t.callee[b][i] = kCalleePrintF64;
            } else {
              auto it = by_name.find(callee);
              if (it != by_name.end()) t.callee[b][i] = it->second;
            }
          }
        }
      }
    }
    summaries_.resize(static_cast<std::size_t>(nfuncs));
    context_.resize(static_cast<std::size_t>(nfuncs));
  }

  FlowReport run() {
    compute_summaries();
    compute_contexts();
    return build_report();
  }

 private:
  struct FnTables {
    /// Resolved jcc/jmp target block index per instruction, -1 when the
    /// label does not resolve (the VM traps on that edge).
    std::vector<std::vector<int>> target;
    /// Resolved callee per kCall: function index, kCalleePrint*, or
    /// kCalleeUnknown (traps before the return-address push).
    std::vector<std::vector<int>> callee;
    /// Blocks whose first instruction is the detect trap: a jcc into one
    /// is a detector firing, not an outcome-steering branch.
    std::vector<bool> detect_block;
  };

  /// Backward transfer of one instruction: s holds the flow state *after*
  /// the instruction on entry and *before* it on exit. Destination flow
  /// is read off the post-state first, full overwrites are killed, then
  /// every read location absorbs the generated flow plus the
  /// instruction's intrinsic sinks.
  void transfer(int f, int b, int i, const AsmInst& inst, FlowState& s,
                const std::vector<FlowState>& state_in,
                const FlowState& exit_seed) const {
    const FnTables& t = tables_[static_cast<std::size_t>(f)];
    switch (inst.op) {
      case Op::kMov:
        if (inst.ops[1].is_mem()) {
          // Store: the data enters the (untracked) store stream; the
          // address selects which cell is corrupted.
          Cell addr = Cell::sink(kSinkStore | kSinkAddress);
          read_mem(s, inst.ops[1].mem, addr);
          read_operand(s, inst.ops[0], Cell::sink(kSinkStore));
        } else {
          const Cell gen = gpr_write_gen(s, inst.ops[1].reg);
          kill_gpr(s, inst.ops[1].reg, inst.ops[1].width);
          read_operand(s, inst.ops[0], gen);
        }
        return;
      case Op::kMovsx:
      case Op::kMovzx: {
        const Cell gen = gpr_write_gen(s, inst.ops[1].reg);
        kill_gpr(s, inst.ops[1].reg, inst.ops[1].width);
        read_operand(s, inst.ops[0], gen);
        return;
      }
      case Op::kLea: {
        // Pure address arithmetic: the inputs flow into the destination
        // but nothing is dereferenced here — any address sink attaches at
        // the eventual access.
        const Cell gen = gpr_write_gen(s, inst.ops[1].reg);
        kill_gpr(s, inst.ops[1].reg, 8);
        read_mem(s, inst.ops[0].mem, gen);
        return;
      }
      case Op::kPush: {
        // Store of the source at [rsp-8]; rsp is read (address + bump)
        // and rewritten from its old value.
        Cell rsp = gpr_write_gen(s, Gpr::kRsp);
        rsp.sinks |= kSinkStore | kSinkAddress;
        read_gpr(s, Gpr::kRsp, rsp);
        read_operand(s, inst.ops[0], Cell::sink(kSinkStore));
        return;
      }
      case Op::kPop: {
        // Load from [rsp]: the stack address selects the value landing in
        // the destination; rsp is also rewritten from its old value.
        const Cell gen = gpr_write_gen(s, inst.ops[0].reg);
        kill_gpr(s, inst.ops[0].reg, 8);
        Cell rsp = gpr_write_gen(s, Gpr::kRsp);
        rsp.merge(gen);
        rsp.sinks |= kSinkAddress;
        read_gpr(s, Gpr::kRsp, rsp);
        return;
      }
      case Op::kAdd: case Op::kSub: case Op::kImul: case Op::kAnd:
      case Op::kOr: case Op::kXor: case Op::kShl: case Op::kSar:
      case Op::kIdiv: case Op::kIrem: {
        const bool traps = inst.op == Op::kIdiv || inst.op == Op::kIrem;
        Cell gen = s.loc[kFlagsLoc];  // the computed flags flow from inputs
        s.loc[kFlagsLoc] = Cell{};    // every ALU op replaces the flag set
        if (inst.ops[1].is_mem()) {
          Cell addr = Cell::sink(kSinkStore | kSinkAddress);
          addr.merge(gen);
          read_mem(s, inst.ops[1].mem, addr);
          gen.sinks |= kSinkStore;  // RMW store of the result
        } else {
          gen.merge(gpr_write_gen(s, inst.ops[1].reg));
          kill_gpr(s, inst.ops[1].reg, inst.ops[1].width);
        }
        if (traps) gen.sinks |= kSinkTrap;  // #DE on a corrupted divisor
        if (!inst.ops[1].is_mem()) {
          read_gpr(s, inst.ops[1].reg, gen);  // RMW read
        }
        read_operand(s, inst.ops[0], gen);
        return;
      }
      case Op::kCmp:
      case Op::kTest: {
        const Cell gen = s.loc[kFlagsLoc];
        s.loc[kFlagsLoc] = Cell{};
        read_operand(s, inst.ops[0], gen);
        read_operand(s, inst.ops[1], gen);
        return;
      }
      case Op::kSetcc:
        if (inst.ops[0].is_mem()) {
          Cell addr = Cell::sink(kSinkStore | kSinkAddress);
          read_mem(s, inst.ops[0].mem, addr);
          s.loc[kFlagsLoc].merge(Cell::sink(kSinkStore));
        } else {
          // 1-byte merge: no kill; the captured condition flows wherever
          // the destination byte flows.
          s.loc[kFlagsLoc].merge(gpr_write_gen(s, inst.ops[0].reg));
        }
        return;
      case Op::kJcc: {
        // s currently holds the fall-through state; join the taken edge.
        // A branch into the detect block is the detector firing; any
        // other resolution steers control flow.
        const int target = t.target[static_cast<std::size_t>(b)]
                                   [static_cast<std::size_t>(i)];
        std::uint16_t sink = kSinkBranch;
        if (target >= 0) {
          s.join(state_in[static_cast<std::size_t>(target)]);
          if (t.detect_block[static_cast<std::size_t>(target)]) {
            sink = kSinkDetect;
          }
        }
        s.loc[kFlagsLoc].merge(Cell::sink(sink));
        return;
      }
      case Op::kJmp: {
        const int target = t.target[static_cast<std::size_t>(b)]
                                   [static_cast<std::size_t>(i)];
        s = target >= 0 ? state_in[static_cast<std::size_t>(target)]
                        : FlowState{};
        return;
      }
      case Op::kCall: {
        const int callee = t.callee[static_cast<std::size_t>(b)]
                                   [static_cast<std::size_t>(i)];
        if (callee == kCalleePrintInt) {
          read_gpr(s, Gpr::kRdi, Cell::sink(kSinkOutput));
          return;
        }
        if (callee == kCalleePrintF64) {
          read_xmm_lane(s, 0, 0, Cell::sink(kSinkOutput));
          return;
        }
        if (callee < 0) {
          s = FlowState{};  // unknown callee traps before any effect
          return;
        }
        // Compose the callee summary with the caller's after-call state.
        // Locations the callee overwrites on every path have no exit
        // entry for their own value, so clobbers fall out for free.
        const FlowState& sum = summaries_[static_cast<std::size_t>(callee)];
        FlowState before;
        for (int l = 0; l < kLocCount; ++l) {
          before.loc[l] = expand(sum.loc[l], s);
        }
        s = before;
        Cell rsp = Cell::sink(kSinkStore | kSinkAddress);  // ret-addr push
        rsp.merge(s.loc[gpr_loc(Gpr::kRsp)]);
        s.loc[gpr_loc(Gpr::kRsp)] = rsp;
        return;
      }
      case Op::kRet:
        s = exit_seed;
        s.loc[gpr_loc(Gpr::kRsp)].merge(Cell::sink(kSinkAddress));  // the pop
        return;
      case Op::kDetectTrap:
        s = FlowState{};  // never returns
        return;
      case Op::kMovsd:
        if (inst.ops[1].is_xmm()) {
          const Cell gen = s.loc[xmm_loc(inst.ops[1].xmm, 0)];
          s.loc[xmm_loc(inst.ops[1].xmm, 0)] = Cell{};
          read_scalar_src(s, inst.ops[0], gen);
        } else {
          Cell addr = Cell::sink(kSinkStore | kSinkAddress);
          read_mem(s, inst.ops[1].mem, addr);
          read_xmm_lane(s, inst.ops[0].xmm, 0, Cell::sink(kSinkStore));
        }
        return;
      case Op::kAddsd: case Op::kSubsd: case Op::kMulsd: case Op::kDivsd: {
        Cell gen = s.loc[xmm_loc(inst.ops[1].xmm, 0)];
        s.loc[xmm_loc(inst.ops[1].xmm, 0)] = Cell{};
        read_xmm_lane(s, inst.ops[1].xmm, 0, gen);  // RMW read
        read_scalar_src(s, inst.ops[0], gen);
        return;
      }
      case Op::kSqrtsd: {
        const Cell gen = s.loc[xmm_loc(inst.ops[1].xmm, 0)];
        s.loc[xmm_loc(inst.ops[1].xmm, 0)] = Cell{};
        read_scalar_src(s, inst.ops[0], gen);
        return;
      }
      case Op::kUcomisd: {
        const Cell gen = s.loc[kFlagsLoc];
        s.loc[kFlagsLoc] = Cell{};
        read_scalar_src(s, inst.ops[0], gen);
        read_xmm_lane(s, inst.ops[1].xmm, 0, gen);
        return;
      }
      case Op::kCvtsi2sd: {
        const Cell gen = s.loc[xmm_loc(inst.ops[1].xmm, 0)];
        s.loc[xmm_loc(inst.ops[1].xmm, 0)] = Cell{};
        read_operand(s, inst.ops[0], gen);
        return;
      }
      case Op::kCvttsd2si: {
        const Cell gen = gpr_write_gen(s, inst.ops[1].reg);
        kill_gpr(s, inst.ops[1].reg, inst.ops[1].width);
        read_xmm_lane(s, inst.ops[0].xmm, 0, gen);
        return;
      }
      case Op::kMovq:
        if (inst.ops[1].is_xmm()) {
          Cell gen = s.loc[xmm_loc(inst.ops[1].xmm, 0)];
          s.loc[xmm_loc(inst.ops[1].xmm, 0)] = Cell{};
          s.loc[xmm_loc(inst.ops[1].xmm, 1)] = Cell{};  // movq zeroes lane 1
          read_operand(s, inst.ops[0], gen);
        } else if (inst.ops[1].is_mem()) {
          Cell addr = Cell::sink(kSinkStore | kSinkAddress);
          read_mem(s, inst.ops[1].mem, addr);
          read_xmm_lane(s, inst.ops[0].xmm, 0, Cell::sink(kSinkStore));
        } else {
          const Cell gen = gpr_write_gen(s, inst.ops[1].reg);
          kill_gpr(s, inst.ops[1].reg, inst.ops[1].width);
          read_xmm_lane(s, inst.ops[0].xmm, 0, gen);
        }
        return;
      case Op::kPinsrq: {
        const int lane = static_cast<int>(inst.ops[0].imm) & 1;
        const Cell gen = s.loc[xmm_loc(inst.ops[2].xmm, lane)];
        s.loc[xmm_loc(inst.ops[2].xmm, lane)] = Cell{};
        read_operand(s, inst.ops[1], gen);
        return;
      }
      case Op::kVinserti128: {
        const int base = (static_cast<int>(inst.ops[0].imm) & 1) * 2;
        Cell gen = s.loc[xmm_loc(inst.ops[2].xmm, base)];
        gen.merge(s.loc[xmm_loc(inst.ops[2].xmm, base + 1)]);
        s.loc[xmm_loc(inst.ops[2].xmm, base)] = Cell{};
        s.loc[xmm_loc(inst.ops[2].xmm, base + 1)] = Cell{};
        read_xmm_lane(s, inst.ops[1].xmm, 0, gen);
        read_xmm_lane(s, inst.ops[1].xmm, 1, gen);
        return;
      }
      case Op::kVpxor: {
        const int active = inst.ops[0].ymm ? 4 : 2;
        Cell gen;
        for (int l = 0; l < 4; ++l) {
          gen.merge(s.loc[xmm_loc(inst.ops[2].xmm, l)]);
          s.loc[xmm_loc(inst.ops[2].xmm, l)] = Cell{};
        }
        for (int l = 0; l < active; ++l) {
          read_xmm_lane(s, inst.ops[0].xmm, l, gen);
          read_xmm_lane(s, inst.ops[1].xmm, l, gen);
        }
        return;
      }
      case Op::kVptest: {
        const Cell gen = s.loc[kFlagsLoc];
        s.loc[kFlagsLoc] = Cell{};
        const int active = inst.ops[0].ymm ? 4 : 2;
        for (int l = 0; l < active; ++l) {
          read_xmm_lane(s, inst.ops[0].xmm, l, gen);
          read_xmm_lane(s, inst.ops[1].xmm, l, gen);
        }
        return;
      }
    }
  }

  /// One backward sweep of block b (prune's walk shape: free fall-through
  /// into block b+1, falling past the last block traps). Optionally
  /// records the after-state of every instruction.
  FlowState walk_block(int f, int b, FlowState s,
                       const std::vector<FlowState>& state_in,
                       const FlowState& exit_seed,
                       std::vector<FlowState>* after_out) const {
    const auto& insts =
        prog_.functions[static_cast<std::size_t>(f)]
            .blocks[static_cast<std::size_t>(b)].insts;
    if (after_out != nullptr) after_out->resize(insts.size());
    for (int i = static_cast<int>(insts.size()) - 1; i >= 0; --i) {
      if (after_out != nullptr) {
        (*after_out)[static_cast<std::size_t>(i)] = s;
      }
      transfer(f, b, i, insts[static_cast<std::size_t>(i)], s, state_in,
               exit_seed);
    }
    return s;
  }

  /// Round-robin backward fixpoint over the function's blocks. Returns
  /// per-block state-in (the flow facts at each block entry).
  std::vector<FlowState> analyze_function(int f,
                                          const FlowState& exit_seed) const {
    const AsmFunction& fn = prog_.functions[static_cast<std::size_t>(f)];
    const int nblocks = static_cast<int>(fn.blocks.size());
    std::vector<FlowState> state_in(static_cast<std::size_t>(nblocks));
    bool changed = true;
    while (changed) {
      changed = false;
      for (int b = nblocks - 1; b >= 0; --b) {
        FlowState seed = b + 1 < nblocks
                             ? state_in[static_cast<std::size_t>(b + 1)]
                             : FlowState{};
        FlowState in = walk_block(f, b, std::move(seed), state_in, exit_seed,
                                  nullptr);
        if (!(in == state_in[static_cast<std::size_t>(b)])) {
          state_in[static_cast<std::size_t>(b)] = std::move(in);
          changed = true;
        }
      }
    }
    return state_in;
  }

  /// After-states for every instruction of f under a converged state_in.
  std::vector<std::vector<FlowState>> record_function(
      int f, const std::vector<FlowState>& state_in,
      const FlowState& exit_seed) const {
    const AsmFunction& fn = prog_.functions[static_cast<std::size_t>(f)];
    const int nblocks = static_cast<int>(fn.blocks.size());
    std::vector<std::vector<FlowState>> after(
        static_cast<std::size_t>(nblocks));
    for (int b = 0; b < nblocks; ++b) {
      FlowState seed = b + 1 < nblocks
                           ? state_in[static_cast<std::size_t>(b + 1)]
                           : FlowState{};
      walk_block(f, b, std::move(seed), state_in, exit_seed,
                 &after[static_cast<std::size_t>(b)]);
    }
    return after;
  }

  /// Bottom-up callee summaries: the entry state under identity exits
  /// answers, per location, which sinks the callee itself exposes and
  /// which exit locations the entry value can survive into. Optimistic
  /// empty start, iterate to the least fixpoint (monotone — recursion
  /// converges).
  void compute_summaries() {
    const int nfuncs = static_cast<int>(prog_.functions.size());
    const FlowState identity = FlowState::identity_exits();
    bool changed = true;
    while (changed) {
      changed = false;
      for (int f = 0; f < nfuncs; ++f) {
        const auto state_in = analyze_function(f, identity);
        FlowState entry =
            state_in.empty() ? FlowState{} : state_in.front();
        FlowState& sum = summaries_[static_cast<std::size_t>(f)];
        if (!(sum == entry)) {
          sum = std::move(entry);
          changed = true;
        }
      }
    }
  }

  /// Top-down caller contexts C(f): what a ret of f feeds into. main's
  /// exit feeds %rax to the architectural return value (an output sink);
  /// every call site of g adds its own after-call state to C(g). The
  /// concrete passes carry no exit bits, so fixpoint states here are
  /// sink-only.
  void compute_contexts() {
    const int nfuncs = static_cast<int>(prog_.functions.size());
    for (int f = 0; f < nfuncs; ++f) {
      if (prog_.functions[static_cast<std::size_t>(f)].name == "main") {
        context_[static_cast<std::size_t>(f)]
            .loc[gpr_loc(Gpr::kRax)]
            .merge(Cell::sink(kSinkOutput));
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (int f = 0; f < nfuncs; ++f) {
        const auto state_in =
            analyze_function(f, context_[static_cast<std::size_t>(f)]);
        const auto after = record_function(
            f, state_in, context_[static_cast<std::size_t>(f)]);
        const FnTables& t = tables_[static_cast<std::size_t>(f)];
        for (std::size_t b = 0; b < after.size(); ++b) {
          for (std::size_t i = 0; i < after[b].size(); ++i) {
            const int callee = t.callee[b][i];
            if (prog_.functions[static_cast<std::size_t>(f)]
                    .blocks[b].insts[i].op != Op::kCall ||
                callee < 0) {
              continue;
            }
            FlowState& c = context_[static_cast<std::size_t>(callee)];
            FlowState joined = c;
            joined.join(after[b][i]);
            if (!(joined == c)) {
              c = std::move(joined);
              changed = true;
            }
          }
        }
      }
    }
  }

  // ------------------------------------------------ report construction --

  /// The sink mask of the location(s) a site writes, read off the
  /// after-state of its instruction — exactly where the flipped value
  /// resides when the fault fires.
  std::uint16_t site_sinks(const FlowState& after, const FnTables& t, int b,
                           int i, const masm::StaticSiteInfo& info) const {
    switch (info.kind) {
      case FaultSiteKind::kGprWrite:
        return after.loc[gpr_loc(info.reg)].sinks;
      case FaultSiteKind::kXmmWrite: {
        std::uint16_t sinks = 0;
        for (int l = 0; l < info.lane_count; ++l) {
          sinks |= after.loc[xmm_loc(info.xmm, info.lane_base + l)].sinks;
        }
        return sinks;
      }
      case FaultSiteKind::kFlagsWrite:
        return after.loc[kFlagsLoc].sinks;
      case FaultSiteKind::kStoreData:
        // The corrupted value is already in the store stream.
        return kSinkStore;
      case FaultSiteKind::kBranchDecision: {
        const int target = t.target[static_cast<std::size_t>(b)]
                                   [static_cast<std::size_t>(i)];
        if (target >= 0 && t.detect_block[static_cast<std::size_t>(target)]) {
          return kSinkDetect;
        }
        return kSinkBranch;
      }
    }
    return 0;
  }

  static Prediction predict_from_sinks(std::uint16_t sinks) {
    if ((sinks & (kSinkStore | kSinkOutput)) != 0) {
      return Prediction::kSdcVulnerable;
    }
    if ((sinks & (kSinkAddress | kSinkStackPtr | kSinkBranch | kSinkTrap)) !=
        0) {
      return Prediction::kCrashProne;
    }
    if ((sinks & kSinkDetect) != 0) return Prediction::kDetected;
    return Prediction::kMasked;
  }

  FlowReport build_report() {
    FlowReport report;
    report.store_data_sites = opts_.store_data_sites;
    const int nfuncs = static_cast<int>(prog_.functions.size());

    // The companion analyses the predictions fold in: prune's dead-bit
    // proof, check's protected/benign classification, and the section
    // decomposition for the per-section profile. All three share the
    // store-data knob so site enumerations line up.
    prune::PruneOptions prune_options;
    prune_options.store_data_sites = opts_.store_data_sites;
    const prune::PruneReport pruned = prune::prune_program(prog_, prune_options);
    CheckOptions check_options;
    check_options.store_data_sites = opts_.store_data_sites;
    const CheckReport checked = check_program(prog_, check_options);
    sections::SectionOptions section_options;
    section_options.store_data_sites = opts_.store_data_sites;
    const sections::SectionMap section_map =
        sections::build_sections(prog_, section_options);

    // check::SiteRecord keys by function *name*; index for O(1) joins.
    std::map<std::tuple<std::string, int, int, int>, SiteStatus> check_status;
    for (const SiteRecord& site : checked.sites) {
      check_status.emplace(
          std::make_tuple(site.function, site.block, site.inst,
                          static_cast<int>(site.kind)),
          site.status);
    }

    report.by_function.resize(static_cast<std::size_t>(nfuncs));
    report.by_section.resize(section_map.sections.size());
    report.site_at_.resize(static_cast<std::size_t>(nfuncs));

    for (int f = 0; f < nfuncs; ++f) {
      const AsmFunction& fn = prog_.functions[static_cast<std::size_t>(f)];
      const auto state_in =
          analyze_function(f, context_[static_cast<std::size_t>(f)]);
      const auto after = record_function(
          f, state_in, context_[static_cast<std::size_t>(f)]);
      const FnTables& t = tables_[static_cast<std::size_t>(f)];
      auto& fn_index = report.site_at_[static_cast<std::size_t>(f)];
      fn_index.resize(fn.blocks.size());
      for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        const auto& insts = fn.blocks[b].insts;
        fn_index[b].assign(insts.size(), -1);
        for (std::size_t i = 0; i < insts.size(); ++i) {
          const AsmInst& inst = insts[i];
          const bool pushes_ret =
              inst.op != Op::kCall || t.callee[b][i] >= 0;
          const masm::StaticSiteInfo info =
              masm::static_site_of(inst, opts_.store_data_sites, pushes_ret);
          if (!info.has_site) continue;

          FlowSite site;
          site.function = f;
          site.block = static_cast<int>(b);
          site.inst = static_cast<int>(i);
          site.kind = info.kind;
          site.sinks = site_sinks(after[b][i], t, static_cast<int>(b),
                                  static_cast<int>(i), info);
          site.section = section_map.section_of(f, static_cast<int>(b),
                                                static_cast<int>(i));

          // Prediction priority: a full static deadness proof beats
          // everything; then check's validated protected fact; then the
          // sink mask (worst sink wins inside predict_from_sinks).
          // Check's kBenign verdict is NOT allowed to override the sink
          // evidence: its observation model is scoped to protection
          // invariants and under-observes some value chains the flow
          // domain does track (e.g. scalar-double arithmetic feeding a
          // store in an unprotected build), so "never observed" there is
          // not a masking proof. It only corroborates — the basis is
          // recorded when flow independently found no sinks at all.
          const prune::PruneSite* dead = pruned.find(
              f, static_cast<int>(b), static_cast<int>(i));
          const auto status_it = check_status.find(std::make_tuple(
              fn.name, static_cast<int>(b), static_cast<int>(i),
              static_cast<int>(info.kind)));
          if (dead != nullptr && dead->fully_dead()) {
            site.prediction = Prediction::kMasked;
            site.basis = PredictionBasis::kPruneDead;
          } else if (status_it != check_status.end() &&
                     status_it->second == SiteStatus::kProtected) {
            site.prediction = Prediction::kDetected;
            site.basis = PredictionBasis::kCheckProtected;
          } else if (status_it != check_status.end() &&
                     status_it->second == SiteStatus::kBenign &&
                     site.sinks == 0) {
            site.prediction = Prediction::kMasked;
            site.basis = PredictionBasis::kCheckBenign;
          } else {
            site.prediction = predict_from_sinks(site.sinks);
            site.basis = PredictionBasis::kFlow;
          }

          report.profile.add(site.prediction);
          report.by_function[static_cast<std::size_t>(f)].add(site.prediction);
          if (site.section >= 0) {
            report.by_section[static_cast<std::size_t>(site.section)].add(
                site.prediction);
          }
          fn_index[b][i] = static_cast<std::int32_t>(report.sites.size());
          report.sites.push_back(site);
        }
      }
    }
    return report;
  }

  const AsmProgram& prog_;
  FlowOptions opts_;
  std::vector<FnTables> tables_;
  /// Per-function summary: entry state under identity exit seeds.
  std::vector<FlowState> summaries_;
  /// Per-function concrete caller context (sink-only exit seeds).
  std::vector<FlowState> context_;
};

}  // namespace

std::string sink_mask_name(std::uint16_t sinks) {
  static constexpr std::pair<std::uint16_t, const char*> kNames[] = {
      {kSinkStore, "store"},     {kSinkOutput, "output"},
      {kSinkAddress, "address"}, {kSinkStackPtr, "stackptr"},
      {kSinkBranch, "branch"},   {kSinkTrap, "trap"},
      {kSinkDetect, "detect"},
  };
  std::string out;
  for (const auto& [bit, name] : kNames) {
    if ((sinks & bit) == 0) continue;
    if (!out.empty()) out += "|";
    out += name;
  }
  return out.empty() ? "none" : out;
}

const char* prediction_name(Prediction prediction) {
  switch (prediction) {
    case Prediction::kMasked: return "masked";
    case Prediction::kDetected: return "detected";
    case Prediction::kCrashProne: return "crash-prone";
    case Prediction::kSdcVulnerable: return "sdc-vulnerable";
  }
  return "?";
}

const char* prediction_basis_name(PredictionBasis basis) {
  switch (basis) {
    case PredictionBasis::kPruneDead: return "prune-dead";
    case PredictionBasis::kCheckProtected: return "check-protected";
    case PredictionBasis::kCheckBenign: return "check-benign";
    case PredictionBasis::kFlow: return "flow";
  }
  return "?";
}

FlowReport flow_program(const AsmProgram& program,
                        const FlowOptions& options) {
  return Analyzer(program, options).run();
}

namespace {

telemetry::Json profile_json(const FlowProfile& profile) {
  telemetry::Json out = telemetry::Json::object();
  for (int p = 0; p < kPredictionCount; ++p) {
    out[prediction_name(static_cast<Prediction>(p))] = profile.count
        [static_cast<std::size_t>(p)];
  }
  out["total"] = profile.total();
  return out;
}

}  // namespace

telemetry::Json to_json(const FlowReport& report,
                        const AsmProgram& program) {
  telemetry::Json root = telemetry::Json::object();
  root["schema"] = "ferrum.flow.v1";
  root["store_data_sites"] = report.store_data_sites;
  root["profile"] = profile_json(report.profile);

  telemetry::Json by_function = telemetry::Json::object();
  for (std::size_t f = 0; f < report.by_function.size(); ++f) {
    if (report.by_function[f].total() == 0) continue;
    by_function[program.functions[f].name] =
        profile_json(report.by_function[f]);
  }
  root["by_function"] = std::move(by_function);

  telemetry::Json by_section = telemetry::Json::array();
  for (std::size_t sec = 0; sec < report.by_section.size(); ++sec) {
    if (report.by_section[sec].total() == 0) continue;
    telemetry::Json entry = profile_json(report.by_section[sec]);
    entry["section"] = static_cast<std::uint64_t>(sec);
    by_section.push_back(std::move(entry));
  }
  root["by_section"] = std::move(by_section);

  telemetry::Json sites = telemetry::Json::array();
  for (const FlowSite& site : report.sites) {
    telemetry::Json entry = telemetry::Json::object();
    entry["function"] =
        program.functions[static_cast<std::size_t>(site.function)].name;
    entry["block"] = static_cast<std::int64_t>(site.block);
    entry["inst"] = static_cast<std::int64_t>(site.inst);
    entry["kind"] = masm::fault_site_kind_name(site.kind);
    entry["sinks"] = sink_mask_name(site.sinks);
    entry["prediction"] = prediction_name(site.prediction);
    entry["basis"] = prediction_basis_name(site.basis);
    entry["section"] = static_cast<std::int64_t>(site.section);
    sites.push_back(std::move(entry));
  }
  root["sites"] = std::move(sites);
  return root;
}

}  // namespace ferrum::check::flow
